//! Online driving evaluation: train a fleet with LbChat, deploy the
//! resulting model on a test autopilot, and drive the five CARLA-style
//! benchmark tasks (Straight, One Turn, Navigation empty/normal/dense),
//! reporting success rates like the paper's Tables II/III.
//!
//! Run with: `cargo run --release --example online_driving`

use driving::{success_rate, Task};
use experiments::harness::eval_config;
use experiments::{exit_on_error, run_method, Condition, Method, Scale, Scenario};

fn main() {
    let scale = Scale::quick();
    eprintln!("building scenario...");
    let scenario = Scenario::build(scale);

    eprintln!("training with LbChat (wireless loss on)...");
    let out = exit_on_error(run_method(Method::LbChat, &scenario, Condition::WithLoss));
    println!(
        "training done: final mean loss {:.4}, receiving rate {:.0}%",
        out.metrics.final_loss().unwrap(),
        out.metrics.model_receiving_rate() * 100.0
    );

    println!("\nclosed-loop driving evaluation:");
    let cfg = eval_config(&scenario);
    for task in Task::ALL {
        let r = success_rate(&out.representative, task, &cfg);
        println!(
            "  {:<15} {:>3.0}%   ({} ok / {} collisions / {} timeouts over {} trials)",
            task.name(),
            r.percent(),
            r.successes,
            r.collisions,
            r.timeouts,
            r.trials
        );
    }
    println!("\n(quick scale — run the table2/table3 binaries for the full comparison)");
}
