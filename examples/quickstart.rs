//! Quickstart: one pairwise "chat" between two vehicles, step by step.
//!
//! Builds two vehicles with *different* driving experience (different
//! routes in the same world), then walks through the LbChat pipeline:
//! coreset construction → mutual valuation on exchanged coresets → φ
//! sampling → Eq. (7) compression optimization → model exchange → Eq. (8)
//! aggregation → dataset expansion.
//!
//! Run with: `cargo run --release --example quickstart`

use driving::{collect_datasets, CollectConfig, DrivingLearner};
use lbchat::coreset::{construct, empirical_epsilon, CoresetConfig};
use lbchat::optimize::CompressionProblem;
use lbchat::penalty::PenaltyConfig;
use lbchat::phi::{PhiCurve, DEFAULT_PSI_GRID};
use lbchat::valuation::{coreset_loss, peer_model_value};
use lbchat::{aggregate, Learner};
use rand::SeedableRng;
use simworld::world::{World, WorldConfig};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // --- Two vehicles collect data on their own routes. ---
    println!("collecting route-conditioned data for two vehicles...");
    let mut world = World::new(WorldConfig::small(7));
    let mut datasets = collect_datasets(&mut world, &CollectConfig { seconds: 180.0, stride: 1, balance_commands: true });
    let data_b = datasets.swap_remove(1);
    let data_a = datasets.swap_remove(0);
    println!("  vehicle A: {} frames   vehicle B: {} frames", data_a.len(), data_b.len());

    // --- Each trains a local model on its own data. ---
    let spec = DrivingLearner::spec_for(
        world.config().bev.feature_len(),
        world.config().n_waypoints,
    );
    let mut init_rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut learner_a = DrivingLearner::new(&spec, 3e-3, &mut init_rng);
    let mut init_rng = rand::rngs::StdRng::seed_from_u64(99); // same init!
    let mut learner_b = DrivingLearner::new(&spec, 3e-3, &mut init_rng);
    println!("training local models ({} parameters each)...", learner_a.params().len());
    for _ in 0..400 {
        let batch_a: Vec<_> = data_a.pairs().into_iter().take(64).collect();
        let batch_b: Vec<_> = data_b.pairs().into_iter().take(64).collect();
        learner_a.train_step(&batch_a);
        learner_b.train_step(&batch_b);
    }

    // --- Step 1: coreset construction (Algorithm 1). ---
    let cfg = CoresetConfig { size: 40 };
    let coreset_a = construct(&learner_a, &data_a, &cfg, &mut rng);
    let coreset_b = construct(&learner_b, &data_b, &cfg, &mut rng);
    println!("\ncoresets: A has {} samples (eps = {:.3}), B has {} samples (eps = {:.3})",
        coreset_a.len(),
        empirical_epsilon(&learner_a, &coreset_a, &data_a),
        coreset_b.len(),
        empirical_epsilon(&learner_b, &coreset_b, &data_b),
    );

    // --- Step 2: exchange coresets, evaluate mutually. ---
    let pen = PenaltyConfig::default();
    let a_on_cb = coreset_loss(&learner_a, learner_a.params(), &coreset_b, &pen);
    let b_on_cb = coreset_loss(&learner_b, learner_b.params(), &coreset_b, &pen);
    let b_on_ca = coreset_loss(&learner_b, learner_b.params(), &coreset_a, &pen);
    let a_on_ca = coreset_loss(&learner_a, learner_a.params(), &coreset_a, &pen);
    println!("\nmutual valuation:");
    println!("  A's model on B's coreset: {a_on_cb:.4}  (B's own: {b_on_cb:.4})");
    println!("  -> value of B's model to A: {:.4}", peer_model_value(a_on_cb, b_on_cb));
    println!("  B's model on A's coreset: {b_on_ca:.4}  (A's own: {a_on_ca:.4})");
    println!("  -> value of A's model to B: {:.4}", peer_model_value(b_on_ca, a_on_ca));

    // --- Step 3: phi curves + Eq. (7) compression optimization. ---
    let phi_a = PhiCurve::sample(&learner_a, &coreset_a, DEFAULT_PSI_GRID, &pen);
    let phi_b = PhiCurve::sample(&learner_b, &coreset_b, DEFAULT_PSI_GRID, &pen);
    let problem = CompressionProblem {
        phi_i: &phi_a,
        phi_j: &phi_b,
        loss_j_on_ci: b_on_ca,
        loss_i_on_cj: a_on_cb,
        model_bytes: 52 * 1024 * 1024,
        bandwidth_bps: 31e6,
        time_budget: 15.0,
        contact: 40.0, // predicted from shared routes in the full system
        lambda_c: 0.01,
    };
    let choice = problem.solve();
    println!("\nEq. (7) compression choice:");
    println!("  psi_A = {:.3}, psi_B = {:.3}, transfer time = {:.1}s", choice.psi_i, choice.psi_j, choice.transfer_time);

    // --- Step 4: exchange compressed models, aggregate (Eq. 8). ---
    // The optimizer gave A's model the bandwidth (psi_A > 0): B receives
    // A's top-k-compressed model and merges it with loss-derived weights on
    // the joint coreset view, support-aware (untransmitted components keep
    // B's local values).
    let a_compressed = lbchat::compress::compress_dense(learner_a.params(), choice.psi_i);
    let joint: Vec<_> = coreset_a.pairs().into_iter().chain(coreset_b.pairs()).collect();
    let own_loss = lbchat::penalty::penalized_loss(&learner_b, learner_b.params(), &joint, &pen);
    let peer_loss = lbchat::penalty::penalized_loss(&learner_b, &a_compressed, &joint, &pen);
    let merged = aggregate::aggregate_sparse_aware(
        learner_b.params(),
        own_loss,
        &a_compressed,
        peer_loss,
        aggregate::AggregationRule::InverseLoss,
    );
    println!("\nEq. (8) aggregation on the joint coreset view (B receives A's model):");
    println!("  B's own loss {own_loss:.4} vs received A-model loss {peer_loss:.4}");
    let before = coreset_loss(&learner_b, learner_b.params(), &coreset_a, &pen);
    learner_b.set_params(merged);
    let after = coreset_loss(&learner_b, learner_b.params(), &coreset_a, &pen);
    println!("  B's loss on A's coreset: {before:.4} -> {after:.4} after merging");

    // --- Step 5: dataset expansion. ---
    let mut expanded = data_a.clone();
    expanded.absorb_coreset(&coreset_b);
    println!("\nA's dataset: {} -> {} frames after absorbing B's coreset", data_a.len(), expanded.len());
    let _ = learner_a; // A's side of the merge is symmetric when psi_B > 0
    println!("\ndone — this whole exchange costs ~1.2 MB of coreset traffic before any model bytes move.");
}
