//! Tour of the implemented extensions beyond the paper's core design:
//!
//! 1. **Alternative coreset constructions** (§V): sensitivity sampling and
//!    k-center clustering, side by side with Algorithm 1's layered
//!    sampling.
//! 2. **Adaptive coreset sizing** (the paper's stated future work): watch
//!    the controller react to representation error and contact pressure.
//! 3. **Pluggable model codecs** (§III-C's "such as quantization"): wire
//!    cost vs reconstruction error for every codec against plain top-k
//!    (see `docs/COMPRESSION.md`).
//!
//! Run with: `cargo run --release --example extensions_tour`

use driving::{collect_datasets, CollectConfig, DrivingLearner};
use lbchat::adaptive::AdaptiveSizer;
use lbchat::compress::Codec;
use lbchat::coreset::{construct, empirical_epsilon, CoresetConfig};
use lbchat::coreset_alt::{kcenter_coreset, sensitivity_sampling};
use lbchat::Learner;
use rand::SeedableRng;
use simworld::world::{World, WorldConfig};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    eprintln!("collecting driving data + training a reference model...");
    let mut world = World::new(WorldConfig::small(33));
    let datasets = collect_datasets(&mut world, &CollectConfig { seconds: 200.0, stride: 1, balance_commands: true });
    let data = &datasets[0];
    let spec = DrivingLearner::spec_for(
        world.config().bev.feature_len(),
        world.config().n_waypoints,
    );
    let mut learner = DrivingLearner::new(&spec, 3e-3, &mut rng);
    for _ in 0..400 {
        let batch: Vec<_> = data.pairs().into_iter().take(64).collect();
        learner.train_step(&batch);
    }

    // --- 1. Three coreset constructions, same budget. ---
    println!("three coreset constructions at |C| = 60 over |D| = {}:", data.len());
    let layered = construct(&learner, data, &CoresetConfig { size: 60 }, &mut rng);
    let sens = sensitivity_sampling(&learner, data, 60, &mut rng);
    let kc = kcenter_coreset(&learner, data, 60, &mut rng);
    for (name, c) in [("layered (Alg. 1)", &layered), ("sensitivity", &sens), ("k-center", &kc)] {
        println!(
            "  {name:<18} |C| = {:>3}   eps = {:.4}   total weight = {:.0}",
            c.len(),
            empirical_epsilon(&learner, c, data),
            c.total_weight(),
        );
    }

    // --- 2. Adaptive sizing under two regimes. ---
    println!("\nadaptive sizing from 150 samples:");
    let mut sizer = AdaptiveSizer::new(150, 15, 1500);
    for round in 0..6 {
        // Early regime: poor representation, cheap communication.
        sizer.observe_epsilon(0.4);
        sizer.observe_exchange(0.05);
        let n = sizer.adjust();
        println!("  round {round}: eps-pressure  -> size {n}");
    }
    for round in 6..12 {
        // Late regime: short contacts, exchanges blowing the budget.
        sizer.observe_epsilon(0.02);
        sizer.observe_exchange(0.9);
        let n = sizer.adjust();
        println!("  round {round}: comm-pressure -> size {n}");
    }

    // --- 3. Every model codec at the same compression ratio. ---
    println!("\nmodel codecs at psi = 0.3 on the trained policy:");
    let params = learner.params();
    for codec in Codec::ALL {
        let hat = codec.apply(params, 0.3, &mut rng);
        let err = params.distance(&hat) / params.l2_norm();
        let bytes = codec.wire_bytes(52 * 1024 * 1024, 0.3);
        println!(
            "  {:<10} wire = {:>5.1} MB   relative L2 error = {:.4}",
            codec.name(),
            bytes as f64 / 1e6,
            err
        );
    }
    println!("\nquantized codecs move 4-8x less data per psi at a small extra error —");
    println!("worth it exactly when contacts are short, which Eq. (7) can now trade off.");
}
