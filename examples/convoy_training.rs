//! Convoy training: a small fleet trains collaboratively with LbChat while
//! driving around the generated town, and the example reports live
//! statistics — loss over simulated time, chat sessions, coreset and model
//! deliveries, and how much each vehicle's dataset grew by absorbing peer
//! coresets.
//!
//! Run with: `cargo run --release --example convoy_training`

use experiments::{exit_on_error, run_method, Condition, Method, Scale, Scenario};

fn main() {
    let mut scale = Scale::quick();
    scale.n_vehicles = 6;
    scale.train_seconds = 900.0;
    scale.eval_every = 90.0;
    eprintln!("building world + collecting data for {} vehicles...", scale.n_vehicles);
    let scenario = Scenario::build(scale);

    eprintln!("running LbChat for {:.0} simulated seconds...", scenario.scale.train_seconds);
    let out = exit_on_error(run_method(Method::LbChat, &scenario, Condition::WithLoss));

    println!("\nloss vs simulated time:");
    for (t, l) in &out.metrics.loss_curve {
        let bar_len = (l * 120.0).min(60.0) as usize;
        println!("  {t:>6.0}s  {l:.4}  {}", "#".repeat(bar_len));
    }

    let m = &out.metrics;
    println!("\nrun statistics:");
    println!("  chat sessions        : {}", m.sessions);
    println!("  coreset deliveries   : {}/{}", m.coreset_receives, m.coreset_sends);
    println!("  model deliveries     : {}/{}", m.model_receives, m.model_sends);
    println!("  model receiving rate : {:.0}%", m.model_receiving_rate() * 100.0);
    println!("  payload delivered    : {:.1} MB", m.bytes_delivered as f64 / 1e6);
    println!("  airtime used         : {:.1} simulated s", m.comm_seconds);
    println!("  training iterations  : {}", m.train_iterations);

    println!("\nfinal per-vehicle models (L2 norms — should be similar, not identical):");
    for (i, model) in out.models.iter().enumerate() {
        println!("  vehicle {i}: ||x|| = {:.3}", model.l2_norm());
    }
}
