//! Coreset laboratory: explore the coreset machinery on real driving data.
//!
//! Demonstrates (1) layered-sampling construction and its empirical ε at
//! several sizes, (2) the approximation holding for *perturbed* models (the
//! CnB ball of Def. II.1), (3) merge-and-reduce maintenance, and (4) why
//! coresets reveal data difference — the valuation signal at the heart of
//! LbChat.
//!
//! Run with: `cargo run --release --example coreset_lab`

use driving::{collect_datasets, CollectConfig, DrivingLearner};
use lbchat::coreset::{construct, empirical_epsilon, reduce, CoresetConfig};
use lbchat::penalty::PenaltyConfig;
use lbchat::valuation::coreset_loss;
use lbchat::Learner;
use rand::SeedableRng;
use simworld::world::{World, WorldConfig};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    eprintln!("collecting driving data...");
    let mut world = World::new(WorldConfig::small(21));
    let datasets = collect_datasets(&mut world, &CollectConfig { seconds: 240.0, stride: 1, balance_commands: true });

    // Train a model so per-sample losses are informative.
    let spec = DrivingLearner::spec_for(
        world.config().bev.feature_len(),
        world.config().n_waypoints,
    );
    let mut learner = DrivingLearner::new(&spec, 3e-3, &mut rng);
    let data = &datasets[0];
    eprintln!("training a reference model on vehicle 0's {} frames...", data.len());
    for _ in 0..600 {
        let batch: Vec<_> = data.pairs().into_iter().take(64).collect();
        learner.train_step(&batch);
    }

    // --- 1. Size vs approximation quality. ---
    println!("coreset size vs empirical epsilon (|D| = {}):", data.len());
    for size in [10, 25, 50, 100, 200] {
        let c = construct(&learner, data, &CoresetConfig { size }, &mut rng);
        let eps = empirical_epsilon(&learner, &c, data);
        println!("  |C| = {:>3}  eps = {:.4}", c.len(), eps);
    }

    // --- 2. The approximation holds for nearby models too. ---
    let c = construct(&learner, data, &CoresetConfig { size: 100 }, &mut rng);
    let mut perturbed = learner.clone();
    {
        let mut p = perturbed.params().clone();
        let scale = 0.05 * p.l2_norm() / (p.len() as f32).sqrt();
        for (i, v) in p.as_mut_slice().iter_mut().enumerate() {
            *v += scale * (((i * 2654435761) % 1000) as f32 / 500.0 - 1.0);
        }
        perturbed.set_params(p);
    }
    println!("\nepsilon under the construction model : {:.4}", empirical_epsilon(&learner, &c, data));
    println!("epsilon under a perturbed model      : {:.4}", empirical_epsilon(&perturbed, &c, data));

    // --- 3. Merge-and-reduce. ---
    let c2 = construct(&learner, &datasets[1], &CoresetConfig { size: 100 }, &mut rng);
    let merged = c.clone().merge(c2);
    let reduced = reduce(merged.clone(), 100, &mut rng);
    println!("\nmerge-and-reduce: |C1 u C2| = {} -> |reduce| = {} (total weight {:.0} -> {:.0})",
        merged.len(), reduced.len(), merged.total_weight(), reduced.total_weight());

    // --- 4. Coresets reveal data difference. ---
    let pen = PenaltyConfig::none();
    println!("\nmodel-of-vehicle-0's loss on every vehicle's coreset:");
    for (i, d) in datasets.iter().enumerate() {
        let ci = construct(&learner, d, &CoresetConfig { size: 60 }, &mut rng);
        let l = coreset_loss(&learner, learner.params(), &ci, &pen);
        println!("  vehicle {i}: f(x0; C{i}) = {:.4}{}", l, if i == 0 { "  <- own data" } else { "" });
    }
    println!("\nhigher loss on a peer's coreset = more different data = more valuable peer model.");
}
