//! Property fuzz of the audit lexer (and the parser/graph stack on top
//! of it) over adversarial token soups: raw strings with hash fences,
//! byte/char escapes, comment markers inside literals, unterminated
//! literals at EOF, and multi-byte UTF-8. The lexer's core contract is
//! that blanking is *byte-preserving* — `code` is the same length as
//! `raw` with literal and comment bytes turned to spaces — because every
//! downstream span indexes `raw` through offsets found in `code`.
//!
//! The named tests at the bottom are promoted fuzz findings / known
//! adversarial shapes pinned as exact-behavior regressions.

use lbchat_audit::graph::CallGraph;
use lbchat_audit::lexer::FileScan;
use lbchat_audit::parser::parse_items;
use proptest::prelude::*;

/// Adversarial source fragments. Concatenations of these reach the
/// lexer states that hand-written tests tend to miss: fence-counted raw
/// strings, escapes that end literals early, markers nested in other
/// markers, and multi-byte UTF-8 adjacent to delimiter bytes.
const FRAGMENTS: &[&str] = &[
    "fn f() {",
    "}",
    "let s = ",
    ";\n",
    "\"",
    "\\\"",
    "\\\\",
    "'",
    "b'",
    "b\"",
    "r\"",
    "r#\"",
    "\"#",
    "br##\"",
    "\"##",
    "#",
    "'\\''",
    "'\\u{41}'",
    "//",
    "/*",
    "*/",
    "\n",
    "#[cfg(test)]\n",
    "mod tests {",
    "obs.emit(\"round\", &[])",
    "// audit:allow(P001): reason\n",
    "π≠∅",
    "日本語",
    "x.unwrap()",
    "Instant::now()",
    "::",
    "!",
    "(",
    ")",
];

/// Everything the audit pipeline computes up front for one file; the
/// property is simply that none of it panics and the byte-preserving
/// blanking contract holds for arbitrary input.
fn scan_invariants(src: &str) {
    let scan = FileScan::new("crates/core/src/fuzz.rs", src);
    assert_eq!(
        scan.code.len(),
        scan.raw.len(),
        "blanked code must be byte-for-byte as long as the raw text\nraw: {src:?}"
    );
    assert_eq!(scan.raw, src);
    let n_lines = scan.line_starts.len();
    assert_eq!(scan.test_line.len(), n_lines);
    for line in 1..=n_lines {
        // Slicing accessors must stay in bounds on every line.
        let _ = scan.code_line(line);
        let _ = scan.raw_line(line);
        let _ = scan.is_test_line(line);
    }
    for s in &scan.strings {
        assert!(s.offset <= scan.raw.len(), "string offset out of range\nraw: {src:?}");
        assert!(
            (1..=n_lines).contains(&s.line),
            "string line out of range\nraw: {src:?}"
        );
        assert_eq!(scan.line_of(s.offset), s.line, "raw: {src:?}");
    }
    for c in &scan.comments {
        assert!((1..=n_lines).contains(&c.line), "comment line out of range\nraw: {src:?}");
    }
    let _ = scan.obs_names();
    // The layers above the lexer must hold up on the same soup.
    let items = parse_items(&scan);
    let _ = CallGraph::build(&[(scan, items)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics_and_blanking_is_byte_preserving(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..64)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        scan_invariants(&src);
    }
}

// ---- promoted adversarial shapes, pinned as exact-behavior tests ----

#[test]
fn nested_raw_byte_string_with_hash_fences_is_blanked() {
    let src = "let s = br##\"quote \" and fence \"# stay inside\"##;\nlet y = live();\n";
    let scan = FileScan::new("crates/core/src/fuzz.rs", src);
    assert!(!scan.code.contains("stay inside"), "contents must be blanked: {:?}", scan.code);
    assert!(scan.code.contains("live"), "code after the literal must survive");
    assert_eq!(scan.strings.len(), 1);
    assert!(scan.strings[0].content.contains("\"# stay inside"));
}

#[test]
fn escaped_quote_in_byte_char_does_not_open_a_string() {
    let src = "let c = b'\\''; let d = '\"'; let live = after();\n";
    let scan = FileScan::new("crates/core/src/fuzz.rs", src);
    assert!(
        scan.code.contains("after"),
        "a quote inside a char literal must not swallow the rest: {:?}",
        scan.code
    );
    assert!(scan.strings.is_empty(), "char literals are not string literals");
}

#[test]
fn unterminated_string_at_eof_blanks_to_the_end() {
    let src = "let s = \"runs off the end";
    let scan = FileScan::new("crates/core/src/fuzz.rs", src);
    assert_eq!(scan.code.len(), scan.raw.len());
    assert!(!scan.code.contains("runs off"));
}

#[test]
fn unterminated_raw_string_at_eof_blanks_to_the_end() {
    let src = "let s = r#\"never closed\nfn not_code() { x.unwrap() }\n";
    let scan = FileScan::new("crates/core/src/fuzz.rs", src);
    assert_eq!(scan.code.len(), scan.raw.len());
    assert!(!scan.code.contains("unwrap"), "everything after the open fence is literal");
}

#[test]
fn unterminated_block_comment_at_eof_blanks_to_the_end() {
    let src = "fn live() {}\n/* trailing comment never closes\nx.unwrap()";
    let scan = FileScan::new("crates/core/src/fuzz.rs", src);
    assert_eq!(scan.code.len(), scan.raw.len());
    assert!(scan.code.contains("live"));
    assert!(!scan.code.contains("unwrap"));
}

#[test]
fn multibyte_utf8_survives_blanking_byte_for_byte() {
    let src = "// π≠∅ comment\nlet s = \"日本語\";\nlet live = 1;\n";
    let scan = FileScan::new("crates/core/src/fuzz.rs", src);
    assert_eq!(scan.code.len(), scan.raw.len());
    assert!(scan.code.contains("live"));
    assert!(!scan.code.contains("日本語"));
    assert_eq!(scan.strings.len(), 1);
    assert_eq!(scan.strings[0].content, "日本語");
}
