// Bad snippet: inline index arithmetic in a hot path. Must fire P004
// exactly once.
pub fn cell(grid: &[f64], i: usize, j: usize, n: usize) -> f64 {
    grid[i * n + j]
}
