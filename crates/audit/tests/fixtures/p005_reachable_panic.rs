// Bad snippet: a panic site outside the hot directories, reachable from
// a hot entry point elsewhere. Must fire P005 exactly once, at the
// unwrap below. The e2e test places this file outside the hot set
// (where P001 does not apply) and pairs it with a hot entry that calls
// `head()`.
pub fn head(v: &[f32]) -> f32 {
    *v.first().unwrap()
}
