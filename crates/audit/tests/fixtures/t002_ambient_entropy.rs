// Bad snippet: ambient entropy in a non-seeded crate, reachable from a
// seeded entry point elsewhere. Must fire T002 exactly once, at the
// wall-clock read below. The e2e test places this file outside the
// seeded set (where D001 does not apply) and pairs it with a seeded
// entry that calls `wall_stamp()`.
pub fn wall_stamp() -> u64 {
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
