// Bad snippet: a codec registry whose magic byte disagrees with the
// wire-format doc. The e2e test places this file at the profile's
// `wire_code` path next to a doc that claims `0x4C` for `topk`; W001
// must fire exactly once, at the doc's codec row.

/// Codec magic bytes.
pub mod magic {
    /// Top-k sparsification.
    pub const TOPK: u8 = 0x4B;
}

/// Available codecs.
#[derive(Clone, Copy)]
pub enum Codec {
    /// Top-k sparsification.
    TopK,
}

impl Codec {
    /// Every codec, in wire order.
    pub const ALL: [Codec; 1] = [Codec::TopK];

    /// Parses a CLI key.
    pub fn from_key(key: &str) -> Option<Codec> {
        match key {
            "topk" => Some(Codec::TopK),
            _ => None,
        }
    }

    /// The codec's on-wire magic byte.
    pub fn magic(self) -> u8 {
        match self {
            Codec::TopK => magic::TOPK,
        }
    }
}

/// A decoded frame header.
pub struct WireModel;

impl WireModel {
    /// Decodes the frame's codec from its first byte.
    pub fn decode(bytes: &[u8]) -> Option<Codec> {
        match bytes.first().copied() {
            Some(magic::TOPK) => Some(Codec::TopK),
            _ => None,
        }
    }
}
