// Bad snippet: ambient entropy in a seeded crate. Must fire D003
// exactly once.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
