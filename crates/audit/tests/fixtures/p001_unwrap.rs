// Bad snippet: unwrap in a hot path. Must fire P001 exactly once.
pub fn last(v: &[f64]) -> f64 {
    *v.last().unwrap()
}
