// Bad snippet: epoch timestamp within reach of a result payload. Must
// fire D004 exactly once.
pub fn stamp() -> std::time::Duration {
    let epoch = std::time::UNIX_EPOCH;
    epoch.elapsed().unwrap_or_default()
}
