// Bad snippet: reads the wall clock in a seeded crate. Must fire D001
// exactly once when placed on a seeded path.
pub fn elapsed_marker() -> std::time::Instant {
    std::time::Instant::now()
}
