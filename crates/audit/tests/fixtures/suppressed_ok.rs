// Good snippet: a real finding carrying a well-formed justification.
// Must produce zero findings and exactly one suppression.
pub fn head(v: &[f64]) -> f64 {
    v.first().copied().unwrap() // audit:allow(P001): callers pass the non-empty roster
}
