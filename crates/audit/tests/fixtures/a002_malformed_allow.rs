// Bad snippet: a suppression without a reason. Must fire A002 exactly
// once.
pub fn truncated(v: &[u8]) -> u8 {
    v[0] // audit:allow(P001)
}
