// Bad snippet: unordered collection in a seeded crate. Must fire D002
// exactly once.
pub fn tally(keys: &[u32]) -> usize {
    let mut m = std::collections::HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0usize) += 1;
    }
    m.len()
}
