// Bad snippet: expect in a hot path. Must fire P002 exactly once.
pub fn first(v: &[f64]) -> f64 {
    *v.first().expect("non-empty")
}
