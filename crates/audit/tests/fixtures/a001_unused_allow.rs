// Bad snippet: a stale suppression with nothing to suppress. Must fire
// A001 exactly once.
// audit:allow(P001): this comment suppresses nothing and is an error
pub fn fine() -> u32 {
    7
}
