// Bad snippet: an intent-phase fn transitively reaches an RNG draw.
// Must fire T001 exactly once, anchored at the annotated declaration.
use rand::{Rng, RngExt};

// audit:phase(intent)
pub fn intents(rng: &mut rand::rngs::StdRng) -> f32 {
    nudge(rng)
}

fn nudge(rng: &mut rand::rngs::StdRng) -> f32 {
    rng.random_range(-0.5..0.5)
}
