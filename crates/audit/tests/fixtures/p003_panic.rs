// Bad snippet: explicit panic in a hot path. Must fire P003 exactly
// once.
pub fn checked(v: i64) -> i64 {
    if v < 0 {
        panic!("negative input");
    }
    v
}
