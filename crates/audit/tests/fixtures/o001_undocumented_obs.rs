// Bad snippet: emits an event kind that the observability doc does not
// list. Must fire O001 exactly once (with the fixture doc).
pub fn announce(obs: &lbchat::obs::ObsSink) {
    obs.emit("ghost_kind", &[]);
}
