// Call-graph golden fixture, file 1 (pretend path
// crates/simworld/src/world.rs). Exercises method-name
// over-approximation, Self:: qualification, free calls, module-qualified
// narrowing into another file, and an inline mod reaching a top-level fn.

pub struct World;

impl World {
    pub fn step(&mut self) {
        self.intents();
        apply(self);
        util::clamp(1.0);
    }

    fn intents(&mut self) {
        Self::helper();
    }

    fn helper() {}
}

pub fn apply(w: &mut World) {
    w.intents();
}

pub fn helper_free() {}

pub mod reference {
    pub fn golden_apply() {
        helper_free()
    }
}
