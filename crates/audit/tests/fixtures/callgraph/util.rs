// Call-graph golden fixture, file 2 (pretend path
// crates/core/src/util.rs). `ping`/`pong` form a two-cycle the graph
// build and the taint walks must terminate on.

pub fn clamp(x: f32) -> f32 {
    x.min(1.0)
}

pub fn ping(n: u32) {
    if n > 0 {
        pong(n - 1)
    }
}

pub fn pong(n: u32) {
    ping(n)
}
