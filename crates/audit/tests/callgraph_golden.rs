//! Golden test of workspace call-graph construction: the committed
//! fixture pair under `tests/fixtures/callgraph/` must resolve to
//! exactly the caller→callee edges pinned in `expected_edges.txt`.
//! Any change to extraction or resolution shows up as a diff against
//! that file — review it, then update the fixture deliberately.

use lbchat_audit::graph::CallGraph;
use lbchat_audit::lexer::FileScan;
use lbchat_audit::parser::{parse_items, ItemSet};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/callgraph")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The fixture files parsed under their pretend workspace paths.
fn parsed() -> Vec<(FileScan, ItemSet)> {
    [
        ("crates/core/src/util.rs", fixture("util.rs")),
        ("crates/simworld/src/world.rs", fixture("world.rs")),
    ]
    .into_iter()
    .map(|(rel, src)| {
        let scan = FileScan::new(rel, &src);
        let items = parse_items(&scan);
        (scan, items)
    })
    .collect()
}

#[test]
fn edges_match_the_committed_golden_file() {
    let graph = CallGraph::build(&parsed());
    let mut lines = std::collections::BTreeSet::new();
    for (i, callees) in graph.edges.iter().enumerate() {
        for &j in callees {
            lines.insert(format!("{} -> {}\n", graph.fns[i].display(), graph.fns[j].display()));
        }
    }
    let actual: String = lines.into_iter().collect();
    let expected = fixture("expected_edges.txt");
    assert_eq!(
        actual, expected,
        "call-graph edges drifted from tests/fixtures/callgraph/expected_edges.txt;\n\
         if the resolution change is intentional, update the golden file to:\n{actual}"
    );
}

#[test]
fn cyclic_edges_build_and_stay_deterministic() {
    let files = parsed();
    let graph = CallGraph::build(&files);
    let ping = graph.find("crates/core/src/util.rs", "ping").expect("ping in graph");
    let pong = graph.find("crates/core/src/util.rs", "pong").expect("pong in graph");
    assert!(graph.edges[ping].contains(&pong), "ping -> pong");
    assert!(graph.edges[pong].contains(&ping), "pong -> ping closes the cycle");
    // A second build over the same input must produce identical edges —
    // the taint BFS and the golden file both rely on this.
    let again = CallGraph::build(&files);
    assert_eq!(graph.edge_pairs(), again.edge_pairs());
}
