//! End-to-end tests of the `lbchat-audit` binary: each committed
//! bad-snippet fixture must make the binary exit nonzero with exactly
//! one finding of its lint id, the suppression fixture must come back
//! clean, the `--baseline` ratchet must pass on no-change and fail on
//! new findings, and the live tree itself must be audit-clean.

use lbchat_audit::Report;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Builds a throwaway workspace whose only source file is `content`,
/// placed at `crates/core/src/runtime.rs` — a path that is in both the
/// seeded and hot sets of the production profile the binary uses.
fn build_tree(test: &str, content: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("lbchat-audit-e2e-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("crates/core/src")).expect("mkdir");
    std::fs::create_dir_all(root.join("docs")).expect("mkdir docs");
    std::fs::write(root.join("crates/core/src/runtime.rs"), content).expect("write fixture");
    std::fs::write(root.join("docs/OBSERVABILITY.md"), "# Observability\n").expect("write doc");
    root
}

/// Builds a throwaway workspace from several `(rel_path, content)` files,
/// for the graph lints that need an entry point and a source site in
/// different profile regions.
fn build_multi_tree(test: &str, files: &[(&str, &str)]) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("lbchat-audit-e2e-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("docs")).expect("mkdir docs");
    std::fs::write(root.join("docs/OBSERVABILITY.md"), "# Observability\n").expect("write doc");
    for (rel, content) in files {
        let abs = root.join(rel);
        std::fs::create_dir_all(abs.parent().expect("parent")).expect("mkdir");
        std::fs::write(&abs, content).expect("write fixture file");
    }
    root
}

/// Runs the real binary and returns (exit code, parsed report, stdout).
fn run_audit(root: &Path, extra: &[&str]) -> (i32, Report, String) {
    let out_path = root.join("report.json");
    let output = Command::new(env!("CARGO_BIN_EXE_lbchat-audit"))
        .arg("--root")
        .arg(root)
        .arg("--out")
        .arg(&out_path)
        .args(extra)
        .output()
        .expect("spawn lbchat-audit");
    let code = output.status.code().expect("exit code");
    let text = std::fs::read_to_string(&out_path).expect("report written");
    let report = Report::from_json(&text).expect("report parses");
    (code, report, String::from_utf8_lossy(&output.stdout).into_owned())
}

fn assert_fires_once(fixture_name: &str, lint: &str) {
    let root = build_tree(lint, &fixture(fixture_name));
    let (code, report, stdout) = run_audit(&root, &[]);
    assert_eq!(code, 1, "{fixture_name}: bad snippet must exit 1\n{stdout}");
    assert_eq!(
        report.findings.len(),
        1,
        "{fixture_name}: exactly one finding expected, got {:?}",
        report.findings
    );
    assert_eq!(report.findings[0].lint, lint, "{fixture_name}");
    assert!(stdout.contains(lint), "{fixture_name}: human output names the lint\n{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn each_bad_fixture_fires_its_lint_exactly_once() {
    for (file, lint) in [
        ("d001_wall_clock.rs", "D001"),
        ("d002_hash_map.rs", "D002"),
        ("d003_entropy.rs", "D003"),
        ("d004_wall_clock_payload.rs", "D004"),
        ("p001_unwrap.rs", "P001"),
        ("p002_expect.rs", "P002"),
        ("p003_panic.rs", "P003"),
        ("p004_index_arithmetic.rs", "P004"),
        ("a001_unused_allow.rs", "A001"),
        ("a002_malformed_allow.rs", "A002"),
        ("o001_undocumented_obs.rs", "O001"),
        ("t001_phase_rng.rs", "T001"),
    ] {
        assert_fires_once(file, lint);
    }
}

/// T002: a seeded entry in `crates/core` reaches a wall-clock read that
/// lives outside the seeded set (where D001 never looks).
#[test]
fn ambient_entropy_reachable_from_seeded_entry_fires_t002() {
    let entry = "// audit:entry(seeded)\npub fn seeded_run() -> u64 {\n    wall_stamp()\n}\n";
    let root = build_multi_tree(
        "T002",
        &[
            ("crates/core/src/runtime.rs", entry),
            ("crates/bench/src/lib.rs", &fixture("t002_ambient_entropy.rs")),
        ],
    );
    let (code, report, stdout) = run_audit(&root, &[]);
    assert_eq!(code, 1, "{stdout}");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].lint, "T002");
    assert_eq!(report.findings[0].path, "crates/bench/src/lib.rs");
    assert!(report.findings[0].message.contains("seeded_run"), "{:?}", report.findings);
    let _ = std::fs::remove_dir_all(&root);
}

/// P005: a hot entry reaches an unwrap that lives outside the hot
/// directories (where P001 never looks).
#[test]
fn panic_reachable_from_hot_entry_fires_p005() {
    let entry = "// audit:entry(hot)\npub fn hot_run(v: &[f32]) -> f32 {\n    head(v)\n}\n";
    let root = build_multi_tree(
        "P005",
        &[
            ("crates/core/src/runtime.rs", entry),
            ("crates/vnn/src/lib.rs", &fixture("p005_reachable_panic.rs")),
        ],
    );
    let (code, report, stdout) = run_audit(&root, &[]);
    assert_eq!(code, 1, "{stdout}");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].lint, "P005");
    assert_eq!(report.findings[0].path, "crates/vnn/src/lib.rs");
    assert!(report.findings[0].message.contains("hot_run"), "{:?}", report.findings);
    let _ = std::fs::remove_dir_all(&root);
}

/// W001: the committed registry fixture says `TOPK = 0x4B` but the doc
/// table claims `0x4C` — one finding, anchored at the doc row.
#[test]
fn wire_contract_drift_fires_w001_at_the_doc_row() {
    let doc = "# Compression wire format\n\n| key | magic | meaning |\n| --- | --- | --- |\n| `topk` | `0x4C` | top-k sparsification |\n";
    let root = build_multi_tree(
        "W001",
        &[("crates/core/src/compress.rs", &fixture("w001_wire_drift.rs"))],
    );
    std::fs::write(root.join("docs/COMPRESSION.md"), doc).expect("write wire doc");
    let (code, report, stdout) = run_audit(&root, &[]);
    assert_eq!(code, 1, "{stdout}");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].lint, "W001");
    assert_eq!(report.findings[0].path, "docs/COMPRESSION.md");
    let _ = std::fs::remove_dir_all(&root);
}

/// The ISSUE's acceptance scenario: inject an RNG draw into a
/// `audit:phase(intent)` fn shaped like `World::intent_for` and the
/// audit catches it statically — no simulation run needed.
#[test]
fn injected_rng_draw_in_intent_for_is_caught_statically() {
    let world = "use rand::{Rng, RngExt};\n\npub struct World;\n\nimpl World {\n    // audit:phase(intent)\n    fn intent_for(&self, rng: &mut rand::rngs::StdRng) -> f32 {\n        rng.random_range(0.0..1.0)\n    }\n}\n";
    let root = build_multi_tree("intent-inject", &[("crates/simworld/src/world.rs", world)]);
    let (code, report, stdout) = run_audit(&root, &[]);
    assert_eq!(code, 1, "{stdout}");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].lint, "T001");
    assert_eq!(report.findings[0].path, "crates/simworld/src/world.rs");
    assert!(report.findings[0].message.contains("intent_for"), "{:?}", report.findings);
    let _ = std::fs::remove_dir_all(&root);
}

/// R001: a pinned reference file with no committed manifest fails; the
/// `--write-reference-manifest` flow pins it and the tree comes back
/// clean.
#[test]
fn reference_manifest_missing_then_pinned() {
    let root = build_multi_tree(
        "R001",
        &[("crates/vnn/src/reference.rs", "//! Golden oracle.\n\n/// Reference path.\npub fn golden() {}\n")],
    );
    let (code, report, stdout) = run_audit(&root, &[]);
    assert_eq!(code, 1, "{stdout}");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].lint, "R001");

    let output = Command::new(env!("CARGO_BIN_EXE_lbchat-audit"))
        .arg("--root")
        .arg(&root)
        .arg("--write-reference-manifest")
        .output()
        .expect("spawn lbchat-audit");
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stdout));
    let manifest = std::fs::read_to_string(root.join("crates/audit/reference_manifest.txt"))
        .expect("manifest written");
    assert!(manifest.contains("vnn::reference crates/vnn/src/reference.rs"), "{manifest}");

    let (code, report, stdout) = run_audit(&root, &[]);
    assert_eq!(code, 0, "{stdout}");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn orphaned_doc_entry_fires_o002() {
    let root = build_tree("O002", "pub fn quiet() {}\n");
    std::fs::write(
        root.join("docs/OBSERVABILITY.md"),
        "# Observability\n\n### `phantom` — documented but never emitted\n",
    )
    .expect("write doc");
    let (code, report, _) = run_audit(&root, &[]);
    assert_eq!(code, 1);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].lint, "O002");
    assert_eq!(report.findings[0].path, "docs/OBSERVABILITY.md");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn well_formed_suppression_is_clean_and_counted() {
    let root = build_tree("suppressed", &fixture("suppressed_ok.rs"));
    let (code, report, stdout) = run_audit(&root, &[]);
    assert_eq!(code, 0, "{stdout}");
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "P001");
    assert!(report.suppressed[0].reason.contains("non-empty roster"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn baseline_ratchet_passes_unchanged_and_fails_on_new() {
    let root = build_tree("baseline", &fixture("p001_unwrap.rs"));
    let (code, baseline_report, _) = run_audit(&root, &[]);
    assert_eq!(code, 1);
    assert_eq!(baseline_report.findings.len(), 1);
    let baseline = root.join("baseline.json");
    std::fs::rename(root.join("report.json"), &baseline).expect("keep baseline");
    let baseline_arg = baseline.to_str().expect("utf-8 path");

    // Unchanged tree: the known finding is ratcheted, exit 0.
    let (code, _, stdout) = run_audit(&root, &["--baseline", baseline_arg]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("no new findings"), "{stdout}");

    // A second panic site appears: the ratchet must catch it.
    let grown = format!("{}{}", fixture("p001_unwrap.rs"), fixture("p002_expect.rs"));
    std::fs::write(root.join("crates/core/src/runtime.rs"), grown).expect("grow fixture");
    let (code, _, stdout) = run_audit(&root, &["--baseline", baseline_arg]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("NEW finding"), "{stdout}");
    assert!(stdout.contains("P002"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn live_tree_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let output = Command::new(env!("CARGO_BIN_EXE_lbchat-audit"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn lbchat-audit");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "live tree must be audit-clean:\n{stdout}"
    );
    assert!(stdout.contains("audit clean"), "{stdout}");
}

#[test]
fn list_lints_prints_the_catalogue() {
    let output = Command::new(env!("CARGO_BIN_EXE_lbchat-audit"))
        .arg("--list-lints")
        .output()
        .expect("spawn lbchat-audit");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for l in lbchat_audit::LINTS {
        assert!(stdout.contains(l.id), "--list-lints must mention {}", l.id);
    }
}

#[test]
fn explain_prints_the_full_catalogue_entry() {
    for l in lbchat_audit::LINTS {
        let output = Command::new(env!("CARGO_BIN_EXE_lbchat-audit"))
            .args(["--explain", l.id])
            .output()
            .expect("spawn lbchat-audit");
        assert!(output.status.success(), "--explain {} must exit 0", l.id);
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains(l.id), "--explain {}:\n{stdout}", l.id);
        assert!(stdout.contains(l.name), "--explain {}:\n{stdout}", l.id);
        assert!(stdout.contains(l.summary), "--explain {}:\n{stdout}", l.id);
    }
}

#[test]
fn explain_unknown_lint_exits_2_and_lists_ids() {
    let output = Command::new(env!("CARGO_BIN_EXE_lbchat-audit"))
        .args(["--explain", "Z999"])
        .output()
        .expect("spawn lbchat-audit");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("T001"), "error names the known ids:\n{stderr}");
}

#[test]
fn github_mode_emits_workflow_annotations() {
    let root = build_tree("github", &fixture("p001_unwrap.rs"));
    let (code, _, stdout) = run_audit(&root, &["--github"]);
    assert_eq!(code, 1, "{stdout}");
    assert!(
        stdout.contains("::error file=crates/core/src/runtime.rs,"),
        "annotation names the file:\n{stdout}"
    );
    assert!(stdout.contains("title=P001"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unknown_flag_exits_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_lbchat-audit"))
        .arg("--bogus")
        .output()
        .expect("spawn lbchat-audit");
    assert_eq!(output.status.code(), Some(2));
}
