//! W001: the wire-format contract check.
//!
//! `docs/COMPRESSION.md` is the normative spec for the codec registry —
//! the `--codec` keys, the magic byte each codec tags its `WireModel`
//! buffers with, and the layout constants. This check parses *both*
//! sides — the doc's codec table and the `lbchat::compress` source — and
//! cross-references them in both directions, the way O001/O002 keep the
//! observability schema honest:
//!
//! * every doc table key must have a `Codec::from_key` arm and vice
//!   versa;
//! * the doc's magic byte per key must equal the value the code's
//!   `magic()` arm resolves to through `mod magic`;
//! * every enum variant must appear in `Codec::ALL`, have a `magic()`
//!   arm, a `from_key` arm, and a decode arm in `WireModel::decode`;
//! * every backticked `` `NAME = VALUE` `` layout constant in the doc
//!   must match the `const NAME` initializer in the source.
//!
//! The whole check is skipped when the profile's wire source file is not
//! part of the scanned tree (the e2e fixture trees), so it never fires
//! spuriously on partial checkouts.

use std::collections::BTreeMap;

use crate::lexer::FileScan;
use crate::lints::{Finding, Profile};
use crate::parser::{enum_variants, ItemSet};

/// Runs the W001 cross-reference. `doc` is the wire doc's text when it
/// was readable.
pub fn check_wire(
    files: &[(FileScan, ItemSet)],
    profile: &Profile,
    doc: Option<&str>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some((scan, items)) = files
        .iter()
        .find(|(s, _)| s.rel == profile.wire_code)
        .map(|(s, i)| (s, i))
    else {
        return out; // partial tree: nothing to check against
    };
    let mut push = |path: &str, line: usize, message: String, snippet: String| {
        out.push(Finding {
            path: path.to_string(),
            line,
            lint: "W001".to_string(),
            message,
            snippet,
        });
    };
    let Some(doc) = doc else {
        push(
            &profile.wire_doc,
            1,
            format!(
                "wire doc {} is missing but {} defines the codec registry",
                profile.wire_doc, profile.wire_code
            ),
            String::new(),
        );
        return out;
    };

    let consts = magic_consts(scan, items);
    let variants = codec_variants(scan, items);
    let from_key = match_arms(scan, items, "from_key", "Codec");
    let magic_arms = magic_fn_arms(scan, items);
    let decode_vars = decode_variants(scan, items);
    let all_vars = all_const_variants(scan);
    let doc_rows = doc_codec_rows(doc);
    let doc_consts = doc_layout_consts(doc);

    // Doc keys ↔ from_key keys, both directions; magic values per key.
    for row in &doc_rows {
        match from_key.iter().find(|(_, k, _)| k == &row.key) {
            None => push(
                &profile.wire_doc,
                row.line,
                format!("codec key `{}` is documented but has no Codec::from_key arm", row.key),
                String::new(),
            ),
            Some((_, _, variant)) => {
                let code_magic = magic_arms
                    .get(variant.as_str())
                    .and_then(|name| consts.get(name.as_str()))
                    .copied();
                if code_magic != Some(row.magic) {
                    push(
                        &profile.wire_doc,
                        row.line,
                        format!(
                            "codec `{}` documents magic 0x{:02X} but the code resolves {}",
                            row.key,
                            row.magic,
                            match code_magic {
                                Some(m) => format!("0x{m:02X}"),
                                None => "no magic at all".to_string(),
                            }
                        ),
                        String::new(),
                    );
                }
            }
        }
    }
    for (line, key, _) in &from_key {
        if !doc_rows.iter().any(|r| &r.key == key) {
            push(
                &profile.wire_code,
                *line,
                format!("codec key `{key}` parses via Codec::from_key but is not in the {} table", profile.wire_doc),
                scan.raw_line(*line).trim().to_string(),
            );
        }
    }

    // Every variant is registered everywhere it must be.
    for (variant, line) in &variants {
        let snippet = scan.raw_line(*line).trim().to_string();
        if !all_vars.contains(variant) {
            push(
                &profile.wire_code,
                *line,
                format!("Codec::{variant} is missing from Codec::ALL"),
                snippet.clone(),
            );
        }
        if !magic_arms.contains_key(variant.as_str()) {
            push(
                &profile.wire_code,
                *line,
                format!("Codec::{variant} has no magic() arm"),
                snippet.clone(),
            );
        }
        if !from_key.iter().any(|(_, _, v)| v == variant) {
            push(
                &profile.wire_code,
                *line,
                format!("Codec::{variant} has no Codec::from_key arm"),
                snippet.clone(),
            );
        }
        if !decode_vars.contains(variant) {
            push(
                &profile.wire_code,
                *line,
                format!("Codec::{variant} has no decode arm in WireModel::decode"),
                snippet,
            );
        }
    }

    // Layout constants quoted by the doc must match the source.
    for (line, name, value) in &doc_consts {
        match const_initializer(scan, name) {
            None => push(
                &profile.wire_doc,
                *line,
                format!("`{name} = {value}` is documented but `const {name}` is not in {}", profile.wire_code),
                String::new(),
            ),
            Some(code_value) if &code_value != value => push(
                &profile.wire_doc,
                *line,
                format!("`{name}` is documented as {value} but defined as {code_value}"),
                String::new(),
            ),
            Some(_) => {}
        }
    }
    out
}

/// `mod magic`'s `const NAME: u8 = 0xHH;` table.
fn magic_consts(scan: &FileScan, items: &ItemSet) -> BTreeMap<String, u8> {
    let mut out = BTreeMap::new();
    let Some(m) = items.mods.iter().find(|m| m.name == "magic") else {
        return out;
    };
    for line in scan.line_of(m.span.0)..=scan.line_of(m.span.1) {
        let code = scan.code_line(line);
        let Some(rest) = code.trim_start().strip_prefix("pub const ").or_else(|| code.trim_start().strip_prefix("const ")) else {
            continue;
        };
        let name: String = rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        let Some(init) = code.split('=').nth(1) else { continue };
        if let Some(v) = parse_u8(init.split(';').next().unwrap_or("").trim()) {
            out.insert(name, v);
        }
    }
    out
}

fn parse_u8(text: &str) -> Option<u8> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// The `Codec` enum's variant names and declaration lines.
fn codec_variants(scan: &FileScan, items: &ItemSet) -> Vec<(String, usize)> {
    items
        .enums
        .iter()
        .find(|e| e.name == "Codec")
        .map(|e| enum_variants(scan, e))
        .unwrap_or_default()
}

/// Match arms of the shape `"key" => Some(Codec::Variant)` inside the fn
/// `name` of `impl impl_type`: `(line, key, variant)` triples.
fn match_arms(
    scan: &FileScan,
    items: &ItemSet,
    name: &str,
    impl_type: &str,
) -> Vec<(usize, String, String)> {
    let mut out = Vec::new();
    for (lo, hi) in fn_body_lines(scan, items, name, impl_type) {
        for line in lo..=hi {
            let code = scan.code_line(line);
            let Some(variant) = word_after(code, "Codec::") else { continue };
            if !code.contains("=>") {
                continue;
            }
            let Some(lit) = scan.strings.iter().find(|s| s.line == line) else {
                continue;
            };
            out.push((line, lit.content.clone(), variant));
        }
    }
    out
}

/// `magic()` arms: variant → magic const name (`Codec::X => magic::NAME`).
fn magic_fn_arms(scan: &FileScan, items: &ItemSet) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for (lo, hi) in fn_body_lines(scan, items, "magic", "Codec") {
        for line in lo..=hi {
            let code = scan.code_line(line);
            if let (Some(variant), Some(const_name)) =
                (word_after(code, "Codec::"), word_after(code, "magic::"))
            {
                out.insert(variant, const_name);
            }
        }
    }
    out
}

/// Variants mentioned anywhere in `WireModel::decode`'s body.
fn decode_variants(scan: &FileScan, items: &ItemSet) -> Vec<String> {
    let mut out = Vec::new();
    for (lo, hi) in fn_body_lines(scan, items, "decode", "WireModel") {
        for line in lo..=hi {
            let mut code = scan.code_line(line);
            while let Some(v) = word_after(code, "Codec::") {
                let at = code.find("Codec::").unwrap_or(0);
                if !out.contains(&v) {
                    out.push(v);
                }
                code = &code[at + "Codec::".len()..];
            }
        }
    }
    out
}

/// Variants listed in the `const ALL` initializer.
fn all_const_variants(scan: &FileScan) -> Vec<String> {
    let Some(at) = scan.code.find("const ALL") else {
        return Vec::new();
    };
    // Skip the `[Codec; N]` type annotation: the list starts after `=`.
    let at = scan.code[at..].find('=').map_or(at, |e| at + e);
    let end = scan.code[at..].find(']').map_or(scan.code.len(), |e| at + e);
    let mut out = Vec::new();
    let mut slice = &scan.code[at..end];
    while let Some(p) = slice.find("Codec::") {
        slice = &slice[p + "Codec::".len()..];
        let v: String = slice
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !v.is_empty() && !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Body line range(s) of the named fn under the named impl type.
fn fn_body_lines(
    scan: &FileScan,
    items: &ItemSet,
    name: &str,
    impl_type: &str,
) -> Vec<(usize, usize)> {
    items
        .fns
        .iter()
        .filter(|f| f.name == name && f.impl_type.as_deref() == Some(impl_type))
        .filter_map(|f| f.body)
        .map(|(lo, hi)| (scan.line_of(lo), scan.line_of(hi)))
        .collect()
}

/// The identifier-shaped word right after `prefix` in `code`.
fn word_after(code: &str, prefix: &str) -> Option<String> {
    let at = code.find(prefix)? + prefix.len();
    let w: String = code[at..]
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!w.is_empty()).then_some(w)
}

/// One codec row of the doc's registry table.
struct DocRow {
    line: usize,
    key: String,
    magic: u8,
}

/// Rows of the doc's codec table: `| `key` | `0xHH` … |`. The hex magic
/// in the second cell is what distinguishes the registry table from the
/// byte-accounting tables that also lead with codec keys.
fn doc_codec_rows(doc: &str) -> Vec<DocRow> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        let t = line.trim();
        let cells: Vec<&str> = t.split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        let (Some(key), Some(second)) = (backticked(cells[1]), backticked(cells[2])) else {
            continue;
        };
        let Some(magic) = second.strip_prefix("0x").and_then(|h| u8::from_str_radix(h, 16).ok())
        else {
            continue;
        };
        out.push(DocRow { line: idx + 1, key, magic });
    }
    out
}

/// Backticked `` `NAME = VALUE` `` spans where NAME is an ALL_CAPS
/// identifier: `(line, name, value)`.
fn doc_layout_consts(doc: &str) -> Vec<(usize, String, String)> {
    let mut out = Vec::new();
    let mut fenced = false;
    for (idx, line) in doc.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if fenced {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let Some(close) = rest[open + 1..].find('`') else { break };
            let span = &rest[open + 1..open + 1 + close];
            if let Some((name, value)) = span.split_once(" = ") {
                let caps = !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
                if caps {
                    out.push((idx + 1, name.to_string(), value.trim().to_string()));
                }
            }
            rest = &rest[open + 2 + close..];
        }
    }
    out
}

/// The leading backticked span of a table cell.
fn backticked(cell: &str) -> Option<String> {
    let rest = cell.strip_prefix('`')?;
    let end = rest.find('`')?;
    Some(rest[..end].to_string())
}

/// The initializer text of a file-level `const NAME`.
fn const_initializer(scan: &FileScan, name: &str) -> Option<String> {
    for line in 1..=scan.line_starts.len() {
        let code = scan.code_line(line);
        let t = code.trim_start();
        let Some(rest) = t.strip_prefix("pub const ").or_else(|| t.strip_prefix("const "))
        else {
            continue;
        };
        if !rest.starts_with(name)
            || rest[name.len()..].starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_')
        {
            continue;
        }
        let init = code.split('=').nth(1)?;
        return Some(init.split(';').next()?.trim().to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_items;

    const GOOD_CODE: &str = r#"
mod magic {
    pub const TOPK: u8 = 0x4B;
    pub const INT8: u8 = 0x38;
}
pub const CHUNK: usize = 64;
pub enum Codec {
    TopK,
    Int8,
}
impl Codec {
    pub const ALL: [Codec; 2] = [Codec::TopK, Codec::Int8];
    pub fn from_key(key: &str) -> Option<Codec> {
        match key {
            "topk" => Some(Codec::TopK),
            "int8" => Some(Codec::Int8),
            _ => None,
        }
    }
    pub fn magic(self) -> u8 {
        match self {
            Codec::TopK => magic::TOPK,
            Codec::Int8 => magic::INT8,
        }
    }
}
pub struct WireModel;
impl WireModel {
    pub fn decode(&self) {
        match self.codec() {
            Codec::TopK => {}
            Codec::Int8 => {}
        }
    }
}
"#;

    const GOOD_DOC: &str = "# Codecs\n\n| Key | Magic | What |\n| --- | --- | --- |\n| `topk` | `0x4B` (`'K'`) | top-k |\n| `int8` | `0x38` (`'8'`) | int8 |\n\nChunks of `CHUNK = 64` components.\n";

    fn run(code: &str, doc: Option<&str>) -> Vec<Finding> {
        let scan = FileScan::new("crates/core/src/compress.rs", code);
        let items = parse_items(&scan);
        check_wire(&[(scan, items)], &Profile::lbchat(), doc)
    }

    #[test]
    fn consistent_registry_is_clean() {
        assert!(run(GOOD_CODE, Some(GOOD_DOC)).is_empty());
    }

    #[test]
    fn magic_mismatch_fires_once_at_the_doc_row() {
        let doc = GOOD_DOC.replace("`0x38`", "`0x39`");
        let f = run(GOOD_CODE, Some(&doc));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "W001");
        assert!(f[0].message.contains("0x39"));
        assert!(f[0].message.contains("0x38"));
    }

    #[test]
    fn undocumented_key_and_orphan_row_both_fire() {
        let doc = GOOD_DOC.replace("| `int8` | `0x38` (`'8'`) | int8 |\n", "");
        let f = run(GOOD_CODE, Some(&doc));
        assert!(f.iter().any(|x| x.message.contains("`int8`") && x.path.ends_with("compress.rs")), "{f:?}");
        let doc2 = format!("{GOOD_DOC}| `zstd` | `0x7A` | nope |\n");
        let f = run(GOOD_CODE, Some(&doc2));
        assert!(f.iter().any(|x| x.message.contains("`zstd`") && x.path.ends_with("COMPRESSION.md")), "{f:?}");
    }

    #[test]
    fn missing_decode_arm_and_missing_all_entry_fire() {
        let code = GOOD_CODE
            .replace("Codec::Int8 => {}\n", "")
            .replace("[Codec::TopK, Codec::Int8]", "[Codec::TopK]")
            .replace("[Codec; 2]", "[Codec; 1]");
        let f = run(&code, Some(GOOD_DOC));
        assert!(f.iter().any(|x| x.message.contains("no decode arm")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("missing from Codec::ALL")), "{f:?}");
    }

    #[test]
    fn layout_constant_drift_fires() {
        let doc = GOOD_DOC.replace("`CHUNK = 64`", "`CHUNK = 32`");
        let f = run(GOOD_CODE, Some(&doc));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("documented as 32"));
    }

    #[test]
    fn partial_tree_skips_silently() {
        let scan = FileScan::new("crates/core/src/runtime.rs", "fn f() {}\n");
        let items = parse_items(&scan);
        assert!(check_wire(&[(scan, items)], &Profile::lbchat(), None).is_empty());
    }
}
