//! The lint catalogue, the per-file and cross-file checks, and the
//! `audit:allow` suppression machinery.
//!
//! Lints are grouped in families (see `docs/AUDIT.md` for the full
//! catalogue):
//!
//! | Family | Concern | Scope |
//! |---|---|---|
//! | `D` | determinism | seeded crates ([`Profile::seeded`]) |
//! | `P` | panic-safety | hot paths ([`Profile::hot`]) |
//! | `O` | observability schema | all scanned files + the obs doc |
//! | `A` | suppression hygiene | everywhere allows appear |
//!
//! Test code never fires D/P lints and never contributes O-lint names:
//! files under `tests/`, `examples/`, or `benches/`, and `#[cfg(test)]` /
//! `mod tests` regions, are exempt by construction (the lexer tracks the
//! regions). `assert!`-family macros are deliberately out of scope for
//! P-lints — they state contracts; the lint families target *accidental*
//! panic and nondeterminism paths.

use crate::lexer::{FileScan, ObsName};

/// One entry of the lint catalogue.
#[derive(Debug, Clone, Copy)]
pub struct LintSpec {
    /// Stable id, e.g. `"D001"`.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description (shown by `--list-lints` and in docs).
    pub summary: &'static str,
    /// Why the lint exists — what breaks when it is violated
    /// (shown by `--explain`).
    pub rationale: &'static str,
    /// A minimal offending snippet (shown by `--explain`).
    pub example: &'static str,
    /// The suppression policy: how (or whether) `audit:allow` applies.
    pub suppression: &'static str,
}

/// Every lint the scanner knows, in id order.
pub const LINTS: &[LintSpec] = &[
    LintSpec {
        id: "D001",
        name: "wall-clock-read",
        summary: "Instant::now / SystemTime::now in a seeded crate outside the obs/bench/criterion timing layers",
        rationale: "Seeded crates promise output that is a pure function of the seed; a wall-clock read is ambient state that can leak into results and break the jobs=1 == jobs=N bit-identity guarantee.",
        example: "let t = std::time::Instant::now(); // in crates/core/src/",
        suppression: "audit:allow(D001): <reason> on the offending line; legitimate only in timing layers that never feed results (the obs/ subtree is already exempt).",
    },
    LintSpec {
        id: "D002",
        name: "unordered-collection",
        summary: "HashMap/HashSet in a seeded crate: iteration order can leak into results; use BTreeMap/BTreeSet or sort at iteration",
        rationale: "HashMap iteration order depends on RandomState and can differ between runs and builds; any fold over it becomes nondeterministic.",
        example: "let peers: HashMap<NodeId, Score> = HashMap::new();",
        suppression: "audit:allow(D002): <reason> — acceptable only when the map is never iterated or the iteration is explicitly sorted.",
    },
    LintSpec {
        id: "D003",
        name: "ambient-entropy",
        summary: "thread_rng / OsRng / from_entropy / getrandom in a seeded crate: all randomness must flow from derive_seed",
        rationale: "Every stochastic choice must be reproducible from the experiment seed; OS entropy makes a run unrepeatable.",
        example: "let mut rng = rand::thread_rng();",
        suppression: "audit:allow(D003): <reason> — there is no known legitimate use inside the seeded set; prefer plumbing a seeded StdRng.",
    },
    LintSpec {
        id: "D004",
        name: "wall-clock-payload",
        summary: "epoch/date timestamps (UNIX_EPOCH, Utc::now, ...) in a seeded crate: wall-clock values must not enter result payloads",
        rationale: "A timestamp embedded in a result payload diffs on every run, defeating golden fixtures and the run differ.",
        example: "manifest.started = SystemTime::now().duration_since(UNIX_EPOCH);",
        suppression: "audit:allow(D004): <reason> — acceptable for fields explicitly excluded from fixtures and diffs.",
    },
    LintSpec {
        id: "P001",
        name: "hot-path-unwrap",
        summary: ".unwrap() in a runtime/exec/node/simnet hot path: convert to Result or justify with an allow",
        rationale: "A panic in the session runtime or worker pool aborts the whole experiment mid-run; hot paths must degrade through Result instead.",
        example: "let next = queue.pop().unwrap();",
        suppression: "audit:allow(P001): <reason> stating the invariant that makes the unwrap infallible.",
    },
    LintSpec {
        id: "P002",
        name: "hot-path-expect",
        summary: ".expect(...) in a runtime/exec/node/simnet hot path: convert to Result or justify with an allow",
        rationale: "Same failure mode as P001; the message string does not make the abort less fatal.",
        example: "let cfg = table.get(&id).expect(\"id registered\");",
        suppression: "audit:allow(P002): <reason> stating the invariant that makes the expect infallible.",
    },
    LintSpec {
        id: "P003",
        name: "hot-path-panic",
        summary: "panic!/unreachable!/todo!/unimplemented! in a hot path",
        rationale: "Explicit panic macros in the hot path turn recoverable protocol states into aborts.",
        example: "_ => unreachable!(\"unknown packet\"),",
        suppression: "audit:allow(P003): <reason> — acceptable only for states the type system cannot rule out and tests pin as impossible.",
    },
    LintSpec {
        id: "P004",
        name: "inline-index-arithmetic",
        summary: "slice/array index computed inline (x[i * n + j]) in a hot path: hoist with a bounds argument or justify with an allow",
        rationale: "Inline index arithmetic hides bounds reasoning and is where off-by-one panics breed; hoisting the index next to its bounds makes the proof local.",
        example: "let v = grid[y * width + x];",
        suppression: "audit:allow(P004): <reason> pointing at the bounds argument.",
    },
    LintSpec {
        id: "P005",
        name: "panic-reachability",
        summary: "panic-family token outside the hot set transitively reachable from an audit:entry(hot) function",
        rationale: "P001-P004 only see text inside the hot directories; a hot entry point calling into a helper crate still aborts the run if that helper unwraps. The call-graph walk closes the gap.",
        example: "// audit:entry(hot)\npub fn step(&mut self) { encode_all(); } // encode_all() -> .expect(...) elsewhere",
        suppression: "audit:allow(P005): <reason> on the panic site's line, stating why the path cannot be taken or cannot fail.",
    },
    LintSpec {
        id: "O001",
        name: "undocumented-obs-name",
        summary: "event kind / counter / gauge emitted via lbchat::obs but missing from docs/OBSERVABILITY.md",
        rationale: "The observability doc is the schema consumers parse; an undocumented name is an API change nobody reviewed.",
        example: "obs::counter(\"mystery.total\").inc();",
        suppression: "not suppressable — document the name or stop emitting it.",
    },
    LintSpec {
        id: "O002",
        name: "orphaned-obs-doc",
        summary: "event kind / counter / gauge documented in docs/OBSERVABILITY.md but never emitted",
        rationale: "Dead schema entries mislead consumers into waiting for data that never comes.",
        example: "| `ghost.counter` | documented, emitted nowhere |",
        suppression: "not suppressable — delete the row or emit the name.",
    },
    LintSpec {
        id: "T001",
        name: "phase-purity",
        summary: "audit:phase(intent) function can reach an RNG draw through the call graph",
        rationale: "The two-phase tick is bit-identical across --jobs only because the parallel intent phase draws no randomness; one draw behind a helper call reintroduces schedule-dependent streams. T001 proves RNG-freedom statically instead of relying on proptests to notice.",
        example: "// audit:phase(intent)\nfn intent_for(..) { self.ped_hazard(..) } // ped_hazard() -> rng.random_range(..)",
        suppression: "audit:allow(T001): <reason> on the annotated fn's declaration line; prefer moving the draw to the apply phase.",
    },
    LintSpec {
        id: "T002",
        name: "seeded-entropy-taint",
        summary: "ambient entropy outside the seeded set transitively reachable from an audit:entry(seeded) function",
        rationale: "D001-D004 only see text inside the seeded directories; a seeded entry point calling a helper crate that reads the clock or spins up thread_rng is just as nondeterministic. The call-graph walk extends the guarantee across crate boundaries.",
        example: "// audit:entry(seeded)\nfn run_cell(..) { helper() } // helper() -> SystemTime::now() in a non-seeded crate",
        suppression: "audit:allow(T002): <reason> on the entropy site's line, stating why the value cannot reach results.",
    },
    LintSpec {
        id: "W001",
        name: "wire-contract",
        summary: "codec registry out of sync with docs/COMPRESSION.md: keys, magic bytes, ALL/decode arms, or layout constants disagree",
        rationale: "docs/COMPRESSION.md is the normative wire contract; a codec whose magic byte, key, or decode arm drifts from it ships buffers peers cannot (or wrongly do) decode.",
        example: "| `int8` | `0x39` | ... |  // code says magic::INT8 = 0x38",
        suppression: "not suppressable — fix the code or the doc; the contract must hold in both directions.",
    },
    LintSpec {
        id: "R001",
        name: "reference-drift",
        summary: "a retained-verbatim reference oracle's content hash no longer matches the committed manifest",
        rationale: "Optimized paths are proptested bit-identical to retained reference modules; if an oracle is edited, every equivalence proof against it silently weakens. The manifest pin makes oracle edits a reviewed, explicit act.",
        example: "edit crates/vnn/src/reference.rs without re-running --write-reference-manifest",
        suppression: "not suppressable — re-pin deliberately with `lbchat-audit --write-reference-manifest`.",
    },
    LintSpec {
        id: "A001",
        name: "unused-allow",
        summary: "audit:allow comment that suppresses nothing (stale after the code was fixed)",
        rationale: "Stale allows are camouflage: the next real finding on that line would be silently swallowed.",
        example: "// audit:allow(P001): was needed before the refactor\nfn now_clean() {}",
        suppression: "not suppressable — delete the stale comment.",
    },
    LintSpec {
        id: "A002",
        name: "malformed-allow",
        summary: "audit:allow / audit:phase / audit:entry comment with an unknown id or value, or a missing `: reason`",
        rationale: "A suppression or annotation that does not parse does nothing; failing loudly beats a typo silently disabling the check it names.",
        example: "// audit:allow(P001)  <- missing \": reason\"",
        suppression: "not suppressable — fix the comment.",
    },
];

/// Looks up a lint id in the catalogue.
pub fn lint_spec(id: &str) -> Option<&'static LintSpec> {
    LINTS.iter().find(|l| l.id == id)
}

/// What the scanner checks where. Paths are workspace-relative prefixes
/// with forward slashes; a file matches a set if any prefix matches.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Crate directory names under `crates/` excluded from the walk
    /// entirely (the vendored stand-ins: they *implement* the clock and
    /// entropy APIs the lints police).
    pub exclude_crates: Vec<String>,
    /// Additional path prefixes to skip (committed bad-snippet fixtures).
    pub skip_paths: Vec<String>,
    /// D-lint scope: crates whose output must be a pure function of the
    /// seed.
    pub seeded: Vec<String>,
    /// D001 exemption inside the seeded set: the timing layer itself.
    pub d001_exempt: Vec<String>,
    /// P-lint scope: the simulation hot paths.
    pub hot: Vec<String>,
    /// The observability schema document, workspace-relative.
    pub obs_doc: String,
    /// The wire-format source file W001 parses (codec registry).
    pub wire_code: String,
    /// The normative wire-format document W001 cross-references.
    pub wire_doc: String,
    /// The committed reference-oracle hash manifest (R001).
    pub reference_manifest: String,
    /// The retained-verbatim oracles R001 pins.
    pub reference_modules: Vec<crate::refs::RefModule>,
}

impl Profile {
    /// The repository's production profile.
    pub fn lbchat() -> Self {
        let s = |v: &[&str]| v.iter().map(|p| (*p).to_string()).collect();
        Profile {
            exclude_crates: s(&["rand", "proptest", "criterion"]),
            skip_paths: s(&["crates/audit/tests/fixtures/"]),
            seeded: s(&[
                "crates/core/src/",
                "crates/simnet/src/",
                "crates/simworld/src/",
                "crates/vnn/src/",
                "crates/driving/src/",
                "crates/baselines/src/",
                "crates/experiments/src/",
            ]),
            d001_exempt: s(&["crates/core/src/obs/"]),
            hot: s(&[
                "crates/core/src/runtime",
                "crates/core/src/exec.rs",
                "crates/core/src/node.rs",
                "crates/simnet/src/",
                "crates/simworld/src/",
            ]),
            obs_doc: "docs/OBSERVABILITY.md".to_string(),
            wire_code: "crates/core/src/compress.rs".to_string(),
            wire_doc: "docs/COMPRESSION.md".to_string(),
            reference_manifest: "crates/audit/reference_manifest.txt".to_string(),
            reference_modules: vec![
                crate::refs::RefModule {
                    name: "coreset::reference".to_string(),
                    file: "crates/core/src/coreset.rs".to_string(),
                    inline_mod: Some("reference".to_string()),
                },
                crate::refs::RefModule {
                    name: "bev::reference".to_string(),
                    file: "crates/simworld/src/bev.rs".to_string(),
                    inline_mod: Some("reference".to_string()),
                },
                crate::refs::RefModule {
                    name: "runtime::reference".to_string(),
                    file: "crates/core/src/runtime/reference.rs".to_string(),
                    inline_mod: None,
                },
                crate::refs::RefModule {
                    name: "simworld::reference".to_string(),
                    file: "crates/simworld/src/reference.rs".to_string(),
                    inline_mod: None,
                },
                crate::refs::RefModule {
                    name: "vnn::reference".to_string(),
                    file: "crates/vnn/src/reference.rs".to_string(),
                    inline_mod: None,
                },
            ],
        }
    }

    /// A fixture profile: every scanned file is both seeded and hot.
    /// Used by the scanner's own tests.
    pub fn everything() -> Self {
        Profile {
            exclude_crates: Vec::new(),
            skip_paths: Vec::new(),
            seeded: vec![String::new()],
            d001_exempt: Vec::new(),
            hot: vec![String::new()],
            obs_doc: "docs/OBSERVABILITY.md".to_string(),
            wire_code: "crates/core/src/compress.rs".to_string(),
            wire_doc: "docs/COMPRESSION.md".to_string(),
            reference_manifest: "crates/audit/reference_manifest.txt".to_string(),
            reference_modules: Vec::new(),
        }
    }

    fn in_seeded(&self, rel: &str) -> bool {
        matches_prefix(&self.seeded, rel)
    }

    fn d001_exempt(&self, rel: &str) -> bool {
        matches_prefix(&self.d001_exempt, rel)
    }

    fn in_hot(&self, rel: &str) -> bool {
        matches_prefix(&self.hot, rel)
    }
}

fn matches_prefix(prefixes: &[String], rel: &str) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p.as_str()))
}

/// One lint hit, before or after suppression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Lint id (`"D001"`, …).
    pub lint: String,
    /// Human message.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// A finding that an `audit:allow` comment suppressed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppressed {
    /// Workspace-relative file of the suppressed finding.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// Lint id.
    pub lint: String,
    /// The justification given in the allow comment.
    pub reason: String,
}

/// A parsed `audit:allow` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// File the comment lives in.
    pub path: String,
    /// Line the comment starts on.
    pub decl_line: usize,
    /// Line the allow applies to (its own line for trailing comments,
    /// the next code line for comment-only lines).
    pub target_line: usize,
    /// Lint id it suppresses.
    pub id: String,
    /// The stated reason.
    pub reason: String,
    /// Set when the comment does not parse (unknown id, missing reason).
    pub malformed: Option<String>,
}

const D001_TOKENS: &[&str] = &["Instant::now", "SystemTime::now"];
const D002_TOKENS: &[&str] = &["HashMap", "HashSet"];
const D003_TOKENS: &[&str] =
    &["thread_rng", "from_entropy", "OsRng", "from_os_rng", "getrandom"];
const D004_TOKENS: &[&str] =
    &["UNIX_EPOCH", "Utc::now", "Local::now", "OffsetDateTime", "NaiveDateTime"];
const P003_TOKENS: &[&str] = &["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Runs the per-file D and P lints over non-test lines. Returns raw
/// findings; suppression is applied later by [`apply_allows`].
pub fn check_file(scan: &FileScan, profile: &Profile) -> Vec<Finding> {
    let mut out = Vec::new();
    let seeded = profile.in_seeded(&scan.rel);
    let d001 = seeded && !profile.d001_exempt(&scan.rel);
    let hot = profile.in_hot(&scan.rel);
    if !seeded && !hot {
        return out;
    }
    for line in 1..=scan.line_starts.len() {
        if scan.is_test_line(line) {
            continue;
        }
        let code = scan.code_line(line);
        if code.trim().is_empty() {
            continue;
        }
        let mut push = |lint: &str, message: String| {
            out.push(Finding {
                path: scan.rel.clone(),
                line,
                lint: lint.to_string(),
                message,
                snippet: scan.raw_line(line).trim().to_string(),
            });
        };
        if d001 {
            if let Some(t) = first_token(code, D001_TOKENS) {
                push("D001", format!("`{t}` reads the wall clock in a seeded crate"));
            }
        }
        if seeded {
            if let Some(t) = first_token(code, D002_TOKENS) {
                push(
                    "D002",
                    format!("`{t}` has nondeterministic iteration order; use the BTree equivalent or sort at iteration"),
                );
            }
            if let Some(t) = first_token(code, D003_TOKENS) {
                push("D003", format!("`{t}` draws ambient entropy in a seeded crate"));
            }
            if let Some(t) = first_token(code, D004_TOKENS) {
                push("D004", format!("`{t}` puts wall-clock time within reach of result payloads"));
            }
        }
        if hot {
            if first_token(code, &[".unwrap()"]).is_some() {
                push("P001", "`.unwrap()` can panic in a hot path; convert to Result".to_string());
            }
            if first_token(code, &[".expect("]).is_some() {
                push("P002", "`.expect(...)` can panic in a hot path; convert to Result".to_string());
            }
            if let Some(t) = first_token(code, P003_TOKENS) {
                push("P003", format!("`{}` in a hot path", t.trim_end_matches('(')));
            }
            if let Some(expr) = inline_index_arithmetic(code) {
                push("P004", format!("index `[{expr}]` computed inline; hoist it next to its bounds argument"));
            }
        }
    }
    out
}

/// The first token from `tokens` present in `code` with identifier
/// boundaries respected on both sides.
fn first_token<'t>(code: &str, tokens: &[&'t str]) -> Option<&'t str> {
    tokens.iter().copied().find(|t| has_token(code, t))
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `code` contains `token` with identifier boundaries respected
/// on both sides (shared with the taint lints' source-site scan).
pub fn has_token(code: &str, token: &str) -> bool {
    let code_b = code.as_bytes();
    let tok_b = token.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        from = at + 1;
        if at > 0 && is_ident(tok_b[0]) && is_ident(code_b[at - 1]) {
            continue; // mid-identifier prefix
        }
        let end = at + tok_b.len();
        if end < code_b.len()
            && is_ident(tok_b[tok_b.len() - 1])
            && is_ident(code_b[end])
        {
            continue; // mid-identifier suffix
        }
        return true;
    }
    false
}

/// Finds an index expression with inline arithmetic: a `[` that follows
/// an identifier (or `)`/`]`), whose bracketed content — on the same
/// line — contains an arithmetic operator. Returns the content.
fn inline_index_arithmetic(code: &str) -> Option<String> {
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'['
            && i > 0
            && (is_ident(b[i - 1]) || b[i - 1] == b')' || b[i - 1] == b']')
        {
            let mut depth = 1;
            let mut j = i + 1;
            while j < b.len() && depth > 0 {
                match b[j] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if depth == 0 {
                let content = &code[i + 1..j - 1];
                if content_has_arithmetic(content) {
                    return Some(content.trim().to_string());
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    None
}

/// Whether a bracketed index expression contains arithmetic. `->` (in
/// closure types) and `..`/`..=` range punctuation are not arithmetic.
fn content_has_arithmetic(content: &str) -> bool {
    let b = content.as_bytes();
    (0..b.len()).any(|i| match b[i] {
        b'+' | b'*' | b'/' | b'%' => true,
        b'-' => b.get(i + 1) != Some(&b'>'),
        _ => false,
    })
}

/// Extracts every `audit:allow` comment from non-test regions.
///
/// A comment is a suppression only when its text *starts* with
/// `audit:allow` (one allow per comment) — prose that merely mentions
/// the syntax, like this sentence or the backticked examples in doc
/// comments, is ignored.
pub fn collect_allows(scan: &FileScan) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &scan.comments {
        if scan.is_test_line(c.line) {
            continue;
        }
        let t = c.text.trim_start_matches(['/', '!']).trim_start();
        if let Some(after) = t.strip_prefix("audit:allow") {
            out.push(parse_allow(scan, c.line, after));
        }
    }
    out
}

fn parse_allow(scan: &FileScan, decl_line: usize, after: &str) -> Allow {
    let mut allow = Allow {
        path: scan.rel.clone(),
        decl_line,
        target_line: allow_target(scan, decl_line),
        id: String::new(),
        reason: String::new(),
        malformed: None,
    };
    let Some(open) = after.strip_prefix('(') else {
        allow.malformed = Some("expected `audit:allow(<lint-id>): <reason>`".to_string());
        return allow;
    };
    let Some(close) = open.find(')') else {
        allow.malformed = Some("unclosed `(` in audit:allow".to_string());
        return allow;
    };
    allow.id = open[..close].trim().to_string();
    if lint_spec(&allow.id).is_none() {
        allow.malformed = Some(format!("unknown lint id `{}`", allow.id));
        return allow;
    }
    let rest = &open[close + 1..];
    let Some(reason) = rest.strip_prefix(':') else {
        allow.malformed =
            Some(format!("audit:allow({}) is missing its `: <reason>`", allow.id));
        return allow;
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        allow.malformed =
            Some(format!("audit:allow({}) has an empty reason", allow.id));
        return allow;
    }
    allow.reason = reason;
    allow
}

/// The line an allow on `decl_line` applies to: its own line when that
/// line has code, otherwise the next line carrying code (chaining over
/// blank and comment-only lines).
fn allow_target(scan: &FileScan, decl_line: usize) -> usize {
    if !scan.code_line(decl_line).trim().is_empty() {
        return decl_line;
    }
    let n = scan.line_starts.len();
    let mut line = decl_line + 1;
    while line <= n && scan.code_line(line).trim().is_empty() {
        line += 1;
    }
    line.min(n)
}

/// Section-aware parse of the observability document: event kinds from
/// `` ### `kind` `` headings, counter and gauge names from the first
/// backticked cell of rows in tables headed `| Counter |` / `| Gauge |`.
pub fn doc_obs_names(doc: &str) -> Vec<(String, &'static str, usize)> {
    let mut out = Vec::new();
    let mut table: Option<&'static str> = None;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = idx + 1;
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("### `") {
            if let Some(end) = rest.find('`') {
                out.push((rest[..end].to_string(), "event", lineno));
            }
            table = None;
            continue;
        }
        if t.starts_with("#") {
            table = None;
            continue;
        }
        if t.starts_with("| Counter") {
            table = Some("counter");
            continue;
        }
        if t.starts_with("| Gauge") {
            table = Some("gauge");
            continue;
        }
        if let (Some(kind), Some(rest)) = (table, t.strip_prefix("| `")) {
            if let Some(end) = rest.find('`') {
                out.push((rest[..end].to_string(), kind, lineno));
            }
        } else if table.is_some() && !t.starts_with('|') {
            table = None;
        }
    }
    out
}

/// Cross-references the emitted names against the documented ones:
/// O001 for emitted-but-undocumented, O002 for documented-but-unemitted.
pub fn check_obs(doc_rel: &str, doc: &str, emitted: &[ObsName]) -> Vec<Finding> {
    let documented = doc_obs_names(doc);
    let mut out = Vec::new();
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for e in emitted {
        if seen.contains(&(e.category, e.name.as_str())) {
            continue;
        }
        seen.push((e.category, e.name.as_str()));
        if !documented.iter().any(|(n, c, _)| *c == e.category && n == &e.name) {
            out.push(Finding {
                path: e.path.clone(),
                line: e.line,
                lint: "O001".to_string(),
                message: format!(
                    "{} `{}` is emitted here but not documented in {doc_rel}",
                    e.category, e.name
                ),
                snippet: String::new(),
            });
        }
    }
    for (name, category, lineno) in &documented {
        if !emitted.iter().any(|e| e.category == *category && &e.name == name) {
            out.push(Finding {
                path: doc_rel.to_string(),
                line: *lineno,
                lint: "O002".to_string(),
                message: format!("{category} `{name}` is documented but never emitted"),
                snippet: String::new(),
            });
        }
    }
    out
}

/// Applies the collected allows to the raw findings: matched findings
/// move to the suppressed list; unused allows become A001 findings and
/// malformed allows A002 (A-lints are themselves unsuppressable). Both
/// outputs come back sorted.
pub fn apply_allows(
    raw: Vec<Finding>,
    allows: Vec<Allow>,
) -> (Vec<Finding>, Vec<Suppressed>) {
    let mut used = vec![false; allows.len()];
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        let hit = allows.iter().enumerate().find(|(_, a)| {
            a.malformed.is_none()
                && a.id == f.lint
                && a.path == f.path
                && a.target_line == f.line
        });
        match hit {
            Some((i, a)) => {
                used[i] = true;
                suppressed.push(Suppressed {
                    path: f.path,
                    line: f.line,
                    lint: f.lint,
                    reason: a.reason.clone(),
                });
            }
            None => findings.push(f),
        }
    }
    for (i, a) in allows.iter().enumerate() {
        if let Some(why) = &a.malformed {
            findings.push(Finding {
                path: a.path.clone(),
                line: a.decl_line,
                lint: "A002".to_string(),
                message: why.clone(),
                snippet: String::new(),
            });
        } else if !used[i] {
            findings.push(Finding {
                path: a.path.clone(),
                line: a.decl_line,
                lint: "A001".to_string(),
                message: format!(
                    "audit:allow({}) suppresses nothing; delete the stale comment",
                    a.id
                ),
                snippet: String::new(),
            });
        }
    }
    findings.sort();
    suppressed.sort();
    (findings, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str) -> FileScan {
        FileScan::new(rel, src)
    }

    fn everything_findings(src: &str) -> Vec<Finding> {
        let s = scan("src/lib.rs", src);
        let raw = check_file(&s, &Profile::everything());
        let (f, _) = apply_allows(raw, collect_allows(&s));
        f
    }

    #[test]
    fn d_lints_fire_on_their_tokens() {
        let f = everything_findings("fn f() { let t = std::time::Instant::now(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "D001");
        let f = everything_findings("use std::collections::HashMap;\n");
        assert_eq!(f[0].lint, "D002");
        let f = everything_findings("let r = rand::thread_rng();\n");
        assert_eq!(f[0].lint, "D003");
        let f = everything_findings("let t = std::time::UNIX_EPOCH;\n");
        assert_eq!(f[0].lint, "D004");
    }

    #[test]
    fn tokens_respect_identifier_boundaries() {
        assert!(everything_findings("struct MyHashMapLike;\n").is_empty());
        assert!(everything_findings("fn unwrap_all() {}\n").is_empty());
        let f = everything_findings("let x = map.get(&k).unwrap();\n");
        assert_eq!(f[0].lint, "P001");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        assert!(everything_findings("let s = \"uses HashMap and .unwrap()\";\n").is_empty());
        assert!(everything_findings("// HashMap would be wrong here\nlet x = 1;\n").is_empty());
    }

    #[test]
    fn p004_catches_inline_index_arithmetic() {
        let f = everything_findings("fn f(v: &[f64], i: usize, n: usize) -> f64 { v[i * n + 1] }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "P004");
        assert!(f[0].message.contains("i * n + 1"));
        // Plain indices, attributes, array types, and ranges stay quiet.
        assert!(everything_findings("fn f(v: &[f64], i: usize) -> f64 { v[i] }\n").is_empty());
        assert!(everything_findings("#[cfg(feature = \"x\")]\nfn f() {}\n").is_empty());
        assert!(everything_findings("fn f() -> [f32; 4] { [0.0; 4] }\n").is_empty());
        assert!(everything_findings("fn f(v: &[u8]) -> &[u8] { &v[1..3] }\n").is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_and_is_used() {
        let s = scan(
            "src/lib.rs",
            "fn f() { x.unwrap(); } // audit:allow(P001): x is checked non-empty above\n",
        );
        let (f, sup) = apply_allows(check_file(&s, &Profile::everything()), collect_allows(&s));
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].lint, "P001");
        assert_eq!(sup[0].reason, "x is checked non-empty above");
    }

    #[test]
    fn preceding_line_allow_reaches_next_code_line() {
        let s = scan(
            "src/lib.rs",
            "// audit:allow(P001): checked by caller\n// more prose\nfn f() { x.unwrap(); }\n",
        );
        let (f, sup) = apply_allows(check_file(&s, &Profile::everything()), collect_allows(&s));
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(sup.len(), 1);
    }

    #[test]
    fn unused_allow_is_a001() {
        let f = everything_findings("// audit:allow(P001): stale\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "A001");
    }

    #[test]
    fn malformed_allow_is_a002() {
        let f = everything_findings("fn f() {} // audit:allow(P001)\n");
        assert_eq!(f[0].lint, "A002");
        let f = everything_findings("fn f() {} // audit:allow(Z999): nope\n");
        assert_eq!(f[0].lint, "A002");
    }

    #[test]
    fn doc_parse_reads_kinds_counters_gauges() {
        let doc = "# Doc\n\n### `round` — x\n\n## Counters and gauges\n\n| Counter | By |\n| --- | --- |\n| `sessions` | runtime |\n\n| Gauge | At |\n| --- | --- |\n| `psi` | chat |\n";
        let names = doc_obs_names(doc);
        assert!(names.contains(&("round".to_string(), "event", 3)));
        assert!(names.contains(&("sessions".to_string(), "counter", 9)));
        assert!(names.contains(&("psi".to_string(), "gauge", 13)));
    }

    #[test]
    fn obs_cross_reference_finds_both_directions() {
        let doc = "### `round` — x\n\n| Counter | By |\n| --- | --- |\n| `ghost` | nothing |\n";
        let emitted = vec![
            ObsName { category: "event", name: "round".into(), path: "src/a.rs".into(), line: 3 },
            ObsName { category: "event", name: "mystery".into(), path: "src/a.rs".into(), line: 9 },
        ];
        let f = check_obs("docs/OBSERVABILITY.md", doc, &emitted);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.lint == "O001" && x.message.contains("mystery")));
        assert!(f.iter().any(|x| x.lint == "O002" && x.message.contains("ghost")));
    }

    #[test]
    fn profile_scoping_limits_families() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); x.unwrap(); }\n";
        let mut p = Profile::everything();
        p.hot.clear();
        let s = scan("src/lib.rs", src);
        let raw = check_file(&s, &p);
        assert!(raw.iter().all(|f| f.lint.starts_with('D')), "{raw:?}");
        p.hot = vec![String::new()];
        p.seeded.clear();
        let raw = check_file(&s, &p);
        assert!(raw.iter().all(|f| f.lint.starts_with('P')), "{raw:?}");
    }

    #[test]
    fn catalogue_ids_are_unique_and_well_formed() {
        let mut seen: Vec<&str> = Vec::new();
        for l in LINTS {
            assert_eq!(l.id.len(), 4, "{} must be a letter + 3 digits", l.id);
            assert!(matches!(l.id.as_bytes()[0], b'D' | b'P' | b'O' | b'A' | b'T' | b'W' | b'R'));
            assert!(l.id[1..].bytes().all(|b| b.is_ascii_digit()));
            assert!(!seen.contains(&l.id), "duplicate id {}", l.id);
            seen.push(l.id);
            for (field, text) in [
                ("rationale", l.rationale),
                ("example", l.example),
                ("suppression", l.suppression),
            ] {
                assert!(!text.trim().is_empty(), "{} has an empty {field}", l.id);
            }
        }
    }
}
