//! `lbchat-audit` command-line entry point.
//!
//! Exit codes: `0` clean (or, with `--baseline`, no *new* findings),
//! `1` un-suppressed findings, `2` usage or I/O errors.

#![forbid(unsafe_code)]

use lbchat_audit::{audit, lints, refs, Profile, Report, Workspace, LINTS};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
lbchat-audit: workspace determinism & panic-safety scanner

USAGE:
    lbchat-audit [OPTIONS]

OPTIONS:
    --root <DIR>        Workspace root to scan (default: .)
    --out <FILE>        Write the JSON report (schema lbchat-audit/v1)
    --baseline <FILE>   Ratchet mode: fail only on findings not present
                        in this previously written report
    --github            Also print findings as GitHub ::error workflow
                        commands (annotations on the diff view)
    --list-lints        Print the lint catalogue and exit
    --explain <ID>      Print one lint's full catalogue entry and exit
    --write-reference-manifest
                        Re-pin the reference-oracle hashes (R001) and exit
    --help              Show this help

EXIT CODES:
    0  clean (with --baseline: no new findings)
    1  un-suppressed findings
    2  usage or I/O error

See docs/AUDIT.md for the lint catalogue and suppression syntax.";

struct Args {
    root: PathBuf,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    github: bool,
    list_lints: bool,
    explain: Option<String>,
    write_reference_manifest: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        out: None,
        baseline: None,
        github: false,
        list_lints: false,
        explain: None,
        write_reference_manifest: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--github" => args.github = true,
            "--list-lints" => args.list_lints = true,
            "--explain" => args.explain = Some(value("--explain")?),
            "--write-reference-manifest" => args.write_reference_manifest = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Some(args))
}

fn explain(id: &str) -> Result<(), String> {
    let Some(l) = lints::lint_spec(id) else {
        let known: Vec<&str> = LINTS.iter().map(|l| l.id).collect();
        return Err(format!("unknown lint id {id:?} (known: {})", known.join(", ")));
    };
    println!("{} — {}", l.id, l.name);
    println!("\nsummary:\n    {}", l.summary);
    println!("\nrationale:\n    {}", l.rationale);
    println!("\nexample:");
    for line in l.example.lines() {
        println!("    {line}");
    }
    println!("\nsuppression:\n    {}", l.suppression);
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let Some(args) = parse_args()? else {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };
    if args.list_lints {
        for l in LINTS {
            println!("{}  {:<24} {}", l.id, l.name, l.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(id) = &args.explain {
        explain(id)?;
        return Ok(ExitCode::SUCCESS);
    }
    let profile = Profile::lbchat();
    if args.write_reference_manifest {
        let ws = Workspace::load(&args.root, &profile).map_err(|e| e.to_string())?;
        let text = refs::manifest_text(&ws.files, &profile);
        let path = args.root.join(&profile.reference_manifest);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        std::fs::write(&path, &text).map_err(|e| format!("write {}: {e}", path.display()))?;
        print!("{text}");
        println!("pinned {} reference module(s) in {}", text.lines().count(), path.display());
        return Ok(ExitCode::SUCCESS);
    }
    let report = audit(&args.root, &profile).map_err(|e| e.to_string())?;
    if let Some(out) = &args.out {
        if let Some(dir) = out.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        let mut text = report.to_json().to_string();
        text.push('\n');
        std::fs::write(out, text).map_err(|e| format!("write {}: {e}", out.display()))?;
    }
    print!("{}", report.human());
    if let Some(baseline_path) = &args.baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
        let baseline = Report::from_json(&text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        let new = report.diff(&baseline);
        if args.github {
            print!("{}", Report::github_annotations(&new));
        }
        if new.is_empty() {
            println!(
                "baseline: no new findings ({} in baseline)",
                baseline.findings.len()
            );
            return Ok(ExitCode::SUCCESS);
        }
        println!("baseline: {} NEW finding(s) vs {}:", new.len(), baseline_path.display());
        for f in &new {
            println!("  {}: {}:{}: {}", f.lint, f.path, f.line, f.message);
        }
        return Ok(ExitCode::FAILURE);
    }
    if args.github {
        print!("{}", Report::github_annotations(&report.findings));
    }
    if report.is_clean() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("lbchat-audit: {msg}");
            eprintln!("run with --help for usage");
            ExitCode::from(2)
        }
    }
}
