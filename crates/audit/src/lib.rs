//! `lbchat-audit`: a workspace-wide determinism & panic-safety scanner.
//!
//! The reproduction's evaluation claims rest on bit-for-bit deterministic
//! runs (the jobs=1 ≡ jobs=4 guarantee, the golden fixtures). Nothing in
//! the compiler prevents a future change from smuggling a `HashMap`
//! iteration, a wall-clock read, or an unseeded RNG into a seeded path and
//! silently breaking them — so this crate checks the *source* on every
//! push. It is a dependency-free, hand-rolled scanner (no `syn`,
//! consistent with the vendored-offline policy): a line-based lexer that
//! understands string literals, comments, and `#[cfg(test)]`/`mod tests`
//! regions, plus a small set of repo-specific lint families:
//!
//! * **D-lints** (determinism): wall-clock reads, unordered collections,
//!   and ambient entropy in seeded crates.
//! * **P-lints** (panic-safety): `unwrap`/`expect`/`panic!`/inline index
//!   arithmetic in the runtime/exec/node/simnet hot paths.
//! * **O-lints** (observability): every event kind, counter, and gauge
//!   emitted through `lbchat::obs` must be documented in
//!   `docs/OBSERVABILITY.md`, and vice versa.
//! * **A-lints** (suppression hygiene): unused or malformed
//!   `// audit:allow(<id>): <reason>` comments are themselves errors.
//!
//! Findings are emitted human-readably and as a machine-diffable JSON
//! report (schema [`report::SCHEMA`], hand-rolled JSON via `lbchat::obs`);
//! see `docs/AUDIT.md` for the catalogue and suppression syntax.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod report;
pub mod walk;

pub use lints::{Finding, Profile, Suppressed, LINTS};
pub use report::Report;

use std::path::Path;

/// Errors from a whole-tree audit run (I/O problems; lint findings are
/// *data*, not errors).
#[derive(Debug)]
pub enum AuditError {
    /// A file or directory could not be read.
    Io(String, std::io::Error),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io(path, e) => write!(f, "{path}: {e}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Scans the workspace under `root` with `profile` and returns the full
/// report: per-file D/P findings, cross-file O-lint findings, and the
/// suppression bookkeeping (A-lints).
pub fn audit(root: &Path, profile: &Profile) -> Result<Report, AuditError> {
    let files = walk::workspace_files(root, profile)?;
    let mut raw = Vec::new();
    let mut allows = Vec::new();
    let mut emitted = Vec::new();
    for rel in &files {
        let abs = root.join(rel);
        let text = std::fs::read_to_string(&abs)
            .map_err(|e| AuditError::Io(abs.display().to_string(), e))?;
        let scan = lexer::FileScan::new(rel, &text);
        raw.append(&mut lints::check_file(&scan, profile));
        allows.append(&mut lints::collect_allows(&scan));
        emitted.append(&mut scan.obs_names());
    }
    let doc_abs = root.join(&profile.obs_doc);
    let doc_text = std::fs::read_to_string(&doc_abs)
        .map_err(|e| AuditError::Io(doc_abs.display().to_string(), e))?;
    raw.append(&mut lints::check_obs(&profile.obs_doc, &doc_text, &emitted));
    let (findings, suppressed) = lints::apply_allows(raw, allows);
    Ok(Report::new(files.len(), findings, suppressed))
}
