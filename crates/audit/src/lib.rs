//! `lbchat-audit`: a workspace-wide determinism & panic-safety scanner.
//!
//! The reproduction's evaluation claims rest on bit-for-bit deterministic
//! runs (the jobs=1 ≡ jobs=4 guarantee, the golden fixtures). Nothing in
//! the compiler prevents a future change from smuggling a `HashMap`
//! iteration, a wall-clock read, or an unseeded RNG into a seeded path and
//! silently breaking them — so this crate checks the *source* on every
//! push. It is a dependency-free, hand-rolled analyzer (no `syn`,
//! consistent with the vendored-offline policy): a line-based lexer that
//! understands string literals, comments, and `#[cfg(test)]`/`mod tests`
//! regions; an item parser and conservative workspace call graph on top
//! of it; and a set of repo-specific lint families:
//!
//! * **D-lints** (determinism): wall-clock reads, unordered collections,
//!   and ambient entropy in seeded crates, textually.
//! * **P-lints** (panic-safety): `unwrap`/`expect`/`panic!`/inline index
//!   arithmetic in the runtime/exec/node/simnet hot paths — plus P005,
//!   which walks the call graph from `audit:entry(hot)` functions to
//!   panic sites *outside* the hot directories.
//! * **T-lints** (taint): T001 proves `audit:phase(intent)` functions
//!   cannot reach an RNG draw (the two-phase-tick invariant, statically);
//!   T002 proves ambient entropy outside the seeded set is unreachable
//!   from `audit:entry(seeded)` functions.
//! * **O-lints** (observability): every event kind, counter, and gauge
//!   emitted through `lbchat::obs` must be documented in
//!   `docs/OBSERVABILITY.md`, and vice versa.
//! * **W001** (wire contract): the codec registry in `lbchat::compress`
//!   must agree with docs/COMPRESSION.md in both directions — keys,
//!   magic bytes, `Codec::ALL`, decode arms, layout constants.
//! * **R001** (reference drift): retained-verbatim reference oracles are
//!   content-hash-pinned in a committed manifest.
//! * **A-lints** (suppression hygiene): unused or malformed
//!   `audit:allow` / `audit:phase` / `audit:entry` comments are
//!   themselves errors.
//!
//! Findings are emitted human-readably and as a machine-diffable JSON
//! report (schema [`report::SCHEMA`], hand-rolled JSON via `lbchat::obs`);
//! see `docs/AUDIT.md` for the catalogue, the annotation grammar, and the
//! call-graph resolution rules.

#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod refs;
pub mod report;
pub mod taint;
pub mod walk;
pub mod wire;

pub use lints::{Finding, Profile, Suppressed, LINTS};
pub use report::Report;

use std::path::Path;

/// Errors from a whole-tree audit run (I/O problems; lint findings are
/// *data*, not errors).
#[derive(Debug)]
pub enum AuditError {
    /// A file or directory could not be read.
    Io(String, std::io::Error),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io(path, e) => write!(f, "{path}: {e}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// The fully parsed workspace: one `(scan, items)` per file in walk
/// order, shared by every cross-file pass.
pub struct Workspace {
    /// Parsed files in deterministic walk order.
    pub files: Vec<(lexer::FileScan, parser::ItemSet)>,
}

impl Workspace {
    /// Reads and parses every workspace file under `root`.
    pub fn load(root: &Path, profile: &Profile) -> Result<Workspace, AuditError> {
        let rels = walk::workspace_files(root, profile)?;
        let mut files = Vec::with_capacity(rels.len());
        for rel in &rels {
            let abs = root.join(rel);
            let text = std::fs::read_to_string(&abs)
                .map_err(|e| AuditError::Io(abs.display().to_string(), e))?;
            let scan = lexer::FileScan::new(rel, &text);
            let items = parser::parse_items(&scan);
            files.push((scan, items));
        }
        Ok(Workspace { files })
    }
}

/// Scans the workspace under `root` with `profile` and returns the full
/// report: per-file D/P findings, the graph lints (T001/T002/P005), the
/// wire-contract and reference-drift cross-checks, the O-lints, and the
/// suppression bookkeeping (A-lints).
pub fn audit(root: &Path, profile: &Profile) -> Result<Report, AuditError> {
    let ws = Workspace::load(root, profile)?;
    let mut raw = Vec::new();
    let mut allows = Vec::new();
    let mut emitted = Vec::new();
    for (scan, _) in &ws.files {
        raw.append(&mut lints::check_file(scan, profile));
        allows.append(&mut lints::collect_allows(scan));
        emitted.append(&mut scan.obs_names());
    }
    let call_graph = graph::CallGraph::build(&ws.files);
    raw.append(&mut taint::check_graph(&ws.files, &call_graph, profile));
    let wire_doc = std::fs::read_to_string(root.join(&profile.wire_doc)).ok();
    raw.append(&mut wire::check_wire(&ws.files, profile, wire_doc.as_deref()));
    let manifest = std::fs::read_to_string(root.join(&profile.reference_manifest)).ok();
    raw.append(&mut refs::check_references(&ws.files, profile, manifest.as_deref()));
    let doc_abs = root.join(&profile.obs_doc);
    let doc_text = std::fs::read_to_string(&doc_abs)
        .map_err(|e| AuditError::Io(doc_abs.display().to_string(), e))?;
    raw.append(&mut lints::check_obs(&profile.obs_doc, &doc_text, &emitted));
    let (findings, suppressed) = lints::apply_allows(raw, allows);
    Ok(Report::new(ws.files.len(), findings, suppressed))
}
