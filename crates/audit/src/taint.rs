//! The interprocedural taint lints: T001 phase-purity, T002
//! seeded-entropy taint, and P005 panic-reachability.
//!
//! All three share one shape: *roots* come from source annotations
//! (`// audit:phase(intent)` or `// audit:entry(seeded|hot)` attached to
//! the next `fn`), *sources* are token sites inside function bodies, and
//! a breadth-first walk over the [`CallGraph`] decides reachability. The
//! walk is deterministic — adjacency lists are sorted, roots are visited
//! in node order — so the reported shortest chains never flap between
//! runs.
//!
//! Division of labour with the textual lints: D001–D004 already police
//! ambient entropy *inside* the seeded crates and P001–P004 police panic
//! tokens *inside* the hot paths, so T002 only sources sites in files
//! **outside** the seeded set and P005 only in files **outside** the hot
//! set. The graph walk is what connects those outside sites back to the
//! annotated entry points.

use std::collections::VecDeque;

use crate::graph::CallGraph;
use crate::lexer::FileScan;
use crate::lints::{Finding, Profile};
use crate::parser::ItemSet;

/// Tokens whose presence marks a function as *drawing* from an RNG
/// (the vendored `rand` draw surface).
pub const RNG_DRAW_TOKENS: &[&str] = &[
    ".random(",
    ".random::<",
    ".random_range(",
    ".random_bool(",
    ".shuffle(",
    ".next_u64(",
    ".next_u32(",
    "sample_standard(",
    ".sample_from(",
    ".sample(",
];

/// Ambient entropy tokens for T002: the D001/D003/D004 clock and entropy
/// tokens plus unordered-collection and thread-identity sources.
pub const AMBIENT_TOKENS: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "from_os_rng",
    "getrandom",
    "UNIX_EPOCH",
    "Utc::now",
    "Local::now",
    "OffsetDateTime",
    "NaiveDateTime",
    "RandomState",
    "thread::current",
    "HashMap",
    "HashSet",
];

/// Panic-family tokens for P005.
pub const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// What an annotation marks its function as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnKind {
    /// `audit:phase(intent)` — must not reach RNG draws (T001).
    PhaseIntent,
    /// `audit:entry(seeded)` — must not reach ambient entropy (T002).
    EntrySeeded,
    /// `audit:entry(hot)` — must not reach panic sites (P005).
    EntryHot,
}

/// Runs all three graph lints. `files` must be the full parsed
/// workspace in walk order; returns raw findings (suppression is applied
/// later by `apply_allows`, so `audit:allow(T001|T002|P005)` works like
/// any other allow). Malformed annotations come back as A002 findings.
pub fn check_graph(
    files: &[(FileScan, ItemSet)],
    graph: &CallGraph,
    profile: &Profile,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut roots: Vec<(AnnKind, usize)> = Vec::new();
    for (scan, items) in files {
        collect_annotations(scan, items, graph, &mut roots, &mut findings);
    }
    roots.sort_by_key(|&(_, idx)| idx);

    let scan_of = |rel: &str| files.iter().map(|(s, _)| s).find(|s| s.rel == rel);

    // Source sites per graph node, one vector per lint.
    let draw_sites = token_sites(files, graph, RNG_DRAW_TOKENS, |_| true);
    let ambient_sites =
        token_sites(files, graph, AMBIENT_TOKENS, |rel| !in_prefix(&profile.seeded, rel));
    let panic_sites =
        token_sites(files, graph, PANIC_TOKENS, |rel| !in_prefix(&profile.hot, rel));

    // T001: each phase root individually — the finding anchors on the
    // root's declaration so the invariant holder owns the report.
    for &(kind, root) in &roots {
        if kind != AnnKind::PhaseIntent {
            continue;
        }
        if let Some((node, parent)) = bfs_first(graph, &[root], &draw_sites) {
            let (line, token) = &draw_sites[node][0];
            let decl = &graph.fns[root];
            let snippet = scan_of(&decl.file)
                .map(|s| s.raw_line(decl.item.decl_line).trim().to_string())
                .unwrap_or_default();
            findings.push(Finding {
                path: decl.file.clone(),
                line: decl.item.decl_line,
                lint: "T001".to_string(),
                message: format!(
                    "audit:phase(intent) fn `{}` can reach RNG draw `{}` at {}:{} via {}",
                    decl.item.display(),
                    token,
                    graph.fns[node].file,
                    line,
                    chain(graph, &parent, root, node),
                ),
                snippet,
            });
        }
    }

    // T002 / P005: multi-source walk from all entries of the kind; one
    // finding per reachable source *site*, anchored at the token line.
    for (kind, sites, lint, what) in [
        (AnnKind::EntrySeeded, &ambient_sites, "T002", "draws ambient entropy"),
        (AnnKind::EntryHot, &panic_sites, "P005", "can panic"),
    ] {
        let entries: Vec<usize> = roots
            .iter()
            .filter(|&&(k, _)| k == kind)
            .map(|&(_, idx)| idx)
            .collect();
        if entries.is_empty() {
            continue;
        }
        let (dist, parent) = bfs_all(graph, &entries);
        for (node, node_sites) in sites.iter().enumerate() {
            if dist[node] == usize::MAX || node_sites.is_empty() {
                continue;
            }
            let owner = &graph.fns[node];
            let root = chain_root(&parent, &entries, node);
            for (line, token) in node_sites {
                let snippet = scan_of(&owner.file)
                    .map(|s| s.raw_line(*line).trim().to_string())
                    .unwrap_or_default();
                findings.push(Finding {
                    path: owner.file.clone(),
                    line: *line,
                    lint: lint.to_string(),
                    message: format!(
                        "`{}` {} and is reachable from {} entry `{}` via {}",
                        token,
                        what,
                        match kind {
                            AnnKind::EntrySeeded => "seeded",
                            _ => "hot",
                        },
                        graph.fns[root].item.display(),
                        chain(graph, &parent, root, node),
                    ),
                    snippet,
                });
            }
        }
    }
    findings
}

fn in_prefix(prefixes: &[String], rel: &str) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p.as_str()))
}

/// Parses `audit:phase(...)` / `audit:entry(...)` comments in one file
/// and resolves each to a graph node. Malformed annotations (bad value,
/// nothing to attach to) become A002 findings.
fn collect_annotations(
    scan: &FileScan,
    items: &ItemSet,
    graph: &CallGraph,
    roots: &mut Vec<(AnnKind, usize)>,
    findings: &mut Vec<Finding>,
) {
    for c in &scan.comments {
        if scan.is_test_line(c.line) {
            continue;
        }
        let t = c.text.trim_start_matches(['/', '!']).trim_start();
        let (head, kind_of): (&str, fn(&str) -> Option<AnnKind>) =
            if t.starts_with("audit:phase") {
                ("audit:phase", |v| (v == "intent").then_some(AnnKind::PhaseIntent))
            } else if t.starts_with("audit:entry") {
                ("audit:entry", |v| match v {
                    "seeded" => Some(AnnKind::EntrySeeded),
                    "hot" => Some(AnnKind::EntryHot),
                    _ => None,
                })
            } else {
                continue;
            };
        let mut bad = |why: String| {
            findings.push(Finding {
                path: scan.rel.clone(),
                line: c.line,
                lint: "A002".to_string(),
                message: why,
                snippet: String::new(),
            });
        };
        let rest = t[head.len()..].trim_start();
        let Some(value) = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map(|(v, _)| v.trim())
        else {
            bad(format!("expected `{head}(<value>)`"));
            continue;
        };
        let Some(kind) = kind_of(value) else {
            bad(format!("unknown {head} value `{value}`"));
            continue;
        };
        // Attach to the next non-test fn at or after the comment line.
        let target = items
            .fns
            .iter()
            .filter(|f| !f.is_test && f.decl_line >= c.line)
            .min_by_key(|f| f.decl_line);
        let Some(target) = target else {
            bad(format!("{head}({value}) does not precede a function"));
            continue;
        };
        let Some(idx) = graph
            .fns
            .iter()
            .position(|n| n.file == scan.rel && n.item.decl_line == target.decl_line && n.item.name == target.name)
        else {
            bad(format!("{head}({value}) target fn is not in the call graph"));
            continue;
        };
        roots.push((kind, idx));
    }
}

/// Token sites per graph node: `(line, token)` pairs found in the body
/// span of each node whose file passes `file_ok`. Test lines never
/// contribute.
fn token_sites(
    files: &[(FileScan, ItemSet)],
    graph: &CallGraph,
    tokens: &[&'static str],
    file_ok: impl Fn(&str) -> bool,
) -> Vec<Vec<(usize, &'static str)>> {
    let mut out = vec![Vec::new(); graph.fns.len()];
    for (idx, node) in graph.fns.iter().enumerate() {
        if !file_ok(&node.file) {
            continue;
        }
        let Some(span) = node.item.body else { continue };
        let Some(scan) = files.iter().map(|(s, _)| s).find(|s| s.rel == node.file) else {
            continue;
        };
        let (lo, hi) = (scan.line_of(span.0), scan.line_of(span.1));
        for line in lo..=hi {
            if scan.is_test_line(line) {
                continue;
            }
            let code = scan.code_line(line);
            for &tok in tokens {
                if crate::lints::has_token(code, tok) {
                    out[idx].push((line, tok));
                }
            }
        }
    }
    out
}

/// Multi-source BFS: `(dist, parent)` over the whole graph, `usize::MAX`
/// distance for unreachable nodes.
fn bfs_all(graph: &CallGraph, roots: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = graph.fns.len();
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut q = VecDeque::new();
    for &r in roots {
        if dist[r] == usize::MAX {
            dist[r] = 0;
            q.push_back(r);
        }
    }
    while let Some(u) = q.pop_front() {
        for &v in &graph.edges[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = u;
                q.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// BFS from `roots` that stops at the first node (in pop order — i.e.
/// nearest, ties broken by sorted adjacency) with a nonempty site list.
/// Returns `(node, parent_array)`.
fn bfs_first(
    graph: &CallGraph,
    roots: &[usize],
    sites: &[Vec<(usize, &'static str)>],
) -> Option<(usize, Vec<usize>)> {
    let (dist, parent) = bfs_all(graph, roots);
    // Deterministic "first": minimal distance, then minimal node index.
    (0..graph.fns.len())
        .filter(|&i| dist[i] != usize::MAX && !sites[i].is_empty())
        .min_by_key(|&i| (dist[i], i))
        .map(|i| (i, parent))
}

/// Walks `parent` back from `node` to its root.
fn chain_root(parent: &[usize], roots: &[usize], mut node: usize) -> usize {
    while parent[node] != usize::MAX {
        node = parent[node];
    }
    debug_assert!(roots.contains(&node));
    node
}

/// Formats the call chain `root → … → node` with short fn handles.
fn chain(graph: &CallGraph, parent: &[usize], root: usize, node: usize) -> String {
    let mut path = vec![node];
    let mut cur = node;
    while cur != root && parent[cur] != usize::MAX {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    path.iter()
        .map(|&i| format!("`{}`", graph.fns[i].item.display()))
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_items;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<(FileScan, ItemSet)> = files
            .iter()
            .map(|(rel, src)| {
                let scan = FileScan::new(rel, src);
                let items = parse_items(&scan);
                (scan, items)
            })
            .collect();
        let graph = CallGraph::build(&parsed);
        check_graph(&parsed, &graph, &Profile::lbchat())
    }

    #[test]
    fn t001_fires_through_a_call_chain() {
        let f = run(&[(
            "crates/simworld/src/x.rs",
            "// audit:phase(intent)\nfn intent() { helper(); }\nfn helper() { deep(); }\nfn deep(rng: &mut R) { let _ = rng.random_range(0..4); }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "T001");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("`intent` -> `helper` -> `deep`"), "{}", f[0].message);
    }

    #[test]
    fn t001_quiet_when_draws_are_unreachable() {
        let f = run(&[(
            "crates/simworld/src/x.rs",
            "// audit:phase(intent)\nfn intent() { helper(); }\nfn helper() {}\nfn apply(rng: &mut R) { let _ = rng.random_range(0..4); }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn t002_fires_on_ambient_entropy_outside_seeded_scope() {
        let f = run(&[
            (
                "crates/experiments/src/run.rs",
                "// audit:entry(seeded)\nfn main_cell() { helper(); }\n",
            ),
            (
                "crates/bench/src/lib.rs",
                "pub fn helper() { let t = std::time::SystemTime::now(); }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "T002");
        assert_eq!(f[0].path, "crates/bench/src/lib.rs");
        assert!(f[0].message.contains("SystemTime::now"));
    }

    #[test]
    fn t002_does_not_double_report_seeded_files() {
        // Inside the seeded set D003 owns the site; T002 stays quiet.
        let f = run(&[(
            "crates/core/src/x.rs",
            "// audit:entry(seeded)\nfn cell() { let r = thread_rng(); }\n",
        )]);
        assert!(f.iter().all(|x| x.lint != "T002"), "{f:?}");
    }

    #[test]
    fn p005_fires_on_panic_outside_hot_scope() {
        let f = run(&[
            (
                "crates/core/src/runtime/session.rs",
                "// audit:entry(hot)\nfn run() { encode_all(); }\n",
            ),
            (
                "crates/core/src/compress2.rs",
                "pub fn encode_all() { let v: Option<u8> = None; v.unwrap(); }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "P005");
        assert_eq!(f[0].path, "crates/core/src/compress2.rs");
    }

    #[test]
    fn mutual_recursion_terminates() {
        let f = run(&[(
            "crates/simworld/src/x.rs",
            "// audit:phase(intent)\nfn a() { b(); }\nfn b() { a(); }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn malformed_annotations_are_a002() {
        let f = run(&[(
            "crates/simworld/src/x.rs",
            "// audit:phase(apply)\nfn a() {}\n// audit:entry(warm)\nfn b() {}\n// audit:phase(intent)\n",
        )]);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.lint == "A002"));
    }
}
