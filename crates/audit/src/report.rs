//! The audit report: human rendering, machine-diffable JSON
//! (schema [`SCHEMA`]), and the `--baseline` ratchet diff.
//!
//! The JSON serialization is deliberately timestamp-free and fully
//! determined by the findings (sorted by the [`crate::lints::Finding`]
//! ordering), so two runs over the same tree produce byte-identical
//! reports and a committed baseline diffs cleanly in review.

use crate::lints::{Finding, Suppressed};
use lbchat::obs::{parse, Json};
use std::collections::BTreeMap;

/// Report schema identifier, bumped on breaking format changes.
pub const SCHEMA: &str = "lbchat-audit/v1";

/// The result of one audit run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Un-suppressed findings, sorted.
    pub findings: Vec<Finding>,
    /// Findings an `audit:allow` suppressed, sorted.
    pub suppressed: Vec<Suppressed>,
}

/// Failures reading a report back from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError(pub String);

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad report: {}", self.0)
    }
}

impl std::error::Error for ReportError {}

impl Report {
    /// Builds a report (inputs are assumed already sorted by
    /// [`crate::lints::apply_allows`]).
    pub fn new(files_scanned: usize, findings: Vec<Finding>, suppressed: Vec<Suppressed>) -> Self {
        Report { files_scanned, findings, suppressed }
    }

    /// Whether the tree is audit-clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Finding counts per lint id, sorted by id.
    pub fn counts(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry(f.lint.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Serializes to the [`SCHEMA`] JSON document.
    pub fn to_json(&self) -> Json {
        let finding_json = |f: &Finding| {
            Json::Obj(vec![
                ("lint".into(), f.lint.as_str().into()),
                ("path".into(), f.path.as_str().into()),
                ("line".into(), f.line.into()),
                ("message".into(), f.message.as_str().into()),
                ("snippet".into(), f.snippet.as_str().into()),
            ])
        };
        let suppressed_json = |s: &Suppressed| {
            Json::Obj(vec![
                ("lint".into(), s.lint.as_str().into()),
                ("path".into(), s.path.as_str().into()),
                ("line".into(), s.line.into()),
                ("reason".into(), s.reason.as_str().into()),
            ])
        };
        Json::Obj(vec![
            ("schema".into(), SCHEMA.into()),
            ("files_scanned".into(), self.files_scanned.into()),
            (
                "counts".into(),
                Json::Obj(self.counts().into_iter().map(|(k, v)| (k, v.into())).collect()),
            ),
            ("findings".into(), Json::Arr(self.findings.iter().map(finding_json).collect())),
            ("suppressed".into(), Json::Arr(self.suppressed.iter().map(suppressed_json).collect())),
        ])
    }

    /// Parses a report written by [`Report::to_json`].
    pub fn from_json(text: &str) -> Result<Report, ReportError> {
        let v = parse(text).map_err(|e| ReportError(e.to_string()))?;
        let schema = v.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(ReportError(format!("schema {schema:?}, expected {SCHEMA:?}")));
        }
        let files_scanned = v
            .get("files_scanned")
            .and_then(Json::as_u64)
            .ok_or_else(|| ReportError("missing files_scanned".into()))?
            as usize;
        let str_field = |o: &Json, k: &str| -> Result<String, ReportError> {
            o.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ReportError(format!("missing string field {k:?}")))
        };
        let line_field = |o: &Json| -> Result<usize, ReportError> {
            o.get("line")
                .and_then(Json::as_u64)
                .map(|u| u as usize)
                .ok_or_else(|| ReportError("missing line".into()))
        };
        let mut findings = Vec::new();
        for o in v.get("findings").and_then(Json::as_arr).unwrap_or(&[]) {
            findings.push(Finding {
                lint: str_field(o, "lint")?,
                path: str_field(o, "path")?,
                line: line_field(o)?,
                message: str_field(o, "message")?,
                snippet: str_field(o, "snippet")?,
            });
        }
        let mut suppressed = Vec::new();
        for o in v.get("suppressed").and_then(Json::as_arr).unwrap_or(&[]) {
            suppressed.push(Suppressed {
                lint: str_field(o, "lint")?,
                path: str_field(o, "path")?,
                line: line_field(o)?,
                reason: str_field(o, "reason")?,
            });
        }
        Ok(Report { files_scanned, findings, suppressed })
    }

    /// Human-readable rendering, one finding per line plus a summary.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}: {}:{}: {}", f.lint, f.path, f.line, f.message));
            if !f.snippet.is_empty() {
                out.push_str(&format!("\n      | {}", f.snippet));
            }
            out.push('\n');
        }
        let counts = self.counts();
        if counts.is_empty() {
            out.push_str(&format!(
                "audit clean: {} files scanned, {} suppressed finding(s)\n",
                self.files_scanned,
                self.suppressed.len()
            ));
        } else {
            let by_lint: Vec<String> =
                counts.iter().map(|(k, v)| format!("{k}×{v}")).collect();
            out.push_str(&format!(
                "audit FAILED: {} finding(s) [{}] across {} files scanned ({} suppressed)\n",
                self.findings.len(),
                by_lint.join(", "),
                self.files_scanned,
                self.suppressed.len()
            ));
        }
        out
    }

    /// GitHub-annotations rendering: one `::error` workflow command per
    /// finding, so CI paints findings directly onto the diff view. Only
    /// the listed findings are rendered (the caller passes the post-
    /// ratchet set in baseline mode, or all findings otherwise).
    pub fn github_annotations(findings: &[Finding]) -> String {
        let mut out = String::new();
        for f in findings {
            let name = crate::lints::lint_spec(&f.lint).map_or("", |l| l.name);
            out.push_str(&format!(
                "::error file={},line={},title={} {}::{}\n",
                gh_escape_property(&f.path),
                f.line,
                f.lint,
                gh_escape_property(name),
                gh_escape_data(&f.message),
            ));
        }
        out
    }

    /// Ratchet diff against a baseline report: the findings of `self`
    /// not present in `baseline`. Matching is by the multiset of
    /// `(lint, path, snippet)` — line numbers are excluded so unrelated
    /// edits moving a known finding up or down do not break the ratchet.
    pub fn diff(&self, baseline: &Report) -> Vec<Finding> {
        let mut budget: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
        for f in &baseline.findings {
            *budget.entry((&f.lint, &f.path, &f.snippet)).or_insert(0) += 1;
        }
        let mut new = Vec::new();
        for f in &self.findings {
            match budget.get_mut(&(f.lint.as_str(), f.path.as_str(), f.snippet.as_str())) {
                Some(n) if *n > 0 => *n -= 1,
                _ => new.push(f.clone()),
            }
        }
        new
    }
}

/// Escapes a workflow-command data section (`%`, CR, LF).
fn gh_escape_data(text: &str) -> String {
    text.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes a workflow-command property value (data escapes plus `:`, `,`).
fn gh_escape_property(text: &str) -> String {
    gh_escape_data(text).replace(':', "%3A").replace(',', "%2C")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &str, path: &str, line: usize, snippet: &str) -> Finding {
        Finding {
            lint: lint.into(),
            path: path.into(),
            line,
            message: format!("{lint} message"),
            snippet: snippet.into(),
        }
    }

    fn sample() -> Report {
        Report::new(
            42,
            vec![
                finding("D002", "crates/x/src/a.rs", 7, "use std::collections::HashMap;"),
                finding("P001", "crates/x/src/b.rs", 3, "v.last().unwrap()"),
            ],
            vec![Suppressed {
                path: "crates/x/src/c.rs".into(),
                line: 11,
                lint: "P004".into(),
                reason: "i < n and j < n by construction".into(),
            }],
        )
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let text = r.to_json().to_string();
        assert!(text.starts_with("{\"schema\":\"lbchat-audit/v1\""));
        let back = Report::from_json(&text).expect("reparse");
        assert_eq!(back, r);
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = sample().to_json().to_string();
        let b = sample().to_json().to_string();
        assert_eq!(a, b);
        assert!(!a.contains("time"), "no timestamps in reports");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = Report::from_json("{\"schema\":\"other/v9\"}").unwrap_err();
        assert!(err.0.contains("schema"));
    }

    #[test]
    fn counts_group_by_lint() {
        let r = Report::new(
            1,
            vec![
                finding("P001", "a.rs", 1, "x"),
                finding("P001", "a.rs", 2, "y"),
                finding("D001", "a.rs", 3, "z"),
            ],
            vec![],
        );
        let c = r.counts();
        assert_eq!(c.get("P001"), Some(&2));
        assert_eq!(c.get("D001"), Some(&1));
    }

    #[test]
    fn human_summary_reports_clean_and_failed() {
        let clean = Report::new(10, vec![], vec![]);
        assert!(clean.human().contains("audit clean"));
        assert!(sample().human().contains("audit FAILED: 2 finding(s)"));
    }

    #[test]
    fn diff_ignores_line_moves_but_catches_new_findings() {
        let base = sample();
        let mut moved = sample();
        moved.findings[0].line = 99; // same snippet, shifted by an edit
        assert!(moved.diff(&base).is_empty());

        let mut grown = sample();
        grown.findings.push(finding("P001", "crates/x/src/b.rs", 8, "w.unwrap()"));
        let new = grown.diff(&base);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].snippet, "w.unwrap()");
    }

    #[test]
    fn github_annotations_escape_workflow_commands() {
        let f = vec![Finding {
            lint: "D002".into(),
            path: "crates/x/src/a.rs".into(),
            line: 7,
            message: "50% of runs\ndiffer".into(),
            snippet: String::new(),
        }];
        let out = Report::github_annotations(&f);
        assert_eq!(
            out,
            "::error file=crates/x/src/a.rs,line=7,title=D002 unordered-collection::50%25 of runs%0Adiffer\n"
        );
    }

    #[test]
    fn diff_counts_multiplicity() {
        let base = Report::new(1, vec![finding("P001", "a.rs", 1, "x.unwrap()")], vec![]);
        let twice = Report::new(
            1,
            vec![
                finding("P001", "a.rs", 1, "x.unwrap()"),
                finding("P001", "a.rs", 9, "x.unwrap()"),
            ],
            vec![],
        );
        assert_eq!(twice.diff(&base).len(), 1, "second identical finding is new");
    }
}
