//! Deterministic workspace file discovery.
//!
//! Collects every `.rs` file under `crates/`, excluding the vendored
//! stand-in crates and any [`crate::lints::Profile::skip_paths`] prefix.
//! Directory entries are sorted at every level — `read_dir` order is
//! filesystem-dependent, and the report must be byte-identical across
//! machines.

use crate::lints::Profile;
use crate::AuditError;
use std::path::Path;

/// Workspace-relative paths (forward slashes) of the files to scan,
/// sorted.
pub fn workspace_files(root: &Path, profile: &Profile) -> Result<Vec<String>, AuditError> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let mut crate_dirs = read_sorted(&crates_dir)?;
    crate_dirs.retain(|name| !profile.exclude_crates.iter().any(|e| e == name));
    for name in crate_dirs {
        let dir = crates_dir.join(&name);
        if dir.is_dir() {
            collect_rs(&dir, &format!("crates/{name}"), profile, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

/// Sorted names of a directory's entries.
fn read_sorted(dir: &Path) -> Result<Vec<String>, AuditError> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| AuditError::Io(dir.display().to_string(), e))?;
    let mut names = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| AuditError::Io(dir.display().to_string(), e))?;
        if let Some(name) = entry.file_name().to_str() {
            names.push(name.to_string());
        }
    }
    names.sort();
    Ok(names)
}

fn collect_rs(
    dir: &Path,
    rel: &str,
    profile: &Profile,
    out: &mut Vec<String>,
) -> Result<(), AuditError> {
    for name in read_sorted(dir)? {
        if name == "target" || name.starts_with('.') {
            continue;
        }
        let child = dir.join(&name);
        let child_rel = format!("{rel}/{name}");
        if profile.skip_paths.iter().any(|p| {
            child_rel.starts_with(p.as_str()) || child_rel == p.trim_end_matches('/')
        }) {
            continue;
        }
        if child.is_dir() {
            collect_rs(&child, &child_rel, profile, out)?;
        } else if name.ends_with(".rs") {
            out.push(child_rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_tree_walk_is_sorted_and_scoped() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let profile = Profile::lbchat();
        let files = workspace_files(&root, &profile).expect("walk");
        assert!(!files.is_empty());
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be sorted");
        assert!(files.iter().all(|f| f.ends_with(".rs")));
        assert!(
            files.iter().all(|f| !f.starts_with("crates/rand/")
                && !f.starts_with("crates/proptest/")
                && !f.starts_with("crates/criterion/")),
            "vendored stand-ins are excluded"
        );
        assert!(
            files.iter().all(|f| !f.starts_with("crates/audit/tests/fixtures/")),
            "bad-snippet fixtures are excluded"
        );
        assert!(files.iter().any(|f| f == "crates/core/src/runtime/mod.rs"));
    }
}
