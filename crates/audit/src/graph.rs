//! Symbol table and conservative call graph over the workspace.
//!
//! [`CallGraph::build`] takes every parsed file and produces one node per
//! non-test `fn` item plus resolved caller→callee edges. Resolution is
//! deliberately *conservative in the over-approximating direction* for
//! anything the taint lints walk: an unqualified method call resolves to
//! every method of that name anywhere in the workspace, so a taint walk
//! can only see *more* paths than really exist, never fewer. Free and
//! module-qualified calls are narrowed by Rust-like scoping — unqualified
//! calls see file-top-level fns plus same-inline-mod siblings, `m::f(..)`
//! sees fns whose (file or inline) module is `m` — but always fall back
//! to every same-name free fn when the scoped set is empty. The one
//! documented under-approximation is an exactly-qualified call to a type
//! with no matching method (`Foreign::thing(..)`): it resolves to
//! nothing, because inventing edges to unrelated same-name methods would
//! drown the lints in noise. `docs/AUDIT.md` spells out both directions.

use std::collections::BTreeMap;

use crate::lexer::FileScan;
use crate::parser::{tokenize, word, FnItem, ItemSet, Tok};

/// One function in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// The module the fn lives in: the innermost *inline* `mod` block
    /// containing it, or the file's own module name (its stem, or the
    /// parent directory for `mod.rs`/`lib.rs`/`main.rs`).
    pub module: String,
    /// The parsed item.
    pub item: FnItem,
}

impl FnNode {
    /// Human-readable handle: `path::Type::name` without the `.rs`, with
    /// the inline mod spliced in when the fn lives in one
    /// (`path::reference::name`).
    pub fn display(&self) -> String {
        if self.module == module_of(&self.file) {
            format!("{}::{}", self.file.trim_end_matches(".rs"), self.item.display())
        } else {
            format!(
                "{}::{}::{}",
                self.file.trim_end_matches(".rs"),
                self.module,
                self.item.display()
            )
        }
    }
}

/// One call site extracted from a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallSite {
    /// `name(..)` — an unqualified free call.
    Free(String),
    /// `.name(..)` — a method call on some receiver.
    Method(String),
    /// `qual::name(..)` — the last qualifier segment and the name.
    Path(String, String),
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions, in deterministic (file, source) order.
    pub fns: Vec<FnNode>,
    /// `edges[i]` = sorted, deduped callee indices of `fns[i]`.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from parsed files. `files` must already be in
    /// deterministic (sorted-walk) order; node order follows it.
    pub fn build(files: &[(FileScan, ItemSet)]) -> CallGraph {
        let mut fns = Vec::new();
        for (scan, items) in files {
            for item in &items.fns {
                if !item.is_test {
                    // Innermost inline mod containing the declaration, by
                    // byte offset of the decl line.
                    let decl_off = scan
                        .line_starts
                        .get(item.decl_line - 1)
                        .copied()
                        .unwrap_or(0);
                    let module = items
                        .mods
                        .iter()
                        .filter(|m| m.span.0 <= decl_off && decl_off <= m.span.1)
                        .min_by_key(|m| m.span.1 - m.span.0)
                        .map_or_else(
                            || module_of(&scan.rel).to_string(),
                            |m| m.name.clone(),
                        );
                    fns.push(FnNode {
                        file: scan.rel.clone(),
                        module,
                        item: item.clone(),
                    });
                }
            }
        }
        // Symbol table: free fns by name, methods by name, and methods by
        // (type, name) for exactly-qualified calls.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, node) in fns.iter().enumerate() {
            match &node.item.impl_type {
                None => free.entry(&node.item.name).or_default().push(i),
                Some(t) => {
                    methods.entry(&node.item.name).or_default().push(i);
                    typed.entry((t, &node.item.name)).or_default().push(i);
                }
            }
        }
        let scan_of: BTreeMap<&str, &FileScan> =
            files.iter().map(|(s, _)| (s.rel.as_str(), s)).collect();
        let mut edges = Vec::with_capacity(fns.len());
        for node in &fns {
            let mut out = Vec::new();
            if let (Some(scan), Some(span)) = (scan_of.get(node.file.as_str()), node.item.body) {
                for site in extract_calls(&scan.code[span.0..=span.1]) {
                    resolve(&site, node, &fns, &free, &methods, &typed, &mut out);
                }
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        CallGraph { fns, edges }
    }

    /// Index of the unique fn named `name` defined in `file` (first match
    /// in source order).
    pub fn find(&self, file: &str, name: &str) -> Option<usize> {
        self.fns
            .iter()
            .position(|n| n.file == file && n.item.name == name)
    }

    /// All resolved edges as display-name pairs, sorted — the golden
    /// fixture format.
    pub fn edge_pairs(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (i, callees) in self.edges.iter().enumerate() {
            for &j in callees {
                out.push((self.fns[i].display(), self.fns[j].display()));
            }
        }
        out.sort();
        out
    }
}

/// Words that look like calls but are control flow or declarations.
const NON_CALL_WORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "let", "move", "in", "as", "ref",
    "mut", "else", "unsafe", "await", "struct", "enum", "union", "trait", "impl", "where",
];

/// Extracts every call site from a blanked body slice.
pub fn extract_calls(body: &str) -> Vec<CallSite> {
    let toks = tokenize(body);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Tok::Word(..) = toks[i] else { continue };
        let name = word(body, &toks[i]);
        if NON_CALL_WORDS.contains(&name) {
            continue;
        }
        // A call is `name (` or `name ::< … > (` (turbofish).
        let mut j = i + 1;
        if matches!(
            (toks.get(j), toks.get(j + 1), toks.get(j + 2)),
            (
                Some(Tok::Punct(_, b':')),
                Some(Tok::Punct(_, b':')),
                Some(Tok::Punct(_, b'<'))
            )
        ) {
            // Skip the balanced angle list.
            let mut depth = 0i32;
            j += 2;
            while j < toks.len() {
                match toks[j] {
                    Tok::Punct(_, b'<') => depth += 1,
                    Tok::Punct(o, b'>') if !(o > 0 && body.as_bytes()[o - 1] == b'-') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !matches!(toks.get(j), Some(Tok::Punct(_, b'('))) {
            continue;
        }
        // Macro invocation `name!(..)` is not a fn call.
        if matches!(toks.get(i + 1), Some(Tok::Punct(_, b'!'))) {
            continue;
        }
        // Classify by what precedes the name.
        match (i.checked_sub(2).map(|k| toks[k]), i.checked_sub(1).map(|k| toks[k])) {
            (Some(Tok::Punct(_, b':')), Some(Tok::Punct(_, b':'))) => {
                // Declaration keywords immediately before never happen
                // here (`::` in between), so this is a path call; the
                // qualifier is the word before the two colons, looking
                // through a generic list (`Vec::<u8>::new`, `Vec<u8>::new`).
                out.push(CallSite::Path(path_qual(body, &toks, i), name.to_string()));
            }
            (_, Some(Tok::Punct(_, b'.'))) => out.push(CallSite::Method(name.to_string())),
            (_, Some(Tok::Word(o, l))) => {
                // `fn name(`, `struct Name(` … are declarations.
                if !NON_CALL_WORDS.contains(&&body[o..o + l]) {
                    out.push(CallSite::Free(name.to_string()));
                }
            }
            _ => out.push(CallSite::Free(name.to_string())),
        }
    }
    out
}

/// The qualifier of a path call whose name sits at token `i` (with
/// `toks[i-2..i]` being `::`): the word before the colons, skipping a
/// balanced generic list and its optional own `::` (`Vec::<u8>::new`,
/// `Vec<u8>::new`). Empty when nothing word-like precedes.
fn path_qual(body: &str, toks: &[Tok], i: usize) -> String {
    let Some(mut k) = i.checked_sub(3) else {
        return String::new();
    };
    if let Tok::Punct(_, b'>') = toks[k] {
        // Walk back over the balanced `<…>`.
        let mut depth = 0i32;
        loop {
            match toks[k] {
                Tok::Punct(_, b'>') => depth += 1,
                Tok::Punct(_, b'<') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            match k.checked_sub(1) {
                Some(p) => k = p,
                None => return String::new(),
            }
        }
        // Before the `<`: either the qualifier word directly or a `::`.
        let Some(mut p) = k.checked_sub(1) else {
            return String::new();
        };
        if matches!(
            (p.checked_sub(1).map(|q| toks[q]), toks[p]),
            (Some(Tok::Punct(_, b':')), Tok::Punct(_, b':'))
        ) {
            match p.checked_sub(2) {
                Some(q) => p = q,
                None => return String::new(),
            }
        }
        k = p;
    }
    match toks[k] {
        Tok::Word(..) => word(body, &toks[k]).to_string(),
        _ => String::new(),
    }
}

/// The module name a file defines: its stem, or the parent directory for
/// `mod.rs` / `lib.rs` / `main.rs` (`crates/core/src/runtime/mod.rs` →
/// `runtime`).
fn module_of(file: &str) -> &str {
    let stem = file
        .rsplit('/')
        .next()
        .unwrap_or(file)
        .trim_end_matches(".rs");
    if matches!(stem, "mod" | "lib" | "main") {
        let mut parts = file.rsplit('/');
        parts.next();
        parts.next().unwrap_or(stem)
    } else {
        stem
    }
}

/// Appends the node indices a call site may reach.
fn resolve(
    site: &CallSite,
    caller: &FnNode,
    fns: &[FnNode],
    free: &BTreeMap<&str, Vec<usize>>,
    methods: &BTreeMap<&str, Vec<usize>>,
    typed: &BTreeMap<(&str, &str), Vec<usize>>,
    out: &mut Vec<usize>,
) {
    match site {
        // Free call: every free fn of that name that is actually in scope
        // unqualified — file-top-level fns anywhere (importable with a
        // plain `use`) plus siblings in the caller's own inline mod. A
        // free fn buried in *another* inline mod needs qualification to
        // reach, so edges to it would be pure noise (`reference::reduce`
        // vs the optimized `reduce`). Falls back to every fn of the name
        // if the scoped set is empty, to stay over-approximate.
        CallSite::Free(name) => {
            if let Some(v) = free.get(name.as_str()) {
                let scoped: Vec<usize> = v
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let n = &fns[i];
                        n.module == module_of(&n.file)
                            || (n.file == caller.file && n.module == caller.module)
                    })
                    .collect();
                if scoped.is_empty() {
                    out.extend_from_slice(v);
                } else {
                    out.extend_from_slice(&scoped);
                }
            }
        }
        // Method call: every method of that name on any type — the
        // over-approximation that keeps taint sound without type info.
        CallSite::Method(name) => {
            if let Some(v) = methods.get(name.as_str()) {
                out.extend_from_slice(v);
            }
        }
        CallSite::Path(qual, name) => {
            let qual = if qual == "Self" {
                caller.item.impl_type.clone().unwrap_or_default()
            } else {
                qual.clone()
            };
            if qual.chars().next().is_some_and(char::is_uppercase) {
                // Exactly qualified: only that type's methods. A type we
                // did not parse (std, vendored) resolves to nothing —
                // the documented under-approximation.
                if let Some(v) = typed.get(&(qual.as_str(), name.as_str())) {
                    out.extend_from_slice(v);
                }
            } else {
                // Module-qualified (`event_loop::run`, `reference::reduce`):
                // narrow to the free fns whose module — file-level or
                // inline — matches the qualifier; a same-name free fn in
                // an unrelated module is not reachable through this path.
                // If nothing matches the qualifier (`self::`, `super::`,
                // a re-export), fall back to every free fn of that name
                // to stay over-approximate.
                if let Some(v) = free.get(name.as_str()) {
                    let narrowed: Vec<usize> = v
                        .iter()
                        .copied()
                        .filter(|&i| fns[i].module == *qual)
                        .collect();
                    if narrowed.is_empty() {
                        out.extend_from_slice(v);
                    } else {
                        out.extend_from_slice(&narrowed);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_items;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(FileScan, ItemSet)> = files
            .iter()
            .map(|(rel, src)| {
                let scan = FileScan::new(rel, src);
                let items = parse_items(&scan);
                (scan, items)
            })
            .collect();
        CallGraph::build(&parsed)
    }

    #[test]
    fn free_calls_resolve_across_files() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn top() { helper(); }\n"),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        assert_eq!(
            g.edge_pairs(),
            [("crates/a/src/lib::top".into(), "crates/b/src/lib::helper".into())]
        );
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nstruct B;\nimpl A {\n    fn go(&self) {}\n}\nimpl B {\n    fn go(&self) {}\n}\nfn driver(a: &A) { a.go(); }\n",
        )]);
        let driver = g.find("crates/a/src/lib.rs", "driver").unwrap();
        assert_eq!(g.edges[driver].len(), 2);
    }

    #[test]
    fn exact_qualification_narrows_and_self_maps_to_impl_type() {
        let src = "struct A;\nstruct B;\nimpl A {\n    fn mk() {}\n    fn call(&self) { Self::mk(); B::mk(); }\n}\nimpl B {\n    fn mk() {}\n}\n";
        let g = graph(&[("crates/a/src/lib.rs", src)]);
        let call = g
            .fns
            .iter()
            .position(|n| n.item.name == "call")
            .unwrap();
        let callees: Vec<String> =
            g.edges[call].iter().map(|&j| g.fns[j].display()).collect();
        assert_eq!(
            callees,
            [
                "crates/a/src/lib::A::mk",
                "crates/a/src/lib::B::mk"
            ]
        );
    }

    #[test]
    fn unknown_qualified_type_resolves_to_nothing() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn lonely() { Foreign::thing(); }\nfn thing() {}\n",
        )]);
        let lonely = g.find("crates/a/src/lib.rs", "lonely").unwrap();
        assert!(g.edges[lonely].is_empty());
    }

    #[test]
    fn module_qualified_call_narrows_to_the_module_file() {
        let g = graph(&[
            (
                "crates/core/src/runtime/mod.rs",
                "pub fn top() { event_loop::run(); }\n",
            ),
            ("crates/core/src/runtime/event_loop.rs", "pub fn run() {}\n"),
            ("crates/bench/src/suite.rs", "pub fn run() {}\n"),
        ]);
        assert_eq!(
            g.edge_pairs(),
            [(
                "crates/core/src/runtime/mod::top".into(),
                "crates/core/src/runtime/event_loop::run".into()
            )]
        );
    }

    #[test]
    fn inline_mod_fns_are_qualified_not_ambient() {
        // `fast()` from outside the inline mod must NOT resolve to
        // `reference::fast` — only `reference::fast()` reaches it.
        let src = "pub fn fast() {}\npub fn driver() { fast(); }\npub fn golden() { reference::fast(); }\npub mod reference {\n    pub fn fast() {}\n}\n";
        let g = graph(&[("crates/core/src/coreset.rs", src)]);
        assert_eq!(
            g.edge_pairs(),
            [
                (
                    "crates/core/src/coreset::driver".into(),
                    "crates/core/src/coreset::fast".into()
                ),
                (
                    "crates/core/src/coreset::golden".into(),
                    "crates/core/src/coreset::reference::fast".into()
                ),
            ]
        );
        let golden = g.find("crates/core/src/coreset.rs", "golden").unwrap();
        let callee = g.edges[golden][0];
        assert_eq!(g.fns[callee].module, "reference");
    }

    #[test]
    fn unmatched_module_qualifier_falls_back_to_all_free_fns() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn top() { reexported::run(); }\n"),
            ("crates/b/src/suite.rs", "pub fn run() {}\n"),
        ]);
        let top = g.find("crates/a/src/lib.rs", "top").unwrap();
        assert_eq!(g.edges[top].len(), 1);
    }

    #[test]
    fn macros_and_declarations_are_not_calls() {
        let calls = extract_calls("{ println!(\"x\"); struct Inner(u32); fn nested() {} let v = Vec::<u8>::new(); }");
        assert_eq!(
            calls,
            [CallSite::Path("Vec".into(), "new".into())]
        );
    }

    #[test]
    fn turbofish_is_a_call() {
        let calls = extract_calls("{ parse::<u32>(s); x.collect::<Vec<_>>(); }");
        assert_eq!(
            calls,
            [
                CallSite::Free("parse".into()),
                CallSite::Method("collect".into()),
            ]
        );
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::live(); }\n}\n",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert!(g.edge_pairs().is_empty());
    }
}
