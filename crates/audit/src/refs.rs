//! R001: reference-oracle drift detection.
//!
//! The perf story of this tree rests on "retained verbatim" reference
//! modules — `coreset::reference`, `bev::reference`, `vnn::reference`,
//! `runtime::reference`, `simworld::reference` — that the optimized
//! paths are proptested bit-identical against. Nothing stops a refactor
//! from quietly editing an oracle *and* its fixture together, at which
//! point "bit-identical to the reference" proves nothing. This check
//! pins each module's raw text with an FNV-1a-64 content hash in a
//! committed manifest (`crates/audit/reference_manifest.txt`, one
//! `name path hash` line per module); any drift is an R001 finding until
//! the change is deliberately re-pinned with
//! `lbchat-audit --write-reference-manifest`.
//!
//! Inline modules (`pub mod reference { … }` inside a larger file) are
//! hashed over their brace span only, so unrelated edits in the same
//! file do not invalidate the pin. The whole check is skipped when none
//! of the reference files are in the scanned tree (e2e fixture trees).

use crate::lexer::FileScan;
use crate::lints::{Finding, Profile};
use crate::parser::ItemSet;

/// One pinned oracle: logical name, defining file, and the inline `mod`
/// to hash (`None` hashes the whole file).
#[derive(Debug, Clone)]
pub struct RefModule {
    /// Logical name used in the manifest (`coreset::reference`).
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// Inline module name when the oracle is a `mod` span inside the
    /// file rather than the whole file.
    pub inline_mod: Option<String>,
}

/// FNV-1a 64-bit over raw bytes — dependency-free and stable.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The current `(name, file, hash, decl_line)` of every reference module
/// found in the tree. Missing files are simply absent; a present file
/// whose inline mod is missing reports hash `None`.
fn current_entries(
    files: &[(FileScan, ItemSet)],
    profile: &Profile,
) -> Vec<(RefModule, Option<(u64, usize)>)> {
    let mut out = Vec::new();
    for rm in &profile.reference_modules {
        let Some((scan, items)) = files
            .iter()
            .find(|(s, _)| s.rel == rm.file)
            .map(|(s, i)| (s, i))
        else {
            continue;
        };
        let hashed = match &rm.inline_mod {
            None => Some((fnv1a64(scan.raw.as_bytes()), 1)),
            Some(name) => items.mods.iter().find(|m| &m.name == name).map(|m| {
                // Blanking preserves byte length, so blanked-code spans
                // index straight into the raw text.
                (fnv1a64(&scan.raw.as_bytes()[m.span.0..=m.span.1]), m.decl_line)
            }),
        };
        out.push((rm.clone(), hashed));
    }
    out
}

/// The regenerated manifest text for the current tree.
pub fn manifest_text(files: &[(FileScan, ItemSet)], profile: &Profile) -> String {
    let mut lines: Vec<String> = current_entries(files, profile)
        .into_iter()
        .filter_map(|(rm, hashed)| {
            hashed.map(|(h, _)| format!("{} {} {:016x}", rm.name, rm.file, h))
        })
        .collect();
    lines.sort();
    let mut text = lines.join("\n");
    text.push('\n');
    text
}

/// Cross-checks the committed manifest against the tree. `manifest` is
/// the manifest file's text when readable.
pub fn check_references(
    files: &[(FileScan, ItemSet)],
    profile: &Profile,
    manifest: Option<&str>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let entries = current_entries(files, profile);
    if entries.is_empty() {
        return out; // partial tree: no oracles to pin
    }
    let mut push = |path: &str, line: usize, message: String| {
        out.push(Finding {
            path: path.to_string(),
            line,
            lint: "R001".to_string(),
            message,
            snippet: String::new(),
        });
    };
    let Some(manifest) = manifest else {
        push(
            &profile.reference_manifest,
            1,
            format!(
                "reference manifest {} is missing; run `lbchat-audit --write-reference-manifest`",
                profile.reference_manifest
            ),
        );
        return out;
    };
    let pinned: Vec<(usize, &str, &str, &str)> = manifest
        .lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let mut it = l.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(n), Some(f), Some(h)) => Some((i + 1, n, f, h)),
                _ => None,
            }
        })
        .collect();
    for (rm, hashed) in &entries {
        let pin = pinned.iter().find(|(_, n, _, _)| *n == rm.name);
        let Some((hash, line)) = hashed else {
            push(
                &rm.file,
                1,
                format!(
                    "reference module `{}` (inline mod `{}`) not found in {}",
                    rm.name,
                    rm.inline_mod.as_deref().unwrap_or(""),
                    rm.file
                ),
            );
            continue;
        };
        match pin {
            None => push(
                &rm.file,
                *line,
                format!(
                    "reference module `{}` is not pinned in {}; run `lbchat-audit --write-reference-manifest`",
                    rm.name, profile.reference_manifest
                ),
            ),
            Some((mline, _, pfile, phash)) => {
                let want = format!("{hash:016x}");
                if *pfile != rm.file {
                    push(
                        &profile.reference_manifest,
                        *mline,
                        format!("reference module `{}` moved: pinned at {pfile}, found at {}", rm.name, rm.file),
                    );
                } else if *phash != want {
                    push(
                        &rm.file,
                        *line,
                        format!(
                            "reference module `{}` drifted from its pin ({phash} -> {want}); if intentional, re-pin with `lbchat-audit --write-reference-manifest`",
                            rm.name
                        ),
                    );
                }
            }
        }
    }
    for (mline, name, _, _) in &pinned {
        if !entries.iter().any(|(rm, _)| &rm.name == name) {
            push(
                &profile.reference_manifest,
                *mline,
                format!("manifest pins unknown reference module `{name}`; regenerate with `lbchat-audit --write-reference-manifest`"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_items;

    fn tree(files: &[(&str, &str)]) -> Vec<(FileScan, ItemSet)> {
        files
            .iter()
            .map(|(rel, src)| {
                let scan = FileScan::new(rel, src);
                let items = parse_items(&scan);
                (scan, items)
            })
            .collect()
    }

    fn profile() -> Profile {
        let mut p = Profile::lbchat();
        p.reference_modules = vec![
            RefModule {
                name: "x::reference".into(),
                file: "crates/x/src/lib.rs".into(),
                inline_mod: Some("reference".into()),
            },
            RefModule {
                name: "y::reference".into(),
                file: "crates/y/src/reference.rs".into(),
                inline_mod: None,
            },
        ];
        p
    }

    const X: &str = "fn fast() {}\npub mod reference {\n    pub fn slow() {}\n}\n";
    const Y: &str = "pub fn oracle() -> u32 { 7 }\n";

    #[test]
    fn fresh_manifest_round_trips_clean() {
        let files = tree(&[("crates/x/src/lib.rs", X), ("crates/y/src/reference.rs", Y)]);
        let p = profile();
        let m = manifest_text(&files, &p);
        assert_eq!(m.lines().count(), 2);
        assert!(check_references(&files, &p, Some(&m)).is_empty());
    }

    #[test]
    fn drift_fires_and_repinning_clears() {
        let files = tree(&[("crates/x/src/lib.rs", X), ("crates/y/src/reference.rs", Y)]);
        let p = profile();
        let m = manifest_text(&files, &p);
        let drifted = tree(&[
            ("crates/x/src/lib.rs", X),
            ("crates/y/src/reference.rs", "pub fn oracle() -> u32 { 8 }\n"),
        ]);
        let f = check_references(&drifted, &p, Some(&m));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "R001");
        assert!(f[0].message.contains("y::reference"));
        let repinned = manifest_text(&drifted, &p);
        assert!(check_references(&drifted, &p, Some(&repinned)).is_empty());
    }

    #[test]
    fn inline_mod_hash_ignores_unrelated_edits() {
        let files = tree(&[("crates/x/src/lib.rs", X), ("crates/y/src/reference.rs", Y)]);
        let p = profile();
        let m = manifest_text(&files, &p);
        let edited = tree(&[
            ("crates/x/src/lib.rs", &X.replace("fn fast() {}", "fn faster() {}")),
            ("crates/y/src/reference.rs", Y),
        ]);
        assert!(check_references(&edited, &p, Some(&m)).is_empty());
    }

    #[test]
    fn missing_manifest_and_stale_entry_fire() {
        let files = tree(&[("crates/x/src/lib.rs", X), ("crates/y/src/reference.rs", Y)]);
        let p = profile();
        let f = check_references(&files, &p, None);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("is missing"));
        let m = format!("{}gone::reference crates/z/src/lib.rs 0000000000000000\n", manifest_text(&files, &p));
        let f = check_references(&files, &p, Some(&m));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("gone::reference"));
    }

    #[test]
    fn partial_tree_skips_silently() {
        let files = tree(&[("crates/core/src/runtime.rs", "fn f() {}\n")]);
        assert!(check_references(&files, &profile(), Some("")).is_empty());
    }
}
