//! The hand-rolled source lexer.
//!
//! [`FileScan`] turns one Rust source file into the shape the lints
//! operate on: a *blanked* copy of the code where string/char literal
//! contents and comments are replaced by spaces (so token searches never
//! match inside them), plus side tables of the extracted string literals
//! and comments, per-line test-region flags, and brace depth. This is a
//! deliberate line-based approximation — no `syn`, no proc-macro
//! expansion — which is exactly enough for the token-level lints in
//! [`crate::lints`] and keeps the tool dependency-free.
//!
//! Handled Rust surface: line comments (`//`, `///`, `//!`), nested block
//! comments, plain/byte strings with escapes, raw strings with any hash
//! count (`r"…"`, `r#"…"#`, `br##"…"##`), char and byte-char literals
//! (disambiguated from lifetimes), and `#[cfg(test)]` / `mod tests`
//! region tracking via brace depth.

/// One extracted string literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// Byte offset of the opening quote in the blanked code.
    pub offset: usize,
    /// 1-based line of the opening quote.
    pub line: usize,
    /// The literal's (unescaped-as-written) content, escapes left as-is.
    pub content: String,
}

/// One extracted comment (line or block), with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// An observability name referenced from code with a string literal:
/// the first literal argument of `.emit(`, `.open_span(`, `.add(`, or
/// `.observe(`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsName {
    /// `"event"`, `"counter"`, or `"gauge"`.
    pub category: &'static str,
    /// The literal name.
    pub name: String,
    /// File the call lives in (workspace-relative).
    pub path: String,
    /// 1-based line of the call.
    pub line: usize,
}

/// A lexed source file.
#[derive(Debug)]
pub struct FileScan {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Original source, for snippets.
    pub raw: String,
    /// Source with string/char contents and comments blanked to spaces.
    /// Same byte length as `raw`; newlines preserved; the opening and
    /// closing quotes of string literals are kept as `"` markers.
    pub code: String,
    /// Byte offset of the start of each line (0-based index = line - 1).
    pub line_starts: Vec<usize>,
    /// Whether each line is inside a test region (`#[cfg(test)]` item or
    /// `mod tests`), or the whole file is test/example code.
    pub test_line: Vec<bool>,
    /// Extracted string literals in source order.
    pub strings: Vec<StrLit>,
    /// Extracted comments in source order.
    pub comments: Vec<Comment>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    Block(u32),
    Str { raw_hashes: Option<u32> },
}

impl FileScan {
    /// Lexes `text` (the contents of `rel`).
    pub fn new(rel: &str, text: &str) -> Self {
        let bytes = text.as_bytes();
        let mut code = vec![b' '; bytes.len()];
        let mut strings = Vec::new();
        let mut comments = Vec::new();
        let mut line_starts = vec![0usize];
        let mut line = 1usize;
        let mut state = State::Code;
        let mut lit: Vec<u8> = Vec::new();
        let mut lit_start = (0usize, 0usize);
        let mut comment: Vec<u8> = Vec::new();
        let mut comment_line = 0usize;
        let mut i = 0usize;
        while i < bytes.len() {
            let b = bytes[i];
            if b == b'\n' {
                code[i] = b'\n';
                if state == State::LineComment {
                    comments.push(Comment { line: comment_line, text: take_utf8(&mut comment) });
                    state = State::Code;
                }
                line += 1;
                line_starts.push(i + 1);
                i += 1;
                continue;
            }
            match state {
                State::Code => {
                    if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                        state = State::LineComment;
                        comment_line = line;
                        comment.clear();
                        i += 2;
                        continue;
                    }
                    if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        state = State::Block(1);
                        comment_line = line;
                        comment.clear();
                        i += 2;
                        continue;
                    }
                    if b == b'"' {
                        code[i] = b'"';
                        lit.clear();
                        lit_start = (i, line);
                        state = State::Str { raw_hashes: None };
                        i += 1;
                        continue;
                    }
                    // Raw / byte strings: r", r#", b", br", br#" ...
                    if (b == b'r' || b == b'b') && !prev_is_ident(&code, i) {
                        if let Some((hashes, skip)) = raw_string_open(bytes, i) {
                            code[i] = b'"'; // marker at the prefix start
                            lit.clear();
                            lit_start = (i, line);
                            state = State::Str { raw_hashes: Some(hashes) };
                            i += skip;
                            continue;
                        }
                        if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                            code[i + 1] = b'"';
                            lit.clear();
                            lit_start = (i + 1, line);
                            state = State::Str { raw_hashes: None };
                            i += 2;
                            continue;
                        }
                    }
                    if b == b'\'' && (!prev_is_ident(&code, i) || byte_char_prefix(&code, i)) {
                        if let Some(len) = char_literal_len(bytes, i) {
                            // Blank the whole literal (it is never a
                            // token the lints care about).
                            i += len;
                            state = State::Code;
                            continue;
                        }
                        // A lifetime: keep the tick, it is harmless.
                        code[i] = b'\'';
                        i += 1;
                        continue;
                    }
                    code[i] = b;
                    i += 1;
                }
                State::LineComment => {
                    comment.push(b);
                    i += 1;
                }
                State::Block(depth) => {
                    if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        if depth == 1 {
                            comments.push(Comment {
                                line: comment_line,
                                text: take_utf8(&mut comment),
                            });
                            state = State::Code;
                        } else {
                            state = State::Block(depth - 1);
                        }
                        i += 2;
                        continue;
                    }
                    if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        state = State::Block(depth + 1);
                        i += 2;
                        continue;
                    }
                    comment.push(b);
                    i += 1;
                }
                State::Str { raw_hashes: None } => {
                    if b == b'\\' && i + 1 < bytes.len() {
                        lit.push(b);
                        lit.push(bytes[i + 1]);
                        i += 2;
                        continue;
                    }
                    if b == b'"' {
                        code[i] = b'"';
                        strings.push(StrLit {
                            offset: lit_start.0,
                            line: lit_start.1,
                            content: take_utf8(&mut lit),
                        });
                        state = State::Code;
                        i += 1;
                        continue;
                    }
                    lit.push(b);
                    i += 1;
                }
                State::Str { raw_hashes: Some(h) } => {
                    if b == b'"' && raw_string_closes(bytes, i, h) {
                        code[i] = b'"';
                        strings.push(StrLit {
                            offset: lit_start.0,
                            line: lit_start.1,
                            content: take_utf8(&mut lit),
                        });
                        state = State::Code;
                        i += 1 + h as usize;
                        continue;
                    }
                    lit.push(b);
                    i += 1;
                }
            }
        }
        if state == State::LineComment || matches!(state, State::Block(_)) {
            comments.push(Comment { line: comment_line, text: take_utf8(&mut comment) });
        }
        let code = String::from_utf8_lossy(&code).into_owned();
        let whole_file_test = rel.contains("/tests/")
            || rel.starts_with("tests/")
            || rel.contains("/examples/")
            || rel.contains("/benches/");
        let test_line = test_regions(&code, line_starts.len(), whole_file_test);
        FileScan {
            rel: rel.to_string(),
            raw: text.to_string(),
            code,
            line_starts,
            test_line,
            strings,
            comments,
        }
    }

    /// 1-based line number of a byte offset into `code`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether the (1-based) line is test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_line.get(line - 1).copied().unwrap_or(false)
    }

    /// The blanked code of one (1-based) line.
    pub fn code_line(&self, line: usize) -> &str {
        self.slice_line(&self.code, line)
    }

    /// The raw text of one (1-based) line, for snippets.
    pub fn raw_line(&self, line: usize) -> &str {
        self.slice_line(&self.raw, line)
    }

    fn slice_line<'a>(&self, s: &'a str, line: usize) -> &'a str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(s.len(), |&e| e.saturating_sub(1));
        &s[start..end.max(start)]
    }

    /// The first string literal at or after byte offset `from` in `code`,
    /// if it begins within `within` bytes.
    pub fn string_after(&self, from: usize, within: usize) -> Option<&StrLit> {
        self.strings
            .iter()
            .find(|s| s.offset >= from && s.offset - from <= within)
    }

    /// Observability names referenced from non-test code: the first
    /// string-literal argument of `.emit(` / `.open_span(` (event kinds),
    /// `.add(` (counters), and `.observe(` (gauges). Calls whose first
    /// argument is not a string literal are skipped — a documented
    /// limitation of the line-based scanner.
    pub fn obs_names(&self) -> Vec<ObsName> {
        let mut out = Vec::new();
        for (needle, category) in [
            (".emit(", "event"),
            (".open_span(", "event"),
            (".add(", "counter"),
            (".observe(", "gauge"),
        ] {
            let mut from = 0;
            while let Some(pos) = self.code[from..].find(needle) {
                let at = from + pos;
                from = at + needle.len();
                let line = self.line_of(at);
                if self.is_test_line(line) {
                    continue;
                }
                // The first argument must start with a string literal
                // (only whitespace/newlines between the paren and it).
                let args_at = at + needle.len();
                let gap = &self.code[args_at..(args_at + 200).min(self.code.len())];
                if !gap.trim_start().starts_with('"') {
                    continue;
                }
                if let Some(lit) = self.string_after(args_at, 200) {
                    out.push(ObsName {
                        category,
                        name: lit.content.clone(),
                        path: self.rel.clone(),
                        line,
                    });
                }
            }
        }
        out
    }
}

/// Drains an accumulated byte buffer into a `String`. Literals and
/// comments are collected byte-by-byte (the lexer walks bytes, not
/// chars), so multi-byte UTF-8 must be reassembled at the flush point —
/// pushing each byte `as char` would mangle it into Latin-1 mojibake.
fn take_utf8(buf: &mut Vec<u8>) -> String {
    String::from_utf8_lossy(&std::mem::take(buf)).into_owned()
}

fn prev_is_ident(code: &[u8], i: usize) -> bool {
    i > 0 && (code[i - 1].is_ascii_alphanumeric() || code[i - 1] == b'_')
}

/// Whether the `'` at `i` follows a lone `b` — the opening of a byte-char
/// literal like `b'"'`. Without this, `b'"'` would leak its quote into the
/// blanked code and flip string parity for the rest of the file.
fn byte_char_prefix(code: &[u8], i: usize) -> bool {
    i >= 1 && code[i - 1] == b'b' && !prev_is_ident(code, i - 1)
}

/// If `bytes[i..]` opens a raw string (`r"`, `r#"`, `br##"` …), returns
/// `(hash_count, bytes_to_skip_past_opening_quote)`.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// Whether the `"` at `i` closes a raw string with `hashes` hashes.
fn raw_string_closes(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(i + 1 + k) == Some(&b'#'))
}

/// If `bytes[i]` (a `'`) opens a char literal, returns its total byte
/// length; `None` means it is a lifetime tick. A char literal holds
/// exactly one character (or one escape) between the quotes; a lifetime
/// is a tick followed by an identifier with no closing quote.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j + 1 - i);
    }
    if next == b'\'' {
        return None; // `''` — not valid Rust; leave it alone.
    }
    // One UTF-8 character, then the closing quote.
    let char_len = match next {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    };
    (bytes.get(i + 1 + char_len) == Some(&b'\'')).then_some(char_len + 2)
}

/// Computes per-line test flags: lines inside an item guarded by
/// `#[cfg(test)]` (or a `mod tests { … }` block), tracked by brace depth.
fn test_regions(code: &str, n_lines: usize, whole_file: bool) -> Vec<bool> {
    let mut flags = vec![whole_file; n_lines];
    if whole_file {
        return flags;
    }
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut line = 0usize; // 0-based
    let mut pending = false;
    let mut region_depth: Option<usize> = None;
    let mut line_start = 0usize;
    for i in 0..bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            let text = &code[line_start..i];
            if region_depth.is_none()
                && (text.contains("cfg(test") || trimmed_starts_mod_tests(text))
            {
                pending = true;
                flags[line] = true; // the attribute / mod line itself
            }
            line += 1;
            line_start = i + 1;
            continue;
        }
        // Mid-line detection so `#[cfg(test)] mod t { … }` on one line
        // still opens at the right brace.
        if b == b'{' {
            if region_depth.is_none() && !pending {
                let text = &code[line_start..i];
                if text.contains("cfg(test") || trimmed_starts_mod_tests(text) {
                    pending = true;
                }
            }
            if pending && region_depth.is_none() {
                region_depth = Some(depth);
                pending = false;
            }
            depth += 1;
        } else if b == b'}' {
            depth = depth.saturating_sub(1);
            if region_depth == Some(depth) {
                region_depth = None;
                if line < flags.len() {
                    flags[line] = true; // closing line still test code
                }
            }
        } else if b == b';' && pending && region_depth.is_none() {
            // `#[cfg(test)] use …;` — a braceless item.
            pending = false;
            if line < flags.len() {
                flags[line] = true;
            }
        }
        if region_depth.is_some() && line < flags.len() {
            flags[line] = true;
        }
    }
    flags
}

fn trimmed_starts_mod_tests(text: &str) -> bool {
    let t = text.trim_start();
    t.starts_with("mod tests") || t.starts_with("pub mod tests")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"HashMap inside\"; // Instant::now in comment\nlet y = 1;\n";
        let scan = FileScan::new("crates/core/src/x.rs", src);
        assert!(!scan.code.contains("HashMap"));
        assert!(!scan.code.contains("Instant"));
        assert_eq!(scan.strings.len(), 1);
        assert_eq!(scan.strings[0].content, "HashMap inside");
        assert_eq!(scan.comments.len(), 1);
        assert!(scan.comments[0].text.contains("Instant::now"));
        assert_eq!(scan.code.len(), src.len());
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = r####"let a = r#"unwrap() "quoted" inside"#; let b = "esc \" still string"; let c = b"bytes";"####;
        let scan = FileScan::new("crates/core/src/x.rs", src);
        assert!(!scan.code.contains("unwrap"));
        assert!(!scan.code.contains("esc"));
        assert!(!scan.code.contains("bytes"));
        assert_eq!(scan.strings.len(), 3);
        assert!(scan.strings[0].content.contains("\"quoted\""));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let d = '\\n'; let e = '\\''; c }\n";
        let scan = FileScan::new("crates/core/src/x.rs", src);
        // Lifetimes survive, char literal contents are blanked.
        assert!(scan.code.contains("'a>"));
        assert!(!scan.code.contains("'x'"));
        assert!(!scan.code.contains("\\n"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ let x = 1;\n";
        let scan = FileScan::new("crates/core/src/x.rs", src);
        assert!(!scan.code.contains("unwrap"));
        assert!(scan.code.contains("let x = 1;"));
        assert_eq!(scan.comments.len(), 1);
    }

    #[test]
    fn cfg_test_regions_cover_mod_tests() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let scan = FileScan::new("crates/core/src/x.rs", src);
        assert!(!scan.is_test_line(1));
        assert!(scan.is_test_line(2));
        assert!(scan.is_test_line(3));
        assert!(scan.is_test_line(4));
        assert!(scan.is_test_line(5));
        assert!(!scan.is_test_line(6));
    }

    #[test]
    fn bare_mod_tests_is_a_test_region() {
        let src = "mod tests {\n    fn t() {}\n}\nfn live() {}\n";
        let scan = FileScan::new("crates/core/src/x.rs", src);
        assert!(scan.is_test_line(1));
        assert!(scan.is_test_line(2));
        assert!(!scan.is_test_line(4));
    }

    #[test]
    fn files_under_tests_are_all_test() {
        let scan = FileScan::new("crates/core/tests/props.rs", "fn x() { y.unwrap(); }\n");
        assert!(scan.is_test_line(1));
    }

    #[test]
    fn obs_names_extracts_literal_kinds() {
        let src = "fn f(o: &ObsSink) {\n    o.emit(\n        \"round\",\n        &[],\n    );\n    o.add(\"rounds\", 1);\n    o.observe(\"psi\", 0.5);\n    o.observe(v);\n}\n";
        let scan = FileScan::new("crates/core/src/x.rs", src);
        let names = scan.obs_names();
        let got: Vec<(&str, &str)> =
            names.iter().map(|n| (n.category, n.name.as_str())).collect();
        assert_eq!(got, vec![("event", "round"), ("counter", "rounds"), ("gauge", "psi")]);
        assert_eq!(names[0].line, 2, "multi-line call reports the call line");
    }

    #[test]
    fn obs_names_skips_test_regions() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(o: &ObsSink) { o.emit(\"fake\", &[]); }\n}\n";
        let scan = FileScan::new("crates/core/src/x.rs", src);
        assert!(scan.obs_names().is_empty());
    }

    #[test]
    fn line_of_maps_offsets() {
        let scan = FileScan::new("x.rs", "a\nbb\nccc\n");
        assert_eq!(scan.line_of(0), 1);
        assert_eq!(scan.line_of(2), 2);
        assert_eq!(scan.line_of(5), 3);
    }
}
