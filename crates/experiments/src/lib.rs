//! # experiments — regenerating the paper's evaluation
//!
//! One binary per table/figure (`fig2`, `table2` … `table7`, `fig3`,
//! `run_all`), all built on three pieces:
//!
//! * [`scenario`] — builds the shared experimental world: the map, the
//!   per-vehicle route-conditioned datasets, the held-out evaluation set,
//!   the mobility trace, identical model initializations, and the RSU
//!   deployment sites.
//! * [`methods`] — constructs and runs any of the compared methods (LbChat
//!   and its ablations, SCO, ProxSkip, RSU-L, DFL-DDS, DP) on a scenario
//!   under a given wireless-loss condition.
//! * [`report`] — paper-style text tables and CSV output under `results/`.
//!
//! Each binary additionally records a [`manifest`] — a structured JSONL
//! event stream under `results/runs/` (schema in `docs/OBSERVABILITY.md`)
//! — which the extra `summarize_runs` binary renders side by side.
//!
//! Scales: every binary accepts `--quick` (smoke test), defaults to a
//! laptop-friendly reduced scale, and accepts `--paper` for the paper's
//! full counts (32 vehicles, 1 h of data; expect hours of wall time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod manifest;
pub mod methods;
pub mod report;
pub mod scenario;
pub mod stats;

pub use manifest::RunManifest;
pub use methods::{run_method, run_method_engine, Condition, Engine, Method, RunOutput};
pub use report::{write_csv, Table};
pub use scenario::{Scale, Scenario};

/// Unwraps a runtime result in an experiment binary: prints the typed
/// [`RuntimeError`](lbchat::prelude::RuntimeError) and exits nonzero
/// instead of panicking with a backtrace.
pub fn exit_on_error<T>(result: Result<T, lbchat::prelude::RuntimeError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("runtime error: {e}");
            std::process::exit(2);
        }
    }
}

use lbchat::exec;

/// Command-line arguments shared by every experiment binary.
///
/// ```text
/// --quick | --paper      scale preset (default: laptop-friendly reduced)
/// --seed N               override the scenario base seed
/// --jobs N               worker threads (also LBCHAT_JOBS; 1 = serial)
/// --methods a,b,c        method subset for comparison binaries
/// --codec NAME           model codec for every share path
/// --fleet SCALE          background fleet size (seed, 1k, 10k, 100k, 1m)
/// ```
///
/// Flags accept both `--flag value` and `--flag=value`. Results are
/// bit-identical for any `--jobs` setting — parallelism only changes wall
/// time.
#[derive(Debug, Clone)]
pub struct Args {
    /// Scenario scale, with any `--seed` override applied.
    pub scale: Scale,
    /// `--jobs` value, if given ([`Args::parse`] already applied it to the
    /// worker pool via [`lbchat::exec::set_jobs`]).
    pub jobs: Option<usize>,
    /// `--methods` subset, if given.
    pub methods: Option<Vec<Method>>,
}

impl Args {
    /// The usage text printed by `--help` and on parse errors.
    pub const USAGE: &'static str = "\
usage: <experiment> [--quick | --paper] [--seed N] [--jobs N] [--methods a,b,c]
                    [--codec NAME] [--fleet SCALE]

  --quick          smoke-test scale (seconds of wall time)
  --paper          the paper's full counts (hours of wall time)
  --seed N         override the scenario base seed (default 42)
  --jobs N         worker threads; 1 = serial (env: LBCHAT_JOBS)
  --methods a,b,c  method subset for comparison binaries; keys:
                   lbchat, sco, proxskip, rsul, dfl-dds, dp,
                   equal-comp, avg-agg, coreset:N
  --codec NAME     model codec for every share path (docs/COMPRESSION.md);
                   keys: topk (default), topk-q8, int8, int4, sketch
  --fleet SCALE    non-learning fleet vehicles stressing the world's wake
                   queue; keys: seed (default, 0), 1k, 10k, 100k, 1m";

    /// Parses `std::env::args()`, applies `--jobs` to the worker pool, and
    /// exits with a message on `--help` or malformed flags.
    pub fn parse() -> Args {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        if raw.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::USAGE);
            std::process::exit(0);
        }
        match Self::try_parse(raw) {
            Ok(args) => {
                if let Some(jobs) = args.jobs {
                    exec::set_jobs(jobs);
                }
                args
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// Pure parser (no process exit, no global effects) — what
    /// [`Args::parse`] wraps, kept separate so tests can exercise it.
    pub fn try_parse(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut scale: Option<Scale> = None;
        let mut seed: Option<u64> = None;
        let mut jobs: Option<usize> = None;
        let mut methods: Option<Vec<Method>> = None;
        let mut codec: Option<lbchat::prelude::Codec> = None;
        let mut fleet: Option<simworld::world::FleetScale> = None;
        let mut it = raw.into_iter();
        while let Some(arg) = it.next() {
            // Accept --flag=value by splitting once.
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let mut value = |name: &str| -> Result<String, String> {
                inline
                    .clone()
                    .or_else(|| it.next())
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--quick" => scale = Some(Scale::quick()),
                "--paper" => scale = Some(Scale::paper()),
                "--seed" => {
                    let v = value("--seed")?;
                    seed = Some(v.parse().map_err(|_| format!("bad --seed value {v:?}"))?);
                }
                "--jobs" => {
                    let v = value("--jobs")?;
                    let n: usize =
                        v.parse().map_err(|_| format!("bad --jobs value {v:?}"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    jobs = Some(n);
                }
                "--methods" => {
                    let v = value("--methods")?;
                    let parsed: Result<Vec<Method>, String> = v
                        .split(',')
                        .filter(|k| !k.trim().is_empty())
                        .map(|k| {
                            Method::from_key(k)
                                .ok_or_else(|| format!("unknown method key {k:?}"))
                        })
                        .collect();
                    let parsed = parsed?;
                    if parsed.is_empty() {
                        return Err("--methods needs at least one key".into());
                    }
                    methods = Some(parsed);
                }
                "--codec" => {
                    let v = value("--codec")?;
                    codec = Some(
                        lbchat::prelude::Codec::from_key(&v)
                            .ok_or_else(|| format!("unknown codec key {v:?}"))?,
                    );
                }
                "--fleet" => {
                    let v = value("--fleet")?;
                    fleet = Some(
                        simworld::world::FleetScale::parse(&v)
                            .ok_or_else(|| format!("unknown fleet scale {v:?}"))?,
                    );
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        let mut scale = scale.unwrap_or_else(Scale::default_scale);
        if let Some(seed) = seed {
            scale.seed = seed;
        }
        if let Some(codec) = codec {
            scale.codec = codec;
        }
        if let Some(fleet) = fleet {
            scale.fleet = fleet;
        }
        Ok(Args { scale, jobs, methods })
    }

    /// The selected methods, or `default` when `--methods` was not given.
    pub fn methods_or(&self, default: &[Method]) -> Vec<Method> {
        self.methods.clone().unwrap_or_else(|| default.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn default_scale_with_no_flags() {
        let a = Args::try_parse(strs(&[])).unwrap();
        assert_eq!(a.scale.n_vehicles, Scale::default_scale().n_vehicles);
        assert_eq!(a.jobs, None);
        assert!(a.methods.is_none());
        assert_eq!(a.methods_or(&Method::MAIN), Method::MAIN.to_vec());
    }

    #[test]
    fn scale_seed_and_jobs_flags() {
        let a = Args::try_parse(strs(&["--quick", "--seed", "7", "--jobs", "3"])).unwrap();
        assert_eq!(a.scale.n_vehicles, Scale::quick().n_vehicles);
        assert_eq!(a.scale.seed, 7);
        assert_eq!(a.jobs, Some(3));
        let b = Args::try_parse(strs(&["--paper", "--seed=9", "--jobs=2"])).unwrap();
        assert_eq!(b.scale.n_vehicles, Scale::paper().n_vehicles);
        assert_eq!(b.scale.seed, 9);
        assert_eq!(b.jobs, Some(2));
    }

    #[test]
    fn methods_subset_parses_keys() {
        let a = Args::try_parse(strs(&["--methods", "lbchat,sco,coreset:40"])).unwrap();
        assert_eq!(
            a.methods,
            Some(vec![Method::LbChat, Method::Sco, Method::LbChatCoreset(40)])
        );
    }

    #[test]
    fn codec_flag_selects_the_share_codec() {
        use lbchat::prelude::Codec;
        let a = Args::try_parse(strs(&[])).unwrap();
        assert_eq!(a.scale.codec, Codec::TopK, "default stays the paper's top-k");
        let a = Args::try_parse(strs(&["--codec", "int8"])).unwrap();
        assert_eq!(a.scale.codec, Codec::Int8);
        let a = Args::try_parse(strs(&["--quick", "--codec=sketch"])).unwrap();
        assert_eq!(a.scale.codec, Codec::Sketch);
        assert!(Args::try_parse(strs(&["--codec", "zstd"])).is_err());
        assert!(Args::try_parse(strs(&["--codec"])).is_err());
    }

    #[test]
    fn fleet_flag_selects_the_world_scale() {
        use simworld::world::FleetScale;
        let a = Args::try_parse(strs(&[])).unwrap();
        assert_eq!(a.scale.fleet, FleetScale::Seed, "default stays the paper's world");
        let a = Args::try_parse(strs(&["--fleet", "100k"])).unwrap();
        assert_eq!(a.scale.fleet, FleetScale::K100);
        let a = Args::try_parse(strs(&["--quick", "--fleet=1k"])).unwrap();
        assert_eq!(a.scale.fleet, FleetScale::K1);
        assert!(Args::try_parse(strs(&["--fleet", "2k"])).is_err());
        assert!(Args::try_parse(strs(&["--fleet"])).is_err());
    }

    #[test]
    fn malformed_flags_are_rejected() {
        assert!(Args::try_parse(strs(&["--frobnicate"])).is_err());
        assert!(Args::try_parse(strs(&["--seed"])).is_err());
        assert!(Args::try_parse(strs(&["--seed", "banana"])).is_err());
        assert!(Args::try_parse(strs(&["--jobs", "0"])).is_err());
        assert!(Args::try_parse(strs(&["--methods", "lbchat,warp-drive"])).is_err());
        assert!(Args::try_parse(strs(&["--methods", ""])).is_err());
    }
}
