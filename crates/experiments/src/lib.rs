//! # experiments — regenerating the paper's evaluation
//!
//! One binary per table/figure (`fig2`, `table2` … `table7`, `fig3`,
//! `run_all`), all built on three pieces:
//!
//! * [`scenario`] — builds the shared experimental world: the map, the
//!   per-vehicle route-conditioned datasets, the held-out evaluation set,
//!   the mobility trace, identical model initializations, and the RSU
//!   deployment sites.
//! * [`methods`] — constructs and runs any of the compared methods (LbChat
//!   and its ablations, SCO, ProxSkip, RSU-L, DFL-DDS, DP) on a scenario
//!   under a given wireless-loss condition.
//! * [`report`] — paper-style text tables and CSV output under `results/`.
//!
//! Scales: every binary accepts `--quick` (smoke test), defaults to a
//! laptop-friendly reduced scale, and accepts `--paper` for the paper's
//! full counts (32 vehicles, 1 h of data; expect hours of wall time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod methods;
pub mod report;
pub mod scenario;
pub mod stats;

pub use methods::{run_method, Condition, Method, RunOutput};
pub use report::{write_csv, Table};
pub use scenario::{Scale, Scenario};

/// Parses the scale from CLI args (`--quick` / `--paper`; default reduced).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--paper") {
        Scale::paper()
    } else if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::default_scale()
    }
}
