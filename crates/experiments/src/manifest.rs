//! Run manifests: one JSONL event stream per experiment invocation.
//!
//! A [`RunManifest`] wraps a recording [`ObsSink`] for the lifetime of an
//! experiment binary. On [`RunManifest::start`] it emits a `run_start`
//! event (config snapshot, seed, jobs, git revision); the binary then
//! threads [`RunManifest::sink`] through the harness so every cell,
//! round, transfer, and trial lands in the same stream; rendered tables
//! are recorded with [`RunManifest::record_table`]; and
//! [`RunManifest::finish`] appends a `run_end` event (counter and gauge
//! totals) and writes the whole stream to
//! `results/runs/<name>-seed<seed>-<unix_ms>.jsonl`.
//!
//! Setting `LBCHAT_OBS=0` in the environment disables recording entirely
//! — the binaries run exactly as before and no file is written.
//! `docs/OBSERVABILITY.md` specifies the event schema; the
//! `summarize_runs` binary renders manifests side by side.

use std::path::PathBuf;
use std::time::Instant;

use crate::report::Table;
use crate::scenario::Scale;
use lbchat::exec;
use lbchat::obs::{Json, ObsSink};

/// Environment variable: set to `0` to disable run-manifest recording.
pub const OBS_ENV: &str = "LBCHAT_OBS";

/// Directory (relative to the working directory) manifests are written
/// to, alongside the CSV outputs under `results/`.
pub const RUNS_DIR: &str = "results/runs";

/// Version tag stamped into `run_start`, bumped on breaking schema
/// changes (see `docs/OBSERVABILITY.md`).
pub const SCHEMA_VERSION: u64 = 1;

/// The observability session of one experiment invocation; see the
/// module docs.
pub struct RunManifest {
    sink: ObsSink,
    name: String,
    seed: u64,
    started_unix_ms: u64,
    started: Instant,
}

impl RunManifest {
    /// Opens a manifest named after the invoking binary (`"table2"`,
    /// `"fig3"`, …) and emits the `run_start` event snapshotting `scale`.
    /// Recording is on unless the `LBCHAT_OBS` environment variable is
    /// `0`.
    pub fn start(name: &str, scale: &Scale) -> RunManifest {
        let enabled = std::env::var(OBS_ENV).map_or(true, |v| v.trim() != "0");
        let sink = if enabled { ObsSink::recording() } else { ObsSink::disabled() };
        let started_unix_ms = unix_ms();
        if sink.enabled() {
            sink.emit(
                "run_start",
                &[
                    ("schema", SCHEMA_VERSION.into()),
                    ("name", name.into()),
                    ("seed", scale.seed.into()),
                    ("jobs", exec::jobs().into()),
                    ("git_rev", git_rev().into()),
                    ("scale", scale_json(scale)),
                    ("started_unix_ms", started_unix_ms.into()),
                ],
            );
        }
        RunManifest {
            sink,
            name: name.to_string(),
            seed: scale.seed,
            started_unix_ms,
            // audit:allow(D001): feeds wall_ms, a documented TIMING_FIELDS key the result comparators strip
            started: Instant::now(),
        }
    }

    /// The sink to thread through the harness (`success_table_obs`,
    /// `run_cell_obs`, …). Disabled when recording is off.
    pub fn sink(&self) -> &ObsSink {
        &self.sink
    }

    /// Records a rendered table as a `table` event — the manifest's copy
    /// of the final numbers the binary printed.
    pub fn record_table(&self, table: &Table) {
        if !self.sink.enabled() {
            return;
        }
        let rows: Vec<Json> = table
            .rows()
            .iter()
            .map(|(label, cells)| {
                Json::Arr(
                    std::iter::once(label.as_str())
                        .chain(cells.iter().map(String::as_str))
                        .map(Json::from)
                        .collect(),
                )
            })
            .collect();
        self.sink.emit(
            "table",
            &[
                ("title", table.title().into()),
                ("columns", Json::Arr(table.columns().iter().map(|c| c.as_str().into()).collect())),
                ("rows", Json::Arr(rows)),
            ],
        );
    }

    /// Emits `run_end` (event count, counter totals, gauge summaries,
    /// wall time), writes the manifest under [`RUNS_DIR`], and prints the
    /// path to stderr. Returns the path, or `None` when recording is
    /// disabled. Failure to write is reported on stderr, not fatal — the
    /// experiment's printed results must survive a read-only `results/`.
    pub fn finish(self) -> Option<PathBuf> {
        if !self.sink.enabled() {
            return None;
        }
        let counters = Json::Obj(
            self.sink.counters().into_iter().map(|(k, v)| (k, Json::UInt(v))).collect(),
        );
        let gauges = Json::Obj(
            self.sink
                .gauges()
                .into_iter()
                .map(|(k, g)| {
                    (
                        k,
                        Json::Obj(vec![
                            ("n".to_string(), Json::UInt(g.n)),
                            ("mean".to_string(), Json::Num(g.mean())),
                            ("min".to_string(), Json::Num(g.min)),
                            ("max".to_string(), Json::Num(g.max)),
                        ]),
                    )
                })
                .collect(),
        );
        self.sink.emit(
            "run_end",
            &[
                ("name", self.name.as_str().into()),
                // +1 for this run_end event itself.
                ("events", (self.sink.event_count() + 1).into()),
                ("counters", counters),
                ("gauges", gauges),
                ("wall_ms", Json::Num(self.started.elapsed().as_secs_f64() * 1e3)),
            ],
        );
        let path = PathBuf::from(RUNS_DIR)
            .join(format!("{}-seed{}-{}.jsonl", self.name, self.seed, self.started_unix_ms));
        match self.sink.write_jsonl(&path) {
            Ok(()) => {
                eprintln!("wrote run manifest: {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("could not write run manifest {}: {e}", path.display());
                None
            }
        }
    }
}

fn scale_json(s: &Scale) -> Json {
    Json::Obj(vec![
        ("n_vehicles".to_string(), s.n_vehicles.into()),
        ("n_background".to_string(), s.n_background.into()),
        ("n_pedestrians".to_string(), s.n_pedestrians.into()),
        ("data_seconds".to_string(), s.data_seconds.into()),
        ("train_seconds".to_string(), s.train_seconds.into()),
        ("eval_every".to_string(), s.eval_every.into()),
        ("eval_per_vehicle".to_string(), s.eval_per_vehicle.into()),
        ("trials".to_string(), s.trials.into()),
        ("iters_per_second".to_string(), s.iters_per_second.into()),
        ("model_wire_bytes".to_string(), s.model_wire_bytes.into()),
        ("coreset_size".to_string(), s.coreset_size.into()),
        ("lr".to_string(), s.lr.into()),
        ("seed".to_string(), s.seed.into()),
        ("codec".to_string(), s.codec.name().into()),
        ("fleet".to_string(), s.fleet.key().into()),
    ])
}

fn unix_ms() -> u64 {
    // audit:allow(D001): feeds started_unix_ms, a documented TIMING_FIELDS key the result comparators strip
    std::time::SystemTime::now()
        // audit:allow(D004): same TIMING_FIELDS exemption — this value never reaches a result payload
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Best-effort current git revision, read straight from `.git` (the
/// workspace has no process-spawning helpers and no libgit): resolves
/// `HEAD` through one level of ref indirection, consulting
/// `packed-refs` when the loose ref file is absent. Returns
/// `"unknown"` outside a git checkout.
fn git_rev() -> String {
    fn read(path: &std::path::Path) -> Option<String> {
        std::fs::read_to_string(path).ok().map(|s| s.trim().to_string())
    }
    // Walk up from the current directory to find `.git` (the binaries
    // may run from a subdirectory of the checkout).
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            let head = match read(&git.join("HEAD")) {
                Some(h) => h,
                None => break,
            };
            if let Some(refname) = head.strip_prefix("ref: ") {
                if let Some(sha) = read(&git.join(refname)) {
                    return sha;
                }
                if let Some(packed) = read(&git.join("packed-refs")) {
                    for line in packed.lines() {
                        if let Some(sha) = line.strip_suffix(refname) {
                            return sha.trim().to_string();
                        }
                    }
                }
                break;
            }
            return head; // detached HEAD: the SHA itself
        }
        dir = d.parent().map(std::path::Path::to_path_buf);
    }
    "unknown".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn git_rev_resolves_in_this_checkout() {
        // The repo this test runs in is a git checkout; a 40-hex SHA (or
        // "unknown" in exported tarballs) are the two valid shapes.
        let rev = git_rev();
        assert!(
            rev == "unknown" || (rev.len() == 40 && rev.chars().all(|c| c.is_ascii_hexdigit())),
            "unexpected git rev {rev:?}"
        );
    }

    #[test]
    fn scale_snapshot_covers_every_field() {
        let s = crate::scenario::Scale::quick();
        let snap = scale_json(&s);
        let obj = snap.as_obj().unwrap();
        assert_eq!(obj.len(), 15, "update scale_json when Scale gains fields");
        assert_eq!(snap.get("seed").and_then(Json::as_u64), Some(s.seed));
        assert_eq!(
            snap.get("codec").and_then(Json::as_str),
            Some(s.codec.name()),
            "manifest must record the share codec"
        );
        assert_eq!(
            snap.get("fleet").and_then(Json::as_str),
            Some(s.fleet.key()),
            "manifest must record the fleet scale"
        );
        assert_eq!(snap.get("n_vehicles").and_then(Json::as_u64), Some(s.n_vehicles as u64));
    }
}
