//! Fig. 3 — training loss vs time, LbChat vs SCO: the paper finds SCO
//! reaches similar final loss but takes 1.5x-1.8x longer to converge.

use experiments::harness::run_cell_obs;
use experiments::report::{curve_csv, write_csv, Table};
use experiments::{exit_on_error, Args, Condition, Method, RunManifest, Scenario};
use lbchat::exec;

fn main() {
    let s = Scenario::build(Args::parse().scale);
    let run = RunManifest::start("fig3", &s.scale);
    let mut ratio_table = Table::new(
        "Fig. 3 — convergence-time ratio SCO/LbChat",
        vec!["W/O wireless loss".into(), "W wireless loss".into()],
    );
    let mut ratios = Vec::new();
    for (panel, condition) in [("a", Condition::NoLoss), ("b", Condition::WithLoss)] {
        println!("=== Fig. 3({panel}) — LbChat vs SCO, {} ===", condition.label());
        let mut outs = exec::par_map_traced(
            run.sink(),
            "cell",
            &[Method::LbChat, Method::Sco],
            |idx, &m| run_cell_obs(m, &s, condition, run.sink(), idx),
        );
        let sco = exit_on_error(outs.pop().expect("two runs"));
        let lbchat = exit_on_error(outs.pop().expect("two runs"));
        println!("{:<10} {:>10} {:>10}", "time(s)", "LbChat", "SCO");
        for k in 0..lbchat.metrics.loss_curve.len() {
            let (t, l) = lbchat.metrics.loss_curve[k];
            let sl = sco.metrics.loss_curve.get(k).map_or(f64::NAN, |p| p.1);
            println!("{t:<10.0} {l:>10.4} {sl:>10.4}");
        }
        // Convergence-time ratio at a common threshold: 1.25x LbChat's
        // final loss (reached by both in a completed run).
        let thresh = lbchat.metrics.final_loss().unwrap() * 1.25;
        match (lbchat.metrics.time_to_loss(thresh), sco.metrics.time_to_loss(thresh)) {
            (Some(tl), Some(ts)) if tl > 0.0 => {
                println!("convergence-time ratio SCO/LbChat at loss {thresh:.4}: {:.2}x", ts / tl);
                ratios.push(format!("{:.2}x", ts / tl));
            }
            _ => {
                println!("SCO did not reach LbChat's convergence threshold in this window");
                ratios.push("n/a".to_string());
            }
        }
        let refs = vec![
            ("LbChat", lbchat.metrics.loss_curve.as_slice()),
            ("SCO", sco.metrics.loss_curve.as_slice()),
        ];
        let path = write_csv(&format!("fig3{panel}.csv"), &curve_csv(&refs)).expect("write CSV");
        eprintln!("wrote {}", path.display());
        println!();
    }
    ratio_table.row("SCO/LbChat", ratios);
    run.record_table(&ratio_table);
    run.finish();
}
