//! Table V — ablation: equal compression ratios instead of the Eq. (7)
//! coreset-driven optimization.

use driving::Task;
use experiments::harness::train_and_evaluate_obs;
use experiments::report::{write_csv, Table};
use experiments::{exit_on_error, Args, Condition, Method, RunManifest, Scenario};

fn main() {
    let s = Scenario::build(Args::parse().scale);
    let run = RunManifest::start("table5", &s.scale);
    let mut table = Table::new(
        "Table V — driving success rate with equal comp. ratio (%)",
        vec!["W/O wireless loss".into(), "W wireless loss".into()],
    );
    let (no_loss, _) =
        exit_on_error(train_and_evaluate_obs(Method::LbChatEqualComp, &s, Condition::NoLoss, run.sink(), 0));
    let (with_loss, _) =
        exit_on_error(train_and_evaluate_obs(Method::LbChatEqualComp, &s, Condition::WithLoss, run.sink(), 1));
    for (t_idx, task) in Task::ALL.iter().enumerate() {
        table.row_pct(task.name(), &[no_loss[t_idx], with_loss[t_idx]]);
    }
    println!("{}", table.render());
    run.record_table(&table);
    let path = write_csv("table5.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.finish();
}
