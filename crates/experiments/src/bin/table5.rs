//! Table V — ablation: equal compression ratios instead of the Eq. (7)
//! coreset-driven optimization.

use experiments::harness::train_and_evaluate;
use experiments::report::{write_csv, Table};
use experiments::{Args, Condition, Method, Scenario};
use driving::Task;

fn main() {
    let s = Scenario::build(Args::parse().scale);
    let mut table = Table::new(
        "Table V — driving success rate with equal comp. ratio (%)",
        vec!["W/O wireless loss".into(), "W wireless loss".into()],
    );
    let (no_loss, _) = train_and_evaluate(Method::LbChatEqualComp, &s, Condition::NoLoss);
    let (with_loss, _) = train_and_evaluate(Method::LbChatEqualComp, &s, Condition::WithLoss);
    for (t_idx, task) in Task::ALL.iter().enumerate() {
        table.row_pct(task.name(), &[no_loss[t_idx], with_loss[t_idx]]);
    }
    println!("{}", table.render());
    let path = write_csv("table5.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
