//! Table IV — LbChat with different coreset sizes (10x and 1/10 the
//! default), with and without wireless loss.

use driving::Task;
use experiments::harness::train_and_evaluate_obs;
use experiments::report::{write_csv, Table};
use experiments::{exit_on_error, Args, Condition, Method, RunManifest, Scenario};

fn main() {
    let scale = Args::parse().scale;
    let big = scale.coreset_size * 10;
    let small = (scale.coreset_size / 10).max(2);
    let s = Scenario::build(scale);
    let run = RunManifest::start("table4", &s.scale);
    let mut columns = Vec::new();
    let mut results = Vec::new();
    for (index, (size, cond)) in [
        (big, Condition::NoLoss),
        (small, Condition::NoLoss),
        (big, Condition::WithLoss),
        (small, Condition::WithLoss),
    ]
    .into_iter()
    .enumerate()
    {
        eprintln!("coreset size {size}, {} ...", cond.label());
        let (rates, _) =
            exit_on_error(train_and_evaluate_obs(Method::LbChatCoreset(size), &s, cond, run.sink(), index));
        columns.push(format!(
            "{size} ({})",
            if cond == Condition::NoLoss { "W/O" } else { "W" }
        ));
        results.push(rates);
    }
    let mut table = Table::new(
        "Table IV — driving success rate with different coreset size (%)",
        columns,
    );
    for (t_idx, task) in Task::ALL.iter().enumerate() {
        let row: Vec<f64> = results.iter().map(|r| r[t_idx]).collect();
        table.row_pct(task.name(), &row);
    }
    println!("{}", table.render());
    run.record_table(&table);
    let path = write_csv("table4.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.finish();
}
