//! Compares run manifests side by side.
//!
//! Reads the JSONL manifests the experiment binaries write under
//! `results/runs/` (see `docs/OBSERVABILITY.md`) and prints one column
//! per run: configuration, wall time, counter totals, and the final loss
//! of every training cell. `--tables` additionally re-renders the
//! tables each run recorded.
//!
//! ```text
//! usage: summarize_runs [--tables] [MANIFEST.jsonl ...]
//! ```
//!
//! With no paths, all of `results/runs/*.jsonl` is read.

use std::collections::BTreeMap;
use std::path::PathBuf;

use experiments::manifest::RUNS_DIR;
use experiments::report::Table;
use lbchat::obs::{parse_jsonl, Event, Json};

const USAGE: &str = "\
usage: summarize_runs [--tables] [MANIFEST.jsonl ...]

  --tables   also re-render the tables each run recorded
  MANIFEST   paths to run-manifest .jsonl files
             (default: all of results/runs/*.jsonl)";

/// Everything `summarize_runs` extracts from one manifest.
struct RunSummary {
    /// Column header: `<name> seed=<seed>`.
    header: String,
    started_unix_ms: u64,
    /// Simple one-value facts in display order.
    facts: Vec<(String, String)>,
    /// Final loss per cell label, from `cell_finish` events.
    final_losses: BTreeMap<String, String>,
    /// Recorded `table` events, re-rendered.
    tables: Vec<Table>,
}

fn main() {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut show_tables = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--tables" => show_tables = true,
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        paths = default_manifests();
        if paths.is_empty() {
            eprintln!(
                "no manifests found under {RUNS_DIR}/ — run any experiment binary \
                 (e.g. table2 --quick) first"
            );
            std::process::exit(1);
        }
    }

    let mut runs: Vec<RunSummary> = Vec::new();
    for path in &paths {
        match read_manifest(path) {
            Ok(summary) => runs.push(summary),
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
    if runs.is_empty() {
        eprintln!("no readable manifests among {} path(s)", paths.len());
        std::process::exit(1);
    }
    runs.sort_by_key(|r| r.started_unix_ms);

    // Rows = union of fact keys (in first-seen order) then cell labels.
    let mut fact_keys: Vec<String> = Vec::new();
    for run in &runs {
        for (k, _) in &run.facts {
            if !fact_keys.iter().any(|x| x == k) {
                fact_keys.push(k.clone());
            }
        }
    }
    let mut cell_labels: Vec<String> = runs
        .iter()
        .flat_map(|r| r.final_losses.keys().cloned())
        .collect();
    cell_labels.sort();
    cell_labels.dedup();

    let mut table = Table::new(
        format!("Run comparison — {} manifest(s)", runs.len()),
        runs.iter().map(|r| r.header.clone()).collect(),
    )
    .corner("Metric");
    for key in &fact_keys {
        let cells = runs
            .iter()
            .map(|r| {
                r.facts
                    .iter()
                    .find(|(k, _)| k == key)
                    .map_or_else(|| "-".to_string(), |(_, v)| v.clone())
            })
            .collect();
        table.row(key.clone(), cells);
    }
    for label in &cell_labels {
        let cells = runs
            .iter()
            .map(|r| r.final_losses.get(label).cloned().unwrap_or_else(|| "-".to_string()))
            .collect();
        table.row(format!("loss {label}"), cells);
    }
    println!("{}", table.render());

    if show_tables {
        for run in &runs {
            for t in &run.tables {
                println!("[{}] {}", run.header, t.render());
            }
        }
    }
}

fn default_manifests() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(RUNS_DIR)
        .map(|rd| {
            rd.filter_map(std::result::Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
                .collect()
        })
        .unwrap_or_default();
    paths.sort();
    paths
}

fn read_manifest(path: &std::path::Path) -> Result<RunSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let events = parse_jsonl(&text)?;
    let start = events
        .iter()
        .find(|e| e.kind == "run_start")
        .ok_or("manifest has no run_start event")?;
    let end = events.iter().find(|e| e.kind == "run_end");

    let name = start.str_field("name").unwrap_or("?");
    let seed = start.get("seed").and_then(Json::as_u64).unwrap_or(0);
    let mut facts: Vec<(String, String)> = Vec::new();
    let mut push = |k: &str, v: String| facts.push((k.to_string(), v));
    push("jobs", fmt_opt_u64(start.get("jobs")));
    push("git", short_rev(start.str_field("git_rev").unwrap_or("unknown")));
    if let Some(scale) = start.get("scale") {
        push("vehicles", fmt_opt_u64(scale.get("n_vehicles")));
        push("train_s", fmt_opt_num(scale.get("train_seconds")));
    }
    if let Some(end) = end {
        push("wall_s", fmt_opt_secs(end.num("wall_ms")));
        push("events", fmt_opt_u64(end.get("events")));
        if let Some(counters) = end.get("counters").and_then(Json::as_obj) {
            for key in
                ["sessions", "chats", "rounds", "trials", "collisions", "timeouts", "transfers_failed"]
            {
                if let Some(v) = counters.iter().find(|(k, _)| k == key) {
                    push(key, v.1.to_string());
                }
            }
            for key in ["bytes_tx", "bytes_delivered"] {
                if let Some((_, Json::UInt(b))) = counters.iter().find(|(k, _)| k == key) {
                    push(key, format!("{:.1} MB", *b as f64 / 1e6));
                }
            }
        }
        if let Some(gauges) = end.get("gauges").and_then(Json::as_obj) {
            if let Some((_, psi)) = gauges.iter().find(|(k, _)| k == "psi") {
                push("psi mean", fmt_opt_num(psi.get("mean")));
            }
        }
    } else {
        push("wall_s", "incomplete".to_string());
    }

    let mut final_losses = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "cell_finish") {
        if let Some(cell) = e.str_field("cell") {
            final_losses.insert(cell.to_string(), fmt_opt_num(e.get("final_loss")));
        }
    }

    Ok(RunSummary {
        header: format!("{name} seed={seed}"),
        started_unix_ms: start.get("started_unix_ms").and_then(Json::as_u64).unwrap_or(0),
        facts,
        final_losses,
        tables: events.iter().filter(|e| e.kind == "table").filter_map(rebuild_table).collect(),
    })
}

fn rebuild_table(e: &Event) -> Option<Table> {
    let columns: Vec<String> = e
        .get("columns")?
        .as_arr()?
        .iter()
        .filter_map(|c| c.as_str().map(str::to_string))
        .collect();
    let mut t = Table::new(e.str_field("title")?.to_string(), columns);
    for row in e.get("rows")?.as_arr()? {
        let cells: Vec<String> =
            row.as_arr()?.iter().filter_map(|c| c.as_str().map(str::to_string)).collect();
        let (label, rest) = cells.split_first()?;
        t.row(label.clone(), rest.to_vec());
    }
    Some(t)
}

fn fmt_opt_u64(v: Option<&Json>) -> String {
    v.and_then(Json::as_u64).map_or_else(|| "-".to_string(), |u| u.to_string())
}

fn fmt_opt_num(v: Option<&Json>) -> String {
    v.and_then(Json::as_f64).map_or_else(|| "-".to_string(), |n| format!("{n:.4}"))
}

fn fmt_opt_secs(ms: Option<f64>) -> String {
    ms.map_or_else(|| "-".to_string(), |m| format!("{:.1}", m / 1e3))
}

fn short_rev(rev: &str) -> String {
    if rev.len() >= 10 && rev.chars().all(|c| c.is_ascii_hexdigit()) {
        rev[..10].to_string()
    } else {
        rev.to_string()
    }
}
