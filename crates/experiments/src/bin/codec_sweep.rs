//! Codec sweep — accuracy vs bytes for every model codec.
//!
//! Trains LbChat once, then re-encodes the representative final model
//! through each sweep codec (`topk`, `int8`, `int4`, `sketch`) at three ψ
//! points and tables the held-out loss of the decoded model against the
//! cost model's charged wire bytes. The table lands in the run manifest
//! and in `results/codec_sweep.csv`; layouts and semantics are specified
//! in `docs/COMPRESSION.md`.

use experiments::harness::codec_sweep_table;
use experiments::report::write_csv;
use experiments::{exit_on_error, Args, RunManifest, Scenario};

fn main() {
    let args = Args::parse();
    let s = Scenario::build(args.scale.clone());
    let run = RunManifest::start("codec_sweep", &s.scale);
    let table = exit_on_error(codec_sweep_table(&s, &[0.05, 0.15, 0.4], run.sink()));
    println!("{}", table.render());
    run.record_table(&table);
    let path = write_csv("codec_sweep.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.finish();
}
