//! Table III — driving success rate with wireless loss.

use experiments::harness::success_table_obs;
use experiments::report::write_csv;
use experiments::{exit_on_error, Args, Condition, Method, RunManifest, Scenario};

fn main() {
    let args = Args::parse();
    let methods = args.methods_or(&Method::MAIN);
    let s = Scenario::build(args.scale.clone());
    let run = RunManifest::start("table3", &s.scale);
    let (table, outputs) = exit_on_error(success_table_obs(
        "Table III — driving success rate on average (W wireless loss) (%)",
        &methods,
        &s,
        Condition::WithLoss,
        run.sink(),
    ));
    println!("{}", table.render());
    println!("Successful model receiving rates:");
    for (m, out) in methods.iter().zip(&outputs) {
        println!("  {:<10} {:.0}%", m.name(), out.metrics.model_receiving_rate() * 100.0);
    }
    run.record_table(&table);
    let path = write_csv("table3.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.finish();
}
