//! Table III — driving success rate with wireless loss.

use experiments::harness::success_table;
use experiments::report::write_csv;
use experiments::{scale_from_args, Condition, Method, Scenario};

fn main() {
    let s = Scenario::build(scale_from_args());
    let (table, outputs) = success_table(
        "Table III — driving success rate on average (W wireless loss) (%)",
        &Method::MAIN,
        &s,
        Condition::WithLoss,
    );
    println!("{}", table.render());
    println!("Successful model receiving rates:");
    for (m, out) in Method::MAIN.iter().zip(&outputs) {
        println!("  {:<10} {:.0}%", m.name(), out.metrics.model_receiving_rate() * 100.0);
    }
    let path = write_csv("table3.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
