//! Table VI — ablation: plain-average aggregation instead of the Eq. (8)
//! coreset-loss-weighted merging.

use driving::Task;
use experiments::harness::train_and_evaluate_obs;
use experiments::report::{write_csv, Table};
use experiments::{exit_on_error, Args, Condition, Method, RunManifest, Scenario};

fn main() {
    let s = Scenario::build(Args::parse().scale);
    let run = RunManifest::start("table6", &s.scale);
    let mut table = Table::new(
        "Table VI — driving success rate with avg. aggregation (%)",
        vec!["W/O wireless loss".into(), "W wireless loss".into()],
    );
    let (no_loss, _) =
        exit_on_error(train_and_evaluate_obs(Method::LbChatAvgAgg, &s, Condition::NoLoss, run.sink(), 0));
    let (with_loss, _) =
        exit_on_error(train_and_evaluate_obs(Method::LbChatAvgAgg, &s, Condition::WithLoss, run.sink(), 1));
    for (t_idx, task) in Task::ALL.iter().enumerate() {
        table.row_pct(task.name(), &[no_loss[t_idx], with_loss[t_idx]]);
    }
    println!("{}", table.render());
    run.record_table(&table);
    let path = write_csv("table6.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.finish();
}
