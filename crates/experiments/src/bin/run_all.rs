//! Runs every experiment in sequence (fig2, tables II-VII, fig3) at the
//! selected scale. Expect minutes at the default scale, hours at --paper.

use experiments::Args;
use std::process::Command;

fn main() {
    // Validate the flags once up front (prints usage and exits on a bad
    // flag), then forward them verbatim to every experiment binary.
    let _ = Args::parse();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = ["fig2", "table2", "table3", "table4", "table5", "table6", "table7", "fig3"];
    for bin in bins {
        eprintln!("==== running {bin} ====");
        let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
            .args(&args)
            .status()
            .expect("spawn experiment binary");
        if !status.success() {
            eprintln!("{bin} failed: {status}");
            std::process::exit(1);
        }
    }
}
