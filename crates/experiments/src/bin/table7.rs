//! Table VII — SCO: sharing coresets only (no model exchange).

use experiments::harness::train_and_evaluate;
use experiments::report::{write_csv, Table};
use experiments::{Args, Condition, Method, Scenario};
use driving::Task;

fn main() {
    let s = Scenario::build(Args::parse().scale);
    let mut table = Table::new(
        "Table VII — driving success rate with sharing coreset only (%)",
        vec!["W/O wireless loss".into(), "W wireless loss".into()],
    );
    let (no_loss, _) = train_and_evaluate(Method::Sco, &s, Condition::NoLoss);
    let (with_loss, _) = train_and_evaluate(Method::Sco, &s, Condition::WithLoss);
    for (t_idx, task) in Task::ALL.iter().enumerate() {
        table.row_pct(task.name(), &[no_loss[t_idx], with_loss[t_idx]]);
    }
    println!("{}", table.render());
    let path = write_csv("table7.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
