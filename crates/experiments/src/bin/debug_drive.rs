//! Telemetry debugging for the closed-loop evaluator: trains at the given
//! scale, drives one route per task, and prints per-frame telemetry.

use driving::eval::{EvalConfig, Task};
use experiments::{exit_on_error, run_method, Args, Condition, Method, Scenario};

fn main() {
    let s = Scenario::build(Args::parse().scale);
    let out = exit_on_error(run_method(Method::LbChat, &s, Condition::NoLoss));
    eprintln!("final loss: {:?}", out.metrics.final_loss());
    // Open-loop check: target vs prediction on actual Left/Right frames.
    let mut shown = 0;
    for d in &s.datasets {
        for f in d.samples() {
            if matches!(f.command, simworld::expert::Command::Left | simworld::expert::Command::Right)
                && shown < 8
                && f.waypoints.chunks(2).any(|c| c[1].abs() > 0.5)
            {
                let pred = out.representative.predict(&f.features, f.command);
                eprintln!(
                    "cmd={:?} turn_d={:.2} target={:?} pred={:?}",
                    f.command,
                    f.features[f.features.len() - 2],
                    f.waypoints.iter().map(|v| (v * 10.0).round() / 10.0).collect::<Vec<_>>(),
                    pred.iter().map(|v| (v * 10.0).round() / 10.0).collect::<Vec<_>>(),
                );
                shown += 1;
            }
        }
    }
    let cfg = EvalConfig { trials: 3, ..experiments::harness::eval_config(&s) };
    driving::eval::debug_one_trial(&out.representative, Task::Straight, &cfg);
    driving::eval::debug_one_trial(&out.representative, Task::OneTurn, &cfg);
}
