//! Table II — driving success rate, no wireless loss.

use experiments::harness::success_table;
use experiments::{Args, Condition, Method, Scenario};
use experiments::report::write_csv;

fn main() {
    let args = Args::parse();
    let methods = args.methods_or(&Method::MAIN);
    let s = Scenario::build(args.scale.clone());
    let (table, _) = success_table(
        "Table II — driving success rate on average (W/O wireless loss) (%)",
        &methods,
        &s,
        Condition::NoLoss,
    );
    println!("{}", table.render());
    let path = write_csv("table2.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
