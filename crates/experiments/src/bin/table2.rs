//! Table II — driving success rate, no wireless loss.

use experiments::harness::success_table;
use experiments::{scale_from_args, Condition, Method, Scenario};
use experiments::report::write_csv;

fn main() {
    let s = Scenario::build(scale_from_args());
    let (table, _) = success_table(
        "Table II — driving success rate on average (W/O wireless loss) (%)",
        &Method::MAIN,
        &s,
        Condition::NoLoss,
    );
    println!("{}", table.render());
    let path = write_csv("table2.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
