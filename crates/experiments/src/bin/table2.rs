//! Table II — driving success rate, no wireless loss.

use experiments::harness::success_table_obs;
use experiments::report::write_csv;
use experiments::{exit_on_error, Args, Condition, Method, RunManifest, Scenario};

fn main() {
    let args = Args::parse();
    let methods = args.methods_or(&Method::MAIN);
    let s = Scenario::build(args.scale.clone());
    let run = RunManifest::start("table2", &s.scale);
    let (table, _) = exit_on_error(success_table_obs(
        "Table II — driving success rate on average (W/O wireless loss) (%)",
        &methods,
        &s,
        Condition::NoLoss,
        run.sink(),
    ));
    println!("{}", table.render());
    run.record_table(&table);
    let path = write_csv("table2.csv", &table.to_csv()).expect("write CSV");
    eprintln!("wrote {}", path.display());
    run.finish();
}
