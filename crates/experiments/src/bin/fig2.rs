//! Fig. 2 — training loss vs time for LbChat and the four benchmarks,
//! without (panel a) and with (panel b) wireless loss; also prints the
//! §IV-C successful model receiving rates.

use experiments::harness::run_cell_obs;
use experiments::report::{curve_csv, write_csv, Table};
use experiments::{exit_on_error, Args, Condition, Method, RunManifest, Scenario};
use lbchat::exec;

fn main() {
    let args = Args::parse();
    let methods = args.methods_or(&Method::MAIN);
    let scale = args.scale.clone();
    eprintln!("building scenario ({} vehicles)...", scale.n_vehicles);
    let s = Scenario::build(scale);
    let run = RunManifest::start("fig2", &s.scale);
    for (panel, condition) in [("a", Condition::NoLoss), ("b", Condition::WithLoss)] {
        println!("=== Fig. 2({panel}) — training loss vs time, {} ===", condition.label());
        let outs: Vec<_> = exec::par_map_traced(run.sink(), "cell", &methods, |idx, &m| {
            eprintln!("  running {} ...", m.name());
            run_cell_obs(m, &s, condition, run.sink(), idx)
        })
        .into_iter()
        .map(exit_on_error)
        .collect();
        let mut curves: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        let mut rates = Vec::new();
        for (m, out) in methods.iter().zip(&outs) {
            rates.push((m.name(), out.metrics.model_receiving_rate()));
            curves.push((m.name().to_string(), out.metrics.loss_curve.clone()));
        }
        println!("{:<10} {}", "time(s)", curves.iter().map(|(n, _)| format!("{n:>10}")).collect::<String>());
        let n_points = curves[0].1.len();
        for k in 0..n_points {
            print!("{:<10.0}", curves[0].1[k].0);
            for (_, c) in &curves {
                print!("{:>10.4}", c.get(k).map_or(f64::NAN, |p| p.1));
            }
            println!();
        }
        if condition == Condition::WithLoss {
            println!("\nSuccessful model receiving rate (W wireless loss):");
            let mut rate_table = Table::new(
                "Fig. 2 — successful model receiving rate (W wireless loss) (%)",
                rates.iter().map(|(n, _)| (*n).to_string()).collect(),
            );
            rate_table.row_pct("receiving rate", &rates.iter().map(|(_, r)| r * 100.0).collect::<Vec<_>>());
            for (name, r) in &rates {
                println!("  {name:<10} {:.0}%", r * 100.0);
            }
            run.record_table(&rate_table);
        }
        let refs: Vec<(&str, &[(f64, f64)])> =
            curves.iter().map(|(n, c)| (n.as_str(), c.as_slice())).collect();
        let path = write_csv(&format!("fig2{panel}.csv"), &curve_csv(&refs)).expect("write CSV");
        eprintln!("wrote {}", path.display());
        println!();
    }
    run.finish();
}
