//! Multi-seed summary statistics.
//!
//! The paper reports averages ("driving success rate on average"); these
//! helpers aggregate metrics across seeds for error-bar-quality reporting
//! when running the binaries repeatedly with different `--seed`-derived
//! scenarios.

/// Summary of a sample of observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `values`.
    ///
    /// # Panics
    /// Panics on an empty slice or non-finite values.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of an empty sample");
        assert!(values.iter().all(|v| v.is_finite()), "non-finite observation");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self { n, mean, std: var.sqrt(), min, max }
    }

    /// Half-width of the ~95 % normal-approximation confidence interval.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }

    /// Renders as `mean ± ci95`.
    pub fn display(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean, self.ci95())
    }
}

/// Element-wise summary of several loss curves sampled at identical times:
/// returns `(time, mean, std)` rows for the common prefix.
pub fn summarize_curves(curves: &[Vec<(f64, f64)>]) -> Vec<(f64, f64, f64)> {
    if curves.is_empty() {
        return Vec::new();
    }
    let len = curves.iter().map(std::vec::Vec::len).min().unwrap_or(0);
    (0..len)
        .map(|k| {
            let t = curves[0][k].0;
            let vals: Vec<f64> = curves.iter().map(|c| c[k].1).collect();
            let s = Summary::of(&vals);
            (t, s.mean, s.std)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn single_observation_has_zero_spread() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn display_shape() {
        let s = Summary::of(&[1.0, 1.0, 1.0]);
        assert_eq!(s.display(), "1.00 ± 0.00");
    }

    #[test]
    fn curve_summaries_align_on_common_prefix() {
        let a = vec![(0.0, 1.0), (10.0, 0.5), (20.0, 0.25)];
        let b = vec![(0.0, 2.0), (10.0, 1.5)];
        let rows = summarize_curves(&[a, b]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].1 - 1.5).abs() < 1e-12);
        assert!((rows[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(summarize_curves(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }
}
