//! Scenario construction: everything every method shares.

use driving::{collect_datasets, CollectConfig, DrivingLearner, Frame};
use lbchat::prelude::Codec;
use lbchat::WeightedDataset;
use rand::SeedableRng;
use simnet::geom::Vec2;
use simnet::trace::MobilityTrace;
use simworld::world::{FleetScale, World, WorldConfig};
use vnn::PolicySpec;

/// Experiment scale knobs. `paper()` matches §IV-A; the default is a
/// laptop-friendly reduction preserving every ratio that matters (frame
/// rate, radio, coreset size vs model size, task mix).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Learning vehicles (paper: 32).
    pub n_vehicles: usize,
    /// Background cars (paper: 50).
    pub n_background: usize,
    /// Pedestrians (paper: 250).
    pub n_pedestrians: usize,
    /// Seconds of data collection (paper: 3600).
    pub data_seconds: f64,
    /// Seconds of collaborative training to simulate.
    pub train_seconds: f64,
    /// Seconds between loss-curve samples.
    pub eval_every: f64,
    /// Held-out evaluation samples drawn per vehicle.
    pub eval_per_vehicle: usize,
    /// Closed-loop trials per task.
    pub trials: usize,
    /// Local training iterations per simulated second.
    pub iters_per_second: f64,
    /// Dense model wire size in bytes (paper: 52 MB).
    pub model_wire_bytes: usize,
    /// Coreset size in frames (paper: 150).
    pub coreset_size: usize,
    /// Learning rate for the policy.
    pub lr: f32,
    /// Base seed for world/data/training.
    pub seed: u64,
    /// Model codec every share path routes model exchange through (the
    /// `--codec` CLI axis; see docs/COMPRESSION.md).
    pub codec: Codec,
    /// Non-learning fleet vehicles on the park → dwell → drive cycle (the
    /// `--fleet` CLI axis). `Seed` (0 vehicles) reproduces the paper's
    /// world bit for bit; larger scales stress the world's wake queue
    /// without touching training or evaluation semantics.
    pub fleet: FleetScale,
}

impl Scale {
    /// Smoke-test scale: seconds of wall time.
    pub fn quick() -> Self {
        Self {
            n_vehicles: 4,
            n_background: 8,
            n_pedestrians: 30,
            data_seconds: 120.0,
            train_seconds: 600.0,
            eval_every: 120.0,
            eval_per_vehicle: 20,
            trials: 4,
            iters_per_second: 1.0,
            model_wire_bytes: 8 * 1024 * 1024,
            coreset_size: 40,
            lr: 3e-3,
            seed: 42,
            codec: Codec::TopK,
            fleet: FleetScale::Seed,
        }
    }

    /// The default reduced scale: about a minute of wall time per method
    /// on one core.
    pub fn default_scale() -> Self {
        Self {
            n_vehicles: 8,
            n_background: 20,
            n_pedestrians: 80,
            data_seconds: 360.0,
            train_seconds: 1500.0,
            eval_every: 125.0,
            eval_per_vehicle: 25,
            trials: 10,
            iters_per_second: 1.0,
            model_wire_bytes: 16 * 1024 * 1024,
            coreset_size: 60,
            lr: 3e-3,
            seed: 42,
            codec: Codec::TopK,
            fleet: FleetScale::Seed,
        }
    }

    /// The paper's §IV-A counts. Hours of wall time.
    pub fn paper() -> Self {
        Self {
            n_vehicles: 32,
            n_background: 50,
            n_pedestrians: 250,
            data_seconds: 3600.0,
            train_seconds: 14_400.0,
            eval_every: 300.0,
            eval_per_vehicle: 50,
            trials: 25,
            iters_per_second: 2.0,
            model_wire_bytes: 52 * 1024 * 1024,
            coreset_size: 150,
            lr: 1e-3,
            seed: 42,
            codec: Codec::TopK,
            fleet: FleetScale::Seed,
        }
    }
}

/// The shared experimental fixture.
pub struct Scenario {
    /// Scale this scenario was built at.
    pub scale: Scale,
    /// Per-vehicle route-conditioned training datasets.
    pub datasets: Vec<WeightedDataset<Frame>>,
    /// Held-out evaluation frames (joint distribution).
    pub eval: Vec<Frame>,
    /// Mobility trace for the training window.
    pub trace: MobilityTrace,
    /// Policy architecture.
    pub spec: PolicySpec,
    /// RSU deployment sites (road crossings, for RSU-L).
    pub rsu_positions: Vec<Vec2>,
}

impl Scenario {
    /// Builds the fixture: collects data with expert autopilots, then keeps
    /// driving to record the mobility trace for the training window — the
    /// paper's two-phase procedure ("run the vehicles for one hour to
    /// collect the local datasets ... run the vehicles for an additional
    /// 120 hours and collect their locations").
    pub fn build(scale: Scale) -> Self {
        let mut world = World::new(WorldConfig {
            seed: scale.seed,
            n_experts: scale.n_vehicles,
            n_background: scale.n_background,
            n_pedestrians: scale.n_pedestrians,
            n_fleet: scale.fleet.n_fleet(),
            ..WorldConfig::default()
        });
        let datasets = collect_datasets(
            &mut world,
            &CollectConfig { seconds: scale.data_seconds, stride: 1, balance_commands: true },
        );
        let eval = driving::collect::eval_set(&datasets, scale.eval_per_vehicle);
        let trace = world.record_trace(scale.train_seconds + 60.0);

        let spec = DrivingLearner::spec_for(
            world.config().bev.feature_len(),
            world.config().n_waypoints,
        );

        // RSUs at four spread town crossings plus one rural junction —
        // "we simulate the behavior of RSUs at road crosses".
        let map = world.map();
        let targets = [
            Vec2::new(250.0, 250.0),
            Vec2::new(250.0, 550.0),
            Vec2::new(550.0, 250.0),
            Vec2::new(550.0, 550.0),
            Vec2::new(850.0, 850.0),
        ];
        let rsu_positions = targets
            .iter()
            .map(|t| {
                let mut best = (f32::INFINITY, Vec2::ZERO);
                for n in 0..map.n_nodes() {
                    let p = map.node(n).pos;
                    let d = p.distance(*t);
                    if d < best.0 {
                        best = (d, p);
                    }
                }
                best.1
            })
            .collect();

        Self { scale, datasets, eval, trace, spec, rsu_positions }
    }

    /// Identically initialized learners for every vehicle (the paper's
    /// same-initialization assumption).
    pub fn make_learners(&self) -> Vec<DrivingLearner> {
        (0..self.scale.n_vehicles)
            .map(|_| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(self.scale.seed ^ 0xABCD);
                DrivingLearner::new(&self.spec, self.scale.lr, &mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbchat::Learner;

    #[test]
    fn quick_scenario_builds_consistently() {
        let s = Scenario::build(Scale::quick());
        assert_eq!(s.datasets.len(), 4);
        assert_eq!(s.trace.n_agents(), 4);
        assert!(s.trace.duration() >= 600.0);
        assert!(!s.eval.is_empty());
        assert_eq!(s.rsu_positions.len(), 5);
        let learners = s.make_learners();
        assert_eq!(learners.len(), 4);
        assert_eq!(learners[0].params(), learners[3].params(), "identical init");
    }

    #[test]
    fn datasets_are_route_conditioned() {
        let s = Scenario::build(Scale::quick());
        // Command distributions should differ across vehicles.
        let hist = |d: &WeightedDataset<Frame>| {
            let mut h = [0usize; 4];
            for f in d.samples() {
                h[f.command.index()] += 1;
            }
            h
        };
        let h0 = hist(&s.datasets[0]);
        let others: Vec<_> = (1..4).map(|i| hist(&s.datasets[i])).collect();
        assert!(
            others.iter().any(|h| *h != h0),
            "different routes must show different command mixes"
        );
    }
}
