//! Paper-style text tables and CSV output.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table matching the paper's layout: one row per
/// task, one column per method/condition.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    corner: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates a table titled like the paper ("Table II — ...").
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self { title: title.into(), corner: "Task".into(), columns, rows: Vec::new() }
    }

    /// Overrides the label-column header (default `"Task"`, the paper's
    /// layout). `summarize_runs` uses this for its non-task-shaped table.
    pub fn corner(mut self, header: impl Into<String>) -> Self {
        self.corner = header.into();
        self
    }

    /// Adds a row of numeric cells rendered with no decimals (the paper
    /// reports integer percentages).
    pub fn row_pct(&mut self, label: impl Into<String>, values: &[f64]) {
        self.rows.push((
            label.into(),
            values.iter().map(|v| format!("{v:.0}")).collect(),
        ));
    }

    /// Adds a row of pre-rendered cells.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<String>) {
        self.rows.push((label.into(), values));
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows as (label, cells) pairs.
    pub fn rows(&self) -> &[(String, Vec<String>)] {
        &self.rows
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = vec![self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(self.corner.len()))
            .max()
            .unwrap_or(self.corner.len())];
        for (c, col) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, cells)| cells.get(c).map_or(0, std::string::String::len))
                .chain(std::iter::once(col.len()))
                .max()
                .unwrap_or(col.len());
            widths.push(w);
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let mut header = format!("{:<w$}", self.corner, w = widths[0]);
        for (c, col) in self.columns.iter().enumerate() {
            let _ = write!(header, "  {:>w$}", col, w = widths[c + 1]);
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for (label, cells) in &self.rows {
            let _ = write!(out, "{:<w$}", label, w = widths[0]);
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "  {:>w$}", cell, w = widths[c + 1]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "task,{}", self.columns.join(","));
        for (label, cells) in &self.rows {
            let _ = writeln!(out, "{},{}", label, cells.join(","));
        }
        out
    }
}

/// Writes CSV content under `results/`, creating the directory if needed.
/// Returns the path written.
pub fn write_csv(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Renders a loss-vs-time curve as CSV (`time_s,loss` rows).
pub fn curve_csv(curves: &[(&str, &[(f64, f64)])]) -> String {
    let mut out = String::from("method,time_s,loss\n");
    for (name, curve) in curves {
        for (t, l) in *curve {
            let _ = writeln!(out, "{name},{t:.0},{l:.6}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(
            "Table X — demo",
            vec!["A".into(), "LbChat".into()],
        );
        t.row_pct("Straight", &[100.0, 99.6]);
        t.row_pct("Navi. (Dense)", &[65.0, 78.0]);
        let s = t.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("Straight"));
        assert!(s.contains("100"));
        // Integer rendering.
        assert!(!s.contains("99.6"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("t", vec!["m1".into()]);
        t.row_pct("r", &[50.0]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("task,m1"));
    }

    #[test]
    fn curve_csv_format() {
        let c = vec![(0.0, 1.0), (60.0, 0.5)];
        let s = curve_csv(&[("LbChat", c.as_slice())]);
        assert!(s.contains("LbChat,0,1.000000"));
        assert!(s.contains("LbChat,60,0.500000"));
    }
}
