//! Shared drivers used by the per-table/figure binaries.
//!
//! Both drivers fan work out over the [`lbchat::exec`] worker pool:
//! [`success_table`] runs its (method, condition) training cells
//! concurrently and [`train_and_evaluate`] evaluates the five tasks
//! concurrently. Every cell seeds its own RNGs from the scenario seed, so
//! the numbers are bit-identical for any `--jobs` setting.

use crate::methods::{run_method, Condition, Method, RunOutput};
use crate::report::Table;
use crate::scenario::Scenario;
use driving::{success_rate, EvalConfig, Task};
use lbchat::exec;

/// Closed-loop evaluation config derived from the scenario scale.
pub fn eval_config(s: &Scenario) -> EvalConfig {
    EvalConfig {
        trials: s.scale.trials,
        world_seed: s.scale.seed + 1000,
        route_seed: s.scale.seed + 2000,
        // Keep eval traffic proportional to the training world's scale so
        // reduced runs stay comparable.
        traffic_scale: (s.scale.n_background as f64 / 50.0).clamp(0.2, 1.0),
        ..EvalConfig::default()
    }
}

/// Trains `method` and measures its driving success rate on all five tasks.
/// Returns the per-task percentages in `Task::ALL` order plus the run
/// output.
pub fn train_and_evaluate(
    method: Method,
    s: &Scenario,
    condition: Condition,
) -> (Vec<f64>, RunOutput) {
    let out = run_method(method, s, condition);
    let cfg = eval_config(s);
    let rates = exec::par_map(&Task::ALL, |_, &task| {
        success_rate(&out.representative, task, &cfg).percent()
    });
    (rates, out)
}

/// Builds a Table II/III-shaped table: rows = tasks, columns = methods.
pub fn success_table(
    title: &str,
    methods: &[Method],
    s: &Scenario,
    condition: Condition,
) -> (Table, Vec<RunOutput>) {
    let cells = exec::par_map(methods, |_, &m| {
        eprintln!("  [{}] training + evaluating {} ...", condition.label(), m.name());
        train_and_evaluate(m, s, condition)
    });
    let mut columns = Vec::new();
    let mut results: Vec<Vec<f64>> = Vec::new();
    let mut outputs = Vec::new();
    for (&m, (rates, out)) in methods.iter().zip(cells) {
        columns.push(m.name().to_string());
        results.push(rates);
        outputs.push(out);
    }
    let mut table = Table::new(title, columns);
    for (t_idx, task) in Task::ALL.iter().enumerate() {
        let row: Vec<f64> = results.iter().map(|r| r[t_idx]).collect();
        table.row_pct(task.name(), &row);
    }
    (table, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn eval_config_scales_traffic() {
        let s = Scenario::build(Scale::quick());
        let cfg = eval_config(&s);
        assert!(cfg.traffic_scale > 0.0 && cfg.traffic_scale <= 1.0);
        assert_eq!(cfg.trials, 4);
    }
}
