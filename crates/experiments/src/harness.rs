//! Shared drivers used by the per-table/figure binaries.
//!
//! Both drivers fan work out over the [`lbchat::exec`] worker pool:
//! [`success_table`] runs its (method, condition) training cells
//! concurrently and [`train_and_evaluate`] evaluates the five tasks
//! concurrently. Every cell seeds its own RNGs from the scenario seed, so
//! the numbers are bit-identical for any `--jobs` setting.
//!
//! The `_obs` variants additionally emit structured events into an
//! [`ObsSink`] (see `lbchat::obs` and `docs/OBSERVABILITY.md`): each cell
//! is bracketed by `cell_start`/`cell_finish` events carrying the
//! method, condition, and the cell's final metrics, and everything the
//! cell does — runtime rounds, radio transfers, chats, eval trials —
//! is scoped under the cell's label. The plain variants delegate with a
//! disabled sink and cost nothing extra.

use crate::methods::{cell_label, run_method_obs, Condition, Method, RunOutput};
use lbchat::prelude::RuntimeError;
use crate::report::Table;
use crate::scenario::Scenario;
use driving::{success_rate_obs, EvalConfig, Task};
use lbchat::exec;
use lbchat::obs::{Json, ObsSink};

/// Closed-loop evaluation config derived from the scenario scale.
pub fn eval_config(s: &Scenario) -> EvalConfig {
    EvalConfig {
        trials: s.scale.trials,
        world_seed: s.scale.seed + 1000,
        route_seed: s.scale.seed + 2000,
        // Keep eval traffic proportional to the training world's scale so
        // reduced runs stay comparable.
        traffic_scale: (s.scale.n_background as f64 / 50.0).clamp(0.2, 1.0),
        ..EvalConfig::default()
    }
}

/// Trains `method` and measures its driving success rate on all five tasks.
/// Returns the per-task percentages in `Task::ALL` order plus the run
/// output.
pub fn train_and_evaluate(
    method: Method,
    s: &Scenario,
    condition: Condition,
) -> Result<(Vec<f64>, RunOutput), RuntimeError> {
    train_and_evaluate_obs(method, s, condition, &ObsSink::disabled(), 0)
}

/// [`train_and_evaluate`] with observability: emits `cell_start` /
/// `cell_finish` (with per-task rates) around the cell and scopes every
/// event the cell produces under its [`cell_label`]. `index` is the
/// cell's position in the caller's fan-out, recorded for cross-reference
/// with `work_unit` events.
// audit:entry(seeded)
pub fn train_and_evaluate_obs(
    method: Method,
    s: &Scenario,
    condition: Condition,
    obs: &ObsSink,
    index: usize,
) -> Result<(Vec<f64>, RunOutput), RuntimeError> {
    emit_cell_start(obs, method, condition, index);
    // audit:allow(D001): feeds wall_ms, a documented TIMING_FIELDS key the result comparators strip
    let started = std::time::Instant::now();
    let cell = obs.scoped(&cell_label(method, condition));
    let out = run_method_obs(method, s, condition, &cell)?;
    let cfg = eval_config(s);
    let eval_sink = cell.scoped("eval");
    let rates = exec::par_map_traced(obs, "eval-task", &Task::ALL, |_, &task| {
        success_rate_obs(&out.representative, task, &cfg, &eval_sink).percent()
    });
    emit_cell_finish(obs, method, condition, index, &out, Some(&rates), started);
    Ok((rates, out))
}

/// Trains one cell *without* closed-loop evaluation, bracketed by
/// `cell_start`/`cell_finish` events (no `rates` field). The loss-curve
/// figure bins use this: their deliverable is the `round` event stream,
/// not driving success rates.
// audit:entry(seeded)
pub fn run_cell_obs(
    method: Method,
    s: &Scenario,
    condition: Condition,
    obs: &ObsSink,
    index: usize,
) -> Result<RunOutput, RuntimeError> {
    emit_cell_start(obs, method, condition, index);
    // audit:allow(D001): feeds wall_ms, a documented TIMING_FIELDS key the result comparators strip
    let started = std::time::Instant::now();
    let out = run_method_obs(method, s, condition, &obs.scoped(&cell_label(method, condition)))?;
    emit_cell_finish(obs, method, condition, index, &out, None, started);
    Ok(out)
}

fn emit_cell_start(obs: &ObsSink, method: Method, condition: Condition, index: usize) {
    if obs.enabled() {
        obs.emit(
            "cell_start",
            &[
                ("cell", cell_label(method, condition).into()),
                ("method", method.name().into()),
                ("condition", condition.short().into()),
                ("index", index.into()),
            ],
        );
    }
}

fn emit_cell_finish(
    obs: &ObsSink,
    method: Method,
    condition: Condition,
    index: usize,
    out: &RunOutput,
    rates: Option<&[f64]>,
    started: std::time::Instant,
) {
    if !obs.enabled() {
        return;
    }
    let m = &out.metrics;
    let mut fields: Vec<(&str, Json)> = vec![
        ("cell", cell_label(method, condition).into()),
        ("method", method.name().into()),
        ("condition", condition.short().into()),
        ("index", index.into()),
        ("final_loss", m.final_loss().map_or(Json::Null, Json::Num)),
        ("receiving_rate", m.model_receiving_rate().into()),
        ("sessions", m.sessions.into()),
        ("model_sends", m.model_sends.into()),
        ("model_receives", m.model_receives.into()),
        ("coreset_sends", m.coreset_sends.into()),
        ("coreset_receives", m.coreset_receives.into()),
        ("bytes_delivered", m.bytes_delivered.into()),
        ("comm_seconds", m.comm_seconds.into()),
        ("train_iterations", m.train_iterations.into()),
    ];
    if let Some(rates) = rates {
        fields.push(("rates", Json::Arr(rates.iter().map(|&r| Json::Num(r)).collect())));
    }
    fields.push(("wall_ms", Json::Num(started.elapsed().as_secs_f64() * 1e3)));
    obs.emit("cell_finish", &fields);
}

/// Builds a Table II/III-shaped table: rows = tasks, columns = methods.
pub fn success_table(
    title: &str,
    methods: &[Method],
    s: &Scenario,
    condition: Condition,
) -> Result<(Table, Vec<RunOutput>), RuntimeError> {
    success_table_obs(title, methods, s, condition, &ObsSink::disabled())
}

/// [`success_table`] with observability; each (method, condition) cell
/// records its events as described on [`train_and_evaluate_obs`].
pub fn success_table_obs(
    title: &str,
    methods: &[Method],
    s: &Scenario,
    condition: Condition,
    obs: &ObsSink,
) -> Result<(Table, Vec<RunOutput>), RuntimeError> {
    let cells = exec::par_map_traced(obs, "cell", methods, |idx, &m| {
        eprintln!("  [{}] training + evaluating {} ...", condition.label(), m.name());
        train_and_evaluate_obs(m, s, condition, obs, idx)
    });
    let mut columns = Vec::new();
    let mut results: Vec<Vec<f64>> = Vec::new();
    let mut outputs = Vec::new();
    for (&m, cell) in methods.iter().zip(cells) {
        let (rates, out) = cell?;
        columns.push(m.name().to_string());
        results.push(rates);
        outputs.push(out);
    }
    let mut table = Table::new(title, columns);
    for (t_idx, task) in Task::ALL.iter().enumerate() {
        let row: Vec<f64> = results.iter().map(|r| r[t_idx]).collect();
        table.row_pct(task.name(), &row);
    }
    Ok((table, outputs))
}

/// Builds the accuracy-vs-bytes sweep of `docs/COMPRESSION.md`: trains
/// LbChat once on the scenario, then re-encodes the representative final
/// model through every sweep codec ([`lbchat::compress::Codec::SWEEP`]) at
/// each ψ in `psis` and measures the held-out loss of the decoded model
/// next to the cost model's charged wire bytes (at the scenario's dense
/// `model_wire_bytes`). Rows are codecs, columns ψ points, each cell
/// `loss @ KiB`. The training cell is recorded under `obs` like any other
/// cell; callers put the returned table into the run manifest.
pub fn codec_sweep_table(
    s: &Scenario,
    psis: &[f32],
    obs: &ObsSink,
) -> Result<Table, RuntimeError> {
    use lbchat::prelude::Codec;
    use lbchat::Learner;
    use rand::SeedableRng;

    let out = run_cell_obs(Method::LbChat, s, Condition::WithLoss, obs, 0)?;
    let params = Learner::params(&out.representative).clone();
    let mut table = Table::new(
        "Accuracy vs bytes — held-out loss of the codec-roundtripped model",
        psis.iter().map(|p| format!("psi={p}")).collect(),
    )
    .corner("codec");
    for codec in Codec::SWEEP {
        let cells = psis
            .iter()
            .map(|&psi| {
                // Fixed seed per (codec, ψ): the sweep is reproducible and
                // independent of how much RNG the training run consumed.
                let mut rng = rand::rngs::StdRng::seed_from_u64(s.scale.seed ^ 0xC0DEC);
                let decoded = codec.apply(&params, psi, &mut rng);
                let mut probe = out.representative.clone();
                Learner::set_params(&mut probe, decoded);
                let loss = s
                    .eval
                    .iter()
                    .map(|f| f64::from(Learner::loss(&probe, f)))
                    .sum::<f64>()
                    / s.eval.len().max(1) as f64;
                let kib = codec.wire_bytes(s.scale.model_wire_bytes, psi) as f64 / 1024.0;
                format!("{loss:.4} @ {kib:.0} KiB")
            })
            .collect();
        table.row(codec.name(), cells);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn eval_config_scales_traffic() {
        let s = Scenario::build(Scale::quick());
        let cfg = eval_config(&s);
        assert!(cfg.traffic_scale > 0.0 && cfg.traffic_scale <= 1.0);
        assert_eq!(cfg.trials, 4);
    }
}
