//! Construction and execution of every compared method.

use crate::scenario::Scenario;
use baselines::{dfl_dds::DflDdsConfig, dp::DpConfig, proxskip::ProxSkipConfig, rsul::RsuLConfig};
use baselines::{DflDds, Dp, ProxSkip, RsuL};
use driving::{DrivingLearner, Frame};
use lbchat::node::LbChatAlgorithm;
use lbchat::prelude::{
    CollabAlgorithm, LbChatConfig, Metrics, ObsSink, Runtime, RuntimeConfig, RuntimeError,
};
use rand::SeedableRng;
use simnet::loss::LossModel;
use vnn::ParamVec;

/// Wireless-loss condition of a run (the paper's "W/O" and "W" columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// Idealistic loss-free channel (Fig. 2(a), Table II).
    NoLoss,
    /// Distance-based wireless loss (Fig. 2(b), Table III).
    WithLoss,
}

impl Condition {
    /// The loss model to install in the runtime.
    pub fn loss_model(self) -> LossModel {
        match self {
            Condition::NoLoss => LossModel::None,
            Condition::WithLoss => LossModel::distance_default(),
        }
    }

    /// Table-header label.
    pub fn label(self) -> &'static str {
        match self {
            Condition::NoLoss => "W/O wireless loss",
            Condition::WithLoss => "W wireless loss",
        }
    }

    /// Compact tag used in run-manifest cell labels (`wo` / `w`).
    pub fn short(self) -> &'static str {
        match self {
            Condition::NoLoss => "wo",
            Condition::WithLoss => "w",
        }
    }
}

/// The run-manifest label of one training cell: method plus condition,
/// e.g. `LbChat@wo` or `LbChat[coreset:40]@w`. Every event a cell emits
/// carries this label in its `ctx` field.
pub fn cell_label(method: Method, condition: Condition) -> String {
    let m = match method {
        Method::LbChatCoreset(n) => format!("LbChat[coreset:{n}]"),
        other => other.name().to_string(),
    };
    format!("{m}@{}", condition.short())
}

/// Every method in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The proposed approach with default config.
    LbChat,
    /// LbChat with a non-default coreset size (Table IV).
    LbChatCoreset(usize),
    /// LbChat with equal compression ratios (Table V).
    LbChatEqualComp,
    /// LbChat with plain-average aggregation (Table VI).
    LbChatAvgAgg,
    /// Coreset-sharing only (Table VII / Fig. 3).
    Sco,
    /// Central-server federated learning.
    ProxSkip,
    /// RSU-based opportunistic learning.
    RsuL,
    /// Synchronous decentralized with data-source diversity.
    DflDds,
    /// Gossip learning with log-loss merge weights.
    Dp,
}

impl Method {
    /// The five main-comparison methods in the paper's column order.
    pub const MAIN: [Method; 5] =
        [Method::ProxSkip, Method::RsuL, Method::DflDds, Method::Dp, Method::LbChat];

    /// Parses a CLI method key (`--methods`). Keys are case-insensitive:
    /// `lbchat`, `sco`, `proxskip`, `rsul`/`rsu-l`, `dfl-dds`/`dfldds`,
    /// `dp`, `equal-comp`, `avg-agg`, and `coreset:N` for
    /// [`Method::LbChatCoreset`] with size `N`.
    pub fn from_key(key: &str) -> Option<Method> {
        let k = key.trim().to_ascii_lowercase();
        match k.as_str() {
            "lbchat" => Some(Method::LbChat),
            "sco" => Some(Method::Sco),
            "proxskip" => Some(Method::ProxSkip),
            "rsul" | "rsu-l" => Some(Method::RsuL),
            "dfldds" | "dfl-dds" => Some(Method::DflDds),
            "dp" => Some(Method::Dp),
            "equal-comp" | "lbchat-equal-comp" => Some(Method::LbChatEqualComp),
            "avg-agg" | "lbchat-avg-agg" => Some(Method::LbChatAvgAgg),
            _ => k
                .strip_prefix("coreset:")
                .and_then(|n| n.parse().ok())
                .map(Method::LbChatCoreset),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::LbChat => "LbChat",
            Method::LbChatCoreset(_) => "LbChat (coreset size)",
            Method::LbChatEqualComp => "LbChat (equal comp.)",
            Method::LbChatAvgAgg => "LbChat (avg. agg.)",
            Method::Sco => "SCO",
            Method::ProxSkip => "ProxSkip",
            Method::RsuL => "RSU-L",
            Method::DflDds => "DFL-DDS",
            Method::Dp => "DP",
        }
    }
}

/// Which runtime loop executes a training cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The discrete-event session runtime ([`Runtime::run`]).
    #[default]
    Event,
    /// The retained synchronous frame loop ([`Runtime::run_reference`]).
    Reference,
}

/// Output of one training run.
pub struct RunOutput {
    /// Training metrics (loss curve, receiving rates, airtime).
    pub metrics: Metrics,
    /// Final model of every vehicle.
    pub models: Vec<ParamVec>,
    /// A learner wrapping vehicle 0's final model, ready for closed-loop
    /// driving evaluation (vehicle 0 is an arbitrary but fixed
    /// representative — every method is sampled at the same position).
    pub representative: DrivingLearner,
}

fn runtime_config(s: &Scenario, condition: Condition, obs: ObsSink) -> RuntimeConfig {
    RuntimeConfig {
        duration: s.scale.train_seconds,
        train_iters_per_second: s.scale.iters_per_second,
        loss_model: condition.loss_model(),
        eval_every: s.scale.eval_every,
        seed: s.scale.seed,
        codec: s.scale.codec,
        obs,
        ..RuntimeConfig::default()
    }
}

fn lbchat_config(s: &Scenario) -> LbChatConfig {
    LbChatConfig {
        coreset_size: s.scale.coreset_size,
        model_wire_bytes: s.scale.model_wire_bytes,
        // Keep the paper's 150-frame ≈ 0.6 MB density.
        coreset_bytes_per_sample: 4096,
        ..LbChatConfig::default()
    }
}

fn drive<A>(
    rt: &Runtime,
    engine: Engine,
    algo: &mut A,
    s: &Scenario,
) -> Result<Metrics, RuntimeError>
where
    A: CollabAlgorithm<Sample = Frame>,
{
    match engine {
        Engine::Event => rt.run(algo, &s.trace, &s.eval),
        Engine::Reference => rt.run_reference(algo, &s.trace, &s.eval),
    }
}

fn finish<A>(algo: A, metrics: Metrics, s: &Scenario) -> RunOutput
where
    A: CollabAlgorithm<Sample = Frame>,
{
    let models: Vec<ParamVec> = (0..algo.n_nodes()).map(|i| algo.model(i).clone()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(s.scale.seed ^ 0xABCD);
    let mut representative = DrivingLearner::new(&s.spec, s.scale.lr, &mut rng);
    lbchat::Learner::set_params(&mut representative, models[0].clone());
    RunOutput { metrics, models, representative }
}

/// Trains `method` on the scenario under `condition` and returns metrics +
/// final models, or the runtime's typed error if the scenario cannot host
/// the fleet. Every method sees the identical trace, radio, clock,
/// initialization, and evaluation set.
pub fn run_method(
    method: Method,
    s: &Scenario,
    condition: Condition,
) -> Result<RunOutput, RuntimeError> {
    run_method_obs(method, s, condition, &ObsSink::disabled())
}

/// [`run_method`] with observability: the runtime emits its structured
/// events (`round`, `session`, `transfer`, `chat`, `backend`) into `obs`
/// exactly as scoped by the caller — scope the sink with a cell label
/// ([`cell_label`]) before passing it in. With a disabled sink this is
/// exactly [`run_method`].
pub fn run_method_obs(
    method: Method,
    s: &Scenario,
    condition: Condition,
    obs: &ObsSink,
) -> Result<RunOutput, RuntimeError> {
    run_method_engine(method, s, condition, obs, Engine::Event)
}

/// [`run_method_obs`] on an explicit [`Engine`] — the equivalence tests and
/// benches drive both loops over identical cells through this entry point.
pub fn run_method_engine(
    method: Method,
    s: &Scenario,
    condition: Condition,
    obs: &ObsSink,
    engine: Engine,
) -> Result<RunOutput, RuntimeError> {
    let rt = Runtime::new(runtime_config(s, condition, obs.clone()));
    let mut seed_rng = rand::rngs::StdRng::seed_from_u64(s.scale.seed ^ 0x5EED);
    let learners = s.make_learners();
    let datasets = s.datasets.clone();
    match method {
        Method::LbChat => {
            let mut algo =
                LbChatAlgorithm::new(learners, datasets, lbchat_config(s), &mut seed_rng);
            let m = drive(&rt, engine, &mut algo, s)?;
            Ok(finish(algo, m, s))
        }
        Method::LbChatCoreset(size) => {
            let cfg = lbchat_config(s).with_coreset_size(size);
            let mut algo = LbChatAlgorithm::new(learners, datasets, cfg, &mut seed_rng);
            let m = drive(&rt, engine, &mut algo, s)?;
            Ok(finish(algo, m, s))
        }
        Method::LbChatEqualComp => {
            let cfg = lbchat_config(s).with_equal_compression();
            let mut algo = LbChatAlgorithm::new(learners, datasets, cfg, &mut seed_rng);
            let m = drive(&rt, engine, &mut algo, s)?;
            Ok(finish(algo, m, s))
        }
        Method::LbChatAvgAgg => {
            let cfg = lbchat_config(s).with_average_aggregation();
            let mut algo = LbChatAlgorithm::new(learners, datasets, cfg, &mut seed_rng);
            let m = drive(&rt, engine, &mut algo, s)?;
            Ok(finish(algo, m, s))
        }
        Method::Sco => {
            let cfg = lbchat_config(s).sco();
            let mut algo = LbChatAlgorithm::new(learners, datasets, cfg, &mut seed_rng);
            let m = drive(&rt, engine, &mut algo, s)?;
            Ok(finish(algo, m, s))
        }
        Method::ProxSkip => {
            let cfg = ProxSkipConfig {
                model_bytes: s.scale.model_wire_bytes,
                ..ProxSkipConfig::default()
            };
            let mut algo = ProxSkip::new(learners, datasets, cfg);
            let m = drive(&rt, engine, &mut algo, s)?;
            Ok(finish(algo, m, s))
        }
        Method::RsuL => {
            let cfg = RsuLConfig {
                model_bytes: s.scale.model_wire_bytes,
                ..RsuLConfig::default()
            };
            let mut algo = RsuL::new(learners, datasets, s.rsu_positions.clone(), cfg);
            let m = drive(&rt, engine, &mut algo, s)?;
            Ok(finish(algo, m, s))
        }
        Method::DflDds => {
            let cfg = DflDdsConfig {
                model_bytes: s.scale.model_wire_bytes,
                ..DflDdsConfig::default()
            };
            let mut algo = DflDds::new(learners, datasets, cfg);
            let m = drive(&rt, engine, &mut algo, s)?;
            Ok(finish(algo, m, s))
        }
        Method::Dp => {
            let cfg =
                DpConfig { model_bytes: s.scale.model_wire_bytes, ..DpConfig::default() };
            let mut algo = Dp::new(learners, datasets, cfg);
            let m = drive(&rt, engine, &mut algo, s)?;
            Ok(finish(algo, m, s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn method_keys_round_trip() {
        assert_eq!(Method::from_key("lbchat"), Some(Method::LbChat));
        assert_eq!(Method::from_key("RSU-L"), Some(Method::RsuL));
        assert_eq!(Method::from_key(" dfl-dds "), Some(Method::DflDds));
        assert_eq!(Method::from_key("coreset:150"), Some(Method::LbChatCoreset(150)));
        assert_eq!(Method::from_key("equal-comp"), Some(Method::LbChatEqualComp));
        assert_eq!(Method::from_key("avg-agg"), Some(Method::LbChatAvgAgg));
        assert_eq!(Method::from_key("warp-drive"), None);
        assert_eq!(Method::from_key("coreset:many"), None);
    }

    #[test]
    fn every_method_runs_and_learns_at_quick_scale() {
        let s = Scenario::build(Scale::quick());
        for method in [Method::LbChat, Method::Sco, Method::ProxSkip, Method::RsuL, Method::DflDds, Method::Dp] {
            let out = run_method(method, &s, Condition::NoLoss).expect("scenario fits fleet");
            let curve = &out.metrics.loss_curve;
            assert!(curve.len() >= 3, "{method:?} must record a loss curve");
            let first = curve.first().unwrap().1;
            let last = curve.last().unwrap().1;
            assert!(
                last < first,
                "{method:?} must reduce loss: {first} -> {last}"
            );
            assert_eq!(out.models.len(), 4);
        }
    }
}
