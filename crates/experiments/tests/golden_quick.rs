//! Golden-value regression test for one harness cell: a reduced-scale
//! LbChat success table must render exactly the committed fixture.
//!
//! The harness seeds every RNG from the scenario seed, so this table is
//! bit-stable on a given platform for any `--jobs` setting (see
//! `determinism.rs`); the fixture pins it across refactors — a hot-path
//! rewrite that perturbs a single weight or RNG draw anywhere in the
//! training/eval pipeline shows up here as a diff. To regenerate after an
//! *intentional* behavior change, run
//! `LBCHAT_GOLDEN_WRITE=1 cargo test -p experiments --test golden_quick`
//! and commit the diff.

use experiments::harness::success_table;
use experiments::{Condition, Method, Scale, Scenario};
use std::path::PathBuf;

/// Tiny but end-to-end: two vehicles chat, train, and drive all five
/// evaluation tasks once.
fn golden_scale() -> Scale {
    Scale {
        n_vehicles: 2,
        n_background: 4,
        n_pedestrians: 10,
        data_seconds: 30.0,
        train_seconds: 60.0,
        eval_every: 60.0,
        eval_per_vehicle: 4,
        trials: 1,
        ..Scale::quick()
    }
}

#[test]
fn quick_success_table_matches_golden_fixture() {
    let s = Scenario::build(golden_scale());
    let (table, outputs) = success_table(
        "Golden — LbChat quick cell (no loss)",
        &[Method::LbChat],
        &s,
        Condition::NoLoss,
    )
    .expect("scenario fits");
    // Success rates round to integers (and are all zero at this scale), so
    // the rendered table alone would miss most regressions; the appended
    // full-precision metrics make the fixture sensitive to any RNG or
    // float-arithmetic drift anywhere in the pipeline.
    let m = &outputs[0].metrics;
    let rendered = format!(
        "{}\nfinal_loss={:?}\nsessions={} model_receives={} coreset_receives={} bytes_delivered={}\nreceiving_rate={:?} comm_seconds={:?} train_iterations={}\n",
        table.render(),
        m.final_loss(),
        m.sessions,
        m.model_receives,
        m.coreset_receives,
        m.bytes_delivered,
        m.model_receiving_rate(),
        m.comm_seconds,
        m.train_iterations,
    );

    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/quick_table.txt");
    if std::env::var_os("LBCHAT_GOLDEN_WRITE").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create fixtures dir");
        std::fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `LBCHAT_GOLDEN_WRITE=1 cargo test -p experiments --test golden_quick` to record it",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "quick-cell table drifted from the committed fixture; if the change is intentional, regenerate it"
    );
}
