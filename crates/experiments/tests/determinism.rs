//! End-to-end check that the worker pool does not perturb results.
//!
//! The whole PR's contract is that `--jobs` only changes wall time: every
//! work unit seeds its own RNGs, so a serial run and a 4-worker run must
//! produce bit-identical numbers. This is a single `#[test]` because
//! [`lbchat::exec::set_jobs`] is process-global — two tests toggling it
//! concurrently would race.

use experiments::harness::{run_cell_obs, train_and_evaluate};
use experiments::{Condition, Method, Scale, Scenario};
use lbchat::exec;
use lbchat::prelude::{Codec, ObsSink};
use simworld::world::{FleetScale, World, WorldConfig};

#[test]
fn results_are_bit_identical_for_any_job_count() {
    let s = Scenario::build(Scale::quick());

    exec::set_jobs(1);
    let (serial_rates, serial_out) = train_and_evaluate(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");

    exec::set_jobs(4);
    let (parallel_rates, parallel_out) = train_and_evaluate(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");

    exec::set_jobs(1);

    // Success rates per task: exact equality, not approximate.
    assert_eq!(serial_rates, parallel_rates, "per-task success rates must not depend on --jobs");

    // Final per-vehicle models, bit for bit.
    assert_eq!(serial_out.models.len(), parallel_out.models.len());
    for (i, (a, b)) in serial_out.models.iter().zip(&parallel_out.models).enumerate() {
        assert_eq!(a.as_slice(), b.as_slice(), "vehicle {i} model diverged under jobs=4");
    }

    // Training metrics (loss curve drives the figures).
    assert_eq!(
        serial_out.metrics.loss_curve, parallel_out.metrics.loss_curve,
        "loss curve must not depend on --jobs"
    );

    // The codec axis must hold the same contract: stochastic-rounding
    // codecs draw from per-session RNGs only, so swapping the codec
    // cannot reintroduce a jobs dependence. Training-only cells (no
    // closed-loop eval) keep this arm cheap.
    let mut s_codec = Scenario::build(Scale::quick());
    s_codec.scale.codec = Codec::Int8;
    exec::set_jobs(1);
    let a = run_cell_obs(Method::LbChat, &s_codec, Condition::WithLoss, &ObsSink::disabled(), 0)
        .expect("scenario fits");
    exec::set_jobs(4);
    let b = run_cell_obs(Method::LbChat, &s_codec, Condition::WithLoss, &ObsSink::disabled(), 0)
        .expect("scenario fits");
    exec::set_jobs(1);
    assert_eq!(
        a.metrics.loss_curve, b.metrics.loss_curve,
        "int8 codec loss curve must not depend on --jobs"
    );
    for (i, (ma, mb)) in a.models.iter().zip(&b.models).enumerate() {
        assert_eq!(ma.as_slice(), mb.as_slice(), "vehicle {i} model diverged under jobs=4 (int8 codec)");
    }

    // The city-scale world holds the same contract at 100 000 fleet
    // vehicles: the tick's intent phase shards over the worker pool, so a
    // serial and a 4-worker run must agree on every position bit. Spawn
    // staggers mean thousands of fleet vehicles are driving within the
    // first stepped window.
    let fleet_cfg = WorldConfig::with_fleet(7, FleetScale::K100);
    exec::set_jobs(1);
    let mut w1 = World::new(fleet_cfg.clone());
    for _ in 0..20 {
        w1.step();
    }
    exec::set_jobs(4);
    let mut w4 = World::new(fleet_cfg);
    for _ in 0..20 {
        w4.step();
    }
    exec::set_jobs(1);
    let (p1, p4) = (w1.car_positions(), w4.car_positions());
    assert_eq!(p1.len(), p4.len(), "driving-vehicle count diverged under jobs=4");
    assert!(p1.len() > 32 + 50, "fleet vehicles must be driving by tick 20");
    for (i, (a, b)) in p1.iter().zip(&p4).enumerate() {
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "car {i} x diverged under jobs=4 at 100k fleet");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "car {i} y diverged under jobs=4 at 100k fleet");
    }
    let (e1, e4) = (w1.pedestrian_positions(), w4.pedestrian_positions());
    for (i, (a, b)) in e1.iter().zip(&e4).enumerate() {
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "ped {i} x diverged under jobs=4");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "ped {i} y diverged under jobs=4");
    }
}
