//! End-to-end check that the worker pool does not perturb results.
//!
//! The whole PR's contract is that `--jobs` only changes wall time: every
//! work unit seeds its own RNGs, so a serial run and a 4-worker run must
//! produce bit-identical numbers. This is a single `#[test]` because
//! [`lbchat::exec::set_jobs`] is process-global — two tests toggling it
//! concurrently would race.

use experiments::harness::train_and_evaluate;
use experiments::{Condition, Method, Scale, Scenario};
use lbchat::exec;

#[test]
fn results_are_bit_identical_for_any_job_count() {
    let s = Scenario::build(Scale::quick());

    exec::set_jobs(1);
    let (serial_rates, serial_out) = train_and_evaluate(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");

    exec::set_jobs(4);
    let (parallel_rates, parallel_out) = train_and_evaluate(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");

    exec::set_jobs(1);

    // Success rates per task: exact equality, not approximate.
    assert_eq!(serial_rates, parallel_rates, "per-task success rates must not depend on --jobs");

    // Final per-vehicle models, bit for bit.
    assert_eq!(serial_out.models.len(), parallel_out.models.len());
    for (i, (a, b)) in serial_out.models.iter().zip(&parallel_out.models).enumerate() {
        assert_eq!(a.as_slice(), b.as_slice(), "vehicle {i} model diverged under jobs=4");
    }

    // Training metrics (loss curve drives the figures).
    assert_eq!(
        serial_out.metrics.loss_curve, parallel_out.metrics.loss_curve,
        "loss curve must not depend on --jobs"
    );
}
