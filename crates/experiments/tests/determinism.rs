//! End-to-end check that the worker pool does not perturb results.
//!
//! The whole PR's contract is that `--jobs` only changes wall time: every
//! work unit seeds its own RNGs, so a serial run and a 4-worker run must
//! produce bit-identical numbers. This is a single `#[test]` because
//! [`lbchat::exec::set_jobs`] is process-global — two tests toggling it
//! concurrently would race.

use experiments::harness::{run_cell_obs, train_and_evaluate};
use experiments::{Condition, Method, Scale, Scenario};
use lbchat::exec;
use lbchat::prelude::{
    Codec, CollabAlgorithm, MediumConfig, Metrics, ObsSink, Runtime, RuntimeConfig, SessionCtx,
    SessionStep, TrainStats,
};
use simnet::channel::{TransferOutcome, TransferSpec};
use simnet::geom::Vec2;
use simnet::trace::MobilityTrace;
use simworld::world::{FleetScale, World, WorldConfig};
use vnn::ParamVec;

/// A minimal streaming protocol over the grid-discovered encounters: one
/// payload per session, re-requested once. Dense enough (parked lattice,
/// several radio neighbors per node) that contention-mode transfer
/// windows shard across the worker pool every frame.
struct GridProbe {
    n: usize,
    params: ParamVec,
}

impl CollabAlgorithm for GridProbe {
    type Sample = ();
    type Session = u32;

    fn n_nodes(&self) -> usize {
        self.n
    }

    fn model(&self, _node: usize) -> &ParamVec {
        &self.params
    }

    fn local_training(
        &mut self,
        _node: usize,
        _iters: usize,
        _rng: &mut rand::rngs::StdRng,
    ) -> TrainStats {
        TrainStats::default()
    }

    fn session_open(&mut self, _ctx: &mut SessionCtx<'_>) -> Option<(u32, SessionStep)> {
        Some((0, SessionStep::Transfer(TransferSpec::link(40_000, 1e9))))
    }

    fn session_step(
        &mut self,
        sent: &mut u32,
        out: TransferOutcome,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        *sent += 1;
        ctx.metrics.record_coreset_send(out.is_delivered(), 40_000, out.elapsed());
        if out.is_delivered() && *sent < 2 {
            return SessionStep::Transfer(TransferSpec::link(40_000, 1e9));
        }
        SessionStep::Done
    }

    fn session_close(&mut self, _sent: u32, ctx: &mut SessionCtx<'_>) -> f64 {
        ctx.elapsed()
    }

    fn mean_eval_loss(&self, _eval: &[()]) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "grid-probe"
    }
}

/// A contention-mode runtime run over a parked 64-vehicle lattice: every
/// frame the spatial-hash grid discovers encounters and the route cache
/// feeds the contact predictor, then streaming windows shard over
/// [`lbchat::exec`].
fn grid_runtime_metrics() -> Metrics {
    let n = 64usize;
    let fps = 2.0;
    let seconds = 12.0;
    let frames = (seconds * fps) as usize + 1;
    let cols = (n as f64).sqrt().ceil() as usize;
    let positions = (0..n)
        .map(|k| vec![Vec2::new((k % cols) as f32 * 140.0, (k / cols) as f32 * 140.0); frames])
        .collect();
    let trace = MobilityTrace::new(fps, positions);
    let cfg = RuntimeConfig {
        duration: seconds,
        eval_every: seconds,
        pair_cooldown: 1.0,
        seed: 11,
        contention: Some(MediumConfig::default()),
        ..RuntimeConfig::default()
    };
    let rt = Runtime::new(cfg);
    let mut algo = GridProbe { n, params: ParamVec::zeros(1) };
    rt.run(&mut algo, &trace, &[]).expect("trace fits the probe fleet")
}

#[test]
fn results_are_bit_identical_for_any_job_count() {
    let s = Scenario::build(Scale::quick());

    exec::set_jobs(1);
    let (serial_rates, serial_out) = train_and_evaluate(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");

    exec::set_jobs(4);
    let (parallel_rates, parallel_out) = train_and_evaluate(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");

    exec::set_jobs(1);

    // Success rates per task: exact equality, not approximate.
    assert_eq!(serial_rates, parallel_rates, "per-task success rates must not depend on --jobs");

    // Final per-vehicle models, bit for bit.
    assert_eq!(serial_out.models.len(), parallel_out.models.len());
    for (i, (a, b)) in serial_out.models.iter().zip(&parallel_out.models).enumerate() {
        assert_eq!(a.as_slice(), b.as_slice(), "vehicle {i} model diverged under jobs=4");
    }

    // Training metrics (loss curve drives the figures).
    assert_eq!(
        serial_out.metrics.loss_curve, parallel_out.metrics.loss_curve,
        "loss curve must not depend on --jobs"
    );

    // The codec axis must hold the same contract: stochastic-rounding
    // codecs draw from per-session RNGs only, so swapping the codec
    // cannot reintroduce a jobs dependence. Training-only cells (no
    // closed-loop eval) keep this arm cheap.
    let mut s_codec = Scenario::build(Scale::quick());
    s_codec.scale.codec = Codec::Int8;
    exec::set_jobs(1);
    let a = run_cell_obs(Method::LbChat, &s_codec, Condition::WithLoss, &ObsSink::disabled(), 0)
        .expect("scenario fits");
    exec::set_jobs(4);
    let b = run_cell_obs(Method::LbChat, &s_codec, Condition::WithLoss, &ObsSink::disabled(), 0)
        .expect("scenario fits");
    exec::set_jobs(1);
    assert_eq!(
        a.metrics.loss_curve, b.metrics.loss_curve,
        "int8 codec loss curve must not depend on --jobs"
    );
    for (i, (ma, mb)) in a.models.iter().zip(&b.models).enumerate() {
        assert_eq!(ma.as_slice(), mb.as_slice(), "vehicle {i} model diverged under jobs=4 (int8 codec)");
    }

    // The city-scale world holds the same contract at 100 000 fleet
    // vehicles: the tick's intent phase shards over the worker pool, so a
    // serial and a 4-worker run must agree on every position bit. Spawn
    // staggers mean thousands of fleet vehicles are driving within the
    // first stepped window.
    let fleet_cfg = WorldConfig::with_fleet(7, FleetScale::K100);
    exec::set_jobs(1);
    let mut w1 = World::new(fleet_cfg.clone());
    for _ in 0..20 {
        w1.step();
    }
    exec::set_jobs(4);
    let mut w4 = World::new(fleet_cfg);
    for _ in 0..20 {
        w4.step();
    }
    exec::set_jobs(1);
    let (p1, p4) = (w1.car_positions(), w4.car_positions());
    assert_eq!(p1.len(), p4.len(), "driving-vehicle count diverged under jobs=4");
    assert!(p1.len() > 32 + 50, "fleet vehicles must be driving by tick 20");
    for (i, (a, b)) in p1.iter().zip(&p4).enumerate() {
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "car {i} x diverged under jobs=4 at 100k fleet");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "car {i} y diverged under jobs=4 at 100k fleet");
    }
    let (e1, e4) = (w1.pedestrian_positions(), w4.pedestrian_positions());
    for (i, (a, b)) in e1.iter().zip(&e4).enumerate() {
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "ped {i} x diverged under jobs=4");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "ped {i} y diverged under jobs=4");
    }

    // A grid-enabled runtime cell holds the contract too: encounter
    // discovery through the spatial hash and route sampling through the
    // per-frame cache feed a contention-mode run whose transfer windows
    // shard over the pool — metrics must still be independent of --jobs.
    exec::set_jobs(1);
    let m1 = grid_runtime_metrics();
    exec::set_jobs(4);
    let m4 = grid_runtime_metrics();
    exec::set_jobs(1);
    assert!(m1.sessions > 0, "the lattice fleet must open sessions");
    assert_eq!(m1.sessions, m4.sessions, "session count diverged under jobs=4 (grid runtime)");
    assert_eq!(
        m1.bytes_delivered, m4.bytes_delivered,
        "delivered bytes diverged under jobs=4 (grid runtime)"
    );
    assert_eq!(
        m1.comm_seconds.to_bits(),
        m4.comm_seconds.to_bits(),
        "airtime diverged under jobs=4 (grid runtime)"
    );
    assert_eq!(m1.loss_curve, m4.loss_curve, "loss curve diverged under jobs=4 (grid runtime)");
}
