//! The event engine must reproduce the retained reference frame loop bit
//! for bit on the real experiment cells (contention disabled, which is
//! how every paper table runs).
//!
//! This is the end-to-end guarantee behind the runtime redesign: the
//! full LbChat protocol — assist, coreset exchange, compression
//! optimization, model exchange, aggregation — and the SCO ablation both
//! produce identical loss curves, counters, and final models on either
//! engine.

use experiments::{run_method_engine, Condition, Engine, Method, Scale, Scenario};
use lbchat::prelude::ObsSink;

#[test]
fn event_engine_matches_reference_on_quick_cells() {
    let s = Scenario::build(Scale::quick());
    for method in [Method::LbChat, Method::Sco] {
        for condition in [Condition::NoLoss, Condition::WithLoss] {
            let ev = run_method_engine(method, &s, condition, &ObsSink::disabled(), Engine::Event)
                .expect("scenario fits fleet");
            let rf =
                run_method_engine(method, &s, condition, &ObsSink::disabled(), Engine::Reference)
                    .expect("scenario fits fleet");
            let cell = format!("{method:?}/{condition:?}");

            assert_eq!(
                ev.metrics.loss_curve.len(),
                rf.metrics.loss_curve.len(),
                "{cell}: loss-curve length"
            );
            for ((te, le), (tr, lr)) in ev.metrics.loss_curve.iter().zip(&rf.metrics.loss_curve) {
                assert_eq!(te.to_bits(), tr.to_bits(), "{cell}: loss-curve time diverged");
                assert_eq!(le.to_bits(), lr.to_bits(), "{cell}: loss-curve value diverged");
            }
            assert_eq!(ev.metrics.sessions, rf.metrics.sessions, "{cell}: sessions");
            assert_eq!(ev.metrics.model_sends, rf.metrics.model_sends, "{cell}: model sends");
            assert_eq!(
                ev.metrics.model_receives, rf.metrics.model_receives,
                "{cell}: model receives"
            );
            assert_eq!(ev.metrics.coreset_sends, rf.metrics.coreset_sends, "{cell}: coreset sends");
            assert_eq!(
                ev.metrics.coreset_receives, rf.metrics.coreset_receives,
                "{cell}: coreset receives"
            );
            assert_eq!(
                ev.metrics.bytes_delivered, rf.metrics.bytes_delivered,
                "{cell}: bytes delivered"
            );
            assert_eq!(
                ev.metrics.comm_seconds.to_bits(),
                rf.metrics.comm_seconds.to_bits(),
                "{cell}: comm seconds"
            );
            assert_eq!(
                ev.metrics.train_iterations, rf.metrics.train_iterations,
                "{cell}: train iterations"
            );
            assert_eq!(ev.models.len(), rf.models.len(), "{cell}: fleet size");
            for (v, (a, b)) in ev.models.iter().zip(&rf.models).enumerate() {
                assert_eq!(a.as_slice(), b.as_slice(), "{cell}: vehicle {v} model diverged");
            }
        }
    }
}
