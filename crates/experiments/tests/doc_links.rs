//! Keeps the prose honest: every `--flag`, `--bin NAME`, and
//! `--example NAME` mentioned in the user-facing documentation must
//! refer to something that actually exists in the tree. Docs rot
//! silently when a bin is renamed or a flag removed; this test makes
//! that rot a CI failure instead.

use std::path::{Path, PathBuf};

/// Every long flag the documentation is allowed to mention: the
/// experiment CLI ([`experiments::Args`]), `summarize_runs`'s own
/// flags, and the cargo flags that appear in quoted commands.
const KNOWN_FLAGS: &[&str] = &[
    // experiments::Args (see crates/experiments/src/lib.rs)
    "quick", "paper", "seed", "jobs", "methods", "codec", "fleet", "help",
    // summarize_runs
    "tables",
    // lbchat-bench / bench_report (see crates/bench/src/main.rs and
    // crates/bench/src/bin/bench_report.rs)
    "smoke", "reference", "filter", "out", "name", "threshold",
    // lbchat-audit (see crates/audit/src/main.rs)
    "root", "baseline", "list-lints", "explain", "github", "write-reference-manifest",
    // cargo itself
    "release", "bin", "example", "workspace", "no-deps", "all-targets", "test", "package",
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CONTRIBUTING.md"]
        .iter()
        .map(|f| root.join(f))
        .filter(|p| p.is_file())
        .collect();
    if let Ok(rd) = std::fs::read_dir(root.join("docs")) {
        let mut extra: Vec<PathBuf> = rd
            .filter_map(std::result::Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        extra.sort();
        files.extend(extra);
    }
    assert!(files.len() >= 3, "expected the core docs to exist, found {files:?}");
    files
}

/// A `--bin NAME` reference resolves if any workspace crate has
/// `src/bin/{name}.rs`, or if `name` is a package whose `src/main.rs`
/// is its default bin (the `lbchat-bench` case).
fn bin_exists(root: &Path, name: &str) -> bool {
    let crates = match std::fs::read_dir(root.join("crates")) {
        Ok(rd) => rd,
        Err(_) => return false,
    };
    for entry in crates.filter_map(std::result::Result::ok) {
        let dir = entry.path();
        if dir.join(format!("src/bin/{name}.rs")).is_file() {
            return true;
        }
        if dir.join("src/main.rs").is_file()
            && std::fs::read_to_string(dir.join("Cargo.toml"))
                .is_ok_and(|t| t.contains(&format!("name = \"{name}\"")))
        {
            return true;
        }
    }
    false
}

/// Yields every `--token` in `text` together with the word that follows
/// it (for `--bin fig2`-style references).
fn long_flags(text: &str) -> Vec<(String, Option<String>)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < bytes.len() {
        // A flag starts at `--` preceded by start-of-text or a non-dash
        // non-word byte, and is followed by a lowercase letter.
        let boundary = i == 0 || !(bytes[i - 1] == b'-' || bytes[i - 1].is_ascii_alphanumeric());
        if boundary && bytes[i] == b'-' && bytes[i + 1] == b'-' && bytes[i + 2].is_ascii_lowercase()
        {
            let start = i + 2;
            let mut end = start;
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase() || bytes[end].is_ascii_digit() || bytes[end] == b'-')
            {
                end += 1;
            }
            let flag = text[start..end].to_string();
            // Grab the next whitespace-separated word, trimmed of
            // punctuation, as the flag's argument (if any).
            let rest = text[end..].trim_start_matches(['=', ' ']);
            let arg: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            out.push((flag, (!arg.is_empty()).then_some(arg)));
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

#[test]
fn docs_reference_only_real_flags_bins_and_examples() {
    let root = repo_root();
    let mut problems = Vec::new();
    for path in doc_files(&root) {
        let text = std::fs::read_to_string(&path).unwrap();
        let rel = path.strip_prefix(&root).unwrap_or(&path).display().to_string();
        for (flag, arg) in long_flags(&text) {
            if !KNOWN_FLAGS.contains(&flag.as_str()) {
                problems.push(format!("{rel}: unknown flag --{flag}"));
                continue;
            }
            match (flag.as_str(), arg) {
                ("bin", Some(name)) if !bin_exists(&root, &name) => {
                    problems.push(format!(
                        "{rel}: --bin {name} has no crates/*/src/bin/{name}.rs"
                    ));
                }
                ("bin", None) => problems.push(format!("{rel}: --bin without a name")),
                ("example", Some(name)) => {
                    let src = root.join(format!("examples/{name}.rs"));
                    if !src.is_file() {
                        problems.push(format!("{rel}: --example {name} has no {}", src.display()));
                    }
                }
                ("example", None) => problems.push(format!("{rel}: --example without a name")),
                // `--codec NAME` (all-caps) is the usage-string placeholder
                // convention, like `--seed N`; anything else must parse.
                ("codec", Some(name))
                    if name.chars().any(|c| c.is_ascii_lowercase())
                        && lbchat::compress::Codec::from_key(&name).is_none() =>
                {
                    problems.push(format!("{rel}: --codec {name} is not a codec key"));
                }
                // `--fleet SCALE` follows the same placeholder convention.
                ("fleet", Some(name))
                    if name.chars().any(|c| c.is_ascii_lowercase())
                        && simworld::world::FleetScale::parse(&name).is_none() =>
                {
                    problems.push(format!("{rel}: --fleet {name} is not a fleet scale key"));
                }
                _ => {}
            }
        }
    }
    assert!(problems.is_empty(), "stale documentation references:\n{}", problems.join("\n"));
}

/// Yields every audit-lint-shaped token (`D001`, `T002`, …) in `text`:
/// one of the lint family letters followed by exactly three digits, with
/// identifier boundaries on both sides.
fn lint_ids(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for i in 0..bytes.len().saturating_sub(3) {
        if !matches!(bytes[i], b'D' | b'P' | b'O' | b'A' | b'T' | b'W' | b'R') {
            continue;
        }
        if !(bytes[i + 1].is_ascii_digit() && bytes[i + 2].is_ascii_digit() && bytes[i + 3].is_ascii_digit()) {
            continue;
        }
        let left_ok = i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        let right_ok =
            bytes.get(i + 4).map_or(true, |b| !(b.is_ascii_alphanumeric() || *b == b'_'));
        if left_ok && right_ok {
            out.push(text[i..i + 4].to_string());
        }
    }
    out
}

#[test]
fn lint_ids_in_prose_exist_in_the_audit_binary() {
    let root = repo_root();
    let known: Vec<&str> = lbchat_audit::LINTS.iter().map(|l| l.id).collect();
    let mut problems = Vec::new();
    for path in doc_files(&root) {
        let text = std::fs::read_to_string(&path).unwrap();
        let rel = path.strip_prefix(&root).unwrap_or(&path).display().to_string();
        for id in lint_ids(&text) {
            if !known.contains(&id.as_str()) {
                problems.push(format!("{rel}: lint id {id} does not exist in lbchat-audit"));
            }
        }
    }
    assert!(problems.is_empty(), "stale lint ids in prose:\n{}", problems.join("\n"));
    // The catalogue doc must actually name every lint the binary knows.
    let audit_doc = std::fs::read_to_string(root.join("docs/AUDIT.md")).expect("docs/AUDIT.md");
    for id in known {
        assert!(audit_doc.contains(id), "docs/AUDIT.md is missing lint {id}");
    }
}

#[test]
fn codec_names_in_prose_and_binary_agree() {
    use lbchat::compress::Codec;
    let root = repo_root();
    // The wire-format contract must name every codec the binary ships…
    let doc = std::fs::read_to_string(root.join("docs/COMPRESSION.md"))
        .expect("docs/COMPRESSION.md is the normative codec spec");
    for codec in Codec::ALL {
        assert!(
            doc.contains(&format!("`{}`", codec.name())),
            "docs/COMPRESSION.md is missing codec `{}`",
            codec.name()
        );
    }
    // …and every backticked codec-key-shaped token in it must resolve.
    for token in doc.split('`').skip(1).step_by(2) {
        if let Some(rest) = token.strip_prefix("--codec ") {
            assert!(
                Codec::from_key(rest).is_some(),
                "docs/COMPRESSION.md mentions `--codec {rest}`, not a real key"
            );
        }
    }
}

#[test]
fn lint_id_scanner_respects_boundaries() {
    assert_eq!(lint_ids("fires D001 once"), ["D001"]);
    assert_eq!(lint_ids("`P004`/`A002`"), ["P004", "A002"]);
    assert_eq!(lint_ids("T001 walks; W001 checks; R001 pins"), ["T001", "W001", "R001"]);
    assert!(lint_ids("ID0012 and XP004 and P04 and P0045").is_empty());
}

#[test]
fn flag_scanner_parses_the_shapes_docs_use() {
    let flags = long_flags("run `cargo run --release --bin fig2 -- --quick --jobs=4` --no-deps");
    let names: Vec<&str> = flags.iter().map(|(f, _)| f.as_str()).collect();
    assert_eq!(names, ["release", "bin", "quick", "jobs", "no-deps"]);
    assert_eq!(flags[1].1.as_deref(), Some("fig2"));
    assert_eq!(flags[3].1.as_deref(), Some("4"));
    // em-dash-as-double-hyphen prose must not register
    assert!(long_flags("trains the model--quickly, too").is_empty());
}
