//! Golden trajectory fixture for the structure-of-arrays world.
//!
//! Records every agent's position (and each expert's kinematic state) at
//! sampled ticks as raw f32 bit patterns in hex — exact, platform-stable,
//! diff-friendly. Any rewrite of the world's hot path that perturbs one
//! RNG draw or one float operation anywhere in spawn/route/tick shows up
//! as a fixture diff. To regenerate after an *intentional* behavior
//! change, run
//! `LBCHAT_GOLDEN_WRITE=1 cargo test -p experiments --test world_golden`
//! and commit the diff.

use simworld::world::{World, WorldConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

fn render_trace() -> String {
    let mut out = String::new();
    // One paper-scale-shaped world and one with a fleet exercising the
    // wake queue; both reduced enough to keep the fixture small.
    for (label, n_fleet) in [("seed", 0usize), ("fleet", 25usize)] {
        let mut w = World::new(WorldConfig {
            n_fleet,
            ..WorldConfig::small(17)
        });
        let _ = writeln!(out, "# {label}: agents={}", w.n_agents());
        for tick in 0..=120u64 {
            if tick % 30 == 0 {
                let _ = write!(out, "{label} t={tick} cars");
                for p in w.car_positions() {
                    let _ = write!(out, " {:08x}:{:08x}", p.x.to_bits(), p.y.to_bits());
                }
                out.push('\n');
                let _ = write!(out, "{label} t={tick} peds");
                for p in w.pedestrian_positions() {
                    let _ = write!(out, " {:08x}:{:08x}", p.x.to_bits(), p.y.to_bits());
                }
                out.push('\n');
                for i in 0..w.n_experts() {
                    let v = w.expert_view(i);
                    let _ = writeln!(
                        out,
                        "{label} t={tick} expert{i} edge={} idx={} s={:08x} v={:08x}",
                        v.edge(),
                        v.edge_idx,
                        v.s.to_bits(),
                        v.speed.to_bits(),
                    );
                }
            }
            w.step();
        }
    }
    out
}

#[test]
fn world_trajectories_match_golden_fixture() {
    let rendered = render_trace();
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/world_trace.txt");
    if std::env::var_os("LBCHAT_GOLDEN_WRITE").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create fixtures dir");
        std::fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `LBCHAT_GOLDEN_WRITE=1 cargo test -p experiments --test world_golden` to record it",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "world trajectories drifted from the committed fixture; if the change is intentional, regenerate it"
    );
}
