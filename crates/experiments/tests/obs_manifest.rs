//! End-to-end checks on the observability layer (`lbchat::obs`).
//!
//! The run-manifest contract has two halves: the JSONL stream written to
//! disk parses back to the exact events that were recorded, and every
//! event's *content* is a pure function of the configuration — only the
//! fields in [`lbchat::obs::TIMING_FIELDS`] may differ between a serial
//! and a parallel run. This is a single `#[test]` because
//! [`lbchat::exec::set_jobs`] is process-global — two tests toggling it
//! concurrently would race (same pattern as `determinism.rs`).

use experiments::harness::train_and_evaluate_obs;
use experiments::{Condition, Method, Scale, Scenario};
use lbchat::exec;
use lbchat::obs::{parse_jsonl, ObsSink, TIMING_FIELDS};

#[test]
fn manifest_events_are_deterministic_modulo_timing() {
    let s = Scenario::build(Scale::quick());

    let run_cell = |jobs: usize| {
        exec::set_jobs(jobs);
        let sink = ObsSink::recording();
        let (rates, _) = train_and_evaluate_obs(Method::LbChat, &s, Condition::NoLoss, &sink, 0)
            .expect("scenario fits");
        (rates, sink)
    };
    let (serial_rates, serial) = run_cell(1);
    let (parallel_rates, parallel) = run_cell(4);
    exec::set_jobs(1);

    assert_eq!(serial_rates, parallel_rates, "rates must not depend on --jobs");

    // The cell emitted a full complement of event kinds.
    let events = serial.events();
    assert!(!events.is_empty(), "a recording cell must produce events");
    for kind in ["cell_start", "cell_finish", "round", "session", "transfer", "chat", "trial", "work_unit"]
    {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "expected at least one {kind:?} event, got kinds {:?}",
            events.iter().map(|e| e.kind.clone()).collect::<std::collections::BTreeSet<_>>()
        );
    }

    // Determinism modulo timing: canonical (timing-stripped, sorted)
    // streams are identical between jobs=1 and jobs=4 …
    assert_eq!(
        serial.canonical_events(),
        parallel.canonical_events(),
        "event contents must not depend on --jobs"
    );
    // … and so are the counter totals.
    assert_eq!(serial.counters(), parallel.counters());
    for (key, g1) in serial.gauges() {
        let g4 = parallel.gauges()[&key];
        assert_eq!((g1.n, g1.min, g1.max), (g4.n, g4.min, g4.max), "gauge {key} diverged");
    }

    // Raw streams do differ (timestamps), proving canonicalization is
    // doing real work rather than comparing equal strings.
    let raw = |sink: &ObsSink| {
        let mut lines: Vec<String> = sink.events().iter().map(lbchat::obs::Event::line).collect();
        lines.sort_unstable();
        lines
    };
    assert_ne!(raw(&serial), raw(&parallel), "wall-clock fields should differ between runs");

    // Round-trip: JSONL written out parses back to the identical events.
    let text = serial.to_jsonl();
    let parsed = parse_jsonl(&text).expect("manifest must parse");
    assert_eq!(parsed, events, "serialize → parse must be the identity");

    // …and through a real file, as the manifest writer does it.
    let path = std::env::temp_dir().join(format!("obs-manifest-test-{}.jsonl", std::process::id()));
    serial.write_jsonl(&path).expect("write manifest");
    let from_disk = parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(from_disk, events);

    // The schema promise behind canonicalization: timing fields appear
    // nowhere except as designated.
    let cell_finish = events.iter().find(|e| e.kind == "cell_finish").unwrap();
    assert!(cell_finish.num("wall_ms").is_some());
    assert!(TIMING_FIELDS.contains(&"wall_ms"));
}

#[test]
fn disabled_sink_changes_nothing_and_records_nothing() {
    // No jobs toggling here, so this can coexist with the test above.
    let s = Scenario::build(Scale::quick());
    let sink = ObsSink::disabled();
    let (rates, out) = train_and_evaluate_obs(Method::Sco, &s, Condition::NoLoss, &sink, 0)
        .expect("scenario fits");
    assert_eq!(sink.events(), vec![], "disabled sink must record zero events");
    assert!(sink.counters().is_empty());
    assert!(sink.gauges().is_empty());

    // And the plain (sink-free) API gives bit-identical results.
    let (rates2, out2) = experiments::harness::train_and_evaluate(Method::Sco, &s, Condition::NoLoss)
        .expect("scenario fits");
    assert_eq!(rates, rates2);
    assert_eq!(out.metrics.loss_curve, out2.metrics.loss_curve);
}
