//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its benches use: [`Criterion`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], benchmark groups with
//! [`BenchmarkGroup::sample_size`]/[`BenchmarkGroup::measurement_time`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock loop: each bench calibrates an
//! iteration count against the group's measurement time, then reports the
//! mean, minimum, and maximum per-iteration time over the sample batches.
//! No warm-up modelling, outlier analysis, or HTML reports — this exists
//! so `cargo bench` runs and produces honest comparative numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement backends. Only wall-clock time exists here; the type is
/// public because benches name `BenchmarkGroup<'_, WallTime>` explicitly.
pub mod measurement {
    /// Wall-clock measurement (the only backend in this stand-in).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// How batched inputs are sized in [`Bencher::iter_batched`]. The
/// stand-in runs one setup per timed call regardless, so the variants
/// only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; the real crate would amortise many per batch.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark sampling knobs, resolved from group overrides or
/// [`Criterion`] defaults.
#[derive(Debug, Clone, Copy)]
struct Sampling {
    sample_size: usize,
    measurement_time: Duration,
}

/// Timing statistics for one finished benchmark.
#[derive(Debug, Clone, Copy)]
struct Stats {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters: u64,
}

/// A finished benchmark's identity and timing, exposed so harnesses (the
/// `lbchat-bench` runner) can serialize results instead of scraping stdout.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` for grouped benches).
    pub id: String,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Fastest per-iteration time over the sample batches.
    pub min: Duration,
    /// Slowest per-iteration time over the sample batches.
    pub max: Duration,
    /// Total timed iterations behind the statistics.
    pub iters: u64,
}

/// Passed to every benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    sampling: Sampling,
    stats: Option<Stats>,
}

impl Bencher {
    fn new(sampling: Sampling) -> Self {
        Self { sampling, stats: None }
    }

    /// Times `routine`, called back-to-back in calibrated batches.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        self.run(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Times `routine` only, excluding `setup`, one setup per call.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        self.run(|iters| {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            timed
        });
    }

    /// Calibrates an iteration count so one sample lands near the time
    /// budget divided across samples, then records per-sample times.
    fn run(&mut self, mut sample: impl FnMut(u64) -> Duration) {
        let Sampling { sample_size, measurement_time } = self.sampling;
        let per_sample = measurement_time / sample_size.max(1) as u32;

        // Calibration: grow the batch until a sample is measurable.
        let mut iters: u64 = 1;
        let mut elapsed = sample(iters);
        while elapsed < per_sample / 2 && iters < u64::MAX / 2 {
            let scale = if elapsed.is_zero() {
                8.0
            } else {
                (per_sample.as_secs_f64() / elapsed.as_secs_f64()).min(8.0)
            };
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
            elapsed = sample(iters);
        }

        let mut total = elapsed;
        let mut min = elapsed / iters as u32;
        let mut max = min;
        let mut total_iters = iters;
        let deadline = Instant::now() + measurement_time;
        for _ in 1..sample_size {
            if Instant::now() >= deadline {
                break;
            }
            let t = sample(iters);
            let per = t / iters as u32;
            min = min.min(per);
            max = max.max(per);
            total += t;
            total_iters += iters;
        }
        self.stats = Some(Stats {
            mean: total / total_iters as u32,
            min,
            max,
            iters: total_iters,
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The benchmark driver: owns default sampling knobs, records results, and
/// prints them (unless silenced with [`Criterion::quiet`]).
#[derive(Debug)]
pub struct Criterion {
    defaults: Sampling,
    verbose: bool,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            defaults: Sampling {
                sample_size: 20,
                measurement_time: Duration::from_secs(3),
            },
            verbose: true,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.defaults.sample_size = n;
        self
    }

    /// Sets the default wall-clock budget each benchmark spends measuring.
    ///
    /// # Panics
    /// Panics if `t` is zero.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        assert!(t > Duration::ZERO, "measurement time must be positive");
        self.defaults.measurement_time = t;
        self
    }

    /// Disables per-benchmark stdout lines; results stay available through
    /// [`Criterion::take_results`].
    pub fn quiet(mut self) -> Self {
        self.verbose = false;
        self
    }

    /// Runs one benchmark under the driver's default sampling knobs.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let defaults = self.defaults;
        self.record(&id.into(), defaults, f);
        self
    }

    /// Starts a named group whose knobs can differ from the defaults.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let sampling = self.defaults;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sampling,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Results recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Drains the recorded results, leaving the driver reusable.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Final-report hook; nothing to aggregate in the stand-in.
    pub fn final_summary(&mut self) {}

    fn record(&mut self, id: &str, sampling: Sampling, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher::new(sampling);
        f(&mut b);
        match b.stats {
            Some(s) => {
                if self.verbose {
                    println!(
                        "{id:<44} time: [{} {} {}]  ({} iters)",
                        fmt_duration(s.min),
                        fmt_duration(s.mean),
                        fmt_duration(s.max),
                        s.iters,
                    );
                }
                self.results.push(BenchResult {
                    id: id.to_string(),
                    mean: s.mean,
                    min: s.min,
                    max: s.max,
                    iters: s.iters,
                });
            }
            None => {
                if self.verbose {
                    println!("{id:<44} (no measurement: bencher never invoked)");
                }
            }
        }
    }
}

/// A named group of benchmarks sharing sampling overrides.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    sampling: Sampling,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sampling.sample_size = n;
        self
    }

    /// Sets the wall-clock budget each benchmark spends measuring.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        assert!(t > Duration::ZERO, "measurement time must be positive");
        self.sampling.measurement_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let sampling = self.sampling;
        self.criterion.record(&id, sampling, f);
        self
    }

    /// Ends the group. (Reporting happens per-bench; nothing to flush.)
    pub fn finish(self) {}
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`]. Mirrors the real macro's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` invoking each group declared by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fast_sampling() -> Sampling {
        Sampling { sample_size: 3, measurement_time: Duration::from_millis(20) }
    }

    #[test]
    fn iter_runs_the_routine_and_records_stats() {
        let calls = AtomicU64::new(0);
        let mut b = Bencher::new(fast_sampling());
        b.iter(|| calls.fetch_add(1, Ordering::Relaxed));
        let stats = b.stats.expect("stats recorded");
        assert!(stats.iters > 0);
        // Calibration batches also invoke the routine, so the call count is
        // at least (not exactly) the recorded iteration count.
        assert!(calls.load(Ordering::Relaxed) >= stats.iters);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    }

    #[test]
    fn iter_batched_times_routine_not_setup() {
        let setups = AtomicU64::new(0);
        let runs = AtomicU64::new(0);
        let mut b = Bencher::new(fast_sampling());
        b.iter_batched(
            || setups.fetch_add(1, Ordering::Relaxed),
            |_| runs.fetch_add(1, Ordering::Relaxed),
            BatchSize::SmallInput,
        );
        assert_eq!(setups.load(Ordering::Relaxed), runs.load(Ordering::Relaxed));
        assert!(b.stats.is_some());
    }

    #[test]
    fn results_are_recorded_and_drainable() {
        let mut c = Criterion::default()
            .quiet()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        c.bench_function("solo", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| 2 + 2));
        g.finish();
        let results = c.take_results();
        let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["solo", "grp/inner"]);
        for r in &results {
            assert!(r.iters > 0);
            assert!(r.min <= r.mean && r.mean <= r.max);
        }
        assert!(c.results().is_empty(), "take_results drains");
    }

    #[test]
    fn group_knobs_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn macros_expand() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("a", |b| b.iter(|| 0));
        }
        criterion_group!(sample_group, bench_a);
        // criterion_main! declares `fn main`, which cannot live in a test;
        // invoking the group function covers the expansion path we use.
        sample_group();
    }
}
