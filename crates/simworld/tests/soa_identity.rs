//! Bit-identity of the structure-of-arrays world against the retained
//! per-agent reference implementation ([`simworld::reference`]).
//!
//! The SoA rewrite is an *optimization*: at seed scale (`n_fleet == 0`)
//! every observable — agent positions, expert routes and kinematic state,
//! BEV rasterizations, supervision targets — must match the reference to
//! the f32 bit, for any map seed and any number of ticks. Fleet scaling
//! invariants (wake-queue on/off, intent-order permutation) are checked
//! here too, over randomized populations rather than the single seeds the
//! in-module tests pin.

use proptest::prelude::*;
use simworld::reference;
use simworld::world::{World, WorldConfig};

/// Asserts every observable of `w` equals the reference world `r` bitwise.
fn assert_bit_identical(w: &World, r: &reference::World, ctx: &str) {
    let (wc, rc) = (w.car_positions(), r.car_positions());
    assert_eq!(wc.len(), rc.len(), "{ctx}: car count");
    for (i, (a, b)) in wc.iter().zip(&rc).enumerate() {
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "{ctx}: car {i} x");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "{ctx}: car {i} y");
    }
    let (wp, rp) = (w.pedestrian_positions(), r.pedestrian_positions());
    assert_eq!(wp.len(), rp.len(), "{ctx}: ped count");
    for (i, (a, b)) in wp.iter().zip(&rp).enumerate() {
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "{ctx}: ped {i} x");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "{ctx}: ped {i} y");
    }
    for i in 0..w.n_experts() {
        let v = w.expert_view(i);
        let e = r.experts()[i].view();
        assert_eq!(v.route.edges, e.route.edges, "{ctx}: expert {i} route");
        assert_eq!(v.edge_idx, e.edge_idx, "{ctx}: expert {i} edge_idx");
        assert_eq!(v.s.to_bits(), e.s.to_bits(), "{ctx}: expert {i} s");
        assert_eq!(v.speed.to_bits(), e.speed.to_bits(), "{ctx}: expert {i} speed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole contract: at seed scale the SoA world reproduces the
    /// reference step for step, on any map, to the f32 bit.
    #[test]
    fn soa_matches_reference_at_seed_scale(seed in 0u64..200, ticks in 1usize..50) {
        let mut w = World::new(WorldConfig::small(seed));
        let mut r = reference::World::new(WorldConfig::small(seed));
        assert_bit_identical(&w, &r, "after spawn");
        for t in 0..ticks {
            w.step();
            r.step();
            assert_bit_identical(&w, &r, &format!("tick {t} seed {seed}"));
        }
    }

    /// Observations — the full BEV tensor and the supervision targets —
    /// match bit for bit after an arbitrary number of steps.
    #[test]
    fn soa_observations_match_reference(seed in 0u64..100, ticks in 0usize..30) {
        let mut w = World::new(WorldConfig::small(seed));
        let mut r = reference::World::new(WorldConfig::small(seed));
        for _ in 0..ticks {
            w.step();
            r.step();
        }
        for i in 0..w.n_experts() {
            let (wb, ws) = w.observe_expert(i);
            let (rb, rs) = r.observe_expert(i);
            prop_assert_eq!(&wb, &rb, "BEV expert {} seed {}", i, seed);
            prop_assert_eq!(ws.command, rs.command);
            prop_assert_eq!(ws.waypoints.len(), rs.waypoints.len());
            for (a, b) in ws.waypoints.iter().zip(&rs.waypoints) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "waypoint bits expert {}", i);
            }
            prop_assert_eq!(ws.speed.to_bits(), rs.speed.to_bits());
            prop_assert_eq!(ws.turn_distance.to_bits(), rs.turn_distance.to_bits());
            prop_assert_eq!(ws.turn_sign.to_bits(), rs.turn_sign.to_bits());
        }
    }

    /// A wake queue that has been dirtied by hundreds of sleep/wake
    /// transitions yields exactly the trajectories of the world that
    /// never removes sleepers from its awake list.
    #[test]
    fn dirty_wake_queue_is_transparent(seed in 0u64..50, n_fleet in 1usize..40, ticks in 50usize..700) {
        let cfg = |wake_queue| WorldConfig {
            n_fleet,
            wake_queue,
            ..WorldConfig::small(seed)
        };
        let mut on = World::new(cfg(true));
        let mut off = World::new(cfg(false));
        let mut churn = 0usize;
        for _ in 0..ticks {
            let stats = on.step();
            churn += stats.slept + stats.woken;
            off.step();
        }
        let (a, b) = (on.car_positions(), off.car_positions());
        prop_assert_eq!(a.len(), b.len());
        for (p, q) in a.iter().zip(&b) {
            prop_assert_eq!(p.x.to_bits(), q.x.to_bits());
            prop_assert_eq!(p.y.to_bits(), q.y.to_bits());
        }
        // The run must actually have exercised the queue for the identity
        // to mean anything. Spawn staggers are strictly under 600 ticks,
        // so any longer run deterministically wakes every fleet vehicle
        // at least once.
        if ticks > 600 {
            prop_assert!(churn > 0, "wake queue never cycled (seed {})", seed);
        }
    }

    /// Shuffling the intent-phase visit order (what a different `--jobs`
    /// sharding amounts to) never changes a single output bit.
    #[test]
    fn intent_order_permutation_is_invariant(seed in 0u64..50, perm in 0u64..1000, n_fleet in 0usize..20) {
        let cfg = WorldConfig { n_fleet, ..WorldConfig::small(seed) };
        let mut a = World::new(cfg.clone());
        let mut b = World::new(cfg);
        for t in 0..60 {
            a.step();
            b.step_permuted(perm.wrapping_mul(31).wrapping_add(t));
        }
        let (pa, pb) = (a.car_positions(), b.car_positions());
        for (p, q) in pa.iter().zip(&pb) {
            prop_assert_eq!(p.x.to_bits(), q.x.to_bits());
            prop_assert_eq!(p.y.to_bits(), q.y.to_bits());
        }
        let (ea, eb) = (a.pedestrian_positions(), b.pedestrian_positions());
        for (p, q) in ea.iter().zip(&eb) {
            prop_assert_eq!(p.x.to_bits(), q.x.to_bits());
            prop_assert_eq!(p.y.to_bits(), q.y.to_bits());
        }
    }
}
