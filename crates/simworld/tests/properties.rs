//! Property-based tests over the driving world's invariants.

use proptest::prelude::*;
use simnet::geom::Vec2;
use simworld::bev::{self, rasterize, rasterize_into, Bev, BevConfig, Pose};
use simworld::map::{RoadKind, RoadNetwork};
use simworld::route::Router;
use simworld::world::{World, WorldConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn maps_are_strongly_connected_for_any_seed(seed in 0u64..500) {
        let m = RoadNetwork::generate(seed);
        prop_assert!(m.is_strongly_connected());
    }

    #[test]
    fn all_routes_chain_correctly(seed in 0u64..100, a in 0usize..30, b in 0usize..30) {
        let m = RoadNetwork::generate(seed);
        let (a, b) = (a % m.n_nodes(), b % m.n_nodes());
        prop_assume!(a != b);
        let r = Router::new(&m).route(a, b).expect("strongly connected");
        prop_assert_eq!(m.edge(r.edges[0]).from, a);
        prop_assert_eq!(r.destination(&m), b);
        for w in r.edges.windows(2) {
            prop_assert_eq!(m.edge(w[0]).to, m.edge(w[1]).from);
        }
    }

    #[test]
    fn shortest_route_no_longer_than_detours(seed in 0u64..50) {
        let m = RoadNetwork::generate(seed);
        let r = Router::new(&m);
        let n = m.n_nodes();
        let (a, mid, b) = (0, n / 2, n - 1);
        prop_assume!(a != mid && mid != b && a != b);
        let direct = r.route(a, b).unwrap().length(&m);
        let detour =
            r.route(a, mid).unwrap().length(&m) + r.route(mid, b).unwrap().length(&m);
        prop_assert!(direct <= detour + 1e-3);
    }

    #[test]
    fn vehicles_stay_on_drivable_area(seed in 0u64..20) {
        let mut w = World::new(WorldConfig::small(seed));
        for _ in 0..60 {
            w.step();
        }
        let raster = w.raster();
        for i in 0..w.n_experts() {
            let p = w.expert_view(i).position(w.map());
            prop_assert!(raster.is_road(p), "vehicle off-road at {p:?} (seed {seed})");
        }
    }

    #[test]
    fn bev_fast_path_matches_reference_on_random_scenes(
        seed in 0u64..6,
        (px, py) in (100.0f32..500.0, 100.0f32..500.0),
        heading in -3.2f32..3.2,
        speed in 0.0f32..25.0,
        route in prop::collection::vec((-60.0f32..60.0, -60.0f32..60.0), 0..8),
    ) {
        // A real road raster plus the world's live agents: the optimized
        // rasterizer must reproduce the reference's sparse occupancy (all
        // four channels, every cell) bit for bit.
        let w = World::new(WorldConfig::small(seed));
        let cfg = BevConfig::default();
        let pose = Pose { pos: Vec2::new(px, py), heading };
        let cars = w.car_positions();
        let peds = w.pedestrian_positions();
        let route: Vec<Vec2> =
            route.into_iter().map(|(dx, dy)| Vec2::new(px + dx, py + dy)).collect();
        let fast = rasterize(&cfg, pose, speed, w.raster(), &cars, &peds, &route);
        let slow =
            bev::reference::rasterize(&cfg, pose, speed, w.raster(), &cars, &peds, &route);
        prop_assert_eq!(&fast, &slow);

        // Reusing a dirty frame must match a fresh rasterization exactly.
        let mut frame = Bev::blank(cfg.cells);
        rasterize_into(
            &cfg,
            Pose { pos: Vec2::new(py, px), heading: -heading },
            speed + 1.0,
            w.raster(),
            &peds,
            &cars,
            &[],
            &mut frame,
        );
        rasterize_into(&cfg, pose, speed, w.raster(), &cars, &peds, &route, &mut frame);
        prop_assert_eq!(&frame, &fast);
    }

    #[test]
    fn expert_observation_shapes_hold_over_time(seed in 0u64..10, steps in 0usize..50) {
        let mut w = World::new(WorldConfig::small(seed));
        for _ in 0..steps {
            w.step();
        }
        let (bev, sup) = w.observe_expert(seed as usize % 8);
        let cfg = &w.config().bev;
        let feats = bev.features(cfg.pool);
        prop_assert_eq!(feats.len(), cfg.feature_len());
        prop_assert!(feats.iter().all(|f| (0.0..=1.0).contains(f)));
        prop_assert_eq!(sup.waypoints.len(), 2 * w.config().n_waypoints);
        // Ego-frame waypoints are bounded by the speed-based horizon.
        let horizon = 25.0 * w.config().n_waypoints as f32; // max speed * n
        for c in sup.waypoints.chunks(2) {
            prop_assert!(c[0].abs() <= horizon && c[1].abs() <= horizon);
        }
    }
}

#[test]
fn town_and_rural_road_shares_are_both_substantial() {
    let m = RoadNetwork::generate(0);
    let town = m.edges().iter().filter(|e| e.kind == RoadKind::Town).count();
    let rural = m.edges().iter().filter(|e| e.kind == RoadKind::Rural).count();
    assert!(town >= 10 && rural >= 6, "town {town} rural {rural}");
}

#[test]
fn speed_limits_respected_by_traffic() {
    let mut w = World::new(WorldConfig::small(4));
    for _ in 0..400 {
        w.step();
        for i in 0..w.n_experts() {
            let v = w.expert_view(i);
            let limit = w.map().edge(v.edge()).kind.speed_limit();
            // A vehicle crossing onto a slower road mid-frame only starts
            // braking the next frame, so entry overshoot is bounded by two
            // frames of maximum deceleration.
            let slack = 2.0 * simworld::agents::MAX_ACCEL * 0.5;
            assert!(v.speed <= limit + slack, "{} over limit {limit}", v.speed);
        }
    }
}

#[test]
fn traces_cover_the_training_window_densely() {
    let mut w = World::new(WorldConfig::small(5));
    let trace = w.record_trace(120.0);
    // Every vehicle should actually move over two minutes.
    for a in 0..trace.n_agents() {
        let start = trace.position(a, 0.0);
        let moved = (0..240)
            .map(|k| trace.position(a, k as f64 * 0.5).distance(start))
            .fold(0.0f32, f32::max);
        assert!(moved > 20.0, "agent {a} barely moved: {moved} m");
    }
}
