//! The privileged expert autopilot.
//!
//! The paper's data collectors are CARLA's "built-in expert autopilot"
//! vehicles which "perform safe and professional driving using the built-in
//! model and privileged information". Our expert follows its planned route
//! (it is road-locked, so steering is exact), controls speed with turn
//! slowdown and car-following, brakes for pedestrians in its path using
//! privileged world access, and emits the imitation-learning supervision:
//! the high-level command and the ground-truth future waypoints.

use crate::agents::VehicleRef;
use crate::map::RoadNetwork;
use crate::route::{classify_turn, TurnKind};
use simnet::geom::Vec2;

/// High-level navigation command, the conditional input of the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Keep following the road (no intersection imminent).
    Follow,
    /// Turn left at the upcoming intersection.
    Left,
    /// Turn right at the upcoming intersection.
    Right,
    /// Go straight through the upcoming intersection.
    Straight,
}

impl Command {
    /// Number of distinct commands (the policy's branch count).
    pub const COUNT: usize = 4;

    /// Dense index for branch selection and per-command bookkeeping.
    pub fn index(self) -> usize {
        match self {
            Command::Follow => 0,
            Command::Left => 1,
            Command::Right => 2,
            Command::Straight => 3,
        }
    }

    /// Inverse of [`Command::index`].
    ///
    /// # Panics
    /// Panics if `i >= Command::COUNT`.
    pub fn from_index(i: usize) -> Self {
        match i {
            0 => Command::Follow,
            1 => Command::Left,
            2 => Command::Right,
            3 => Command::Straight,
            // audit:allow(P003): the panic is this method's documented contract.
            _ => panic!("command index out of range: {i}"),
        }
    }
}

/// Distance to the next intersection below which the turn command is
/// announced (above it the command is `Follow`).
pub const COMMAND_HORIZON: f32 = 30.0;

/// Arc-length spacing between supervision waypoints (m).
pub const WAYPOINT_SPACING: f32 = 3.0;

/// Navigation horizon for the turn-distance feature, meters.
pub const TURN_LOOKAHEAD: f32 = 100.0;

/// The supervision an expert emits for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertOutput {
    /// Conditional command for this frame.
    pub command: Command,
    /// Future waypoints in the ego frame (x forward, y left), flattened as
    /// `[x1, y1, x2, y2, ..]` — the policy's regression target.
    pub waypoints: Vec<f32>,
    /// Current ego speed (m/s).
    pub speed: f32,
    /// Route distance to the next turning intersection, capped at
    /// [`TURN_LOOKAHEAD`] (a navigation-service scalar the policy consumes).
    pub turn_distance: f32,
    /// +1 when that turn is a left, −1 for a right, 0 when none is within
    /// the lookahead.
    pub turn_sign: f32,
}

/// Route distance (m) to the next Left/Right turn and its sign, walking the
/// remaining route from `(edge_idx, s)`, capped at [`TURN_LOOKAHEAD`].
pub fn next_turn_info(
    map: &RoadNetwork,
    route_edges: &[crate::map::EdgeId],
    edge_idx: usize,
    s: f32,
) -> (f32, f32) {
    let mut dist = 0.0f32;
    for (k, &eid) in route_edges[edge_idx..].iter().enumerate() {
        let edge_len = map.edge(eid).length;
        let start = if k == 0 { s } else { 0.0 };
        dist += edge_len - start;
        if dist >= TURN_LOOKAHEAD {
            return (TURN_LOOKAHEAD, 0.0);
        }
        match route_edges.get(edge_idx + k + 1) {
            None => return (TURN_LOOKAHEAD, 0.0),
            Some(&next) => match classify_turn(map, eid, next) {
                TurnKind::Left => return (dist, 1.0),
                TurnKind::Right => return (dist, -1.0),
                TurnKind::Straight => {}
            },
        }
    }
    (TURN_LOOKAHEAD, 0.0)
}

/// Computes the high-level command for a route-following vehicle: the turn
/// direction of the next intersection when within [`COMMAND_HORIZON`],
/// otherwise `Follow`.
pub fn command_for(map: &RoadNetwork, vehicle: VehicleRef<'_>) -> Command {
    if vehicle.remaining_on_edge(map) > COMMAND_HORIZON {
        return Command::Follow;
    }
    match vehicle.route.edges.get(vehicle.edge_idx + 1) {
        None => Command::Follow, // destination ahead, keep lane
        Some(&next) => match classify_turn(map, vehicle.edge(), next) {
            TurnKind::Left => Command::Left,
            TurnKind::Right => Command::Right,
            TurnKind::Straight => Command::Straight,
        },
    }
}

/// Samples `n` ground-truth waypoints along the vehicle's remaining route at
/// [`WAYPOINT_SPACING`] intervals, expressed in the ego frame.
pub fn waypoints_for(map: &RoadNetwork, vehicle: VehicleRef<'_>, n: usize) -> Vec<f32> {
    let pos = vehicle.position(map);
    let heading = vehicle.heading(map).angle();
    let mut out = Vec::with_capacity(2 * n);

    // Walk the remaining route accumulating arc length.
    let mut targets: Vec<f32> = (1..=n).map(|k| k as f32 * WAYPOINT_SPACING).collect();
    targets.reverse(); // pop from the back in increasing order
    let mut walked = 0.0f32;
    let mut last_point = pos;
    'outer: for (i, &eid) in vehicle.route.edges[vehicle.edge_idx..].iter().enumerate() {
        let edge = map.edge(eid);
        let start_s = if i == 0 { vehicle.s } else { 0.0 };
        let seg_len = edge.length - start_s;
        while let Some(&t) = targets.last() {
            if t <= walked + seg_len {
                let p = map.position_on_edge(eid, start_s + (t - walked));
                let ego = (p - pos).rotated(-heading);
                out.push(ego.x);
                out.push(ego.y);
                last_point = p;
                targets.pop();
            } else {
                break;
            }
        }
        if targets.is_empty() {
            break 'outer;
        }
        walked += seg_len;
    }
    // Route ran out: pad by repeating the last reached point (destination).
    while out.len() < 2 * n {
        let ego = (last_point - pos).rotated(-heading);
        out.push(ego.x);
        out.push(ego.y);
    }
    out
}

/// Full expert supervision for one frame.
pub fn supervise(map: &RoadNetwork, vehicle: VehicleRef<'_>, n_waypoints: usize) -> ExpertOutput {
    let (turn_distance, turn_sign) =
        next_turn_info(map, &vehicle.route.edges, vehicle.edge_idx, vehicle.s);
    ExpertOutput {
        command: command_for(map, vehicle),
        waypoints: waypoints_for(map, vehicle, n_waypoints),
        speed: vehicle.speed,
        turn_distance,
        turn_sign,
    }
}

/// Time-spaced supervision waypoints: waypoint `k` sits at arc-length
/// `k · step_dt · v_target` along the remaining route, in the ego frame.
///
/// Time spacing (as in *Learning by Cheating*) encodes the expert's speed
/// decision in the geometry: when the expert brakes (hazard ahead,
/// `v_target ≈ 0`) the waypoints bunch at the bumper, teaching the policy to
/// stop; at cruise they spread out along the route.
pub fn waypoints_timed(
    map: &RoadNetwork,
    vehicle: VehicleRef<'_>,
    n: usize,
    step_dt: f32,
    v_target: f32,
) -> Vec<f32> {
    let pos = vehicle.position(map);
    let heading = vehicle.heading(map).angle();
    let spacing = (v_target.max(0.0)) * step_dt;
    let mut out = Vec::with_capacity(2 * n);
    if spacing < 1e-3 {
        // Full stop: every waypoint at the current position.
        for _ in 0..n {
            out.push(0.0);
            out.push(0.0);
        }
        return out;
    }
    let mut targets: Vec<f32> = (1..=n).map(|k| k as f32 * spacing).collect();
    targets.reverse();
    let mut walked = 0.0f32;
    let mut last_point = pos;
    'outer: for (i, &eid) in vehicle.route.edges[vehicle.edge_idx..].iter().enumerate() {
        let edge = map.edge(eid);
        let start_s = if i == 0 { vehicle.s } else { 0.0 };
        let seg_len = edge.length - start_s;
        while let Some(&t) = targets.last() {
            if t <= walked + seg_len {
                let p = map.position_on_edge(eid, start_s + (t - walked));
                let ego = (p - pos).rotated(-heading);
                out.push(ego.x);
                out.push(ego.y);
                last_point = p;
                targets.pop();
            } else {
                break;
            }
        }
        if targets.is_empty() {
            break 'outer;
        }
        walked += seg_len;
    }
    while out.len() < 2 * n {
        let ego = (last_point - pos).rotated(-heading);
        out.push(ego.x);
        out.push(ego.y);
    }
    out
}

/// Distance to the nearest car in the forward cone (the privileged
/// car-following sensor), or `None` when clear within `lookahead`.
pub fn forward_gap(
    map: &RoadNetwork,
    vehicle: VehicleRef<'_>,
    cars: &[Vec2],
    lookahead: f32,
    half_width: f32,
) -> Option<f32> {
    let pos = vehicle.position(map);
    let heading = vehicle.heading(map).angle();
    cars.iter()
        .filter_map(|&c| {
            let ego = (c - pos).rotated(-heading);
            (ego.x > 0.5 && ego.x < lookahead && ego.y.abs() < half_width).then_some(ego.x)
        })
        .fold(None, |acc: Option<f32>, d| Some(acc.map_or(d, |a| a.min(d))))
}

/// Full time-spaced supervision: command, waypoints at `step_dt` spacing
/// for the expert's chosen `v_target`, and the current speed.
pub fn supervise_timed(
    map: &RoadNetwork,
    vehicle: VehicleRef<'_>,
    n_waypoints: usize,
    step_dt: f32,
    v_target: f32,
) -> ExpertOutput {
    let (turn_distance, turn_sign) =
        next_turn_info(map, &vehicle.route.edges, vehicle.edge_idx, vehicle.s);
    ExpertOutput {
        command: command_for(map, vehicle),
        waypoints: waypoints_timed(map, vehicle, n_waypoints, step_dt, v_target),
        speed: vehicle.speed,
        turn_distance,
        turn_sign,
    }
}

/// Privileged hazard check: returns `true` when any obstacle position lies
/// within a forward cone of the vehicle (distance < `lookahead`, lateral
/// offset < `half_width`), meaning the expert should brake.
pub fn hazard_ahead(
    map: &RoadNetwork,
    vehicle: VehicleRef<'_>,
    obstacles: &[Vec2],
    lookahead: f32,
    half_width: f32,
) -> bool {
    let pos = vehicle.position(map);
    let heading = vehicle.heading(map).angle();
    obstacles.iter().any(|&o| {
        let ego = (o - pos).rotated(-heading);
        ego.x > 0.5 && ego.x < lookahead && ego.y.abs() < half_width
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::RoadVehicle;
    use crate::map::RoadNetwork;
    use crate::route::Router;

    fn vehicle_on(map: &RoadNetwork, from: usize, to: usize) -> RoadVehicle {
        let route = Router::new(map).route(from, to).unwrap();
        RoadVehicle::new(route)
    }

    #[test]
    fn command_is_follow_far_from_intersection() {
        let map = RoadNetwork::generate(1);
        let v = vehicle_on(&map, 0, map.n_nodes() - 1);
        // Fresh on a ~110 m town edge: intersection > 30 m away.
        assert_eq!(command_for(&map, v.view()), Command::Follow);
    }

    #[test]
    fn command_announces_turns_near_intersections() {
        let map = RoadNetwork::generate(1);
        let mut v = vehicle_on(&map, 0, map.n_nodes() - 1);
        let mut saw_non_follow = false;
        let mut guard = 0;
        while v.advance(&map, 8.0, 0.5) {
            if command_for(&map, v.view()) != Command::Follow {
                saw_non_follow = true;
                assert!(v.remaining_on_edge(&map) <= COMMAND_HORIZON);
            }
            guard += 1;
            assert!(guard < 10_000);
        }
        assert!(saw_non_follow, "a grid route must announce at least one command");
    }

    #[test]
    fn waypoints_have_requested_count_and_progress_forward() {
        let map = RoadNetwork::generate(2);
        let v = vehicle_on(&map, 0, map.n_nodes() - 1);
        let wps = waypoints_for(&map, v.view(), 5);
        assert_eq!(wps.len(), 10);
        // On a straight stretch waypoints advance along +x in ego frame.
        let xs: Vec<f32> = wps.chunks(2).map(|c| c[0]).collect();
        for w in xs.windows(2) {
            assert!(w[1] >= w[0] - 1e-3, "x must be non-decreasing: {xs:?}");
        }
        assert!((xs[0] - WAYPOINT_SPACING).abs() < 1.0);
    }

    #[test]
    fn waypoints_pad_at_destination() {
        let map = RoadNetwork::generate(3);
        let mut v = vehicle_on(&map, 0, 1);
        while v.advance(&map, 10.0, 0.5) {}
        let wps = waypoints_for(&map, v.view(), 4);
        assert_eq!(wps.len(), 8);
        // All padded to (near) the destination = current position.
        for c in wps.chunks(2) {
            assert!(c[0].abs() < 2.0 && c[1].abs() < 2.0);
        }
    }

    #[test]
    fn hazard_detected_in_cone_only() {
        let map = RoadNetwork::generate(4);
        let v = vehicle_on(&map, 0, map.n_nodes() - 1);
        let pos = v.position(&map);
        let heading = v.heading(&map);
        let ahead = pos + heading * 8.0;
        let behind = pos - heading * 8.0;
        let beside = pos + heading.perp() * 8.0;
        assert!(hazard_ahead(&map, v.view(), &[ahead], 12.0, 3.0));
        assert!(!hazard_ahead(&map, v.view(), &[behind], 12.0, 3.0));
        assert!(!hazard_ahead(&map, v.view(), &[beside], 12.0, 3.0));
    }

    #[test]
    fn command_index_roundtrip() {
        for i in 0..Command::COUNT {
            assert_eq!(Command::from_index(i).index(), i);
        }
    }

    #[test]
    fn supervise_bundles_everything() {
        let map = RoadNetwork::generate(5);
        let v = vehicle_on(&map, 0, map.n_nodes() - 1);
        let out = supervise(&map, v.view(), 5);
        assert_eq!(out.waypoints.len(), 10);
        assert_eq!(out.speed, 0.0);
    }
}
