//! The procedural road network: town grid + rural loop on a 1 km × 1 km map.
//!
//! The paper uses "the largest built-in map ... which covers an area of about
//! 1km×1km, including both town and rural areas". We generate an equivalent:
//! a Manhattan-style town grid occupying the south-west of the map and a
//! rural loop with long, gently curved roads around the north and east,
//! attached to the grid at several junctions.

use rand::{Rng, RngExt, SeedableRng};
use simnet::geom::{polyline_length, Vec2};

/// Index of an intersection node.
pub type NodeId = usize;
/// Index of a directed lane edge.
pub type EdgeId = usize;

/// Classification of a road, determining its speed limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoadKind {
    /// Dense urban streets (low speed).
    Town,
    /// Sparse rural roads (higher speed).
    Rural,
}

impl RoadKind {
    /// Speed limit in m/s (town ≈ 36 km/h, rural ≈ 72 km/h).
    pub fn speed_limit(self) -> f32 {
        match self {
            RoadKind::Town => 10.0,
            RoadKind::Rural => 20.0,
        }
    }
}

/// An intersection.
#[derive(Debug, Clone)]
pub struct Node {
    /// Position in meters.
    pub pos: Vec2,
}

/// A directed lane from one node to another along a polyline.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Start node.
    pub from: NodeId,
    /// End node.
    pub to: NodeId,
    /// Geometry from `from` to `to` (at least two points).
    pub polyline: Vec<Vec2>,
    /// Cached arc length of the polyline in meters.
    pub length: f32,
    /// Road classification.
    pub kind: RoadKind,
}

/// The directed road graph. Adjacency is stored in compressed-sparse-row
/// form: `out_flat[out_offsets[n]..out_offsets[n + 1]]` lists the edges
/// leaving node `n`, in ascending edge-id order (the same order the
/// previous `Vec<Vec<EdgeId>>` representation produced, so every
/// traversal — Dijkstra relaxation included — visits edges identically).
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// CSR row offsets into `out_flat`, one per node plus a final sentinel.
    out_offsets: Vec<u32>,
    /// CSR column data: edge ids grouped by source node.
    out_flat: Vec<EdgeId>,
    /// Side length of the (square) map in meters.
    extent: f32,
}

/// Parameters of the procedural map generator.
#[derive(Debug, Clone)]
pub struct MapConfig {
    /// Side length of the square map in meters.
    pub extent: f32,
    /// Number of town-grid intersections per axis.
    pub grid: usize,
    /// Spacing between town intersections in meters.
    pub block: f32,
    /// South-west corner of the town grid.
    pub town_origin: Vec2,
    /// Number of nodes on the rural loop.
    pub rural_nodes: usize,
    /// Random jitter (m) applied to rural road midpoints for gentle curves.
    pub rural_jitter: f32,
}

impl Default for MapConfig {
    fn default() -> Self {
        Self {
            extent: 1000.0,
            grid: 6,
            block: 110.0,
            town_origin: Vec2::new(80.0, 80.0),
            rural_nodes: 10,
            rural_jitter: 40.0,
        }
    }
}

/// Builds the CSR `(offsets, flat)` adjacency from an edge list: a
/// counting pass sizes each row, a prefix sum places it, and a fill pass
/// walks edges in ascending id so each row keeps ascending edge order.
fn csr_adjacency(n_nodes: usize, edges: &[Edge]) -> (Vec<u32>, Vec<EdgeId>) {
    let mut offsets = vec![0u32; n_nodes + 1];
    for e in edges {
        let row = e.from + 1;
        offsets[row] += 1;
    }
    for i in 1..offsets.len() {
        let prev = i - 1;
        offsets[i] += offsets[prev];
    }
    let mut flat = vec![0 as EdgeId; edges.len()];
    let mut cursor: Vec<u32> = offsets[..n_nodes].to_vec();
    for (eid, e) in edges.iter().enumerate() {
        let slot = cursor[e.from] as usize;
        flat[slot] = eid;
        cursor[e.from] += 1;
    }
    (offsets, flat)
}

impl RoadNetwork {
    /// Generates the default 1 km × 1 km town + rural map from a seed.
    pub fn generate(seed: u64) -> Self {
        Self::generate_with(&MapConfig::default(), seed)
    }

    /// Generates a map with explicit parameters.
    ///
    /// # Panics
    /// Panics if the grid has fewer than 2 nodes per axis or the rural loop
    /// fewer than 3 nodes.
    pub fn generate_with(cfg: &MapConfig, seed: u64) -> Self {
        assert!(cfg.grid >= 2, "town grid needs at least 2x2 intersections");
        assert!(cfg.rural_nodes >= 3, "rural loop needs at least 3 nodes");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut nodes = Vec::new();
        let mut edges: Vec<Edge> = Vec::new();

        // --- Town grid ---
        let g = cfg.grid;
        let node_id = |ix: usize, iy: usize| ix * g + iy;
        for ix in 0..g {
            for iy in 0..g {
                nodes.push(Node {
                    pos: Vec2::new(
                        cfg.town_origin.x + ix as f32 * cfg.block,
                        cfg.town_origin.y + iy as f32 * cfg.block,
                    ),
                });
            }
        }
        let add_road = |edges: &mut Vec<Edge>,
                            nodes: &[Node],
                            a: NodeId,
                            b: NodeId,
                            kind: RoadKind,
                            mid: Option<Vec2>| {
            let mut poly = vec![nodes[a].pos];
            if let Some(m) = mid {
                poly.push(m);
            }
            poly.push(nodes[b].pos);
            let length = polyline_length(&poly);
            edges.push(Edge { from: a, to: b, polyline: poly.clone(), length, kind });
            poly.reverse();
            edges.push(Edge { from: b, to: a, polyline: poly, length, kind });
        };
        for ix in 0..g {
            for iy in 0..g {
                if ix + 1 < g {
                    add_road(&mut edges, &nodes, node_id(ix, iy), node_id(ix + 1, iy), RoadKind::Town, None);
                }
                if iy + 1 < g {
                    add_road(&mut edges, &nodes, node_id(ix, iy), node_id(ix, iy + 1), RoadKind::Town, None);
                }
            }
        }

        // --- Rural loop around the north and east of the map ---
        // Anchor the loop at three town-boundary intersections and sweep the
        // remaining nodes along the map's NE periphery.
        let town_ne = node_id(g - 1, g - 1);
        let town_se = node_id(g - 1, 0);
        let town_nw = node_id(0, g - 1);
        let mut loop_ids: Vec<NodeId> = vec![town_se, town_ne];
        let margin = 90.0f32;
        for k in 0..cfg.rural_nodes {
            // Sweep from east edge (south) up and around to the north edge
            // (west) — a quarter-circle-ish arc in the map's NE corner.
            let t = (k as f32 + 1.0) / (cfg.rural_nodes as f32 + 1.0);
            let angle = -std::f32::consts::FRAC_PI_2 + t * std::f32::consts::PI;
            let center = Vec2::new(cfg.extent * 0.45, cfg.extent * 0.45);
            let radius = cfg.extent * 0.5 - margin;
            let pos = Vec2::new(
                (center.x + radius * angle.cos()).clamp(margin, cfg.extent - margin),
                (center.y + radius * angle.sin()).clamp(margin, cfg.extent - margin),
            );
            nodes.push(Node { pos });
            loop_ids.push(nodes.len() - 1);
        }
        loop_ids.push(town_nw);
        for w in loop_ids.windows(2) {
            let (a, b) = (w[0], w[1]);
            let midpoint = nodes[a].pos.lerp(nodes[b].pos, 0.5);
            let dir = (nodes[b].pos - nodes[a].pos).normalized().perp();
            let jitter: f32 = rng.random_range(-cfg.rural_jitter..cfg.rural_jitter);
            add_road(&mut edges, &nodes, a, b, RoadKind::Rural, Some(midpoint + dir * jitter));
        }

        let (out_offsets, out_flat) = csr_adjacency(nodes.len(), &edges);
        Self { nodes, edges, out_offsets, out_flat, extent: cfg.extent }
    }

    /// Number of intersections.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Side length of the square map in meters.
    pub fn extent(&self) -> f32 {
        self.extent
    }

    /// Intersection `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Directed edge `id`.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    /// Edges leaving node `id`, in ascending edge-id order.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        let next = id + 1;
        let lo = self.out_offsets[id] as usize;
        let hi = self.out_offsets[next] as usize;
        &self.out_flat[lo..hi]
    }

    /// All edges (for rasterization and tests).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Position at arc-length `s` along edge `eid`, clamped.
    pub fn position_on_edge(&self, eid: EdgeId, s: f32) -> Vec2 {
        simnet::geom::point_at_arclength(&self.edges[eid].polyline, s)
    }

    /// Unit tangent at arc-length `s` along edge `eid`.
    pub fn tangent_on_edge(&self, eid: EdgeId, s: f32) -> Vec2 {
        simnet::geom::tangent_at_arclength(&self.edges[eid].polyline, s)
    }

    /// The reverse counterpart of `eid` (the opposite lane of the same
    /// road), if present. Generated maps always create both directions
    /// consecutively, so this is a cheap parity lookup validated by the
    /// endpoints.
    pub fn reverse_of(&self, eid: EdgeId) -> Option<EdgeId> {
        let e = &self.edges[eid];
        let candidate = if eid % 2 == 0 { eid + 1 } else { eid - 1 };
        let c = self.edges.get(candidate)?;
        (c.from == e.to && c.to == e.from).then_some(candidate)
    }

    /// A uniformly random edge id.
    pub fn random_edge<R: Rng + ?Sized>(&self, rng: &mut R) -> EdgeId {
        rng.random_range(0..self.edges.len())
    }

    /// A uniformly random node id.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        rng.random_range(0..self.nodes.len())
    }

    /// Whether every node can reach every other node (the generator must
    /// produce a strongly connected graph or routing would dead-end).
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let reach = |start: NodeId, reversed: bool| -> usize {
            let mut seen = vec![false; self.nodes.len()];
            let mut stack = vec![start];
            seen[start] = true;
            let mut count = 1;
            while let Some(n) = stack.pop() {
                for (eid, e) in self.edges.iter().enumerate() {
                    let _ = eid;
                    let (a, b) = if reversed { (e.to, e.from) } else { (e.from, e.to) };
                    if a == n && !seen[b] {
                        seen[b] = true;
                        count += 1;
                        stack.push(b);
                    }
                }
            }
            count
        };
        reach(0, false) == self.n_nodes() && reach(0, true) == self.n_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_map_has_town_and_rural() {
        let m = RoadNetwork::generate(1);
        assert!(m.edges().iter().any(|e| e.kind == RoadKind::Town));
        assert!(m.edges().iter().any(|e| e.kind == RoadKind::Rural));
    }

    #[test]
    fn map_fits_extent() {
        let m = RoadNetwork::generate(2);
        for e in m.edges() {
            for p in &e.polyline {
                assert!(p.x >= 0.0 && p.x <= m.extent(), "x out of map: {p:?}");
                assert!(p.y >= 0.0 && p.y <= m.extent(), "y out of map: {p:?}");
            }
        }
    }

    #[test]
    fn edges_come_in_directed_pairs() {
        let m = RoadNetwork::generate(3);
        for eid in 0..m.n_edges() {
            let rev = m.reverse_of(eid).expect("every road is bidirectional");
            assert_eq!(m.edge(rev).from, m.edge(eid).to);
            assert_eq!(m.edge(rev).to, m.edge(eid).from);
            assert_eq!(m.reverse_of(rev), Some(eid));
        }
    }

    #[test]
    fn strongly_connected() {
        for seed in 0..5 {
            assert!(RoadNetwork::generate(seed).is_strongly_connected(), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RoadNetwork::generate(7);
        let b = RoadNetwork::generate(7);
        assert_eq!(a.n_nodes(), b.n_nodes());
        for eid in 0..a.n_edges() {
            assert_eq!(a.edge(eid).polyline, b.edge(eid).polyline);
        }
    }

    #[test]
    fn edge_lengths_match_polylines() {
        let m = RoadNetwork::generate(4);
        for e in m.edges() {
            assert!((e.length - polyline_length(&e.polyline)).abs() < 1e-4);
            assert!(e.length > 1.0, "degenerate edge");
        }
    }

    #[test]
    fn rural_roads_are_longer_and_faster() {
        let m = RoadNetwork::generate(5);
        let town_avg = average_len(&m, RoadKind::Town);
        let rural_avg = average_len(&m, RoadKind::Rural);
        assert!(rural_avg > town_avg, "rural {rural_avg} town {town_avg}");
        assert!(RoadKind::Rural.speed_limit() > RoadKind::Town.speed_limit());
    }

    fn average_len(m: &RoadNetwork, kind: RoadKind) -> f32 {
        let v: Vec<f32> =
            m.edges().iter().filter(|e| e.kind == kind).map(|e| e.length).collect();
        v.iter().sum::<f32>() / v.len() as f32
    }

    #[test]
    fn out_edges_indexed_correctly() {
        let m = RoadNetwork::generate(6);
        for n in 0..m.n_nodes() {
            for &eid in m.out_edges(n) {
                assert_eq!(m.edge(eid).from, n);
            }
        }
    }

    #[test]
    fn csr_rows_are_complete_and_ascending() {
        // The CSR adjacency must list every edge exactly once, under its
        // source node, in ascending edge-id order — the order the previous
        // Vec<Vec<EdgeId>> build produced, which routing depends on.
        let m = RoadNetwork::generate(6);
        let mut seen = vec![false; m.n_edges()];
        for n in 0..m.n_nodes() {
            let row = m.out_edges(n);
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {n} not ascending: {row:?}");
            }
            for &eid in row {
                assert!(!seen[eid], "edge {eid} listed twice");
                seen[eid] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every edge must appear in some row");
    }
}
