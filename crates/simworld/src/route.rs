//! Routing and high-level command classification.
//!
//! Vehicles follow routes computed by Dijkstra over the road graph — the
//! stand-in for the navigation service the paper assumes ("future routes in
//! next few minutes, which can be obtained from navigation services").

use crate::map::{EdgeId, NodeId, RoadNetwork};
use simnet::geom::Vec2;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A planned route: a sequence of connected directed edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Edge ids from origin to destination, each starting where the previous
    /// ended.
    pub edges: Vec<EdgeId>,
}

impl Route {
    /// Total length in meters.
    pub fn length(&self, map: &RoadNetwork) -> f32 {
        self.edges.iter().map(|&e| map.edge(e).length).sum()
    }

    /// Destination node.
    ///
    /// # Panics
    /// Panics on an empty route.
    pub fn destination(&self, map: &RoadNetwork) -> NodeId {
        map.edge(*self.edges.last().expect("route must have edges")).to
    }

    /// Number of intersections where the route turns (heading change of at
    /// least ~30°) — used to pick "one turn" / "navigation" evaluation
    /// routes.
    pub fn turn_count(&self, map: &RoadNetwork) -> usize {
        self.edges
            .windows(2)
            .filter(|w| {
                matches!(
                    classify_turn(map, w[0], w[1]),
                    TurnKind::Left | TurnKind::Right
                )
            })
            .count()
    }

    /// Concatenated polyline of the whole route.
    pub fn polyline(&self, map: &RoadNetwork) -> Vec<Vec2> {
        let mut out: Vec<Vec2> = Vec::new();
        for &eid in &self.edges {
            for p in &map.edge(eid).polyline {
                if out.last().map_or(true, |l| l.distance(*p) > 1e-6) {
                    out.push(*p);
                }
            }
        }
        out
    }
}

/// How the route bends from one edge into the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnKind {
    /// Heading continues (|Δheading| < 30°).
    Straight,
    /// Left turn (Δheading ≥ 30° counter-clockwise).
    Left,
    /// Right turn (Δheading ≥ 30° clockwise).
    Right,
}

/// Classifies the turn between two consecutive route edges.
pub fn classify_turn(map: &RoadNetwork, from: EdgeId, to: EdgeId) -> TurnKind {
    let e_in = map.edge(from);
    let e_out = map.edge(to);
    let n = e_in.polyline.len();
    let dir_in = (e_in.polyline[n - 1] - e_in.polyline[n - 2]).normalized();
    let dir_out = (e_out.polyline[1] - e_out.polyline[0]).normalized();
    let cross = dir_in.cross(dir_out);
    let dot = dir_in.dot(dir_out);
    let angle = cross.atan2(dot); // signed heading change
    let thirty = 30.0f32.to_radians();
    if angle > thirty {
        TurnKind::Left
    } else if angle < -thirty {
        TurnKind::Right
    } else {
        TurnKind::Straight
    }
}

/// Shortest-path router over a road network.
#[derive(Debug, Clone)]
pub struct Router<'a> {
    map: &'a RoadNetwork,
}

#[derive(PartialEq)]
struct QueueItem {
    dist: f32,
    node: NodeId,
}

impl Eq for QueueItem {}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> Router<'a> {
    /// Creates a router over `map`.
    pub fn new(map: &'a RoadNetwork) -> Self {
        Self { map }
    }

    /// Shortest route (by length) from `from` to `to`, or `None` when
    /// `from == to` or unreachable (never on generated maps, which are
    /// strongly connected).
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Route> {
        if from == to {
            return None;
        }
        let n = self.map.n_nodes();
        let mut dist = vec![f32::INFINITY; n];
        let mut prev_edge: Vec<Option<EdgeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(QueueItem { dist: 0.0, node: from });
        while let Some(QueueItem { dist: d, node }) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            if node == to {
                break;
            }
            for &eid in self.map.out_edges(node) {
                let e = self.map.edge(eid);
                let nd = d + e.length;
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    prev_edge[e.to] = Some(eid);
                    heap.push(QueueItem { dist: nd, node: e.to });
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = to;
        while cur != from {
            let eid = prev_edge[cur].expect("path reconstructed from reached node");
            edges.push(eid);
            cur = self.map.edge(eid).from;
        }
        edges.reverse();
        Some(Route { edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::RoadNetwork;

    #[test]
    fn routes_connect_endpoints() {
        let m = RoadNetwork::generate(1);
        let r = Router::new(&m);
        let route = r.route(0, m.n_nodes() - 1).expect("strongly connected");
        assert_eq!(m.edge(route.edges[0]).from, 0);
        assert_eq!(route.destination(&m), m.n_nodes() - 1);
        // consecutive edges chain
        for w in route.edges.windows(2) {
            assert_eq!(m.edge(w[0]).to, m.edge(w[1]).from);
        }
    }

    #[test]
    fn same_node_has_no_route() {
        let m = RoadNetwork::generate(1);
        assert!(Router::new(&m).route(3, 3).is_none());
    }

    #[test]
    fn routes_are_shortest() {
        let m = RoadNetwork::generate(2);
        let r = Router::new(&m);
        // Triangle inequality spot check: route(a,c) <= route(a,b)+route(b,c)
        let (a, b, c) = (0, m.n_nodes() / 2, m.n_nodes() - 1);
        let ac = r.route(a, c).unwrap().length(&m);
        let ab = r.route(a, b).unwrap().length(&m);
        let bc = r.route(b, c).unwrap().length(&m);
        assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn turn_classification_on_grid() {
        let m = RoadNetwork::generate(3);
        let r = Router::new(&m);
        // Gather some routes and check every classified turn is sane.
        let route = r.route(0, m.n_nodes() - 1).unwrap();
        for w in route.edges.windows(2) {
            let _ = classify_turn(&m, w[0], w[1]); // must not panic
        }
    }

    #[test]
    fn turn_count_zero_for_straight_grid_route() {
        let m = RoadNetwork::generate(4);
        let r = Router::new(&m);
        // Nodes 0 and 1 in the town grid are adjacent along one axis: a
        // single-edge route has no turns.
        let route = r.route(0, 1).unwrap();
        assert_eq!(route.turn_count(&m), 0);
    }

    #[test]
    fn polyline_is_continuous() {
        let m = RoadNetwork::generate(5);
        let r = Router::new(&m);
        let route = r.route(0, m.n_nodes() - 1).unwrap();
        let poly = route.polyline(&m);
        for w in poly.windows(2) {
            assert!(w[0].distance(w[1]) < 400.0, "polyline jump detected");
        }
    }
}
