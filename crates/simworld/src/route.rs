//! Routing and high-level command classification.
//!
//! Vehicles follow routes computed by Dijkstra over the road graph — the
//! stand-in for the navigation service the paper assumes ("future routes in
//! next few minutes, which can be obtained from navigation services").
//!
//! Two routers coexist: the original per-query [`Router`] (one Dijkstra
//! per `route` call, kept for the reference world and small tools) and
//! the precomputed [`RoutingTable`] the structure-of-arrays world uses —
//! one all-sources Dijkstra sweep at construction, after which every
//! query is an allocation-free predecessor walk. The table reproduces
//! [`Router::route`]'s paths *exactly* (same comparator, same relaxation
//! order, no early exit — see [`RoutingTable::new`]), which
//! `routing_table_matches_router_on_all_pairs` pins for every pair.

use crate::map::{EdgeId, NodeId, RoadNetwork};
use simnet::geom::Vec2;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A planned route: a sequence of connected directed edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Edge ids from origin to destination, each starting where the previous
    /// ended.
    pub edges: Vec<EdgeId>,
}

impl Route {
    /// Total length in meters.
    pub fn length(&self, map: &RoadNetwork) -> f32 {
        self.edges.iter().map(|&e| map.edge(e).length).sum()
    }

    /// Destination node.
    ///
    /// # Panics
    /// Panics on an empty route.
    pub fn destination(&self, map: &RoadNetwork) -> NodeId {
        // audit:allow(P002): the panic is this method's documented contract.
        map.edge(*self.edges.last().expect("route must have edges")).to
    }

    /// Number of intersections where the route turns (heading change of at
    /// least ~30°) — used to pick "one turn" / "navigation" evaluation
    /// routes.
    pub fn turn_count(&self, map: &RoadNetwork) -> usize {
        self.edges
            .windows(2)
            .filter(|w| {
                matches!(
                    classify_turn(map, w[0], w[1]),
                    TurnKind::Left | TurnKind::Right
                )
            })
            .count()
    }

    /// Concatenated polyline of the whole route.
    pub fn polyline(&self, map: &RoadNetwork) -> Vec<Vec2> {
        let mut out: Vec<Vec2> = Vec::new();
        for &eid in &self.edges {
            for p in &map.edge(eid).polyline {
                if out.last().map_or(true, |l| l.distance(*p) > 1e-6) {
                    out.push(*p);
                }
            }
        }
        out
    }
}

/// How the route bends from one edge into the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnKind {
    /// Heading continues (|Δheading| < 30°).
    Straight,
    /// Left turn (Δheading ≥ 30° counter-clockwise).
    Left,
    /// Right turn (Δheading ≥ 30° clockwise).
    Right,
}

/// Classifies the turn between two consecutive route edges.
pub fn classify_turn(map: &RoadNetwork, from: EdgeId, to: EdgeId) -> TurnKind {
    let e_in = map.edge(from);
    let e_out = map.edge(to);
    let last = e_in.polyline.len() - 1;
    let penult = last - 1;
    let dir_in = (e_in.polyline[last] - e_in.polyline[penult]).normalized();
    let dir_out = (e_out.polyline[1] - e_out.polyline[0]).normalized();
    let cross = dir_in.cross(dir_out);
    let dot = dir_in.dot(dir_out);
    let angle = cross.atan2(dot); // signed heading change
    let thirty = 30.0f32.to_radians();
    if angle > thirty {
        TurnKind::Left
    } else if angle < -thirty {
        TurnKind::Right
    } else {
        TurnKind::Straight
    }
}

/// Shortest-path router over a road network.
#[derive(Debug, Clone)]
pub struct Router<'a> {
    map: &'a RoadNetwork,
}

#[derive(PartialEq)]
struct QueueItem {
    dist: f32,
    node: NodeId,
}

impl Eq for QueueItem {}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance. `total_cmp` agrees with the former
        // `partial_cmp(..).unwrap_or(Equal)` on every value that can occur
        // here (finite, non-negative, never -0.0 except the shared source
        // zero), so heap order — and thus tie-breaking between
        // equal-length paths — is unchanged.
        other.dist.total_cmp(&self.dist)
    }
}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> Router<'a> {
    /// Creates a router over `map`.
    pub fn new(map: &'a RoadNetwork) -> Self {
        Self { map }
    }

    /// Shortest route (by length) from `from` to `to`, or `None` when
    /// `from == to` or unreachable (never on generated maps, which are
    /// strongly connected).
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Route> {
        if from == to {
            return None;
        }
        let n = self.map.n_nodes();
        let mut dist = vec![f32::INFINITY; n];
        let mut prev_edge: Vec<Option<EdgeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(QueueItem { dist: 0.0, node: from });
        while let Some(QueueItem { dist: d, node }) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            if node == to {
                break;
            }
            for &eid in self.map.out_edges(node) {
                let e = self.map.edge(eid);
                let nd = d + e.length;
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    prev_edge[e.to] = Some(eid);
                    heap.push(QueueItem { dist: nd, node: e.to });
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = to;
        while cur != from {
            // A reached node always has a predecessor; bail defensively
            // instead of panicking if that invariant ever broke.
            let eid = prev_edge[cur]?;
            edges.push(eid);
            cur = self.map.edge(eid).from;
        }
        edges.reverse();
        Some(Route { edges })
    }
}

/// All-pairs shortest-path table: one full Dijkstra per source node at
/// construction, stored as a flattened predecessor-edge matrix. Queries
/// walk predecessors backward — no heap, no per-query allocation
/// ([`RoutingTable::route_into`] refills a caller-owned buffer).
///
/// Paths are identical to [`Router::route`]'s: each source sweep runs the
/// same relaxation loop with the same heap comparator and edge order,
/// only without the early exit. Early exit cannot change reconstruction —
/// when the target pops off the heap every node on its predecessor chain
/// (strictly smaller distance, positive edge lengths) is already
/// finalized, and finalized predecessor entries never change again.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n_nodes: usize,
    /// `prev[src * n_nodes + node]`: the edge entering `node` on the
    /// shortest path from `src`, `None` for `node == src` or unreachable.
    prev: Vec<Option<EdgeId>>,
    /// `edge_from[e]`: source node of edge `e` (copied out of the map so
    /// queries need no map borrow).
    edge_from: Vec<NodeId>,
    /// Edge count of the longest shortest path over all pairs — the
    /// capacity bound that makes per-vehicle route buffers allocation-free
    /// for the lifetime of the world.
    max_route_edges: usize,
}

impl RoutingTable {
    /// Precomputes shortest paths from every source node of `map`.
    pub fn new(map: &RoadNetwork) -> Self {
        let n = map.n_nodes();
        let mut prev: Vec<Option<EdgeId>> = vec![None; n * n];
        let mut dist = vec![f32::INFINITY; n];
        let mut heap: BinaryHeap<QueueItem> = BinaryHeap::new();
        for src in 0..n {
            dist.fill(f32::INFINITY);
            heap.clear();
            let row_base = src * n;
            let row_end = row_base + n;
            let row = &mut prev[row_base..row_end];
            dist[src] = 0.0;
            heap.push(QueueItem { dist: 0.0, node: src });
            while let Some(QueueItem { dist: d, node }) = heap.pop() {
                if d > dist[node] {
                    continue;
                }
                for &eid in map.out_edges(node) {
                    let e = map.edge(eid);
                    let nd = d + e.length;
                    if nd < dist[e.to] {
                        dist[e.to] = nd;
                        row[e.to] = Some(eid);
                        heap.push(QueueItem { dist: nd, node: e.to });
                    }
                }
            }
        }
        let edge_from: Vec<NodeId> = map.edges().iter().map(|e| e.from).collect();
        let mut max_route_edges = 0;
        for src in 0..n {
            for dst in 0..n {
                let mut len = 0usize;
                let mut cur = dst;
                let row_base = src * n;
                while cur != src {
                    let cell = row_base + cur;
                    let Some(eid) = prev[cell] else { break };
                    len += 1;
                    cur = edge_from[eid];
                }
                if cur == src {
                    max_route_edges = max_route_edges.max(len);
                }
            }
        }
        Self { n_nodes: n, prev, edge_from, max_route_edges }
    }

    /// Edge count of the longest shortest path between any node pair.
    pub fn max_route_edges(&self) -> usize {
        self.max_route_edges
    }

    /// Refills `edges` with the shortest route from `from` to `to`.
    /// Returns `None` when no route exists (`from == to`, or unreachable —
    /// never on generated maps), leaving `edges` empty; otherwise
    /// `Some(grew)` where `grew` reports whether the buffer had to
    /// reallocate (a warm buffer sized to [`RoutingTable::max_route_edges`]
    /// never does — the zero-allocation regression test counts exactly
    /// this signal).
    pub fn route_into(
        &self,
        from: NodeId,
        to: NodeId,
        edges: &mut Vec<EdgeId>,
    ) -> Option<bool> {
        edges.clear();
        if from == to {
            return None;
        }
        let cap_before = edges.capacity();
        let row_base = from * self.n_nodes;
        let mut cur = to;
        while cur != from {
            let cell = row_base + cur;
            let Some(eid) = self.prev[cell] else {
                edges.clear();
                return None;
            };
            edges.push(eid);
            cur = self.edge_from[eid];
        }
        edges.reverse();
        Some(edges.capacity() > cap_before)
    }

    /// Shortest route from `from` to `to` as an owned [`Route`] — the
    /// [`Router::route`]-shaped convenience the evaluator and tests use.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Route> {
        let mut edges = Vec::new();
        self.route_into(from, to, &mut edges)?;
        Some(Route { edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::RoadNetwork;

    #[test]
    fn routes_connect_endpoints() {
        let m = RoadNetwork::generate(1);
        let r = Router::new(&m);
        let route = r.route(0, m.n_nodes() - 1).expect("strongly connected");
        assert_eq!(m.edge(route.edges[0]).from, 0);
        assert_eq!(route.destination(&m), m.n_nodes() - 1);
        // consecutive edges chain
        for w in route.edges.windows(2) {
            assert_eq!(m.edge(w[0]).to, m.edge(w[1]).from);
        }
    }

    #[test]
    fn same_node_has_no_route() {
        let m = RoadNetwork::generate(1);
        assert!(Router::new(&m).route(3, 3).is_none());
    }

    #[test]
    fn routes_are_shortest() {
        let m = RoadNetwork::generate(2);
        let r = Router::new(&m);
        // Triangle inequality spot check: route(a,c) <= route(a,b)+route(b,c)
        let (a, b, c) = (0, m.n_nodes() / 2, m.n_nodes() - 1);
        let ac = r.route(a, c).unwrap().length(&m);
        let ab = r.route(a, b).unwrap().length(&m);
        let bc = r.route(b, c).unwrap().length(&m);
        assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn turn_classification_on_grid() {
        let m = RoadNetwork::generate(3);
        let r = Router::new(&m);
        // Gather some routes and check every classified turn is sane.
        let route = r.route(0, m.n_nodes() - 1).unwrap();
        for w in route.edges.windows(2) {
            let _ = classify_turn(&m, w[0], w[1]); // must not panic
        }
    }

    #[test]
    fn turn_count_zero_for_straight_grid_route() {
        let m = RoadNetwork::generate(4);
        let r = Router::new(&m);
        // Nodes 0 and 1 in the town grid are adjacent along one axis: a
        // single-edge route has no turns.
        let route = r.route(0, 1).unwrap();
        assert_eq!(route.turn_count(&m), 0);
    }

    #[test]
    fn routing_table_matches_router_on_all_pairs() {
        for seed in [0, 7, 19] {
            let m = RoadNetwork::generate(seed);
            let table = RoutingTable::new(&m);
            let router = Router::new(&m);
            let n = m.n_nodes();
            let mut buf = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    let fast = table.route_into(a, b, &mut buf);
                    let slow = router.route(a, b);
                    match slow {
                        None => assert!(fast.is_none(), "pair ({a},{b}) seed {seed}"),
                        Some(r) => {
                            assert!(fast.is_some(), "pair ({a},{b}) seed {seed}");
                            assert_eq!(buf, r.edges, "pair ({a},{b}) seed {seed}");
                            assert!(buf.len() <= table.max_route_edges());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn warm_route_buffer_never_reallocates() {
        let m = RoadNetwork::generate(6);
        let table = RoutingTable::new(&m);
        let mut buf = Vec::with_capacity(table.max_route_edges());
        let n = m.n_nodes();
        for a in 0..n {
            for b in 0..n {
                if let Some(grew) = table.route_into(a, b, &mut buf) {
                    assert!(!grew, "pair ({a},{b}) grew a warm buffer");
                }
            }
        }
    }

    #[test]
    fn polyline_is_continuous() {
        let m = RoadNetwork::generate(5);
        let r = Router::new(&m);
        let route = r.route(0, m.n_nodes() - 1).unwrap();
        let poly = route.polyline(&m);
        for w in poly.windows(2) {
            assert!(w[0].distance(w[1]) < 400.0, "polyline jump detected");
        }
    }
}
