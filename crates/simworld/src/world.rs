//! The simulated world: map + traffic + stepping + trace recording.
//!
//! # Structure-of-arrays layout
//!
//! Agents live in parallel columns keyed by [`AgentId`], laid out as
//! `[experts][background][fleet][pedestrians]`. Road vehicles carry
//! `(route, edge_idx, s, speed)` in four columns plus a cached world
//! position; pedestrians keep their tiny waypoint state in a side table
//! and mirror their position into the shared `pos` column so the vehicle
//! hazard scan reads one contiguous slice.
//!
//! # Two-phase tick
//!
//! [`World::step`] splits each frame into an **intent** phase and an
//! **apply** phase:
//!
//! 1. *Intent* — for every awake vehicle, compute its final target speed
//!    (speed limits, turn slowdown, car-following against a pre-built gap
//!    index, pedestrian braking) from pre-step state only. The phase draws
//!    no randomness and writes only its own `intents[i]` slot, so it shards
//!    over [`lbchat::exec::par_for_each_mut`] and is bit-for-bit identical
//!    for any job count — and for any evaluation order, which
//!    [`World::step_permuted`] exposes for the property suite.
//! 2. *Apply* — serial, in ascending [`AgentId`] order: integrate every
//!    awake vehicle, then step every pedestrian. All RNG draws (reroutes,
//!    fleet dwell times, pedestrian waypoints) happen here, in id order —
//!    exactly the draw order of the retained [`crate::reference`] world,
//!    which is what makes the two worlds bit-identical at seed scale.
//!
//! # Wake queue
//!
//! Fleet vehicles ([`AgentKind::Fleet`], the `--fleet` axis) cycle
//! park → dwell → drive. While parked they are *garaged*: absent from the
//! gap index, BEV car layers, and collision checks, and — with the wake
//! queue enabled — absent from the awake list entirely, so a mostly-parked
//! million-vehicle fleet costs nothing per tick. A min-heap of
//! `(wake_tick, id)` readmits them; `config.wake_queue = false` keeps every
//! agent in the awake list (the bench reference arm) and must produce
//! bit-identical trajectories, which the property suite pins.

use crate::agents::{
    advance_on_route, radii, AgentId, AgentKind, Pedestrian, RoadVehicle, VehicleRef,
};
use crate::bev::{rasterize, Bev, BevConfig, Pose};
use crate::expert::{hazard_ahead, ExpertOutput};
use crate::map::{EdgeId, MapConfig, NodeId, RoadNetwork};
use crate::route::{Route, RoutingTable};
use lbchat::obs::ObsSink;
use rand::{Rng, RngExt, SeedableRng};
use simnet::geom::Vec2;
use simnet::trace::MobilityTrace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Precomputed drivable-area raster of the whole map, shared by every BEV
/// rasterization (sampling this grid is far cheaper than re-walking all road
/// polylines per frame).
#[derive(Debug, Clone)]
pub struct RoadRaster {
    extent: f32,
    cell: f32,
    /// `1 / cell` when multiplying by it is bit-identical to dividing by
    /// `cell` (i.e. `cell` is a power of two, the map default): both are
    /// correctly-rounded results of the same exact real value, so
    /// [`RoadRaster::is_road`] can use the multiply on its hot path without
    /// any lookup changing.
    inv_cell: Option<f32>,
    side: usize,
    bits: Vec<bool>,
}

/// Whether `x` is a (positive, normal) power of two, i.e. its reciprocal is
/// exactly representable and scaling by it is exact.
pub(crate) fn exact_reciprocal(x: f32) -> Option<f32> {
    let mantissa = x.to_bits() & 0x007f_ffff;
    let inv = x.recip();
    (x.is_normal() && x > 0.0 && mantissa == 0 && inv.is_normal()).then_some(inv)
}

impl RoadRaster {
    /// An all-empty raster (for tests).
    pub fn empty(extent: f32, cell: f32) -> Self {
        let side = (extent / cell).ceil() as usize;
        Self { extent, cell, inv_cell: exact_reciprocal(cell), side, bits: vec![false; side * side] }
    }

    /// Rasterizes a set of road polylines with the given half-width.
    pub fn from_polylines(extent: f32, cell: f32, polylines: &[Vec<Vec2>], half_width: f32) -> Self {
        let mut r = Self::empty(extent, cell);
        let step = cell * 0.5;
        for poly in polylines {
            for seg in poly.windows(2) {
                let len = seg[0].distance(seg[1]);
                let n = (len / step).ceil() as usize + 1;
                for k in 0..=n {
                    let p = seg[0].lerp(seg[1], k as f32 / n as f32);
                    r.mark_disc(p, half_width);
                }
            }
        }
        r
    }

    /// Builds the raster for a road network (half-width 4 m per lane pair).
    pub fn from_map(map: &RoadNetwork) -> Self {
        let polys: Vec<Vec<Vec2>> =
            map.edges().iter().map(|e| e.polyline.clone()).collect();
        Self::from_polylines(map.extent(), 2.0, &polys, 4.0)
    }

    fn mark_disc(&mut self, center: Vec2, radius: f32) {
        let r_cells = (radius / self.cell).ceil() as i32;
        let cx = (center.x / self.cell) as i32;
        let cy = (center.y / self.cell) as i32;
        for dy in -r_cells..=r_cells {
            for dx in -r_cells..=r_cells {
                let (x, y) = (cx + dx, cy + dy);
                if x >= 0 && y >= 0 && (x as usize) < self.side && (y as usize) < self.side {
                    let p = Vec2::new((x as f32 + 0.5) * self.cell, (y as f32 + 0.5) * self.cell);
                    if p.distance(center) <= radius {
                        let cell = y as usize * self.side + x as usize;
                        self.bits[cell] = true;
                    }
                }
            }
        }
    }

    /// Whether `p` lies on drivable road.
    #[inline]
    pub fn is_road(&self, p: Vec2) -> bool {
        if p.x < 0.0 || p.y < 0.0 || p.x >= self.extent || p.y >= self.extent {
            return false;
        }
        let (x, y) = match self.inv_cell {
            Some(inv) => ((p.x * inv) as usize, (p.y * inv) as usize),
            None => ((p.x / self.cell) as usize, (p.y / self.cell) as usize),
        };
        let cell = y * self.side + x;
        self.bits[cell]
    }
}

/// The fleet-size axis (`--fleet`): how many [`AgentKind::Fleet`] vehicles
/// the world carries on top of the paper's expert/background/pedestrian
/// populations. `Seed` (0) keeps the world bit-identical to
/// [`crate::reference`]; the larger steps are the city-scale workloads the
/// `simworld/tick_*` bench cells measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetScale {
    /// No fleet vehicles — the paper-scale world (default).
    #[default]
    Seed,
    /// 1 000 fleet vehicles.
    K1,
    /// 10 000 fleet vehicles.
    K10,
    /// 100 000 fleet vehicles.
    K100,
    /// 1 000 000 fleet vehicles.
    M1,
}

impl FleetScale {
    /// Every scale, smallest first.
    pub const ALL: [FleetScale; 5] =
        [FleetScale::Seed, FleetScale::K1, FleetScale::K10, FleetScale::K100, FleetScale::M1];

    /// The CLI / manifest key (`seed`, `1k`, `10k`, `100k`, `1m`).
    pub fn key(self) -> &'static str {
        match self {
            FleetScale::Seed => "seed",
            FleetScale::K1 => "1k",
            FleetScale::K10 => "10k",
            FleetScale::K100 => "100k",
            FleetScale::M1 => "1m",
        }
    }

    /// Number of fleet vehicles this scale adds.
    pub fn n_fleet(self) -> usize {
        match self {
            FleetScale::Seed => 0,
            FleetScale::K1 => 1_000,
            FleetScale::K10 => 10_000,
            FleetScale::K100 => 100_000,
            FleetScale::M1 => 1_000_000,
        }
    }

    /// Parses a CLI key (the inverse of [`FleetScale::key`]).
    pub fn parse(key: &str) -> Option<FleetScale> {
        FleetScale::ALL.into_iter().find(|f| f.key() == key)
    }
}

/// World construction parameters (§IV-A defaults).
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed controlling the map, spawns, and traffic decisions.
    pub seed: u64,
    /// Number of expert autopilot (learning) vehicles. Paper: 32.
    pub n_experts: usize,
    /// Number of background cars. Paper: 50.
    pub n_background: usize,
    /// Number of fleet vehicles on the park → dwell → drive cycle
    /// (the `--fleet` axis; 0 reproduces the paper-scale world exactly).
    pub n_fleet: usize,
    /// Number of pedestrians. Paper: 250.
    pub n_pedestrians: usize,
    /// Whether parked fleet vehicles leave the awake list entirely
    /// (`true`, the default) or stay in it and get skipped per tick
    /// (`false` — the wake-queue bench's reference arm). Trajectories are
    /// bit-identical either way.
    pub wake_queue: bool,
    /// Simulation frame rate (frames per second). Paper: 2.
    pub fps: f64,
    /// Map generation parameters.
    pub map: MapConfig,
    /// Waypoints per supervision frame.
    pub n_waypoints: usize,
    /// BEV geometry.
    pub bev: BevConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            n_experts: 32,
            n_background: 50,
            n_fleet: 0,
            n_pedestrians: 250,
            wake_queue: true,
            fps: 2.0,
            map: MapConfig::default(),
            n_waypoints: 5,
            bev: BevConfig::default(),
        }
    }
}

impl WorldConfig {
    /// A reduced-scale config for fast tests and examples.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            n_experts: 8,
            n_background: 12,
            n_pedestrians: 40,
            ..Self::default()
        }
    }

    /// The default config with the given fleet scale applied.
    pub fn with_fleet(seed: u64, fleet: FleetScale) -> Self {
        Self { seed, n_fleet: fleet.n_fleet(), ..Self::default() }
    }
}

/// Per-tick accounting returned by [`World::step`], mirrored into the
/// `world.tick.{awake,slept,woken}` counters when an [`ObsSink`] is
/// attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickStats {
    /// Agents actually simulated this tick (moving vehicles + pedestrians).
    pub awake: usize,
    /// Fleet vehicles that parked (entered the wake queue) this tick.
    pub slept: usize,
    /// Fleet vehicles whose dwell ended this tick (route planned, they
    /// drive from the next tick).
    pub woken: usize,
}

/// The running world, structure-of-arrays edition. `Clone` snapshots the
/// full state (map, columns, RNG), letting evaluation run independent
/// trials from a common base world.
///
/// At seed scale (`n_fleet == 0`) this world is bit-identical to the
/// retained [`crate::reference::World`] — same RNG draw order, same f32
/// arithmetic — which the property suite and the golden trajectory fixture
/// pin.
#[derive(Clone)]
pub struct World {
    config: WorldConfig,
    map: RoadNetwork,
    raster: RoadRaster,
    table: RoutingTable,
    // --- agent columns, indexed by AgentId ---
    kind: Vec<AgentKind>,
    /// World position: vehicles refresh it in the apply pass; pedestrians
    /// mirror theirs after stepping. `pos[ped_base..]` is the contiguous
    /// pedestrian slice the hazard scan reads.
    pos: Vec<Vec2>,
    speed: Vec<f32>,
    edge_idx: Vec<usize>,
    s: Vec<f32>,
    /// Per-vehicle route buffer; empty while a fleet vehicle is garaged.
    /// Capacity is reserved to [`RoutingTable::max_route_edges`] up front so
    /// reroutes never allocate.
    routes: Vec<Route>,
    parked_at: Vec<NodeId>,
    wake_at: Vec<u64>,
    /// Pedestrian waypoint state, `peds[j]` ↔ agent id `ped_base + j`.
    peds: Vec<Pedestrian>,
    ped_base: usize,
    // --- wake queue ---
    /// Sorted ids of vehicles currently simulated per tick.
    awake: Vec<AgentId>,
    sleepers: BinaryHeap<Reverse<(u64, AgentId)>>,
    // --- tick machinery (reused scratch) ---
    intents: Vec<f32>,
    gap_index: Vec<(EdgeId, f32)>,
    woken_scratch: Vec<AgentId>,
    rng: rand::rngs::StdRng,
    time: f64,
    tick: u64,
    route_grows: u64,
    obs: ObsSink,
}

impl World {
    /// Builds a world: generates the map, precomputes the routing table,
    /// spawns experts and background traffic on random routes, parks the
    /// fleet, and scatters pedestrians over the town.
    pub fn new(config: WorldConfig) -> Self {
        let map = RoadNetwork::generate(config.seed);
        let raster = RoadRaster::from_map(&map);
        let table = RoutingTable::new(&map);
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed.wrapping_add(0x9E3779B9));
        let n_always = config.n_experts + config.n_background;
        let n_vehicles = n_always + config.n_fleet;
        let n_agents = n_vehicles + config.n_pedestrians;
        let reserve = table.max_route_edges();

        let mut kind = Vec::with_capacity(n_agents);
        let mut pos = Vec::with_capacity(n_agents);
        let speed = vec![0.0f32; n_agents];
        let edge_idx = vec![0usize; n_agents];
        let mut s = vec![0.0f32; n_agents];
        let mut routes: Vec<Route> = Vec::with_capacity(n_agents);
        let mut parked_at = vec![0 as NodeId; n_agents];
        let mut wake_at = vec![0u64; n_agents];

        // Experts then background: the exact draw sequence of the reference
        // world (route retries included — `route_into` fails iff the two
        // endpoints coincide, same as `Router::route`).
        for (id, s_slot) in s.iter_mut().enumerate().take(n_always) {
            kind.push(if id < config.n_experts {
                AgentKind::Expert
            } else {
                AgentKind::Background
            });
            let mut route = Route { edges: Vec::with_capacity(reserve) };
            loop {
                let a = map.random_node(&mut rng);
                let b = map.random_node(&mut rng);
                if table.route_into(a, b, &mut route.edges).is_some() {
                    break;
                }
            }
            let first = route.edges[0];
            // Spread vehicles along their first edge.
            let spawn_s = rng.random_range(0.0..map.edge(first).length * 0.8);
            *s_slot = spawn_s;
            pos.push(map.position_on_edge(first, spawn_s));
            routes.push(route);
        }

        // Fleet: parked at a random node with a staggered first wake, so a
        // freshly built city doesn't dump the whole fleet onto the roads on
        // tick one. (Only reached when n_fleet > 0, so seed-scale draw
        // sequences are untouched.)
        for _ in 0..config.n_fleet {
            let id = routes.len();
            kind.push(AgentKind::Fleet);
            let node = map.random_node(&mut rng);
            parked_at[id] = node;
            wake_at[id] = rng.random_range(0..600u64);
            pos.push(map.node(node).pos);
            routes.push(Route { edges: Vec::with_capacity(reserve) });
        }

        let town_area = town_area_of(&config.map);
        let mut peds = Vec::with_capacity(config.n_pedestrians);
        for _ in 0..config.n_pedestrians {
            let p = Pedestrian::spawn_in(town_area, &mut rng);
            kind.push(AgentKind::Pedestrian);
            pos.push(p.pos);
            routes.push(Route { edges: Vec::new() });
            peds.push(p);
        }

        let mut awake: Vec<AgentId> = Vec::with_capacity(n_vehicles);
        let mut sleepers = BinaryHeap::new();
        for id in 0..n_vehicles {
            if kind[id] == AgentKind::Fleet && config.wake_queue {
                sleepers.push(Reverse((wake_at[id], id)));
            } else {
                awake.push(id);
            }
        }

        Self {
            config,
            map,
            raster,
            table,
            kind,
            pos,
            speed,
            edge_idx,
            s,
            routes,
            parked_at,
            wake_at,
            peds,
            ped_base: n_vehicles,
            awake,
            sleepers,
            intents: Vec::new(),
            gap_index: Vec::new(),
            woken_scratch: Vec::new(),
            rng,
            time: 0.0,
            tick: 0,
            route_grows: 0,
            obs: ObsSink::default(),
        }
    }

    /// Construction parameters.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The road network.
    pub fn map(&self) -> &RoadNetwork {
        &self.map
    }

    /// The drivable-area raster.
    pub fn raster(&self) -> &RoadRaster {
        &self.raster
    }

    /// Simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of ticks stepped so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of expert (learning) vehicles.
    pub fn n_experts(&self) -> usize {
        self.config.n_experts
    }

    /// Total number of agents across all kinds.
    pub fn n_agents(&self) -> usize {
        self.kind.len()
    }

    /// How many route-buffer reallocations have happened since
    /// construction. Stays 0 after spawn in steady state — buffers are
    /// reserved to the routing table's worst case — which the
    /// zero-allocation regression test asserts.
    pub fn route_grows(&self) -> u64 {
        self.route_grows
    }

    /// Attaches an observability sink; `step` emits the
    /// `world.tick.{awake,slept,woken}` counters through it.
    pub fn attach_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// The kind of agent `id`.
    pub fn agent_kind(&self, id: AgentId) -> AgentKind {
        self.kind[id]
    }

    /// A borrowed view of road-vehicle `id` (experts, background, and
    /// non-garaged fleet).
    ///
    /// # Panics
    /// Panics if `id` is a pedestrian or a garaged fleet vehicle (their
    /// route is empty).
    pub fn vehicle_view(&self, id: AgentId) -> VehicleRef<'_> {
        assert!(
            !self.routes[id].edges.is_empty(),
            "agent {id} has no route (pedestrian or garaged fleet)"
        );
        VehicleRef {
            route: &self.routes[id],
            edge_idx: self.edge_idx[id],
            s: self.s[id],
            speed: self.speed[id],
        }
    }

    /// A borrowed view of expert `idx` (experts hold ids `0..n_experts`).
    pub fn expert_view(&self, idx: usize) -> VehicleRef<'_> {
        assert!(idx < self.config.n_experts, "expert index out of range");
        self.vehicle_view(idx)
    }

    /// Positions of all pedestrians.
    pub fn pedestrian_positions(&self) -> Vec<Vec2> {
        self.pos[self.ped_base..].to_vec()
    }

    /// Positions of all active cars (experts + background + driving fleet;
    /// garaged fleet vehicles are off the road).
    pub fn car_positions(&self) -> Vec<Vec2> {
        let mut out = Vec::with_capacity(self.ped_base);
        for id in 0..self.ped_base {
            if self.routes[id].edges.is_empty() {
                continue;
            }
            out.push(self.pos[id]);
        }
        out
    }

    /// Positions of active cars excluding expert `skip` (for that expert's
    /// BEV).
    pub fn car_positions_except(&self, skip: usize) -> Vec<Vec2> {
        let mut out = Vec::with_capacity(self.ped_base.saturating_sub(1));
        for id in 0..self.ped_base {
            if id == skip || self.routes[id].edges.is_empty() {
                continue;
            }
            out.push(self.pos[id]);
        }
        out
    }

    /// Advances the world by one frame (`1 / fps` seconds): parallel
    /// intent phase, then the serial id-ordered apply pass.
    // audit:entry(hot)
    pub fn step(&mut self) -> TickStats {
        self.begin_tick();
        let mut intents = std::mem::take(&mut self.intents);
        let mut gap_index = std::mem::take(&mut self.gap_index);
        self.build_gap_index(&mut gap_index);
        self.compute_intents(&gap_index, &mut intents);
        let stats = self.apply(&intents);
        self.intents = intents;
        self.gap_index = gap_index;
        stats
    }

    /// [`World::step`] with the intent phase evaluated serially in a
    /// pseudo-random agent order derived from `perm_seed`. Because intents
    /// are pure functions of pre-step state, the result must be bit-for-bit
    /// identical to `step` for every permutation — the property the
    /// bit-identity suite checks to certify the phase is order-free.
    pub fn step_permuted(&mut self, perm_seed: u64) -> TickStats {
        self.begin_tick();
        let mut intents = std::mem::take(&mut self.intents);
        let mut gap_index = std::mem::take(&mut self.gap_index);
        self.build_gap_index(&mut gap_index);
        intents.clear();
        intents.resize(self.awake.len(), 0.0);
        let mut order: Vec<usize> = (0..self.awake.len()).collect();
        let mut prng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        for i in (1..order.len()).rev() {
            let j = prng.random_range(0..=i);
            order.swap(i, j);
        }
        for &i in &order {
            intents[i] = self.intent_for(self.awake[i], &gap_index);
        }
        let stats = self.apply(&intents);
        self.intents = intents;
        self.gap_index = gap_index;
        stats
    }

    /// Starts a tick: advances the counter and readmits fleet vehicles
    /// whose dwell has ended (wake-queue mode; with the queue disabled the
    /// apply pass performs the same check inline).
    fn begin_tick(&mut self) {
        self.tick += 1;
        if !self.config.wake_queue {
            return;
        }
        let mut woke = std::mem::take(&mut self.woken_scratch);
        woke.clear();
        while let Some(&Reverse((due, id))) = self.sleepers.peek() {
            if due > self.tick {
                break;
            }
            self.sleepers.pop();
            woke.push(id);
        }
        if !woke.is_empty() {
            woke.sort_unstable();
            merge_sorted(&mut self.awake, &woke);
        }
        self.woken_scratch = woke;
    }

    /// Rebuilds the leader-gap index: `(edge, s)` of every active vehicle,
    /// sorted by edge then progress. Pushed in ascending id order and
    /// stable-sorted, this is element-for-element the order the reference
    /// world's per-edge `BTreeMap` lists take.
    fn build_gap_index(&self, out: &mut Vec<(EdgeId, f32)>) {
        out.clear();
        for &id in &self.awake {
            let route = &self.routes[id];
            if route.edges.is_empty() {
                continue;
            }
            let eid = route.edges[self.edge_idx[id]];
            out.push((eid, self.s[id]));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    }

    /// The parallel intent phase: one target-speed slot per awake agent.
    // audit:phase(intent)
    fn compute_intents(&self, gap_index: &[(EdgeId, f32)], intents: &mut Vec<f32>) {
        intents.clear();
        intents.resize(self.awake.len(), 0.0);
        lbchat::exec::par_for_each_mut(intents, |i, out| {
            *out = self.intent_for(self.awake[i], gap_index);
        });
    }

    /// The final target speed of vehicle `id` from pre-step state: speed
    /// limits + turn slowdown + car-following + pedestrian braking. Pure —
    /// no RNG, no writes — which is what licenses the parallel shard.
    // audit:phase(intent)
    fn intent_for(&self, id: AgentId, gap_index: &[(EdgeId, f32)]) -> f32 {
        let route = &self.routes[id];
        if route.edges.is_empty() {
            return 0.0;
        }
        let v = VehicleRef {
            route,
            edge_idx: self.edge_idx[id],
            s: self.s[id],
            speed: self.speed[id],
        };
        let gap = gap_from_index(&self.map, gap_index, v);
        let mut target = v.target_speed(&self.map, gap);
        // Privileged braking for pedestrians in the path.
        if self.ped_hazard(v) {
            target = 0.0;
        }
        target
    }

    /// Pedestrian-braking check with a conservative town-bbox prefilter:
    /// `hazard_ahead` only sees obstacles within
    /// `sqrt(lookahead² + half_width²)` ≈ 10.4 m of the vehicle, and
    /// pedestrians never leave the town rectangle (their waypoints and
    /// steps stay inside it), so a vehicle further than that from the
    /// rectangle can skip the scan — the answer is exactly `false` either
    /// way, keeping the filter bit-transparent.
    fn ped_hazard(&self, v: VehicleRef<'_>) -> bool {
        let peds = &self.pos[self.ped_base..];
        if peds.is_empty() {
            return false;
        }
        const REACH: f32 = 10.5;
        let p = v.position(&self.map);
        let (lo, hi) = town_area_of(&self.config.map);
        let dx = (lo.x - p.x).max(p.x - hi.x).max(0.0);
        let dy = (lo.y - p.y).max(p.y - hi.y).max(0.0);
        if dx * dx + dy * dy > REACH * REACH {
            return false;
        }
        hazard_ahead(&self.map, v, peds, 10.0, 2.5)
    }

    /// The serial apply pass: integrate awake vehicles in ascending id
    /// order (reroutes and fleet transitions draw RNG here), then step
    /// every pedestrian. Vehicles read pre-step pedestrian positions from
    /// the `pos` column because every vehicle id precedes every pedestrian
    /// id — no snapshot copy needed.
    fn apply(&mut self, intents: &[f32]) -> TickStats {
        let dt = (1.0 / self.config.fps) as f32;
        let mut active = 0usize;
        let mut woken = 0usize;
        let mut slept = 0usize;
        let mut slept_ids = std::mem::take(&mut self.woken_scratch);
        slept_ids.clear();
        for (i, &intent) in intents.iter().enumerate().take(self.awake.len()) {
            let id = self.awake[i];
            if self.routes[id].edges.is_empty() {
                // Garaged fleet vehicle (wake queue disabled, or woken this
                // tick): plan a fresh route once its dwell ends; it drives
                // from the next tick.
                if self.wake_at[id] <= self.tick {
                    self.plan_fleet_route(id);
                    woken += 1;
                }
                continue;
            }
            active += 1;
            let still_going = advance_on_route(
                &self.map,
                &self.routes[id],
                &mut self.edge_idx[id],
                &mut self.s[id],
                &mut self.speed[id],
                intent,
                dt,
            );
            if still_going {
                let eid = self.routes[id].edges[self.edge_idx[id]];
                self.pos[id] = self.map.position_on_edge(eid, self.s[id]);
            } else if self.kind[id] == AgentKind::Fleet {
                // Arrived: garage the vehicle and queue its next outing.
                let here = self.routes[id].destination(&self.map);
                self.routes[id].edges.clear();
                self.edge_idx[id] = 0;
                self.s[id] = 0.0;
                self.speed[id] = 0.0;
                self.parked_at[id] = here;
                self.pos[id] = self.map.node(here).pos;
                let dwell = self.rng.random_range(60..600u64);
                self.wake_at[id] = self.tick + dwell;
                slept += 1;
                if self.config.wake_queue {
                    self.sleepers.push(Reverse((self.wake_at[id], id)));
                    slept_ids.push(id);
                }
            } else {
                // Arrived: plan a fresh random route from the destination,
                // carrying speed across the reroute (reference semantics).
                let here = self.routes[id].destination(&self.map);
                loop {
                    let next = self.map.random_node(&mut self.rng);
                    if let Some(grew) =
                        self.table.route_into(here, next, &mut self.routes[id].edges)
                    {
                        if grew {
                            self.route_grows += 1;
                        }
                        break;
                    }
                }
                self.edge_idx[id] = 0;
                self.s[id] = 0.0;
                let eid = self.routes[id].edges[0];
                self.pos[id] = self.map.position_on_edge(eid, 0.0);
            }
        }
        if !slept_ids.is_empty() {
            remove_sorted(&mut self.awake, &slept_ids);
        }
        self.woken_scratch = slept_ids;

        let town = town_area_of(&self.config.map);
        let base = self.ped_base;
        for j in 0..self.peds.len() {
            self.peds[j].step(town, dt, &mut self.rng);
            let id = base + j;
            self.pos[id] = self.peds[j].pos;
        }
        self.time += f64::from(dt);

        let stats = TickStats { awake: active + self.peds.len(), slept, woken };
        self.obs.add("world.tick.awake", stats.awake as u64);
        self.obs.add("world.tick.slept", stats.slept as u64);
        self.obs.add("world.tick.woken", stats.woken as u64);
        stats
    }

    /// Plans a fresh route for fleet vehicle `id` out of its parking node.
    fn plan_fleet_route(&mut self, id: AgentId) {
        let here = self.parked_at[id];
        loop {
            let next = self.map.random_node(&mut self.rng);
            if let Some(grew) = self.table.route_into(here, next, &mut self.routes[id].edges) {
                if grew {
                    self.route_grows += 1;
                }
                break;
            }
        }
        self.edge_idx[id] = 0;
        self.s[id] = 0.0;
        self.speed[id] = 0.0;
        let eid = self.routes[id].edges[0];
        self.pos[id] = self.map.position_on_edge(eid, 0.0);
    }

    /// Captures expert `idx`'s BEV observation and supervision for the
    /// current frame — one training sample. Supervision waypoints are
    /// time-spaced at the world frame interval using the expert's privileged
    /// speed decision (turn slowdown, car-following, pedestrian braking).
    pub fn observe_expert(&self, idx: usize) -> (Bev, ExpertOutput) {
        let v = self.expert_view(idx);
        let pose = Pose {
            pos: v.position(&self.map),
            heading: v.heading(&self.map).angle(),
        };
        let cars = self.car_positions_except(idx);
        let peds = self.pedestrian_positions();
        let route_ahead = self.route_ahead_polyline(v, 60.0);
        let bev = rasterize(&self.config.bev, pose, v.speed, &self.raster, &cars, &peds, &route_ahead);
        let gap = crate::expert::forward_gap(&self.map, v, &cars, 40.0, 3.0);
        let mut v_target = v.target_speed(&self.map, gap);
        if hazard_ahead(&self.map, v, &peds, 10.0, 2.5) {
            v_target = 0.0;
        }
        let sup = crate::expert::supervise_timed(
            &self.map,
            v,
            self.config.n_waypoints,
            (1.0 / self.config.fps) as f32,
            v_target,
        );
        (bev, sup)
    }

    /// Densely sampled world-frame points along the next `horizon` meters of
    /// a vehicle's route (the BEV route channel input).
    pub fn route_ahead_polyline(&self, v: VehicleRef<'_>, horizon: f32) -> Vec<Vec2> {
        self.route_polyline_from(v.route, v.edge_idx, v.s, horizon)
    }

    /// Same as [`World::route_ahead_polyline`] but for an arbitrary route
    /// progress expressed as (route, edge index, arc length) — used by the
    /// closed-loop evaluator whose vehicle is not road-locked.
    pub fn route_polyline_from(&self, route: &Route, edge_idx: usize, s: f32, horizon: f32) -> Vec<Vec2> {
        let mut pts = Vec::new();
        let mut remaining = horizon;
        let mut first = true;
        for &eid in &route.edges[edge_idx..] {
            let edge = self.map.edge(eid);
            let start = if first { s } else { 0.0 };
            first = false;
            let mut cur = start;
            while cur < edge.length && remaining > 0.0 {
                pts.push(self.map.position_on_edge(eid, cur));
                cur += 2.0;
                remaining -= 2.0;
            }
            if remaining <= 0.0 {
                break;
            }
        }
        pts
    }

    /// Whether a circle at `pos` with `radius` collides with any active car
    /// or pedestrian (the closed-loop failure check). `skip_expert` excludes
    /// one expert (the ego vehicle itself when it is driven externally).
    pub fn collides(&self, pos: Vec2, radius: f32, skip_expert: Option<usize>) -> bool {
        let car_r = radius + radii::CAR;
        for id in 0..self.ped_base {
            if Some(id) == skip_expert || self.routes[id].edges.is_empty() {
                continue;
            }
            if self.pos[id].distance(pos) < car_r {
                return true;
            }
        }
        let ped_r = radius + radii::PEDESTRIAN;
        for p in &self.pos[self.ped_base..] {
            if p.distance(pos) < ped_r {
                return true;
            }
        }
        false
    }

    /// Runs the world for `seconds` of simulated time recording expert
    /// positions each frame — the paper's "run the vehicles for an
    /// additional 120 hours and collect their locations" step.
    pub fn record_trace(&mut self, seconds: f64) -> MobilityTrace {
        let frames = (seconds * self.config.fps).ceil() as usize + 1;
        let mut positions: Vec<Vec<Vec2>> =
            vec![Vec::with_capacity(frames); self.config.n_experts];
        for _ in 0..frames {
            for (i, track) in positions.iter_mut().enumerate() {
                track.push(self.pos[i]);
            }
            self.step();
        }
        MobilityTrace::new(self.config.fps, positions)
    }

    /// Future route samples of expert `idx` (assist-message content).
    pub fn expert_future(&self, idx: usize, dt: f64, n: usize) -> Vec<Vec2> {
        let ghost = RoadVehicle {
            route: self.routes[idx].clone(),
            edge_idx: self.edge_idx[idx],
            s: self.s[idx],
            speed: self.speed[idx],
        };
        ghost.predict_future(&self.map, dt, n)
    }

    /// The world's RNG, for auxiliary draws that must stay reproducible.
    pub fn rng_mut(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.rng
    }

    /// The precomputed routing table over this world's map.
    pub fn router(&self) -> &RoutingTable {
        &self.table
    }

    /// Draws a random route with at least `min_len` meters, for evaluation
    /// tasks.
    pub fn random_route<R: Rng + ?Sized>(&self, min_len: f32, rng: &mut R) -> Route {
        loop {
            let a = self.map.random_node(rng);
            let b = self.map.random_node(rng);
            if let Some(r) = self.table.route(a, b) {
                if r.length(&self.map) >= min_len {
                    return r;
                }
            }
        }
    }
}

/// The town rectangle pedestrians roam, `(min, max)` corners — the same
/// f32 expression the reference world evaluates.
fn town_area_of(map: &MapConfig) -> (Vec2, Vec2) {
    (
        map.town_origin,
        map.town_origin
            + Vec2::new(
                (map.grid - 1) as f32 * map.block,
                (map.grid - 1) as f32 * map.block,
            ),
    )
}

/// Leader gap for one vehicle against the sorted `(edge, s)` gap index:
/// free distance to the nearest vehicle ahead on the same edge or the
/// immediate next route edge, `None` when clear within 60 m — value-for-
/// value the reference world's `compute_gaps` answer.
fn gap_from_index(map: &RoadNetwork, index: &[(EdgeId, f32)], v: VehicleRef<'_>) -> Option<f32> {
    let edge = v.edge();
    let mut best: Option<f32> = None;
    // Same edge, ahead of us: the first entry past `s + 0.1` in the
    // edge's sorted run.
    let lo = index.partition_point(|&(e, _)| e < edge);
    let run = &index[lo..];
    let hi = run.partition_point(|&(e, _)| e == edge);
    let same = &run[..hi];
    let cut = v.s + 0.1;
    let k = same.partition_point(|&(_, s)| s <= cut);
    if let Some(&(_, s)) = same.get(k) {
        best = Some(s - v.s);
    }
    // Next edge on our route, near its start.
    if best.is_none() {
        let next_idx = v.edge_idx + 1;
        if let Some(&next) = v.route.edges.get(next_idx) {
            let nlo = index.partition_point(|&(e, _)| e < next);
            if let Some(&(e, s)) = index.get(nlo) {
                if e == next {
                    best = Some(v.remaining_on_edge(map) + s);
                }
            }
        }
    }
    best.filter(|&g| g < 60.0)
}

/// Merges sorted `add` into sorted `dst` in place (backward merge, no
/// extra allocation beyond the tail growth).
fn merge_sorted(dst: &mut Vec<AgentId>, add: &[AgentId]) {
    let mut a = dst.len();
    dst.resize(a + add.len(), 0);
    let mut b = add.len();
    let mut w = dst.len();
    while b > 0 {
        w -= 1;
        let take_dst = a > 0 && {
            let ai = a - 1;
            let bi = b - 1;
            dst[ai] > add[bi]
        };
        if take_dst {
            a -= 1;
            dst[w] = dst[a];
        } else {
            b -= 1;
            dst[w] = add[b];
        }
    }
}

/// Removes every id in sorted `gone` from sorted `dst` with one two-pointer
/// sweep.
fn remove_sorted(dst: &mut Vec<AgentId>, gone: &[AgentId]) {
    let mut keep = 0usize;
    let mut k = 0usize;
    for r in 0..dst.len() {
        let id = dst[r];
        if k < gone.len() && gone[k] == id {
            k += 1;
            continue;
        }
        dst[keep] = id;
        keep += 1;
    }
    dst.truncate(keep);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::new(WorldConfig::small(3))
    }

    fn fleet_world(seed: u64, n_fleet: usize, wake_queue: bool) -> World {
        World::new(WorldConfig {
            n_fleet,
            wake_queue,
            ..WorldConfig::small(seed)
        })
    }

    #[test]
    fn reciprocal_cell_lookup_matches_division_exactly() {
        // Power-of-two cells take the multiply path; it must agree with the
        // division the raster was built with on every probe, including cell
        // boundaries and near-edge points.
        assert_eq!(exact_reciprocal(2.0), Some(0.5));
        assert_eq!(exact_reciprocal(3.0), None);
        assert_eq!(exact_reciprocal(0.0), None);
        assert_eq!(exact_reciprocal(-4.0), None);
        let pts: Vec<Vec2> = (0..=200).map(|i| Vec2::new(i as f32, 77.3)).collect();
        let fast = RoadRaster::from_polylines(200.0, 2.0, std::slice::from_ref(&pts), 4.0);
        let mut slow = fast.clone();
        slow.inv_cell = None;
        for i in 0..4000 {
            let p = Vec2::new((i as f32 * 0.0501) - 2.0, (i as f32 * 0.0777) - 2.0);
            assert_eq!(fast.is_road(p), slow.is_road(p), "probe {p:?}");
            let edge = Vec2::new((i % 110) as f32 * 2.0, 77.0);
            assert_eq!(fast.is_road(edge), slow.is_road(edge), "boundary {edge:?}");
        }
    }

    #[test]
    fn world_constructs_with_requested_population() {
        let w = small_world();
        assert_eq!(w.n_experts(), 8);
        assert_eq!(w.car_positions().len(), 8 + 12);
        assert_eq!(w.pedestrian_positions().len(), 40);
        assert_eq!(w.n_agents(), 8 + 12 + 40);
    }

    #[test]
    fn stepping_advances_time_and_traffic() {
        let mut w = small_world();
        let p0 = w.car_positions();
        for _ in 0..40 {
            w.step();
        }
        assert!((w.time() - 20.0).abs() < 1e-9);
        let p1 = w.car_positions();
        let moved = p0.iter().zip(&p1).filter(|(a, b)| a.distance(**b) > 1.0).count();
        assert!(moved > p0.len() / 2, "most cars should move in 20 s");
    }

    #[test]
    fn vehicles_reroute_forever() {
        let mut w = small_world();
        for _ in 0..600 {
            w.step();
        }
        // No panics and everyone still has a live route.
        for idx in 0..w.n_experts() {
            let v = w.expert_view(idx);
            assert!(v.edge_idx < v.route.edges.len());
        }
    }

    #[test]
    fn observation_has_consistent_shapes() {
        let w = small_world();
        let (bev, sup) = w.observe_expert(0);
        let cfg = &w.config().bev;
        assert_eq!(bev.features(cfg.pool).len(), cfg.feature_len());
        assert_eq!(sup.waypoints.len(), 2 * w.config().n_waypoints);
    }

    #[test]
    fn observation_sees_road() {
        let w = small_world();
        let (bev, _) = w.observe_expert(0);
        assert!(
            bev.popcount(crate::bev::channel::ROAD) > 5,
            "an on-road vehicle must see road"
        );
        assert!(
            bev.popcount(crate::bev::channel::ROUTE) > 0,
            "route channel must show the plan"
        );
    }

    #[test]
    fn trace_recording_matches_duration() {
        let mut w = small_world();
        let trace = w.record_trace(30.0);
        assert_eq!(trace.n_agents(), 8);
        assert!((trace.duration() - 30.0).abs() < 1.0);
    }

    #[test]
    fn trace_positions_stay_on_map() {
        let mut w = small_world();
        let trace = w.record_trace(60.0);
        for a in 0..trace.n_agents() {
            for k in 0..trace.n_frames() {
                let p = trace.position(a, k as f64 / trace.fps());
                assert!(p.x >= 0.0 && p.x <= 1000.0 && p.y >= 0.0 && p.y <= 1000.0);
            }
        }
    }

    #[test]
    fn collision_detection_works() {
        let w = small_world();
        let car = w.car_positions()[0];
        assert!(w.collides(car, 2.0, None));
        assert!(!w.collides(Vec2::new(-100.0, -100.0), 2.0, None));
    }

    #[test]
    fn deterministic_worlds() {
        let mut a = World::new(WorldConfig::small(9));
        let mut b = World::new(WorldConfig::small(9));
        for _ in 0..50 {
            a.step();
            b.step();
        }
        let pa = a.car_positions();
        let pb = b.car_positions();
        for (x, y) in pa.iter().zip(&pb) {
            assert!(x.distance(*y) < 1e-6);
        }
    }

    #[test]
    fn random_route_respects_min_length() {
        let w = small_world();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = w.random_route(400.0, &mut rng);
        assert!(r.length(w.map()) >= 400.0);
    }

    #[test]
    fn fleet_scale_keys_round_trip() {
        for f in FleetScale::ALL {
            assert_eq!(FleetScale::parse(f.key()), Some(f));
        }
        assert_eq!(FleetScale::parse("nope"), None);
        assert_eq!(FleetScale::Seed.n_fleet(), 0);
        assert!(FleetScale::M1.n_fleet() > FleetScale::K100.n_fleet());
    }

    #[test]
    fn fleet_vehicles_cycle_between_parked_and_driving() {
        let mut w = fleet_world(11, 30, true);
        assert_eq!(w.n_agents(), 8 + 12 + 30 + 40);
        // Everyone starts parked (garaged fleet is off the road).
        assert_eq!(w.car_positions().len(), 20);
        let mut woken_total = 0;
        let mut slept_total = 0;
        let mut max_active = 0;
        for _ in 0..800 {
            let stats = w.step();
            woken_total += stats.woken;
            slept_total += stats.slept;
            max_active = max_active.max(stats.awake);
        }
        assert!(woken_total > 0, "dwells under 600 ticks must have ended");
        assert!(slept_total > 0, "some fleet trips must have completed");
        assert!(max_active > 20 + 40, "fleet vehicles must have driven");
        // The awake list only holds experts/background plus driving fleet.
        assert!(w.awake.len() <= 20 + 30);
        assert!(w.awake.windows(2).all(|p| p[0] < p[1]), "awake stays sorted");
    }

    #[test]
    fn wake_queue_disabled_is_bit_identical() {
        let mut on = fleet_world(21, 25, true);
        let mut off = fleet_world(21, 25, false);
        for _ in 0..700 {
            on.step();
            off.step();
        }
        assert_eq!(on.pos.len(), off.pos.len());
        for (a, b) in on.pos.iter().zip(&off.pos) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
        assert_eq!(on.tick, off.tick);
    }

    #[test]
    fn permuted_intent_order_is_bit_identical() {
        let mut a = fleet_world(31, 15, true);
        let mut b = fleet_world(31, 15, true);
        for k in 0..120 {
            a.step();
            b.step_permuted(0xBAD5EED ^ k);
        }
        for (p, q) in a.pos.iter().zip(&b.pos) {
            assert_eq!(p.x.to_bits(), q.x.to_bits());
            assert_eq!(p.y.to_bits(), q.y.to_bits());
        }
        for (p, q) in a.speed.iter().zip(&b.speed) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn routes_never_reallocate_after_spawn() {
        let mut w = fleet_world(41, 20, true);
        assert_eq!(w.route_grows(), 0, "spawn must reserve the worst case");
        for _ in 0..900 {
            w.step();
        }
        assert_eq!(w.route_grows(), 0, "steady-state reroutes must not allocate");
    }

    #[test]
    fn tick_counters_flow_to_the_obs_sink() {
        let sink = ObsSink::recording();
        let mut w = fleet_world(51, 10, true);
        w.attach_obs(sink.clone());
        for _ in 0..650 {
            w.step();
        }
        let counters = sink.counters();
        assert!(counters.get("world.tick.awake").copied().unwrap_or(0) > 0);
        assert!(counters.get("world.tick.woken").copied().unwrap_or(0) > 0);
        assert!(counters.get("world.tick.slept").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn merge_and_remove_keep_sorted_sets() {
        let mut v = vec![1usize, 4, 7, 9];
        merge_sorted(&mut v, &[0, 5, 9]);
        assert_eq!(v, vec![0, 1, 4, 5, 7, 9, 9]);
        let mut v = vec![1usize, 3, 5, 7];
        remove_sorted(&mut v, &[3, 7]);
        assert_eq!(v, vec![1, 5]);
        let mut v: Vec<usize> = vec![2, 4];
        merge_sorted(&mut v, &[]);
        assert_eq!(v, vec![2, 4]);
    }
}
