//! The simulated world: map + traffic + stepping + trace recording.

use crate::agents::{radii, Pedestrian, RoadVehicle};
use crate::bev::{rasterize, Bev, BevConfig, Pose};
use crate::expert::{hazard_ahead, ExpertOutput};
use crate::map::{MapConfig, RoadNetwork};
use crate::route::{Route, Router};
use rand::{Rng, RngExt, SeedableRng};
use simnet::geom::Vec2;
use simnet::trace::MobilityTrace;
use std::collections::BTreeMap;

/// Precomputed drivable-area raster of the whole map, shared by every BEV
/// rasterization (sampling this grid is far cheaper than re-walking all road
/// polylines per frame).
#[derive(Debug, Clone)]
pub struct RoadRaster {
    extent: f32,
    cell: f32,
    /// `1 / cell` when multiplying by it is bit-identical to dividing by
    /// `cell` (i.e. `cell` is a power of two, the map default): both are
    /// correctly-rounded results of the same exact real value, so
    /// [`RoadRaster::is_road`] can use the multiply on its hot path without
    /// any lookup changing.
    inv_cell: Option<f32>,
    side: usize,
    bits: Vec<bool>,
}

/// Whether `x` is a (positive, normal) power of two, i.e. its reciprocal is
/// exactly representable and scaling by it is exact.
pub(crate) fn exact_reciprocal(x: f32) -> Option<f32> {
    let mantissa = x.to_bits() & 0x007f_ffff;
    let inv = x.recip();
    (x.is_normal() && x > 0.0 && mantissa == 0 && inv.is_normal()).then_some(inv)
}

impl RoadRaster {
    /// An all-empty raster (for tests).
    pub fn empty(extent: f32, cell: f32) -> Self {
        let side = (extent / cell).ceil() as usize;
        Self { extent, cell, inv_cell: exact_reciprocal(cell), side, bits: vec![false; side * side] }
    }

    /// Rasterizes a set of road polylines with the given half-width.
    pub fn from_polylines(extent: f32, cell: f32, polylines: &[Vec<Vec2>], half_width: f32) -> Self {
        let mut r = Self::empty(extent, cell);
        let step = cell * 0.5;
        for poly in polylines {
            for seg in poly.windows(2) {
                let len = seg[0].distance(seg[1]);
                let n = (len / step).ceil() as usize + 1;
                for k in 0..=n {
                    let p = seg[0].lerp(seg[1], k as f32 / n as f32);
                    r.mark_disc(p, half_width);
                }
            }
        }
        r
    }

    /// Builds the raster for a road network (half-width 4 m per lane pair).
    pub fn from_map(map: &RoadNetwork) -> Self {
        let polys: Vec<Vec<Vec2>> =
            map.edges().iter().map(|e| e.polyline.clone()).collect();
        Self::from_polylines(map.extent(), 2.0, &polys, 4.0)
    }

    fn mark_disc(&mut self, center: Vec2, radius: f32) {
        let r_cells = (radius / self.cell).ceil() as i32;
        let cx = (center.x / self.cell) as i32;
        let cy = (center.y / self.cell) as i32;
        for dy in -r_cells..=r_cells {
            for dx in -r_cells..=r_cells {
                let (x, y) = (cx + dx, cy + dy);
                if x >= 0 && y >= 0 && (x as usize) < self.side && (y as usize) < self.side {
                    let p = Vec2::new((x as f32 + 0.5) * self.cell, (y as f32 + 0.5) * self.cell);
                    if p.distance(center) <= radius {
                        self.bits[y as usize * self.side + x as usize] = true;
                    }
                }
            }
        }
    }

    /// Whether `p` lies on drivable road.
    #[inline]
    pub fn is_road(&self, p: Vec2) -> bool {
        if p.x < 0.0 || p.y < 0.0 || p.x >= self.extent || p.y >= self.extent {
            return false;
        }
        let (x, y) = match self.inv_cell {
            Some(inv) => ((p.x * inv) as usize, (p.y * inv) as usize),
            None => ((p.x / self.cell) as usize, (p.y / self.cell) as usize),
        };
        self.bits[y * self.side + x]
    }
}

/// World construction parameters (§IV-A defaults).
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed controlling the map, spawns, and traffic decisions.
    pub seed: u64,
    /// Number of expert autopilot (learning) vehicles. Paper: 32.
    pub n_experts: usize,
    /// Number of background cars. Paper: 50.
    pub n_background: usize,
    /// Number of pedestrians. Paper: 250.
    pub n_pedestrians: usize,
    /// Simulation frame rate (frames per second). Paper: 2.
    pub fps: f64,
    /// Map generation parameters.
    pub map: MapConfig,
    /// Waypoints per supervision frame.
    pub n_waypoints: usize,
    /// BEV geometry.
    pub bev: BevConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            n_experts: 32,
            n_background: 50,
            n_pedestrians: 250,
            fps: 2.0,
            map: MapConfig::default(),
            n_waypoints: 5,
            bev: BevConfig::default(),
        }
    }
}

impl WorldConfig {
    /// A reduced-scale config for fast tests and examples.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            n_experts: 8,
            n_background: 12,
            n_pedestrians: 40,
            ..Self::default()
        }
    }
}

/// The running world. `Clone` snapshots the full state (map, agents, RNG),
/// letting evaluation run independent trials from a common base world.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    map: RoadNetwork,
    raster: RoadRaster,
    experts: Vec<RoadVehicle>,
    background: Vec<RoadVehicle>,
    pedestrians: Vec<Pedestrian>,
    rng: rand::rngs::StdRng,
    time: f64,
}

impl World {
    /// Builds a world: generates the map, spawns experts and background
    /// traffic on random routes, and scatters pedestrians over the town.
    pub fn new(config: WorldConfig) -> Self {
        let map = RoadNetwork::generate(config.seed);
        let raster = RoadRaster::from_map(&map);
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed.wrapping_add(0x9E3779B9));
        let router = Router::new(&map);
        let spawn = |rng: &mut rand::rngs::StdRng| -> RoadVehicle {
            loop {
                let a = map.random_node(rng);
                let b = map.random_node(rng);
                if let Some(route) = router.route(a, b) {
                    let mut v = RoadVehicle::new(route);
                    // Spread vehicles along their first edge.
                    v.s = rng.random_range(0.0..map.edge(v.edge()).length * 0.8);
                    return v;
                }
            }
        };
        let experts = (0..config.n_experts).map(|_| spawn(&mut rng)).collect();
        let background = (0..config.n_background).map(|_| spawn(&mut rng)).collect();
        let town_area = (
            config.map.town_origin,
            config.map.town_origin
                + Vec2::new(
                    (config.map.grid - 1) as f32 * config.map.block,
                    (config.map.grid - 1) as f32 * config.map.block,
                ),
        );
        let pedestrians =
            (0..config.n_pedestrians).map(|_| Pedestrian::spawn(town_area, &mut rng)).collect();
        Self { config, map, raster, experts, background, pedestrians, rng, time: 0.0 }
    }

    /// Construction parameters.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The road network.
    pub fn map(&self) -> &RoadNetwork {
        &self.map
    }

    /// The drivable-area raster.
    pub fn raster(&self) -> &RoadRaster {
        &self.raster
    }

    /// Simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The expert (learning) vehicles.
    pub fn experts(&self) -> &[RoadVehicle] {
        &self.experts
    }

    /// Positions of all pedestrians.
    pub fn pedestrian_positions(&self) -> Vec<Vec2> {
        self.pedestrians.iter().map(|p| p.pos).collect()
    }

    /// Positions of all cars (experts + background).
    pub fn car_positions(&self) -> Vec<Vec2> {
        self.experts
            .iter()
            .chain(&self.background)
            .map(|v| v.position(&self.map))
            .collect()
    }

    /// Positions of cars excluding expert `skip` (for that expert's BEV).
    pub fn car_positions_except(&self, skip: usize) -> Vec<Vec2> {
        self.experts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, v)| v.position(&self.map))
            .chain(self.background.iter().map(|v| v.position(&self.map)))
            .collect()
    }

    /// Advances the world by one frame (`1 / fps` seconds).
    pub fn step(&mut self) {
        let dt = (1.0 / self.config.fps) as f32;
        let gaps = self.compute_gaps();
        let ped_positions: Vec<Vec2> = self.pedestrians.iter().map(|p| p.pos).collect();
        let router = Router::new(&self.map);

        let vehicles = self.experts.iter_mut().chain(self.background.iter_mut());
        for (vehicle, &gap) in vehicles.zip(&gaps) {
            let mut target = vehicle.target_speed(&self.map, gap);
            // Privileged braking for pedestrians in the path.
            if hazard_ahead(&self.map, vehicle, &ped_positions, 10.0, 2.5) {
                target = 0.0;
            }
            let still_going = vehicle.advance(&self.map, target, dt);
            if !still_going {
                // Arrived: plan a fresh random route from the destination.
                let here = vehicle.route.destination(&self.map);
                loop {
                    let next = self.map.random_node(&mut self.rng);
                    if let Some(route) = router.route(here, next) {
                        let speed = vehicle.speed;
                        *vehicle = RoadVehicle::new(route);
                        vehicle.speed = speed;
                        break;
                    }
                }
            }
        }

        let town_area = (
            self.config.map.town_origin,
            self.config.map.town_origin
                + Vec2::new(
                    (self.config.map.grid - 1) as f32 * self.config.map.block,
                    (self.config.map.grid - 1) as f32 * self.config.map.block,
                ),
        );
        for p in &mut self.pedestrians {
            p.step(town_area, dt, &mut self.rng);
        }
        self.time += dt as f64;
    }

    /// Leader gap for every road vehicle (experts then background):
    /// the free distance to the nearest vehicle ahead on the same edge or
    /// the immediate next route edge, `None` when clear.
    fn compute_gaps(&self) -> Vec<Option<f32>> {
        let all: Vec<&RoadVehicle> =
            self.experts.iter().chain(&self.background).collect();
        // Group (s, slot) by edge. BTreeMap keeps iteration (and thus any
        // future order-sensitive use) deterministic; the map is tiny, so
        // the tree overhead is irrelevant here.
        let mut by_edge: BTreeMap<usize, Vec<(f32, usize)>> = BTreeMap::new();
        for (slot, v) in all.iter().enumerate() {
            by_edge.entry(v.edge()).or_default().push((v.s, slot));
        }
        for list in by_edge.values_mut() {
            list.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        all.iter()
            .map(|v| {
                let mut best: Option<f32> = None;
                // Same edge, ahead of us.
                if let Some(list) = by_edge.get(&v.edge()) {
                    for &(s, _) in list {
                        if s > v.s + 0.1 {
                            best = Some(s - v.s);
                            break;
                        }
                    }
                }
                // Next edge on our route, near its start.
                if best.is_none() {
                    if let Some(&next) = v.route.edges.get(v.edge_idx + 1) {
                        if let Some(list) = by_edge.get(&next) {
                            if let Some(&(s, _)) = list.first() {
                                best = Some(v.remaining_on_edge(&self.map) + s);
                            }
                        }
                    }
                }
                best.filter(|&g| g < 60.0)
            })
            .collect()
    }

    /// Captures expert `idx`'s BEV observation and supervision for the
    /// current frame — one training sample. Supervision waypoints are
    /// time-spaced at the world frame interval using the expert's privileged
    /// speed decision (turn slowdown, car-following, pedestrian braking).
    pub fn observe_expert(&self, idx: usize) -> (Bev, ExpertOutput) {
        let v = &self.experts[idx];
        let pose = Pose {
            pos: v.position(&self.map),
            heading: v.heading(&self.map).angle(),
        };
        let cars = self.car_positions_except(idx);
        let peds = self.pedestrian_positions();
        let route_ahead = self.route_ahead_polyline(v, 60.0);
        let bev = rasterize(&self.config.bev, pose, v.speed, &self.raster, &cars, &peds, &route_ahead);
        let gap = crate::expert::forward_gap(&self.map, v, &cars, 40.0, 3.0);
        let mut v_target = v.target_speed(&self.map, gap);
        if hazard_ahead(&self.map, v, &peds, 10.0, 2.5) {
            v_target = 0.0;
        }
        let sup = crate::expert::supervise_timed(
            &self.map,
            v,
            self.config.n_waypoints,
            (1.0 / self.config.fps) as f32,
            v_target,
        );
        (bev, sup)
    }

    /// Densely sampled world-frame points along the next `horizon` meters of
    /// a vehicle's route (the BEV route channel input).
    pub fn route_ahead_polyline(&self, v: &RoadVehicle, horizon: f32) -> Vec<Vec2> {
        let mut pts = Vec::new();
        let mut remaining = horizon;
        let mut first = true;
        for &eid in &v.route.edges[v.edge_idx..] {
            let edge = self.map.edge(eid);
            let start = if first { v.s } else { 0.0 };
            first = false;
            let mut s = start;
            while s < edge.length && remaining > 0.0 {
                pts.push(self.map.position_on_edge(eid, s));
                s += 2.0;
                remaining -= 2.0;
            }
            if remaining <= 0.0 {
                break;
            }
        }
        pts
    }

    /// Same as [`World::route_ahead_polyline`] but for an arbitrary route
    /// progress expressed as (route, edge index, arc length) — used by the
    /// closed-loop evaluator whose vehicle is not road-locked.
    pub fn route_polyline_from(&self, route: &Route, edge_idx: usize, s: f32, horizon: f32) -> Vec<Vec2> {
        let mut pts = Vec::new();
        let mut remaining = horizon;
        let mut first = true;
        for &eid in &route.edges[edge_idx..] {
            let edge = self.map.edge(eid);
            let start = if first { s } else { 0.0 };
            first = false;
            let mut cur = start;
            while cur < edge.length && remaining > 0.0 {
                pts.push(self.map.position_on_edge(eid, cur));
                cur += 2.0;
                remaining -= 2.0;
            }
            if remaining <= 0.0 {
                break;
            }
        }
        pts
    }

    /// Whether a circle at `pos` with `radius` collides with any car or
    /// pedestrian (the closed-loop failure check). `skip_expert` excludes
    /// one expert (the ego vehicle itself when it is driven externally).
    pub fn collides(&self, pos: Vec2, radius: f32, skip_expert: Option<usize>) -> bool {
        for (i, v) in self.experts.iter().enumerate() {
            if Some(i) == skip_expert {
                continue;
            }
            if v.position(&self.map).distance(pos) < radius + radii::CAR {
                return true;
            }
        }
        for v in &self.background {
            if v.position(&self.map).distance(pos) < radius + radii::CAR {
                return true;
            }
        }
        for p in &self.pedestrians {
            if p.pos.distance(pos) < radius + radii::PEDESTRIAN {
                return true;
            }
        }
        false
    }

    /// Runs the world for `seconds` of simulated time recording expert
    /// positions each frame — the paper's "run the vehicles for an
    /// additional 120 hours and collect their locations" step.
    pub fn record_trace(&mut self, seconds: f64) -> MobilityTrace {
        let frames = (seconds * self.config.fps).ceil() as usize + 1;
        let mut positions: Vec<Vec<Vec2>> =
            vec![Vec::with_capacity(frames); self.experts.len()];
        for _ in 0..frames {
            for (i, v) in self.experts.iter().enumerate() {
                positions[i].push(v.position(&self.map));
            }
            self.step();
        }
        MobilityTrace::new(self.config.fps, positions)
    }

    /// Future route samples of expert `idx` (assist-message content).
    pub fn expert_future(&self, idx: usize, dt: f64, n: usize) -> Vec<Vec2> {
        self.experts[idx].predict_future(&self.map, dt, n)
    }

    /// Mutable access to an expert vehicle (tests and the evaluator use this
    /// to reposition or re-route).
    pub fn expert_mut(&mut self, idx: usize) -> &mut RoadVehicle {
        &mut self.experts[idx]
    }

    /// The world's RNG, for auxiliary draws that must stay reproducible.
    pub fn rng_mut(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.rng
    }

    /// A router borrowed over this world's map.
    pub fn router(&self) -> Router<'_> {
        Router::new(&self.map)
    }

    /// Draws a random route with at least `min_len` meters, for evaluation
    /// tasks.
    pub fn random_route<R: Rng + ?Sized>(&self, min_len: f32, rng: &mut R) -> Route {
        let router = Router::new(&self.map);
        loop {
            let a = self.map.random_node(rng);
            let b = self.map.random_node(rng);
            if let Some(r) = router.route(a, b) {
                if r.length(&self.map) >= min_len {
                    return r;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::new(WorldConfig::small(3))
    }

    #[test]
    fn reciprocal_cell_lookup_matches_division_exactly() {
        // Power-of-two cells take the multiply path; it must agree with the
        // division the raster was built with on every probe, including cell
        // boundaries and near-edge points.
        assert_eq!(exact_reciprocal(2.0), Some(0.5));
        assert_eq!(exact_reciprocal(3.0), None);
        assert_eq!(exact_reciprocal(0.0), None);
        assert_eq!(exact_reciprocal(-4.0), None);
        let pts: Vec<Vec2> = (0..=200).map(|i| Vec2::new(i as f32, 77.3)).collect();
        let fast = RoadRaster::from_polylines(200.0, 2.0, std::slice::from_ref(&pts), 4.0);
        let mut slow = fast.clone();
        slow.inv_cell = None;
        for i in 0..4000 {
            let p = Vec2::new((i as f32 * 0.0501) - 2.0, (i as f32 * 0.0777) - 2.0);
            assert_eq!(fast.is_road(p), slow.is_road(p), "probe {p:?}");
            let edge = Vec2::new((i % 110) as f32 * 2.0, 77.0);
            assert_eq!(fast.is_road(edge), slow.is_road(edge), "boundary {edge:?}");
        }
    }

    #[test]
    fn world_constructs_with_requested_population() {
        let w = small_world();
        assert_eq!(w.experts().len(), 8);
        assert_eq!(w.car_positions().len(), 8 + 12);
        assert_eq!(w.pedestrian_positions().len(), 40);
    }

    #[test]
    fn stepping_advances_time_and_traffic() {
        let mut w = small_world();
        let p0 = w.car_positions();
        for _ in 0..40 {
            w.step();
        }
        assert!((w.time() - 20.0).abs() < 1e-9);
        let p1 = w.car_positions();
        let moved = p0.iter().zip(&p1).filter(|(a, b)| a.distance(**b) > 1.0).count();
        assert!(moved > p0.len() / 2, "most cars should move in 20 s");
    }

    #[test]
    fn vehicles_reroute_forever() {
        let mut w = small_world();
        for _ in 0..600 {
            w.step();
        }
        // No panics and everyone still has a live route.
        for v in w.experts() {
            assert!(v.edge_idx < v.route.edges.len());
        }
    }

    #[test]
    fn observation_has_consistent_shapes() {
        let w = small_world();
        let (bev, sup) = w.observe_expert(0);
        let cfg = &w.config().bev;
        assert_eq!(bev.features(cfg.pool).len(), cfg.feature_len());
        assert_eq!(sup.waypoints.len(), 2 * w.config().n_waypoints);
    }

    #[test]
    fn observation_sees_road() {
        let w = small_world();
        let (bev, _) = w.observe_expert(0);
        assert!(
            bev.popcount(crate::bev::channel::ROAD) > 5,
            "an on-road vehicle must see road"
        );
        assert!(
            bev.popcount(crate::bev::channel::ROUTE) > 0,
            "route channel must show the plan"
        );
    }

    #[test]
    fn trace_recording_matches_duration() {
        let mut w = small_world();
        let trace = w.record_trace(30.0);
        assert_eq!(trace.n_agents(), 8);
        assert!((trace.duration() - 30.0).abs() < 1.0);
    }

    #[test]
    fn trace_positions_stay_on_map() {
        let mut w = small_world();
        let trace = w.record_trace(60.0);
        for a in 0..trace.n_agents() {
            for k in 0..trace.n_frames() {
                let p = trace.position(a, k as f64 / trace.fps());
                assert!(p.x >= 0.0 && p.x <= 1000.0 && p.y >= 0.0 && p.y <= 1000.0);
            }
        }
    }

    #[test]
    fn collision_detection_works() {
        let w = small_world();
        let car = w.car_positions()[0];
        assert!(w.collides(car, 2.0, None));
        assert!(!w.collides(Vec2::new(-100.0, -100.0), 2.0, None));
    }

    #[test]
    fn deterministic_worlds() {
        let mut a = World::new(WorldConfig::small(9));
        let mut b = World::new(WorldConfig::small(9));
        for _ in 0..50 {
            a.step();
            b.step();
        }
        let pa = a.car_positions();
        let pb = b.car_positions();
        for (x, y) in pa.iter().zip(&pb) {
            assert!(x.distance(*y) < 1e-6);
        }
    }

    #[test]
    fn random_route_respects_min_length() {
        let w = small_world();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = w.random_route(400.0, &mut rng);
        assert!(r.length(w.map()) >= 400.0);
    }
}
