//! ASCII rendering of the world — a debugging aid that needs no graphics
//! stack. Renders the road network, vehicles, pedestrians, and optional
//! overlay routes into a character grid.

use crate::world::World;
use simnet::geom::Vec2;

/// Renders the world into `rows` lines of `cols` characters.
///
/// Legend: `.` road, `E` expert vehicle, `c` background car, `p`
/// pedestrian, `*` overlay points (e.g. an evaluation route), space =
/// off-road. Agents draw over roads; overlays draw over everything.
pub fn render_ascii(world: &World, cols: usize, rows: usize, overlay: &[Vec2]) -> String {
    assert!(cols >= 10 && rows >= 10, "render grid too small");
    let extent = world.map().extent();
    let sx = extent / cols as f32;
    let sy = extent / rows as f32;
    let mut grid = vec![b' '; cols * rows];

    let plot = |p: Vec2, ch: u8, grid: &mut [u8]| {
        let cx = (p.x / sx) as isize;
        // Flip y so north is up.
        let cy = rows as isize - 1 - (p.y / sy) as isize;
        if cx >= 0 && cy >= 0 && (cx as usize) < cols && (cy as usize) < rows {
            let cell = cy as usize * cols + cx as usize;
            grid[cell] = ch;
        }
    };

    // Roads: sample every edge polyline.
    for e in world.map().edges() {
        for seg in e.polyline.windows(2) {
            let len = seg[0].distance(seg[1]);
            let n = (len / sx.min(sy)).ceil() as usize + 1;
            for k in 0..=n {
                plot(seg[0].lerp(seg[1], k as f32 / n as f32), b'.', &mut grid);
            }
        }
    }
    for p in world.pedestrian_positions() {
        plot(p, b'p', &mut grid);
    }
    let n_experts = world.n_experts();
    for (i, p) in world.car_positions().iter().enumerate() {
        plot(*p, if i < n_experts { b'E' } else { b'c' }, &mut grid);
    }
    for &p in overlay {
        plot(p, b'*', &mut grid);
    }

    let mut out = String::with_capacity((cols + 1) * rows);
    for row in grid.chunks(cols) {
        out.extend(row.iter().map(|&b| b as char));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn render_shows_roads_and_agents() {
        let w = World::new(WorldConfig::small(2));
        let s = render_ascii(&w, 60, 30, &[]);
        assert_eq!(s.lines().count(), 30);
        assert!(s.lines().all(|l| l.len() == 60));
        assert!(s.contains('.'), "roads must appear");
        assert!(s.contains('E'), "experts must appear");
        assert!(s.contains('p'), "pedestrians must appear");
    }

    #[test]
    fn overlay_draws_on_top() {
        let w = World::new(WorldConfig::small(2));
        let overlay = vec![Vec2::new(500.0, 500.0)];
        let s = render_ascii(&w, 40, 20, &overlay);
        assert!(s.contains('*'));
    }

    #[test]
    #[should_panic(expected = "render grid too small")]
    fn tiny_grid_panics() {
        let w = World::new(WorldConfig::small(2));
        let _ = render_ascii(&w, 2, 2, &[]);
    }
}
