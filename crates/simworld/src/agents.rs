//! Traffic agents: road-locked vehicles, free-moving vehicles, pedestrians.

use crate::map::{EdgeId, RoadNetwork};
use crate::route::{classify_turn, Route, TurnKind};
use rand::{Rng, RngExt};
use simnet::geom::Vec2;

/// Physical footprint radii used for collision checks (meters).
pub mod radii {
    /// Collision radius of a car.
    pub const CAR: f32 = 2.0;
    /// Collision radius of a pedestrian.
    pub const PEDESTRIAN: f32 = 0.4;
}

/// Maximum acceleration / braking magnitude (m/s²).
pub const MAX_ACCEL: f32 = 3.0;
/// Comfortable speed through a turn (m/s).
pub const TURN_SPEED: f32 = 5.0;
/// Distance before an intersection at which turn slowdown starts (m).
pub const TURN_SLOWDOWN_DIST: f32 = 20.0;
/// Desired time headway to the vehicle ahead (s).
pub const HEADWAY: f32 = 1.6;
/// Minimum standstill gap to the vehicle ahead (m).
pub const MIN_GAP: f32 = 6.0;

/// Index of an agent in the structure-of-arrays world's columns. The id
/// space is laid out as `[experts][background][fleet][pedestrians]`, so
/// every vehicle id precedes every pedestrian id.
pub type AgentId = usize;

/// What an agent id refers to in the structure-of-arrays world: the id
/// space is laid out as `[experts][background][fleet][pedestrians]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentKind {
    /// Expert autopilot (learning) vehicle — always awake.
    Expert,
    /// Background traffic vehicle — always awake.
    Background,
    /// Fleet vehicle on a park → dwell → drive cycle; costs nothing per
    /// tick while parked (it sits in the world's wake queue).
    Fleet,
    /// Pedestrian roaming the town area — always awake.
    Pedestrian,
}

/// A borrowed, `Copy` view of road-vehicle state: the route plus the
/// scalar columns `(edge_idx, s, speed)`. Both the per-agent-struct
/// [`RoadVehicle`] and the structure-of-arrays world project into this
/// view, so the driving model (target speed, expert supervision, hazard
/// cone) is one shared code path — which is what makes the SoA world's
/// bit-identity to `crate::reference` provable rather than aspirational.
#[derive(Debug, Clone, Copy)]
pub struct VehicleRef<'a> {
    /// Route being followed.
    pub route: &'a Route,
    /// Index into `route.edges` of the current edge.
    pub edge_idx: usize,
    /// Arc-length progress along the current edge (m).
    pub s: f32,
    /// Current speed (m/s).
    pub speed: f32,
}

impl VehicleRef<'_> {
    /// Current edge id.
    pub fn edge(&self) -> EdgeId {
        self.route.edges[self.edge_idx]
    }

    /// World position.
    pub fn position(&self, map: &RoadNetwork) -> Vec2 {
        map.position_on_edge(self.edge(), self.s)
    }

    /// Unit heading vector.
    pub fn heading(&self, map: &RoadNetwork) -> Vec2 {
        map.tangent_on_edge(self.edge(), self.s)
    }

    /// Remaining distance to the end of the current edge.
    pub fn remaining_on_edge(&self, map: &RoadNetwork) -> f32 {
        (map.edge(self.edge()).length - self.s).max(0.0)
    }

    /// The speed this vehicle should aim for given speed limits, upcoming
    /// turns, and the gap to the vehicle ahead (`None` when the road ahead is
    /// clear within sensing range).
    pub fn target_speed(&self, map: &RoadNetwork, gap_ahead: Option<f32>) -> f32 {
        let edge = map.edge(self.edge());
        let mut target = edge.kind.speed_limit();
        let remaining = self.remaining_on_edge(map);
        let next_idx = self.edge_idx + 1;
        // Slow down into turns.
        if remaining < TURN_SLOWDOWN_DIST {
            if let Some(&next) = self.route.edges.get(next_idx) {
                if classify_turn(map, self.edge(), next) != TurnKind::Straight {
                    target = target.min(TURN_SPEED);
                }
            } else {
                // Approaching the destination: come down gently.
                target = target.min(TURN_SPEED);
            }
        }
        // Anticipatory braking for a lower limit on the next edge: the
        // highest speed from which the next limit is reachable within the
        // remaining distance at MAX_ACCEL braking.
        if let Some(&next) = self.route.edges.get(next_idx) {
            let next_limit = map.edge(next).kind.speed_limit();
            if next_limit < target {
                let reachable =
                    (next_limit * next_limit + 2.0 * MAX_ACCEL * remaining).sqrt();
                target = target.min(reachable);
            }
        }
        // Car-following: keep a time headway to the leader.
        if let Some(gap) = gap_ahead {
            let safe = ((gap - MIN_GAP) / HEADWAY).max(0.0);
            target = target.min(safe);
        }
        target
    }
}

/// Advances road-locked vehicle state `(edge_idx, s, speed)` along `route`
/// by `dt` seconds toward `target_speed`, transitioning across edges.
/// Returns `true` while the route still has road left, `false` once the
/// destination is reached. This is the single integrator both
/// [`RoadVehicle::advance`] and the SoA apply pass run.
pub fn advance_on_route(
    map: &RoadNetwork,
    route: &Route,
    edge_idx: &mut usize,
    s: &mut f32,
    speed: &mut f32,
    target_speed: f32,
    dt: f32,
) -> bool {
    let accel = (target_speed - *speed).clamp(-MAX_ACCEL * dt, MAX_ACCEL * dt);
    *speed = (*speed + accel).max(0.0);
    let mut travel = *speed * dt;
    loop {
        let idx = *edge_idx;
        let cur = route.edges[idx];
        let edge_len = map.edge(cur).length;
        if *s + travel < edge_len {
            *s += travel;
            return true;
        }
        travel -= edge_len - *s;
        if *edge_idx + 1 < route.edges.len() {
            *edge_idx += 1;
            *s = 0.0;
        } else {
            *s = edge_len;
            return false;
        }
    }
}

/// A vehicle locked to the road network, progressing along a [`Route`].
#[derive(Debug, Clone)]
pub struct RoadVehicle {
    /// Current route being followed.
    pub route: Route,
    /// Index into `route.edges` of the current edge.
    pub edge_idx: usize,
    /// Arc-length progress along the current edge (m).
    pub s: f32,
    /// Current speed (m/s).
    pub speed: f32,
}

impl RoadVehicle {
    /// Places a vehicle at the start of `route`.
    ///
    /// # Panics
    /// Panics if the route is empty.
    pub fn new(route: Route) -> Self {
        assert!(!route.edges.is_empty(), "route must have at least one edge");
        Self { route, edge_idx: 0, s: 0.0, speed: 0.0 }
    }

    /// A borrowed [`VehicleRef`] over this vehicle's state.
    pub fn view(&self) -> VehicleRef<'_> {
        VehicleRef { route: &self.route, edge_idx: self.edge_idx, s: self.s, speed: self.speed }
    }

    /// Current edge id.
    pub fn edge(&self) -> EdgeId {
        self.view().edge()
    }

    /// World position.
    pub fn position(&self, map: &RoadNetwork) -> Vec2 {
        self.view().position(map)
    }

    /// Unit heading vector.
    pub fn heading(&self, map: &RoadNetwork) -> Vec2 {
        self.view().heading(map)
    }

    /// Remaining distance to the end of the current edge.
    pub fn remaining_on_edge(&self, map: &RoadNetwork) -> f32 {
        self.view().remaining_on_edge(map)
    }

    /// Whether the vehicle has consumed its whole route.
    pub fn route_finished(&self, map: &RoadNetwork) -> bool {
        self.edge_idx + 1 >= self.route.edges.len()
            && self.s >= map.edge(self.edge()).length - 0.5
    }

    /// Remaining route distance to the destination.
    pub fn distance_to_destination(&self, map: &RoadNetwork) -> f32 {
        let mut d = self.remaining_on_edge(map);
        let rest = self.edge_idx + 1;
        for &eid in &self.route.edges[rest..] {
            d += map.edge(eid).length;
        }
        d
    }

    /// The speed this vehicle should aim for given speed limits, upcoming
    /// turns, and the gap to the vehicle ahead (`None` when the road ahead is
    /// clear within sensing range).
    pub fn target_speed(&self, map: &RoadNetwork, gap_ahead: Option<f32>) -> f32 {
        self.view().target_speed(map, gap_ahead)
    }

    /// Advances the vehicle by `dt` seconds toward `target_speed`,
    /// transitioning across edges. Returns `true` while the route still has
    /// road left, `false` once the destination is reached.
    pub fn advance(&mut self, map: &RoadNetwork, target_speed: f32, dt: f32) -> bool {
        advance_on_route(
            map,
            &self.route,
            &mut self.edge_idx,
            &mut self.s,
            &mut self.speed,
            target_speed,
            dt,
        )
    }

    /// Samples the vehicle's future positions assuming it keeps to its route
    /// at its current target cruise profile — the trajectory shared in
    /// assist messages.
    pub fn predict_future(&self, map: &RoadNetwork, dt: f64, n: usize) -> Vec<Vec2> {
        let mut ghost = self.clone();
        let mut out = Vec::with_capacity(n);
        out.push(ghost.position(map));
        for _ in 1..n {
            let tgt = ghost.target_speed(map, None);
            ghost.advance(map, tgt, dt as f32);
            out.push(ghost.position(map));
        }
        out
    }
}

/// A free-moving vehicle controlled by steering/throttle — the body a
/// *learned policy* drives during closed-loop evaluation (it is not locked
/// to the lane graph precisely because an imperfect policy may leave it).
#[derive(Debug, Clone)]
pub struct FreeVehicle {
    /// World position.
    pub pos: Vec2,
    /// Heading angle in radians.
    pub heading: f32,
    /// Speed (m/s).
    pub speed: f32,
}

/// Maximum steering rate of the free vehicle (rad/s).
pub const MAX_YAW_RATE: f32 = 1.2;

impl FreeVehicle {
    /// Spawns a vehicle at `pos` facing `heading`.
    pub fn new(pos: Vec2, heading: f32) -> Self {
        Self { pos, heading, speed: 0.0 }
    }

    /// Unit heading vector.
    pub fn heading_vec(&self) -> Vec2 {
        Vec2::new(self.heading.cos(), self.heading.sin())
    }

    /// Advances with a kinematic bicycle-like update: the commanded yaw rate
    /// and target speed are clamped to physical limits.
    pub fn step(&mut self, yaw_rate: f32, target_speed: f32, dt: f32) {
        let yaw = yaw_rate.clamp(-MAX_YAW_RATE, MAX_YAW_RATE);
        self.heading += yaw * dt;
        let accel = (target_speed - self.speed).clamp(-MAX_ACCEL * dt, MAX_ACCEL * dt);
        self.speed = (self.speed + accel).max(0.0);
        self.pos = self.pos + self.heading_vec() * (self.speed * dt);
    }

    /// Transforms a world point into this vehicle's ego frame (x forward,
    /// y left).
    pub fn to_ego(&self, world: Vec2) -> Vec2 {
        (world - self.pos).rotated(-self.heading)
    }

    /// Transforms an ego-frame point back to world coordinates.
    pub fn to_world(&self, ego: Vec2) -> Vec2 {
        self.pos + ego.rotated(self.heading)
    }
}

/// A pedestrian roaming between random waypoints inside the town area.
#[derive(Debug, Clone)]
pub struct Pedestrian {
    /// World position.
    pub pos: Vec2,
    /// Current waypoint being walked toward.
    pub target: Vec2,
    /// Walking speed (m/s).
    pub speed: f32,
}

impl Pedestrian {
    /// Spawns a pedestrian at a random position within `area` (min, max
    /// corners) with a random walking speed. Named `spawn_in` rather than
    /// `spawn` so the audit call graph, which resolves method calls by
    /// name alone, never aliases it with `std::thread::Scope::spawn`.
    pub fn spawn_in<R: Rng + ?Sized>(area: (Vec2, Vec2), rng: &mut R) -> Self {
        let p = random_point(area, rng);
        let t = random_point(area, rng);
        Self { pos: p, target: t, speed: rng.random_range(0.8..1.8) }
    }

    /// Walks toward the target; picks a fresh target when arrived.
    pub fn step<R: Rng + ?Sized>(&mut self, area: (Vec2, Vec2), dt: f32, rng: &mut R) {
        let to_target = self.target - self.pos;
        let dist = to_target.norm();
        if dist < 1.0 {
            self.target = random_point(area, rng);
            return;
        }
        self.pos = self.pos + to_target.normalized() * (self.speed * dt);
    }
}

fn random_point<R: Rng + ?Sized>(area: (Vec2, Vec2), rng: &mut R) -> Vec2 {
    Vec2::new(
        rng.random_range(area.0.x..area.1.x),
        rng.random_range(area.0.y..area.1.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::RoadNetwork;
    use crate::route::Router;
    use rand::SeedableRng;

    fn setup() -> (RoadNetwork, RoadVehicle) {
        let map = RoadNetwork::generate(1);
        let router = Router::new(&map);
        let route = router.route(0, map.n_nodes() - 1).unwrap();
        (map, RoadVehicle::new(route))
    }

    #[test]
    fn vehicle_progresses_along_route() {
        let (map, mut v) = setup();
        let p0 = v.position(&map);
        for _ in 0..100 {
            let tgt = v.target_speed(&map, None);
            v.advance(&map, tgt, 0.5);
        }
        assert!(v.position(&map).distance(p0) > 50.0, "vehicle should have moved");
        assert!(v.speed > 0.0);
    }

    #[test]
    fn vehicle_reaches_destination() {
        let (map, mut v) = setup();
        let mut steps = 0;
        while v.advance(&map, v.target_speed(&map, None), 0.5) {
            steps += 1;
            assert!(steps < 10_000, "route must terminate");
        }
        assert!(v.route_finished(&map));
        assert!(v.distance_to_destination(&map) < 1.0);
    }

    #[test]
    fn car_following_caps_speed() {
        let (map, v) = setup();
        let clear = v.target_speed(&map, None);
        let blocked = v.target_speed(&map, Some(MIN_GAP));
        assert_eq!(blocked, 0.0, "at the minimum gap the car must stop");
        assert!(clear > 0.0);
        let mid = v.target_speed(&map, Some(MIN_GAP + 8.0));
        assert!(mid > 0.0 && mid < clear);
    }

    #[test]
    fn acceleration_is_limited() {
        let (map, mut v) = setup();
        v.advance(&map, 100.0, 1.0);
        assert!(v.speed <= MAX_ACCEL + 1e-6);
    }

    #[test]
    fn predicted_future_starts_at_position() {
        let (map, v) = setup();
        let f = v.predict_future(&map, 0.5, 10);
        assert_eq!(f.len(), 10);
        assert!(f[0].distance(v.position(&map)) < 1e-6);
        // Predictions should move forward monotonically in route terms.
        assert!(f.last().unwrap().distance(f[0]) > 0.0);
    }

    #[test]
    fn free_vehicle_drives_straight() {
        let mut v = FreeVehicle::new(Vec2::ZERO, 0.0);
        for _ in 0..20 {
            v.step(0.0, 10.0, 0.5);
        }
        assert!(v.pos.x > 30.0);
        assert!(v.pos.y.abs() < 1e-4);
    }

    #[test]
    fn free_vehicle_turns() {
        let mut v = FreeVehicle::new(Vec2::ZERO, 0.0);
        v.speed = 5.0;
        for _ in 0..10 {
            v.step(0.5, 5.0, 0.5);
        }
        assert!(v.heading > 0.5, "heading should have rotated left");
    }

    #[test]
    fn ego_transform_roundtrip() {
        let v = FreeVehicle::new(Vec2::new(10.0, 5.0), 1.0);
        let w = Vec2::new(-3.0, 7.0);
        let back = v.to_world(v.to_ego(w));
        assert!(back.distance(w) < 1e-4);
    }

    #[test]
    fn pedestrian_stays_usable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let area = (Vec2::new(0.0, 0.0), Vec2::new(100.0, 100.0));
        let mut p = Pedestrian::spawn_in(area, &mut rng);
        for _ in 0..1000 {
            p.step(area, 0.5, &mut rng);
            assert!(p.pos.x >= -5.0 && p.pos.x <= 105.0);
            assert!(p.speed > 0.0);
        }
    }
}
