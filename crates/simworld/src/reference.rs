//! The pre-SoA world, retained verbatim as the bit-identity oracle.
//!
//! This is the per-agent-struct `World` exactly as it stood before the
//! structure-of-arrays refactor (the `coreset::reference` /
//! `vnn::reference` / `runtime::reference` pattern): vehicles and
//! pedestrians as owned structs, a fresh per-step [`Router`], and a
//! single serial step loop interleaving movement with RNG reroute draws.
//! `crate::world::World` must reproduce this world bit for bit at seed
//! scale (zero fleet vehicles) — the property tests in
//! `tests/soa_identity.rs` and the golden trajectory fixture pin that
//! contract. Only two mechanical adaptations were made while moving the
//! code here: types shared with the new world ([`WorldConfig`],
//! [`RoadRaster`]) are imported from `crate::world`, and expert-autopilot
//! helpers are called through [`RoadVehicle::view`] after their
//! signatures moved to [`crate::agents::VehicleRef`]. The `n_fleet`
//! config field is intentionally ignored: the reference world predates
//! the fleet axis and only ever models the seed populations.

use crate::agents::{radii, Pedestrian, RoadVehicle};
use crate::bev::{rasterize, Bev, Pose};
use crate::expert::{hazard_ahead, ExpertOutput};
use crate::map::RoadNetwork;
use crate::route::{Route, Router};
use crate::world::{RoadRaster, WorldConfig};
use rand::{Rng, RngExt, SeedableRng};
use simnet::geom::Vec2;
use simnet::trace::MobilityTrace;
use std::collections::BTreeMap;

/// The running world. `Clone` snapshots the full state (map, agents, RNG),
/// letting evaluation run independent trials from a common base world.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    map: RoadNetwork,
    raster: RoadRaster,
    experts: Vec<RoadVehicle>,
    background: Vec<RoadVehicle>,
    pedestrians: Vec<Pedestrian>,
    rng: rand::rngs::StdRng,
    time: f64,
}

impl World {
    /// Builds a world: generates the map, spawns experts and background
    /// traffic on random routes, and scatters pedestrians over the town.
    pub fn new(config: WorldConfig) -> Self {
        let map = RoadNetwork::generate(config.seed);
        let raster = RoadRaster::from_map(&map);
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed.wrapping_add(0x9E3779B9));
        let router = Router::new(&map);
        let spawn = |rng: &mut rand::rngs::StdRng| -> RoadVehicle {
            loop {
                let a = map.random_node(rng);
                let b = map.random_node(rng);
                if let Some(route) = router.route(a, b) {
                    let mut v = RoadVehicle::new(route);
                    // Spread vehicles along their first edge.
                    v.s = rng.random_range(0.0..map.edge(v.edge()).length * 0.8);
                    return v;
                }
            }
        };
        let experts = (0..config.n_experts).map(|_| spawn(&mut rng)).collect();
        let background = (0..config.n_background).map(|_| spawn(&mut rng)).collect();
        let town_area = (
            config.map.town_origin,
            config.map.town_origin
                + Vec2::new(
                    (config.map.grid - 1) as f32 * config.map.block,
                    (config.map.grid - 1) as f32 * config.map.block,
                ),
        );
        let pedestrians =
            (0..config.n_pedestrians).map(|_| Pedestrian::spawn_in(town_area, &mut rng)).collect();
        Self { config, map, raster, experts, background, pedestrians, rng, time: 0.0 }
    }

    /// Construction parameters.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The road network.
    pub fn map(&self) -> &RoadNetwork {
        &self.map
    }

    /// The drivable-area raster.
    pub fn raster(&self) -> &RoadRaster {
        &self.raster
    }

    /// Simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The expert (learning) vehicles.
    pub fn experts(&self) -> &[RoadVehicle] {
        &self.experts
    }

    /// Positions of all pedestrians.
    pub fn pedestrian_positions(&self) -> Vec<Vec2> {
        self.pedestrians.iter().map(|p| p.pos).collect()
    }

    /// Positions of all cars (experts + background).
    pub fn car_positions(&self) -> Vec<Vec2> {
        self.experts
            .iter()
            .chain(&self.background)
            .map(|v| v.position(&self.map))
            .collect()
    }

    /// Positions of cars excluding expert `skip` (for that expert's BEV).
    pub fn car_positions_except(&self, skip: usize) -> Vec<Vec2> {
        self.experts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, v)| v.position(&self.map))
            .chain(self.background.iter().map(|v| v.position(&self.map)))
            .collect()
    }

    /// Advances the world by one frame (`1 / fps` seconds).
    pub fn step(&mut self) {
        let dt = (1.0 / self.config.fps) as f32;
        let gaps = self.compute_gaps();
        let ped_positions: Vec<Vec2> = self.pedestrians.iter().map(|p| p.pos).collect();
        let router = Router::new(&self.map);

        let vehicles = self.experts.iter_mut().chain(self.background.iter_mut());
        for (vehicle, &gap) in vehicles.zip(&gaps) {
            let mut target = vehicle.target_speed(&self.map, gap);
            // Privileged braking for pedestrians in the path.
            if hazard_ahead(&self.map, vehicle.view(), &ped_positions, 10.0, 2.5) {
                target = 0.0;
            }
            let still_going = vehicle.advance(&self.map, target, dt);
            if !still_going {
                // Arrived: plan a fresh random route from the destination.
                let here = vehicle.route.destination(&self.map);
                loop {
                    let next = self.map.random_node(&mut self.rng);
                    if let Some(route) = router.route(here, next) {
                        let speed = vehicle.speed;
                        *vehicle = RoadVehicle::new(route);
                        vehicle.speed = speed;
                        break;
                    }
                }
            }
        }

        let town_area = (
            self.config.map.town_origin,
            self.config.map.town_origin
                + Vec2::new(
                    (self.config.map.grid - 1) as f32 * self.config.map.block,
                    (self.config.map.grid - 1) as f32 * self.config.map.block,
                ),
        );
        for p in &mut self.pedestrians {
            p.step(town_area, dt, &mut self.rng);
        }
        self.time += dt as f64;
    }

    /// Leader gap for every road vehicle (experts then background):
    /// the free distance to the nearest vehicle ahead on the same edge or
    /// the immediate next route edge, `None` when clear.
    fn compute_gaps(&self) -> Vec<Option<f32>> {
        let all: Vec<&RoadVehicle> =
            self.experts.iter().chain(&self.background).collect();
        // Group (s, slot) by edge. BTreeMap keeps iteration (and thus any
        // future order-sensitive use) deterministic; the map is tiny, so
        // the tree overhead is irrelevant here.
        let mut by_edge: BTreeMap<usize, Vec<(f32, usize)>> = BTreeMap::new();
        for (slot, v) in all.iter().enumerate() {
            by_edge.entry(v.edge()).or_default().push((v.s, slot));
        }
        for list in by_edge.values_mut() {
            list.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        all.iter()
            .map(|v| {
                let mut best: Option<f32> = None;
                // Same edge, ahead of us.
                if let Some(list) = by_edge.get(&v.edge()) {
                    for &(s, _) in list {
                        if s > v.s + 0.1 {
                            best = Some(s - v.s);
                            break;
                        }
                    }
                }
                // Next edge on our route, near its start.
                if best.is_none() {
                    let next_idx = v.edge_idx + 1;
                    if let Some(&next) = v.route.edges.get(next_idx) {
                        if let Some(list) = by_edge.get(&next) {
                            if let Some(&(s, _)) = list.first() {
                                best = Some(v.remaining_on_edge(&self.map) + s);
                            }
                        }
                    }
                }
                best.filter(|&g| g < 60.0)
            })
            .collect()
    }

    /// Captures expert `idx`'s BEV observation and supervision for the
    /// current frame — one training sample. Supervision waypoints are
    /// time-spaced at the world frame interval using the expert's privileged
    /// speed decision (turn slowdown, car-following, pedestrian braking).
    pub fn observe_expert(&self, idx: usize) -> (Bev, ExpertOutput) {
        let v = &self.experts[idx];
        let pose = Pose {
            pos: v.position(&self.map),
            heading: v.heading(&self.map).angle(),
        };
        let cars = self.car_positions_except(idx);
        let peds = self.pedestrian_positions();
        let route_ahead = self.route_ahead_polyline(v, 60.0);
        let bev = rasterize(&self.config.bev, pose, v.speed, &self.raster, &cars, &peds, &route_ahead);
        let gap = crate::expert::forward_gap(&self.map, v.view(), &cars, 40.0, 3.0);
        let mut v_target = v.target_speed(&self.map, gap);
        if hazard_ahead(&self.map, v.view(), &peds, 10.0, 2.5) {
            v_target = 0.0;
        }
        let sup = crate::expert::supervise_timed(
            &self.map,
            v.view(),
            self.config.n_waypoints,
            (1.0 / self.config.fps) as f32,
            v_target,
        );
        (bev, sup)
    }

    /// Densely sampled world-frame points along the next `horizon` meters of
    /// a vehicle's route (the BEV route channel input).
    pub fn route_ahead_polyline(&self, v: &RoadVehicle, horizon: f32) -> Vec<Vec2> {
        self.route_polyline_from(&v.route, v.edge_idx, v.s, horizon)
    }

    /// Same as [`World::route_ahead_polyline`] but for an arbitrary route
    /// progress expressed as (route, edge index, arc length) — used by the
    /// closed-loop evaluator whose vehicle is not road-locked.
    pub fn route_polyline_from(&self, route: &Route, edge_idx: usize, s: f32, horizon: f32) -> Vec<Vec2> {
        let mut pts = Vec::new();
        let mut remaining = horizon;
        let mut first = true;
        for &eid in &route.edges[edge_idx..] {
            let edge = self.map.edge(eid);
            let start = if first { s } else { 0.0 };
            first = false;
            let mut cur = start;
            while cur < edge.length && remaining > 0.0 {
                pts.push(self.map.position_on_edge(eid, cur));
                cur += 2.0;
                remaining -= 2.0;
            }
            if remaining <= 0.0 {
                break;
            }
        }
        pts
    }

    /// Whether a circle at `pos` with `radius` collides with any car or
    /// pedestrian (the closed-loop failure check). `skip_expert` excludes
    /// one expert (the ego vehicle itself when it is driven externally).
    pub fn collides(&self, pos: Vec2, radius: f32, skip_expert: Option<usize>) -> bool {
        for (i, v) in self.experts.iter().enumerate() {
            if Some(i) == skip_expert {
                continue;
            }
            if v.position(&self.map).distance(pos) < radius + radii::CAR {
                return true;
            }
        }
        for v in &self.background {
            if v.position(&self.map).distance(pos) < radius + radii::CAR {
                return true;
            }
        }
        for p in &self.pedestrians {
            if p.pos.distance(pos) < radius + radii::PEDESTRIAN {
                return true;
            }
        }
        false
    }

    /// Runs the world for `seconds` of simulated time recording expert
    /// positions each frame — the paper's "run the vehicles for an
    /// additional 120 hours and collect their locations" step.
    pub fn record_trace(&mut self, seconds: f64) -> MobilityTrace {
        let frames = (seconds * self.config.fps).ceil() as usize + 1;
        let mut positions: Vec<Vec<Vec2>> =
            vec![Vec::with_capacity(frames); self.experts.len()];
        for _ in 0..frames {
            for (i, v) in self.experts.iter().enumerate() {
                positions[i].push(v.position(&self.map));
            }
            self.step();
        }
        MobilityTrace::new(self.config.fps, positions)
    }

    /// Future route samples of expert `idx` (assist-message content).
    pub fn expert_future(&self, idx: usize, dt: f64, n: usize) -> Vec<Vec2> {
        self.experts[idx].predict_future(&self.map, dt, n)
    }

    /// Mutable access to an expert vehicle (tests and the evaluator use this
    /// to reposition or re-route).
    pub fn expert_mut(&mut self, idx: usize) -> &mut RoadVehicle {
        &mut self.experts[idx]
    }

    /// The world's RNG, for auxiliary draws that must stay reproducible.
    pub fn rng_mut(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.rng
    }

    /// A per-query Dijkstra router borrowed over this world's map (the
    /// pre-[`crate::route::RoutingTable`] search the new world replaced).
    pub fn router(&self) -> Router<'_> {
        Router::new(&self.map)
    }

    /// Draws a random route with at least `min_len` meters, for evaluation
    /// tasks.
    pub fn random_route<R: Rng + ?Sized>(&self, min_len: f32, rng: &mut R) -> Route {
        let router = Router::new(&self.map);
        loop {
            let a = self.map.random_node(rng);
            let b = self.map.random_node(rng);
            if let Some(r) = router.route(a, b) {
                if r.length(&self.map) >= min_len {
                    return r;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_world_is_deterministic() {
        let mut a = World::new(WorldConfig::small(9));
        let mut b = World::new(WorldConfig::small(9));
        for _ in 0..50 {
            a.step();
            b.step();
        }
        for (x, y) in a.car_positions().iter().zip(&b.car_positions()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn reference_world_constructs_the_requested_population() {
        let w = World::new(WorldConfig::small(3));
        assert_eq!(w.experts().len(), 8);
        assert_eq!(w.car_positions().len(), 8 + 12);
        assert_eq!(w.pedestrian_positions().len(), 40);
    }
}
