//! Bird's-eye-view rasterization.
//!
//! The paper's model input is "a sparse binary tensor depicting the front
//! view of a vehicle in a top-down view". We rasterize an ego-frame grid
//! ahead of the vehicle with four binary channels: drivable road, other
//! vehicles, pedestrians, and the vehicle's own planned route. A pooled
//! float feature vector (plus the current speed) is what the policy network
//! consumes.

use crate::world::RoadRaster;
use simnet::geom::Vec2;

/// Pose of the observing vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// World position.
    pub pos: Vec2,
    /// Heading in radians.
    pub heading: f32,
}

impl Pose {
    /// Transforms a world point into the ego frame (x forward, y left).
    pub fn to_ego(&self, world: Vec2) -> Vec2 {
        (world - self.pos).rotated(-self.heading)
    }

    /// Transforms an ego-frame point to world coordinates.
    pub fn to_world(&self, ego: Vec2) -> Vec2 {
        self.pos + ego.rotated(self.heading)
    }
}

/// BEV channel indices.
pub mod channel {
    /// Drivable road.
    pub const ROAD: usize = 0;
    /// Other vehicles.
    pub const VEHICLES: usize = 1;
    /// Pedestrians.
    pub const PEDESTRIANS: usize = 2;
    /// Own planned route.
    pub const ROUTE: usize = 3;
    /// Number of channels.
    pub const COUNT: usize = 4;
}

/// Geometry of the BEV grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BevConfig {
    /// Cells per side (square grid).
    pub cells: usize,
    /// Cell side length in meters.
    pub cell_m: f32,
    /// How far ahead of the vehicle the grid center sits, in meters.
    pub forward_offset: f32,
    /// Pooling factor for the feature vector: each `pool x pool` cell block
    /// becomes one float. Must divide `cells`.
    pub pool: usize,
}

impl Default for BevConfig {
    fn default() -> Self {
        // 24 cells * 2 m = 48 m square window, centered 16 m ahead.
        Self { cells: 24, cell_m: 2.0, forward_offset: 16.0, pool: 4 }
    }
}

impl BevConfig {
    /// Side length of the window in meters.
    pub fn window_m(&self) -> f32 {
        self.cells as f32 * self.cell_m
    }

    /// Length of the pooled feature vector including the speed scalar.
    pub fn feature_len(&self) -> usize {
        let side = self.cells / self.pool;
        side * side * channel::COUNT + 1
    }
}

/// A rasterized sparse binary BEV tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Bev {
    cells: usize,
    /// One bit vector per channel, row-major `y * cells + x`.
    channels: [Vec<bool>; channel::COUNT],
    /// Ego speed at capture time (m/s).
    speed: f32,
}

impl Bev {
    /// An all-clear frame, usable as the reusable target of
    /// [`rasterize_into`].
    pub fn blank(cells: usize) -> Self {
        Self {
            cells,
            channels: std::array::from_fn(|_| vec![false; cells * cells]),
            speed: 0.0,
        }
    }

    /// Clears every channel and resizes to `cells`, keeping allocations.
    fn reset(&mut self, cells: usize, speed: f32) {
        for ch in &mut self.channels {
            ch.clear();
            ch.resize(cells * cells, false);
        }
        self.cells = cells;
        self.speed = speed;
    }

    /// Grid side length in cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Whether channel `c` is set at `(ix, iy)`.
    pub fn get(&self, c: usize, ix: usize, iy: usize) -> bool {
        let cell = iy * self.cells + ix;
        self.channels[c][cell]
    }

    /// Number of set bits in channel `c` (sparsity diagnostics).
    pub fn popcount(&self, c: usize) -> usize {
        self.channels[c].iter().filter(|&&b| b).count()
    }

    /// Ego speed recorded with the frame.
    pub fn speed(&self) -> f32 {
        self.speed
    }

    /// Pooled float features: each `pool x pool` block averages to one value
    /// per channel, concatenated channel-major, with normalized speed
    /// appended. This is the policy-network input.
    ///
    /// # Panics
    /// Panics if `pool` does not divide the grid side.
    pub fn features(&self, pool: usize) -> Vec<f32> {
        let mut out = Vec::new();
        self.features_into(pool, &mut out);
        out
    }

    /// [`Bev::features`] into a caller-owned buffer, so per-step feature
    /// extraction in closed-loop rollouts reuses one allocation. The buffer
    /// is cleared first; push order (and therefore every bit of the output)
    /// matches [`Bev::features`].
    ///
    /// # Panics
    /// Panics if `pool` does not divide the grid side.
    pub fn features_into(&self, pool: usize, out: &mut Vec<f32>) {
        assert!(pool > 0 && self.cells % pool == 0, "pool must divide grid side");
        let side = self.cells / pool;
        out.clear();
        out.reserve(side * side * channel::COUNT + 1);
        let norm = 1.0 / (pool * pool) as f32;
        for ch in &self.channels {
            for by in 0..side {
                for bx in 0..side {
                    let mut acc = 0.0f32;
                    for dy in 0..pool {
                        for dx in 0..pool {
                            let ix = bx * pool + dx;
                            let iy = by * pool + dy;
                            let cell = iy * self.cells + ix;
                            if ch[cell] {
                                acc += 1.0;
                            }
                        }
                    }
                    out.push(acc * norm);
                }
            }
        }
        out.push(self.speed / 25.0); // normalize by the map's top speed
    }
}

/// Rasterizes the BEV for a vehicle at `pose` moving at `speed`.
///
/// * `road` — the precomputed global drivable-area raster.
/// * `cars` — world positions of every *other* vehicle.
/// * `pedestrians` — world positions of pedestrians.
/// * `route_ahead` — world-frame polyline of the next stretch of the planned
///   route (the navigation hint; sampled densely by the caller).
///
/// Allocates a fresh frame; data collection rasterizes every expert every
/// frame, so hot loops should hold one [`Bev::blank`] and call
/// [`rasterize_into`] instead. Output is bit-identical to
/// [`reference::rasterize`].
pub fn rasterize(
    cfg: &BevConfig,
    pose: Pose,
    speed: f32,
    road: &RoadRaster,
    cars: &[Vec2],
    pedestrians: &[Vec2],
    route_ahead: &[Vec2],
) -> Bev {
    let mut out = Bev::blank(cfg.cells);
    rasterize_into(cfg, pose, speed, road, cars, pedestrians, route_ahead, &mut out);
    out
}

/// [`rasterize`] into a reused frame, with the per-frame trigonometry
/// hoisted out of the cell loop.
///
/// The reference evaluates `sin`/`cos` of the heading once per grid cell
/// (inside [`Pose::to_world`]) and twice per visible agent; here the two
/// rotations (world→ego and ego→world) are computed once per frame and the
/// per-cell rotation terms once per row/column, which the road loop then
/// combines with the exact arithmetic the reference uses — cell
/// classifications cannot drift. Reusing `out` across frames removes the
/// four per-frame channel allocations.
#[allow(clippy::too_many_arguments)]
pub fn rasterize_into(
    cfg: &BevConfig,
    pose: Pose,
    speed: f32,
    road: &RoadRaster,
    cars: &[Vec2],
    pedestrians: &[Vec2],
    route_ahead: &[Vec2],
    out: &mut Bev,
) {
    let n = cfg.cells;
    out.reset(n, speed);
    let channels = &mut out.channels;
    let half = cfg.window_m() / 2.0;

    // One sin_cos per frame for each rotation direction — the same values
    // `Vec2::rotated(±heading)` recomputes per call.
    let (s_fwd, c_fwd) = pose.heading.sin_cos();
    let (s_inv, c_inv) = (-pose.heading).sin_cos();

    // Road channel: sample each cell center against the global road raster.
    // ego.x depends only on the row, ego.y only on the column, so the four
    // rotation products reduce to one per row plus two per column. The
    // final sums keep the reference's exact association:
    // world = pos + (c·ex − s·ey, s·ex + c·ey).
    let col_terms: Vec<(f32, f32)> = (0..n)
        .map(|ix| {
            let ey = half - (ix as f32 + 0.5) * cfg.cell_m;
            (s_fwd * ey, c_fwd * ey)
        })
        .collect();
    for iy in 0..n {
        let ex = cfg.forward_offset - half + (iy as f32 + 0.5) * cfg.cell_m;
        let (c_ex, s_ex) = (c_fwd * ex, s_fwd * ex);
        let row_base = iy * n;
        let row_end = row_base + n;
        let row = &mut channels[channel::ROAD][row_base..row_end];
        for (cell, &(s_ey, c_ey)) in row.iter_mut().zip(&col_terms) {
            let world = Vec2::new(pose.pos.x + (c_ex - s_ey), pose.pos.y + (s_ex + c_ey));
            // `reset` cleared the row, so the branchless store matches the
            // reference's set-only-true writes.
            *cell = road.is_road(world);
        }
    }

    // Point-agent channels with a small footprint stamp. The ego transform
    // is computed once per agent (the reference recomputes it inside the
    // stamp) using the hoisted inverse rotation.
    let to_ego = |world: Vec2| -> Vec2 {
        let d = world - pose.pos;
        Vec2::new(c_inv * d.x - s_inv * d.y, s_inv * d.x + c_inv * d.y)
    };
    // Dividing by a power-of-two cell size (the default) is exactly a
    // multiply by its reciprocal — same trick as `RoadRaster::is_road`.
    let inv_cell = crate::world::exact_reciprocal(cfg.cell_m);
    let over_cell = |v: f32| match inv_cell {
        Some(inv) => v * inv,
        None => v / cfg.cell_m,
    };
    let mut stamp = |ch: usize, ego: Vec2, radius_cells: i32| {
        // Invert the cell-center mapping used for the road channel.
        let fy = over_cell(ego.x - cfg.forward_offset + half) - 0.5;
        let fx = over_cell(half - ego.y) - 0.5;
        let (cx, cy) = (fx.round() as i32, fy.round() as i32);
        for dy in -radius_cells..=radius_cells {
            for dx in -radius_cells..=radius_cells {
                let (x, y) = (cx + dx, cy + dy);
                if x >= 0 && y >= 0 && (x as usize) < n && (y as usize) < n {
                    let cell = y as usize * n + x as usize;
                    channels[ch][cell] = true;
                }
            }
        }
    };
    // Conservative pre-rotation reject: rotation preserves length, so an
    // agent whose axis-aligned offset exceeds the window by 10% has a true
    // ego distance > 1.1·window, and the rounded `ego.norm()` (three f32
    // ops of relative error ~2⁻²³ each) cannot fall back under `window` —
    // the reference's post-rotation check rejects exactly the same agents,
    // just after paying for the transform.
    let reject = 1.1 * cfg.window_m();
    let far = |world: Vec2| -> bool {
        let d = world - pose.pos;
        d.x.abs() > reject || d.y.abs() > reject
    };
    for &c in cars {
        if far(c) {
            continue;
        }
        let ego = to_ego(c);
        if ego.norm() < cfg.window_m() {
            stamp(channel::VEHICLES, ego, 1);
        }
    }
    for &p in pedestrians {
        if far(p) {
            continue;
        }
        let ego = to_ego(p);
        if ego.norm() < cfg.window_m() {
            stamp(channel::PEDESTRIANS, ego, 0);
        }
    }
    for &r in route_ahead {
        if far(r) {
            continue;
        }
        let ego = to_ego(r);
        if ego.norm() < cfg.window_m() {
            stamp(channel::ROUTE, ego, 0);
        }
    }
}

/// The pre-optimization rasterizer, kept verbatim as the golden baseline:
/// [`rasterize`] must produce the same occupancy bit for bit
/// (`tests/properties.rs` proves it on random scenes), and
/// `lbchat-bench --reference` times it to quantify the speedup.
pub mod reference {
    use super::{channel, Bev, BevConfig, Pose};
    use crate::world::RoadRaster;
    use simnet::geom::Vec2;

    /// BEV rasterization exactly as first implemented: fresh channel
    /// allocations and a full `sin`/`cos` rotation per cell and per stamp.
    pub fn rasterize(
        cfg: &BevConfig,
        pose: Pose,
        speed: f32,
        road: &RoadRaster,
        cars: &[Vec2],
        pedestrians: &[Vec2],
        route_ahead: &[Vec2],
    ) -> Bev {
        let n = cfg.cells;
        let mut channels: [Vec<bool>; channel::COUNT] = [
            vec![false; n * n],
            vec![false; n * n],
            vec![false; n * n],
            vec![false; n * n],
        ];
        let half = cfg.window_m() / 2.0;

        for iy in 0..n {
            for ix in 0..n {
                let ego = Vec2::new(
                    cfg.forward_offset - half + (iy as f32 + 0.5) * cfg.cell_m,
                    half - (ix as f32 + 0.5) * cfg.cell_m,
                );
                let world = pose.to_world(ego);
                if road.is_road(world) {
                    let cell = iy * n + ix;
                    channels[channel::ROAD][cell] = true;
                }
            }
        }

        let stamp = |ch: usize, world: Vec2, radius_cells: i32, channels: &mut [Vec<bool>; 4]| {
            let ego = pose.to_ego(world);
            let fy = (ego.x - cfg.forward_offset + half) / cfg.cell_m - 0.5;
            let fx = (half - ego.y) / cfg.cell_m - 0.5;
            let (cx, cy) = (fx.round() as i32, fy.round() as i32);
            for dy in -radius_cells..=radius_cells {
                for dx in -radius_cells..=radius_cells {
                    let (x, y) = (cx + dx, cy + dy);
                    if x >= 0 && y >= 0 && (x as usize) < n && (y as usize) < n {
                        let cell = y as usize * n + x as usize;
                        channels[ch][cell] = true;
                    }
                }
            }
        };
        for &c in cars {
            if pose.to_ego(c).norm() < cfg.window_m() {
                stamp(channel::VEHICLES, c, 1, &mut channels);
            }
        }
        for &p in pedestrians {
            if pose.to_ego(p).norm() < cfg.window_m() {
                stamp(channel::PEDESTRIANS, p, 0, &mut channels);
            }
        }
        for &r in route_ahead {
            if pose.to_ego(r).norm() < cfg.window_m() {
                stamp(channel::ROUTE, r, 0, &mut channels);
            }
        }

        Bev { cells: n, channels, speed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RoadRaster;

    fn empty_raster() -> RoadRaster {
        RoadRaster::empty(1000.0, 2.0)
    }

    fn straight_road_raster() -> RoadRaster {
        // A single horizontal road along y = 500.
        let pts: Vec<Vec2> = (0..=500).map(|i| Vec2::new(i as f32 * 2.0, 500.0)).collect();
        RoadRaster::from_polylines(1000.0, 2.0, &[pts], 4.0)
    }

    #[test]
    fn feature_len_matches_config() {
        let cfg = BevConfig::default();
        let bev = rasterize(
            &cfg,
            Pose { pos: Vec2::new(500.0, 500.0), heading: 0.0 },
            5.0,
            &empty_raster(),
            &[],
            &[],
            &[],
        );
        assert_eq!(bev.features(cfg.pool).len(), cfg.feature_len());
    }

    #[test]
    fn road_channel_sees_the_road() {
        let cfg = BevConfig::default();
        let bev = rasterize(
            &cfg,
            Pose { pos: Vec2::new(500.0, 500.0), heading: 0.0 },
            5.0,
            &straight_road_raster(),
            &[],
            &[],
            &[],
        );
        assert!(bev.popcount(channel::ROAD) > 10, "road ahead must be visible");
        assert_eq!(bev.popcount(channel::VEHICLES), 0);
    }

    #[test]
    fn vehicle_ahead_is_stamped() {
        let cfg = BevConfig::default();
        let pose = Pose { pos: Vec2::new(500.0, 500.0), heading: 0.0 };
        let bev = rasterize(
            &cfg,
            pose,
            5.0,
            &empty_raster(),
            &[Vec2::new(515.0, 500.0)], // 15 m ahead
            &[],
            &[],
        );
        assert!(bev.popcount(channel::VEHICLES) >= 4, "3x3 stamp expected");
    }

    #[test]
    fn agents_outside_window_ignored() {
        let cfg = BevConfig::default();
        let pose = Pose { pos: Vec2::new(500.0, 500.0), heading: 0.0 };
        let bev = rasterize(
            &cfg,
            pose,
            5.0,
            &empty_raster(),
            &[Vec2::new(700.0, 500.0)],
            &[Vec2::new(500.0, 300.0)],
            &[],
        );
        assert_eq!(bev.popcount(channel::VEHICLES), 0);
        assert_eq!(bev.popcount(channel::PEDESTRIANS), 0);
    }

    #[test]
    fn rotation_keeps_forward_agent_visible() {
        let cfg = BevConfig::default();
        // Facing north; agent due north should appear.
        let pose =
            Pose { pos: Vec2::new(500.0, 500.0), heading: std::f32::consts::FRAC_PI_2 };
        let bev = rasterize(
            &cfg,
            pose,
            5.0,
            &empty_raster(),
            &[Vec2::new(500.0, 515.0)],
            &[],
            &[],
        );
        assert!(bev.popcount(channel::VEHICLES) > 0);
    }

    #[test]
    fn features_are_bounded() {
        let cfg = BevConfig::default();
        let bev = rasterize(
            &cfg,
            Pose { pos: Vec2::new(500.0, 500.0), heading: 0.3 },
            12.5,
            &straight_road_raster(),
            &[Vec2::new(510.0, 500.0)],
            &[Vec2::new(505.0, 505.0)],
            &[Vec2::new(520.0, 500.0)],
        );
        for f in bev.features(cfg.pool) {
            assert!((0.0..=1.0).contains(&f), "feature out of range: {f}");
        }
    }

    #[test]
    fn optimized_rasterize_matches_reference_bit_for_bit() {
        let cfg = BevConfig::default();
        let road = straight_road_raster();
        for (heading, speed) in [(0.0f32, 4.0f32), (0.7, 9.5), (-2.3, 0.0), (3.1, 14.0)] {
            let pose = Pose { pos: Vec2::new(500.0, 500.0), heading };
            let cars = [Vec2::new(515.0, 500.0), Vec2::new(488.0, 507.0)];
            let peds = [Vec2::new(505.0, 495.0), Vec2::new(700.0, 700.0)];
            let route = [Vec2::new(510.0, 500.0), Vec2::new(520.0, 501.0)];
            let fast = rasterize(&cfg, pose, speed, &road, &cars, &peds, &route);
            let slow = reference::rasterize(&cfg, pose, speed, &road, &cars, &peds, &route);
            assert_eq!(fast, slow, "heading {heading}");
        }
    }

    #[test]
    fn rasterize_into_reuse_is_bit_identical() {
        let cfg = BevConfig::default();
        let road = straight_road_raster();
        let mut frame = Bev::blank(cfg.cells);
        // Dirty the frame with one scene, then overwrite with another: the
        // reused buffers must not leak the first scene's bits.
        rasterize_into(
            &cfg,
            Pose { pos: Vec2::new(500.0, 500.0), heading: 1.1 },
            7.0,
            &road,
            &[Vec2::new(505.0, 505.0)],
            &[],
            &[],
            &mut frame,
        );
        let pose = Pose { pos: Vec2::new(480.0, 502.0), heading: -0.4 };
        let cars = [Vec2::new(490.0, 500.0)];
        rasterize_into(&cfg, pose, 3.0, &road, &cars, &[], &[], &mut frame);
        let fresh = rasterize(&cfg, pose, 3.0, &road, &cars, &[], &[]);
        assert_eq!(frame, fresh);
    }

    #[test]
    fn ego_transform_roundtrip() {
        let pose = Pose { pos: Vec2::new(3.0, -2.0), heading: 0.7 };
        let w = Vec2::new(10.0, 10.0);
        assert!(pose.to_world(pose.to_ego(w)).distance(w) < 1e-4);
    }
}
