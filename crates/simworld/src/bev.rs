//! Bird's-eye-view rasterization.
//!
//! The paper's model input is "a sparse binary tensor depicting the front
//! view of a vehicle in a top-down view". We rasterize an ego-frame grid
//! ahead of the vehicle with four binary channels: drivable road, other
//! vehicles, pedestrians, and the vehicle's own planned route. A pooled
//! float feature vector (plus the current speed) is what the policy network
//! consumes.

use crate::world::RoadRaster;
use simnet::geom::Vec2;

/// Pose of the observing vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// World position.
    pub pos: Vec2,
    /// Heading in radians.
    pub heading: f32,
}

impl Pose {
    /// Transforms a world point into the ego frame (x forward, y left).
    pub fn to_ego(&self, world: Vec2) -> Vec2 {
        (world - self.pos).rotated(-self.heading)
    }

    /// Transforms an ego-frame point to world coordinates.
    pub fn to_world(&self, ego: Vec2) -> Vec2 {
        self.pos + ego.rotated(self.heading)
    }
}

/// BEV channel indices.
pub mod channel {
    /// Drivable road.
    pub const ROAD: usize = 0;
    /// Other vehicles.
    pub const VEHICLES: usize = 1;
    /// Pedestrians.
    pub const PEDESTRIANS: usize = 2;
    /// Own planned route.
    pub const ROUTE: usize = 3;
    /// Number of channels.
    pub const COUNT: usize = 4;
}

/// Geometry of the BEV grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BevConfig {
    /// Cells per side (square grid).
    pub cells: usize,
    /// Cell side length in meters.
    pub cell_m: f32,
    /// How far ahead of the vehicle the grid center sits, in meters.
    pub forward_offset: f32,
    /// Pooling factor for the feature vector: each `pool x pool` cell block
    /// becomes one float. Must divide `cells`.
    pub pool: usize,
}

impl Default for BevConfig {
    fn default() -> Self {
        // 24 cells * 2 m = 48 m square window, centered 16 m ahead.
        Self { cells: 24, cell_m: 2.0, forward_offset: 16.0, pool: 4 }
    }
}

impl BevConfig {
    /// Side length of the window in meters.
    pub fn window_m(&self) -> f32 {
        self.cells as f32 * self.cell_m
    }

    /// Length of the pooled feature vector including the speed scalar.
    pub fn feature_len(&self) -> usize {
        let side = self.cells / self.pool;
        side * side * channel::COUNT + 1
    }
}

/// A rasterized sparse binary BEV tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Bev {
    cells: usize,
    /// One bit vector per channel, row-major `y * cells + x`.
    channels: [Vec<bool>; channel::COUNT],
    /// Ego speed at capture time (m/s).
    speed: f32,
}

impl Bev {
    /// Grid side length in cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Whether channel `c` is set at `(ix, iy)`.
    pub fn get(&self, c: usize, ix: usize, iy: usize) -> bool {
        self.channels[c][iy * self.cells + ix]
    }

    /// Number of set bits in channel `c` (sparsity diagnostics).
    pub fn popcount(&self, c: usize) -> usize {
        self.channels[c].iter().filter(|&&b| b).count()
    }

    /// Ego speed recorded with the frame.
    pub fn speed(&self) -> f32 {
        self.speed
    }

    /// Pooled float features: each `pool x pool` block averages to one value
    /// per channel, concatenated channel-major, with normalized speed
    /// appended. This is the policy-network input.
    ///
    /// # Panics
    /// Panics if `pool` does not divide the grid side.
    pub fn features(&self, pool: usize) -> Vec<f32> {
        assert!(pool > 0 && self.cells % pool == 0, "pool must divide grid side");
        let side = self.cells / pool;
        let mut out = Vec::with_capacity(side * side * channel::COUNT + 1);
        let norm = 1.0 / (pool * pool) as f32;
        for ch in &self.channels {
            for by in 0..side {
                for bx in 0..side {
                    let mut acc = 0.0f32;
                    for dy in 0..pool {
                        for dx in 0..pool {
                            let ix = bx * pool + dx;
                            let iy = by * pool + dy;
                            if ch[iy * self.cells + ix] {
                                acc += 1.0;
                            }
                        }
                    }
                    out.push(acc * norm);
                }
            }
        }
        out.push(self.speed / 25.0); // normalize by the map's top speed
        out
    }
}

/// Rasterizes the BEV for a vehicle at `pose` moving at `speed`.
///
/// * `road` — the precomputed global drivable-area raster.
/// * `cars` — world positions of every *other* vehicle.
/// * `pedestrians` — world positions of pedestrians.
/// * `route_ahead` — world-frame polyline of the next stretch of the planned
///   route (the navigation hint; sampled densely by the caller).
pub fn rasterize(
    cfg: &BevConfig,
    pose: Pose,
    speed: f32,
    road: &RoadRaster,
    cars: &[Vec2],
    pedestrians: &[Vec2],
    route_ahead: &[Vec2],
) -> Bev {
    let n = cfg.cells;
    let mut channels: [Vec<bool>; channel::COUNT] = [
        vec![false; n * n],
        vec![false; n * n],
        vec![false; n * n],
        vec![false; n * n],
    ];
    let half = cfg.window_m() / 2.0;

    // Road channel: sample each cell center against the global road raster.
    for iy in 0..n {
        for ix in 0..n {
            let ego = Vec2::new(
                cfg.forward_offset - half + (iy as f32 + 0.5) * cfg.cell_m,
                half - (ix as f32 + 0.5) * cfg.cell_m,
            );
            let world = pose.to_world(ego);
            if road.is_road(world) {
                channels[channel::ROAD][iy * n + ix] = true;
            }
        }
    }

    // Point-agent channels with a small footprint stamp.
    let stamp = |ch: usize, world: Vec2, radius_cells: i32, channels: &mut [Vec<bool>; 4]| {
        let ego = pose.to_ego(world);
        // Invert the cell-center mapping used for the road channel.
        let fy = (ego.x - cfg.forward_offset + half) / cfg.cell_m - 0.5;
        let fx = (half - ego.y) / cfg.cell_m - 0.5;
        let (cx, cy) = (fx.round() as i32, fy.round() as i32);
        for dy in -radius_cells..=radius_cells {
            for dx in -radius_cells..=radius_cells {
                let (x, y) = (cx + dx, cy + dy);
                if x >= 0 && y >= 0 && (x as usize) < n && (y as usize) < n {
                    channels[ch][y as usize * n + x as usize] = true;
                }
            }
        }
    };
    for &c in cars {
        if pose.to_ego(c).norm() < cfg.window_m() {
            stamp(channel::VEHICLES, c, 1, &mut channels);
        }
    }
    for &p in pedestrians {
        if pose.to_ego(p).norm() < cfg.window_m() {
            stamp(channel::PEDESTRIANS, p, 0, &mut channels);
        }
    }
    for &r in route_ahead {
        if pose.to_ego(r).norm() < cfg.window_m() {
            stamp(channel::ROUTE, r, 0, &mut channels);
        }
    }

    Bev { cells: n, channels, speed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RoadRaster;

    fn empty_raster() -> RoadRaster {
        RoadRaster::empty(1000.0, 2.0)
    }

    fn straight_road_raster() -> RoadRaster {
        // A single horizontal road along y = 500.
        let pts: Vec<Vec2> = (0..=500).map(|i| Vec2::new(i as f32 * 2.0, 500.0)).collect();
        RoadRaster::from_polylines(1000.0, 2.0, &[pts], 4.0)
    }

    #[test]
    fn feature_len_matches_config() {
        let cfg = BevConfig::default();
        let bev = rasterize(
            &cfg,
            Pose { pos: Vec2::new(500.0, 500.0), heading: 0.0 },
            5.0,
            &empty_raster(),
            &[],
            &[],
            &[],
        );
        assert_eq!(bev.features(cfg.pool).len(), cfg.feature_len());
    }

    #[test]
    fn road_channel_sees_the_road() {
        let cfg = BevConfig::default();
        let bev = rasterize(
            &cfg,
            Pose { pos: Vec2::new(500.0, 500.0), heading: 0.0 },
            5.0,
            &straight_road_raster(),
            &[],
            &[],
            &[],
        );
        assert!(bev.popcount(channel::ROAD) > 10, "road ahead must be visible");
        assert_eq!(bev.popcount(channel::VEHICLES), 0);
    }

    #[test]
    fn vehicle_ahead_is_stamped() {
        let cfg = BevConfig::default();
        let pose = Pose { pos: Vec2::new(500.0, 500.0), heading: 0.0 };
        let bev = rasterize(
            &cfg,
            pose,
            5.0,
            &empty_raster(),
            &[Vec2::new(515.0, 500.0)], // 15 m ahead
            &[],
            &[],
        );
        assert!(bev.popcount(channel::VEHICLES) >= 4, "3x3 stamp expected");
    }

    #[test]
    fn agents_outside_window_ignored() {
        let cfg = BevConfig::default();
        let pose = Pose { pos: Vec2::new(500.0, 500.0), heading: 0.0 };
        let bev = rasterize(
            &cfg,
            pose,
            5.0,
            &empty_raster(),
            &[Vec2::new(700.0, 500.0)],
            &[Vec2::new(500.0, 300.0)],
            &[],
        );
        assert_eq!(bev.popcount(channel::VEHICLES), 0);
        assert_eq!(bev.popcount(channel::PEDESTRIANS), 0);
    }

    #[test]
    fn rotation_keeps_forward_agent_visible() {
        let cfg = BevConfig::default();
        // Facing north; agent due north should appear.
        let pose =
            Pose { pos: Vec2::new(500.0, 500.0), heading: std::f32::consts::FRAC_PI_2 };
        let bev = rasterize(
            &cfg,
            pose,
            5.0,
            &empty_raster(),
            &[Vec2::new(500.0, 515.0)],
            &[],
            &[],
        );
        assert!(bev.popcount(channel::VEHICLES) > 0);
    }

    #[test]
    fn features_are_bounded() {
        let cfg = BevConfig::default();
        let bev = rasterize(
            &cfg,
            Pose { pos: Vec2::new(500.0, 500.0), heading: 0.3 },
            12.5,
            &straight_road_raster(),
            &[Vec2::new(510.0, 500.0)],
            &[Vec2::new(505.0, 505.0)],
            &[Vec2::new(520.0, 500.0)],
        );
        for f in bev.features(cfg.pool) {
            assert!((0.0..=1.0).contains(&f), "feature out of range: {f}");
        }
    }

    #[test]
    fn ego_transform_roundtrip() {
        let pose = Pose { pos: Vec2::new(3.0, -2.0), heading: 0.7 };
        let w = Vec2::new(10.0, 10.0);
        assert!(pose.to_world(pose.to_ego(w)).distance(w) < 1e-4);
    }
}
