//! # simworld — a deterministic driving world
//!
//! The CARLA substitute. The LbChat paper uses CARLA for three things only:
//! generating realistic vehicle mobility (encounters), producing BEV +
//! waypoint training data via expert autopilots, and judging trained models
//! in closed-loop driving (success rate). This crate supplies all three on a
//! procedurally generated 1 km × 1 km map with town and rural areas:
//!
//! * [`map`] — the road network: a Manhattan-style town grid plus a rural
//!   loop, directed lane edges with polylines and per-kind speed limits.
//! * [`route`] — Dijkstra routing and turn/command classification.
//! * [`agents`] — kinematic vehicles with car-following, plus roaming
//!   pedestrians (the paper's 50 background cars and 250 pedestrians).
//! * [`expert`] — the privileged expert autopilot: pure-pursuit steering
//!   along its route, speed control, and obstacle braking; emits the
//!   ground-truth waypoints used as imitation targets.
//! * [`bev`] — ego-frame bird's-eye-view rasterization (sparse binary
//!   tensor) and the feature vector fed to the policy network.
//! * [`world`] — owns everything in structure-of-arrays columns, steps at
//!   2 fps with a two-phase (parallel intent / serial apply) tick, detects
//!   collisions, and records [`simnet::MobilityTrace`]s. Scales to
//!   100k–1M-vehicle fleets via a wake queue ([`FleetScale`]).
//! * [`mod@reference`] — the original per-agent-struct world, retained
//!   verbatim as the bit-identity oracle for [`world::World`].
//!
//! Determinism: the map, traffic, and every agent decision derive from the
//! seed given at construction, and stepping is bit-identical for any
//! `--jobs` setting (the intent phase is RNG-free and order-free; all RNG
//! draws happen in the id-ordered apply pass).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod bev;
pub mod expert;
pub mod map;
pub mod reference;
pub mod render;
pub mod route;
pub mod world;

pub use agents::{AgentId, AgentKind, VehicleRef};
pub use bev::{Bev, BevConfig};
pub use expert::{Command, ExpertOutput};
pub use map::{EdgeId, NodeId, RoadKind, RoadNetwork};
pub use route::{Route, Router, RoutingTable};
pub use world::{FleetScale, TickStats, World, WorldConfig};
