//! # simworld — a deterministic driving world
//!
//! The CARLA substitute. The LbChat paper uses CARLA for three things only:
//! generating realistic vehicle mobility (encounters), producing BEV +
//! waypoint training data via expert autopilots, and judging trained models
//! in closed-loop driving (success rate). This crate supplies all three on a
//! procedurally generated 1 km × 1 km map with town and rural areas:
//!
//! * [`map`] — the road network: a Manhattan-style town grid plus a rural
//!   loop, directed lane edges with polylines and per-kind speed limits.
//! * [`route`] — Dijkstra routing and turn/command classification.
//! * [`agents`] — kinematic vehicles with car-following, plus roaming
//!   pedestrians (the paper's 50 background cars and 250 pedestrians).
//! * [`expert`] — the privileged expert autopilot: pure-pursuit steering
//!   along its route, speed control, and obstacle braking; emits the
//!   ground-truth waypoints used as imitation targets.
//! * [`bev`] — ego-frame bird's-eye-view rasterization (sparse binary
//!   tensor) and the feature vector fed to the policy network.
//! * [`world`] — owns everything, steps at 2 fps, detects collisions, and
//!   records [`simnet::MobilityTrace`]s.
//!
//! Determinism: the map, traffic, and every agent decision derive from the
//! seed given at construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod bev;
pub mod expert;
pub mod map;
pub mod render;
pub mod route;
pub mod world;

pub use bev::{Bev, BevConfig};
pub use expert::{Command, ExpertOutput};
pub use map::{EdgeId, NodeId, RoadKind, RoadNetwork};
pub use route::{Route, Router};
pub use world::{World, WorldConfig};
