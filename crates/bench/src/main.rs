//! `lbchat-bench`: runs the deterministic benchmark suite and writes a
//! machine-readable `BENCH_<name>.json` result file.
//!
//! ```text
//! cargo run --release -p lbchat-bench -- [--smoke] [--reference]
//!     [--filter SUBSTR] [--out DIR] [--name LABEL]
//! ```
//!
//! Defaults: full sampling, optimized hot paths, all cells, output under
//! `results/bench/`, label `current` (`baseline` when `--reference`).
//! See `docs/BENCHMARKS.md` for the workflow.

use lbchat_bench::results::BenchRun;
use lbchat_bench::suite::{self, SuiteOpts};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    opts: SuiteOpts,
    out: PathBuf,
    name: Option<String>,
}

fn usage() -> &'static str {
    "usage: lbchat-bench [--smoke] [--reference] [--filter SUBSTR] [--out DIR] [--name LABEL]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        opts: SuiteOpts::default(),
        out: PathBuf::from("results/bench"),
        name: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--smoke" => args.opts.smoke = true,
            "--reference" => args.opts.reference = true,
            "--filter" => args.opts.filter = Some(value("--filter")?),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--name" => args.name = Some(value("--name")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let name = args.name.clone().unwrap_or_else(|| {
        if args.opts.reference { "baseline".to_string() } else { "current".to_string() }
    });
    eprintln!(
        "running {} suite ({} hot paths){}",
        args.opts.mode(),
        args.opts.implementation(),
        args.opts
            .filter
            .as_deref()
            .map(|f| format!(", filter `{f}`"))
            .unwrap_or_default(),
    );
    let results = suite::run(&args.opts);
    if results.is_empty() {
        eprintln!("no benchmarks matched");
        return ExitCode::FAILURE;
    }
    for r in &results {
        eprintln!("{:<44} mean {:?}  ({} iters)", r.id, r.mean, r.iters);
    }
    let run = BenchRun::from_results(
        &name,
        args.opts.mode(),
        args.opts.implementation(),
        &results,
    );
    match run.write_to(&args.out) {
        Ok(path) => {
            println!("{}", path.display());
            // Keep a repo-root copy of the latest optimized run so a bench
            // refresh is always one `git diff BENCH_current.json` away.
            if name == "current" {
                if let Err(e) = std::fs::copy(&path, "BENCH_current.json") {
                    eprintln!("warning: could not copy to BENCH_current.json: {e}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write results: {e}");
            ExitCode::FAILURE
        }
    }
}
