//! The `BENCH_<name>.json` result format.
//!
//! One file per suite run, schema `lbchat-bench/v1`:
//!
//! ```json
//! {
//!   "schema": "lbchat-bench/v1",
//!   "name": "baseline",
//!   "mode": "full",
//!   "impl": "reference",
//!   "results": [
//!     {"id": "coreset/construct_10k_to_150", "mean_ns": 1234567,
//!      "min_ns": 1200000, "max_ns": 1300000, "iters": 40}
//!   ]
//! }
//! ```
//!
//! Durations are integer nanoseconds ([`lbchat::obs::json::Json::UInt`], so
//! they round-trip exactly); `impl` records whether the hot paths ran their
//! optimized or pinned-reference implementations, and `bench_report`
//! matches rows across files purely by `id`.

use criterion::BenchResult;
use lbchat::obs::json::{parse, Json};
use std::path::{Path, PathBuf};

/// One benchmark row as persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: u64,
    /// Fastest per-iteration time in nanoseconds.
    pub min_ns: u64,
    /// Slowest per-iteration time in nanoseconds.
    pub max_ns: u64,
    /// Total timed iterations.
    pub iters: u64,
}

/// A full suite run: metadata plus all rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Run label (the `<name>` of `BENCH_<name>.json`).
    pub name: String,
    /// Sampling mode: `"full"` or `"smoke"`.
    pub mode: String,
    /// Hot-path implementation timed: `"optimized"` or `"reference"`.
    pub implementation: String,
    /// All recorded rows, in execution order.
    pub entries: Vec<Entry>,
}

/// Schema tag written to and required from every result file.
pub const SCHEMA: &str = "lbchat-bench/v1";

impl BenchRun {
    /// Wraps criterion results under run metadata.
    pub fn from_results(
        name: &str,
        mode: &str,
        implementation: &str,
        results: &[BenchResult],
    ) -> Self {
        Self {
            name: name.to_string(),
            mode: mode.to_string(),
            implementation: implementation.to_string(),
            entries: results
                .iter()
                .map(|r| Entry {
                    id: r.id.clone(),
                    mean_ns: r.mean.as_nanos() as u64,
                    min_ns: r.min.as_nanos() as u64,
                    max_ns: r.max.as_nanos() as u64,
                    iters: r.iters,
                })
                .collect(),
        }
    }

    /// The row with the given id, if present.
    pub fn entry(&self, id: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Serializes to the schema above.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("name".into(), Json::Str(self.name.clone())),
            ("mode".into(), Json::Str(self.mode.clone())),
            ("impl".into(), Json::Str(self.implementation.clone())),
            (
                "results".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("id".into(), Json::Str(e.id.clone())),
                                ("mean_ns".into(), Json::UInt(e.mean_ns)),
                                ("min_ns".into(), Json::UInt(e.min_ns)),
                                ("max_ns".into(), Json::UInt(e.max_ns)),
                                ("iters".into(), Json::UInt(e.iters)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a value produced by [`BenchRun::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let obj = match v {
            Json::Obj(pairs) => pairs,
            _ => return Err("result file is not a JSON object".into()),
        };
        let field = |key: &str| -> Result<&Json, String> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let string = |key: &str| -> Result<String, String> {
            match field(key)? {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(format!("field `{key}` is not a string")),
            }
        };
        let schema = string("schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (expected `{SCHEMA}`)"));
        }
        let rows = match field("results")? {
            Json::Arr(rows) => rows,
            _ => return Err("field `results` is not an array".into()),
        };
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            let row_obj = match row {
                Json::Obj(pairs) => pairs,
                _ => return Err("results entry is not an object".into()),
            };
            let get = |key: &str| -> Result<&Json, String> {
                row_obj
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("results entry missing `{key}`"))
            };
            let uint = |key: &str| -> Result<u64, String> {
                get(key)?.as_u64().ok_or_else(|| format!("`{key}` is not an integer"))
            };
            let id = match get("id")? {
                Json::Str(s) => s.clone(),
                _ => return Err("results entry `id` is not a string".into()),
            };
            entries.push(Entry {
                id,
                mean_ns: uint("mean_ns")?,
                min_ns: uint("min_ns")?,
                max_ns: uint("max_ns")?,
                iters: uint("iters")?,
            });
        }
        Ok(Self {
            name: string("name")?,
            mode: string("mode")?,
            implementation: string("impl")?,
            entries,
        })
    }

    /// Writes `BENCH_<name>.json` under `dir`, creating it if needed, and
    /// returns the path written.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = bench_path(dir, &self.name);
        let mut out = String::new();
        self.to_json().write(&mut out);
        out.push('\n');
        std::fs::write(&path, out)?;
        Ok(path)
    }

    /// Reads and parses a result file.
    pub fn read_from(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let v = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The canonical file name for a run label: `BENCH_<name>.json` in `dir`.
pub fn bench_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("BENCH_{name}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_run() -> BenchRun {
        BenchRun::from_results(
            "unit",
            "smoke",
            "optimized",
            &[
                BenchResult {
                    id: "coreset/construct_10k_to_150".into(),
                    mean: Duration::from_nanos(1_234_567),
                    min: Duration::from_nanos(1_200_000),
                    max: Duration::from_nanos(1_300_000),
                    iters: 40,
                },
                BenchResult {
                    id: "bev/rasterize_24".into(),
                    mean: Duration::from_micros(9),
                    min: Duration::from_micros(8),
                    max: Duration::from_micros(11),
                    iters: 1000,
                },
            ],
        )
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let run = sample_run();
        let mut text = String::new();
        run.to_json().write(&mut text);
        let back = BenchRun::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(run, back);
    }

    #[test]
    fn file_roundtrip_via_bench_path() {
        let dir = std::env::temp_dir().join("lbchat_bench_results_test");
        let run = sample_run();
        let path = run.write_to(&dir).unwrap();
        assert_eq!(path, bench_path(&dir, "unit"));
        let back = BenchRun::read_from(&path).unwrap();
        assert_eq!(run, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = r#"{"schema": "other/v9", "name": "x", "mode": "full", "impl": "optimized", "results": []}"#;
        let err = BenchRun::from_json(&parse(text).unwrap()).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn entry_lookup_by_id() {
        let run = sample_run();
        assert_eq!(run.entry("bev/rasterize_24").unwrap().iters, 1000);
        assert!(run.entry("missing").is_none());
    }
}
