//! The benchmark cells: every hot path the LbChat pipeline executes,
//! timed under stable ids so `bench_report` can match rows across runs.
//!
//! Ids are `group/name` and are identical whether the suite times the
//! optimized hot paths or their pinned `reference` implementations
//! (`SuiteOpts::reference`) — that is what makes a
//! `BENCH_baseline.json`-vs-`BENCH_current.json` diff meaningful. All
//! inputs are seeded, so two runs of the same binary time the same work.

use criterion::{BatchSize, BenchResult, Criterion};
use experiments::{run_method, Condition, Method, Scale, Scenario};
use lbchat::adaptive::AdaptiveSizer;
use lbchat::compress::top_k;
use lbchat::coreset::{self, construct_with_scratch, CoresetConfig, CoresetScratch};
use lbchat::optimize::CompressionProblem;
use lbchat::penalty::PenaltyConfig;
use lbchat::phi::PhiCurve;
use lbchat::valuation::coreset_loss;
use lbchat::{Learner, WeightedDataset};
use lbchat::prelude::{
    CollabAlgorithm, Runtime, RuntimeConfig, SessionCtx, SessionStep, TrainStats,
};
use rand::SeedableRng;
use simnet::channel::{Channel, Medium, MediumConfig, RadioConfig, TransferOutcome, TransferSpec};
use simnet::contact::ContactPredictor;
use simnet::geom::Vec2;
use simnet::grid::EncounterGrid;
use simnet::loss::LossModel;
use simnet::trace::MobilityTrace;
use simworld::bev::{self, BevConfig, Pose};
use simworld::reference;
use simworld::world::{FleetScale, World, WorldConfig};
use std::time::Duration;
use vnn::adam::Adam;
use vnn::mlp::{Mlp, MlpSpec};
use vnn::{
    BranchedPolicy, MlpScratch, ParamVec, PolicySample, PolicySpec, Sgd, TrainScratch, SHARD,
};

/// What to run and how.
#[derive(Debug, Clone, Default)]
pub struct SuiteOpts {
    /// Short sampling for CI smoke runs (fewer samples, tighter budgets).
    pub smoke: bool,
    /// Time the pinned `reference` implementations of the optimized hot
    /// paths (coreset construction/reduction, BEV rasterization) instead of
    /// the optimized ones. Ids are unchanged.
    pub reference: bool,
    /// Substring filter: only benchmark ids containing this run.
    pub filter: Option<String>,
}

impl SuiteOpts {
    /// The mode string recorded in the result file.
    pub fn mode(&self) -> &'static str {
        if self.smoke {
            "smoke"
        } else {
            "full"
        }
    }

    /// The implementation string recorded in the result file.
    pub fn implementation(&self) -> &'static str {
        if self.reference {
            "reference"
        } else {
            "optimized"
        }
    }

    /// Whether any id in `group` can match the filter.
    fn group_enabled(&self, group: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => group.contains(f.as_str()) || f.starts_with(group),
        }
    }
}

/// Runs the suite and returns one result per executed cell.
pub fn run(opts: &SuiteOpts) -> Vec<BenchResult> {
    let (samples, budget) = if opts.smoke {
        (5, Duration::from_millis(60))
    } else {
        (20, Duration::from_secs(2))
    };
    let mut c = Criterion::default()
        .quiet()
        .sample_size(samples)
        .measurement_time(budget);
    type Cell = fn(&mut Criterion, &SuiteOpts);
    let cells: &[(&str, Cell)] = &[
        ("coreset", bench_coreset),
        ("valuation", bench_valuation),
        ("compress", bench_compress),
        ("solver", bench_solver),
        ("bev", bench_bev),
        ("simworld", bench_simworld),
        ("vnn", bench_vnn),
        ("simnet", bench_simnet),
        ("runtime", bench_runtime),
        ("e2e", bench_e2e),
    ];
    for (group, cell) in cells {
        if opts.group_enabled(group) {
            cell(&mut c, opts);
        }
    }
    let mut results = c.take_results();
    if let Some(f) = &opts.filter {
        results.retain(|r| r.id.contains(f.as_str()));
    }
    results
}

/// A line-fitting learner: cheap per-sample losses isolate the coreset
/// machinery under test from network-forward costs (same idiom as
/// `benches/micro.rs`).
#[derive(Debug, Clone)]
struct Line(ParamVec);

#[derive(Debug, Clone, Copy)]
struct Pt(f32, f32);

impl Learner for Line {
    type Sample = Pt;
    fn params(&self) -> &ParamVec {
        &self.0
    }
    fn set_params(&mut self, p: ParamVec) {
        self.0 = p;
    }
    fn loss(&self, s: &Pt) -> f32 {
        self.loss_with(&self.0, s)
    }
    fn loss_with(&self, p: &ParamVec, s: &Pt) -> f32 {
        let w = p.as_slice();
        let r = w[0] * s.0 + w[1] - s.1;
        r * r
    }
    fn train_step(&mut self, _b: &[(&Pt, f32)]) -> f32 {
        0.0
    }
    fn group_of(&self, _s: &Pt) -> usize {
        0
    }
    fn n_groups(&self) -> usize {
        1
    }
}

fn line() -> Line {
    Line(ParamVec::from_vec(vec![1.0, 0.0]))
}

fn dataset(n: usize) -> WeightedDataset<Pt> {
    WeightedDataset::uniform(
        (0..n)
            .map(|i| Pt(i as f32 / n as f32, (i % 17) as f32 / 17.0))
            .collect(),
    )
}

fn bench_coreset(c: &mut Criterion, opts: &SuiteOpts) {
    let learner = line();
    let reference = opts.reference;
    for (n, size) in [(2_000usize, 150usize), (10_000, 150), (10_000, 400)] {
        let data = dataset(n);
        let id = format!("coreset/construct_{}k_to_{size}", n / 1000);
        c.bench_function(id, |b| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let mut scratch = CoresetScratch::new();
            let cfg = CoresetConfig { size };
            b.iter(|| {
                if reference {
                    coreset::reference::construct(&learner, &data, &cfg, &mut rng)
                } else {
                    construct_with_scratch(&learner, &data, &cfg, &mut rng, &mut scratch)
                }
            });
        });
    }
    let data = dataset(10_000);
    let big = coreset::construct(
        &learner,
        &data,
        &CoresetConfig { size: 300 },
        &mut rand::rngs::StdRng::seed_from_u64(2),
    );
    c.bench_function("coreset/merge_reduce_600_to_150", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter_batched(
            || (big.clone(), big.clone()),
            |(a, bb)| {
                if reference {
                    coreset::reference::reduce(a.merge(bb), 150, &mut rng)
                } else {
                    coreset::reduce(a.merge(bb), 150, &mut rng)
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_valuation(c: &mut Criterion, _opts: &SuiteOpts) {
    let learner = line();
    let data = dataset(5_000);
    let coreset = coreset::construct(
        &learner,
        &data,
        &CoresetConfig { size: 150 },
        &mut rand::rngs::StdRng::seed_from_u64(4),
    );
    let pen = PenaltyConfig::none();
    c.bench_function("valuation/coreset_loss_150", |b| {
        b.iter(|| coreset_loss(&learner, learner.params(), &coreset, &pen));
    });
}

fn bench_compress(c: &mut Criterion, _opts: &SuiteOpts) {
    use lbchat::compress::Codec;
    let params = ParamVec::from_vec(
        (0..25_000).map(|i| ((i * 37) % 101) as f32 / 50.0 - 1.0).collect(),
    );
    c.bench_function("compress/topk_25k_psi_0.1", |b| b.iter(|| top_k(&params, 0.1)));
    // One encode + one decode cell per codec: the share-path hot loops of
    // docs/COMPRESSION.md. Fixed seed keeps the stochastic quantizers
    // deterministic across ref/opt arms.
    for codec in Codec::ALL {
        c.bench_function(format!("compress/{codec}_encode_25k_psi_0.1"), |b| {
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(9);
                codec.encode(&params, 0.1, &mut rng)
            });
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let wire = codec.encode(&params, 0.1, &mut rng);
        c.bench_function(format!("compress/{codec}_decode_25k_psi_0.1"), |b| {
            b.iter(|| wire.decode().expect("own encode decodes"));
        });
    }
    print_wire_size_table();
    c.bench_function("compress/adaptive_sizer_cycle", |b| {
        b.iter(|| {
            let mut sizer = AdaptiveSizer::new(150, 40, 400);
            for k in 0..32 {
                sizer.observe_epsilon(0.05 + (k % 7) as f32 * 0.01);
                sizer.observe_exchange(0.4 + (k % 5) as f64 * 0.1);
            }
            sizer.adjust()
        });
    });
}

/// Prints the cost model's two wire-size accountings side by side for
/// every codec — the paper's simplified `ψ·S` next to the honest
/// `min(2ψ, 1)·S` pair-encoding family — so the bench report never
/// understates sparse-encoding cost (the documented divergence in
/// docs/COMPRESSION.md).
fn print_wire_size_table() {
    use lbchat::compress::Codec;
    const S: usize = 52 * 1024 * 1024; // the paper's dense model
    eprintln!("wire bytes at S = 52 MiB (paper psi*S | honest pair accounting), in MiB:");
    for codec in Codec::ALL {
        let cells: Vec<String> = [0.05f32, 0.125, 0.25, 0.5, 1.0]
            .iter()
            .map(|&psi| {
                format!(
                    "psi={psi}: {:.2}|{:.2}",
                    codec.wire_bytes(S, psi) as f64 / (1024.0 * 1024.0),
                    codec.pair_wire_bytes(S, psi) as f64 / (1024.0 * 1024.0),
                )
            })
            .collect();
        eprintln!("  {:<8} {}", codec.name(), cells.join("  "));
    }
}

fn bench_solver(c: &mut Criterion, _opts: &SuiteOpts) {
    let phi = PhiCurve::from_points(
        vec![0.02, 0.1, 0.3, 0.6, 1.0],
        vec![2.0, 1.6, 1.1, 0.7, 0.5],
    );
    let problem = CompressionProblem {
        phi_i: &phi,
        phi_j: &phi,
        loss_j_on_ci: 3.0,
        loss_i_on_cj: 2.0,
        model_bytes: 52 * 1024 * 1024,
        bandwidth_bps: 31e6,
        time_budget: 15.0,
        contact: 40.0,
        lambda_c: 0.01,
    };
    c.bench_function("solver/eq7_solve", |b| b.iter(|| problem.solve()));
}

fn bench_bev(c: &mut Criterion, opts: &SuiteOpts) {
    // Mirror `World::observe_expert`'s exact inputs — a live expert's pose,
    // every other agent, and the 60 m route polyline — so the cell times the
    // workload data collection actually runs once per expert per frame.
    let world = World::new(WorldConfig::small(1));
    let road = world.raster();
    let cfg = BevConfig::default();
    let cars: Vec<Vec2> = world.car_positions();
    let peds: Vec<Vec2> = world.pedestrian_positions();
    let v = world.expert_view(0);
    let pose = Pose { pos: v.position(world.map()), heading: v.heading(world.map()).angle() };
    let route: Vec<Vec2> = world.route_ahead_polyline(v, 60.0);
    let reference = opts.reference;
    let id = format!("bev/rasterize_{}", cfg.cells);
    c.bench_function(id, |b| {
        let mut frame = bev::Bev::blank(cfg.cells);
        b.iter(|| {
            if reference {
                frame = bev::reference::rasterize(&cfg, pose, 8.0, road, &cars, &peds, &route);
            } else {
                bev::rasterize_into(&cfg, pose, 8.0, road, &cars, &peds, &route, &mut frame);
            }
        });
    });
}

fn bench_simworld(c: &mut Criterion, opts: &SuiteOpts) {
    let reference = opts.reference;
    let mut g = c.benchmark_group("simworld");
    g.sample_size(10);
    g.measurement_time(if opts.smoke {
        Duration::from_millis(60)
    } else {
        Duration::from_secs(2)
    });

    // City-scale tick: the structure-of-arrays world carrying N fleet
    // vehicles on the park → dwell → drive cycle vs the retained
    // per-agent-struct reference world carrying the same N as
    // always-driving background traffic (the only shape it supports).
    // The diff is the whole architecture change: SoA columns, the
    // precomputed routing table, and the wake queue.
    for (name, fleet) in [("tick_1k", FleetScale::K1), ("tick_100k", FleetScale::K100)] {
        // Warm past the first spawn staggers so the fleet is churning —
        // waking, driving, parking — rather than uniformly garaged.
        const WARM_TICKS: usize = 50;
        if reference {
            let mut w = reference::World::new(WorldConfig {
                n_background: 50 + fleet.n_fleet(),
                ..WorldConfig::default()
            });
            for _ in 0..WARM_TICKS {
                w.step();
            }
            g.bench_function(name, |b| {
                b.iter(|| {
                    w.step();
                    w.time()
                });
            });
        } else {
            let mut w = World::new(WorldConfig::with_fleet(0, fleet));
            for _ in 0..WARM_TICKS {
                w.step();
            }
            g.bench_function(name, |b| {
                b.iter(|| {
                    w.step();
                    w.time()
                });
            });
        }
    }

    // Wake-queue isolation: identical 10k-fleet SoA worlds, the reference
    // arm keeping every parked vehicle in the awake list (skipped inline,
    // bit-identical trajectories). The diff is exactly what sleeping
    // saves per tick.
    {
        let mut w = World::new(WorldConfig {
            wake_queue: !reference,
            ..WorldConfig::with_fleet(0, FleetScale::K10)
        });
        for _ in 0..50 {
            w.step();
        }
        g.bench_function("wake_queue", |b| {
            b.iter(|| {
                w.step();
                w.time()
            });
        });
    }
    g.finish();
}

fn bench_vnn(c: &mut Criterion, opts: &SuiteOpts) {
    let spec = MlpSpec::relu(vec![32, 64, 64, 4]);
    let mlp = Mlp::new(spec, 0);
    let n = mlp.param_count();
    let mut params = ParamVec::zeros(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    mlp.init(&mut params, &mut rng);
    let input: Vec<f32> = (0..32).map(|i| (i as f32 / 32.0) - 0.5).collect();
    // Single-sample cells, ids pinned since PR 3 (no reference arm: the
    // per-sample kernels *are* the reference).
    c.bench_function("vnn/mlp_forward_32x64x64x4", |b| {
        b.iter(|| mlp.forward(&params, &input));
    });
    let cache = mlp.forward(&params, &input);
    let d_out = vec![1.0f32, -0.5, 0.25, 0.0];
    c.bench_function("vnn/mlp_backward_32x64x64x4", |b| {
        let mut grad = vec![0.0f32; n];
        b.iter(|| {
            grad.iter_mut().for_each(|g| *g = 0.0);
            mlp.backward(&params, &cache, &d_out, &mut grad)
        });
    });
    let grad: Vec<f32> = (0..n).map(|i| ((i % 13) as f32 - 6.0) / 100.0).collect();
    c.bench_function("vnn/adam_step", |b| {
        let mut adam = Adam::new(1e-3);
        let mut p = params.as_slice().to_vec();
        b.iter(|| adam.step(&mut p, &grad));
    });

    // Batched minibatch kernels (PR 5) against the per-sample reference
    // composition. The reference arm times exactly what local training did
    // before batching: one allocating forward/backward per sample, folded in
    // sample order.
    let reference = opts.reference;
    let inputs: Vec<Vec<f32>> = (0..64)
        .map(|s| (0..32).map(|i| ((s * 31 + i * 7) % 97) as f32 / 97.0 - 0.5).collect())
        .collect();
    let weights: Vec<f32> = (0..64).map(|s| 0.5 + (s % 7) as f32 * 0.25).collect();
    for bsz in [1usize, 16, 64] {
        let id = format!("vnn/mlp_forward_batch_b{bsz}");
        c.bench_function(id, |b| {
            let mut scratch = MlpScratch::new();
            b.iter(|| {
                if reference {
                    let mut acc = 0.0f32;
                    for x in &inputs[..bsz] {
                        acc += vnn::reference::forward(&mlp, &params, x).output()[0];
                    }
                    acc
                } else {
                    let stage = mlp.stage_batch(&mut scratch, bsz);
                    for (row, x) in stage.chunks_mut(32).zip(&inputs) {
                        row.copy_from_slice(x);
                    }
                    mlp.forward_batch(&params, &mut scratch, bsz);
                    mlp.batch_outputs(&scratch, bsz)[0]
                }
            });
        });
    }
    let caches: Vec<vnn::mlp::Cache> =
        inputs.iter().map(|x| mlp.forward(&params, x)).collect();
    for bsz in [1usize, 16, 64] {
        let id = format!("vnn/mlp_backward_batch_b{bsz}");
        c.bench_function(id, |b| {
            let mut scratch = MlpScratch::new();
            if !reference {
                // Activations staged once; each iteration restages d_out and
                // times the weighted batched backward pass alone.
                let stage = mlp.stage_batch(&mut scratch, bsz);
                for (row, x) in stage.chunks_mut(32).zip(&inputs) {
                    row.copy_from_slice(x);
                }
                mlp.forward_batch(&params, &mut scratch, bsz);
            }
            let mut grad = vec![0.0f32; n];
            b.iter(|| {
                grad.iter_mut().for_each(|g| *g = 0.0);
                if reference {
                    // PR 3's composition: per-sample backward into a fresh
                    // gradient vector, weighted fold in sample order.
                    for s in 0..bsz {
                        let mut g = vec![0.0f32; n];
                        vnn::reference::backward(&mlp, &params, &caches[s], &d_out, &mut g);
                        for (acc, gi) in grad.iter_mut().zip(&g) {
                            *acc += weights[s] * gi;
                        }
                    }
                } else {
                    let staged = mlp.stage_d_out(&mut scratch, bsz);
                    for row in staged.chunks_mut(4) {
                        row.copy_from_slice(&d_out);
                    }
                    mlp.backward_batch(&params, &mut scratch, bsz, &weights, &mut grad);
                }
                grad[0]
            });
        });
    }
    c.bench_function("vnn/adam_step_fused", |b| {
        let mut adam = Adam::new(1e-3);
        let mut p = params.as_slice().to_vec();
        let mut scaled = vec![0.0f32; n];
        let scale = 1.0 / 64.0f32;
        b.iter(|| {
            if reference {
                // Separate scaling pass, then the plain step.
                for (d, g) in scaled.iter_mut().zip(&grad) {
                    *d = g * scale;
                }
                adam.step(&mut p, &scaled);
            } else {
                adam.step_scaled(&mut p, &grad, scale);
            }
        });
    });

    // A full local-training round on a driving-scale branched policy: the
    // whole per-iteration path `runtime` executes, minus data sampling.
    let pspec = PolicySpec {
        input_dim: 64,
        trunk: vec![96, 64],
        n_branches: 4,
        waypoints: 4,
        skip_inputs: 2,
    };
    let mut prng = rand::rngs::StdRng::seed_from_u64(11);
    let policy = BranchedPolicy::new(&pspec, &mut prng);
    let owned: Vec<(Vec<f32>, usize, Vec<f32>, f32)> = (0..64)
        .map(|s| {
            let x: Vec<f32> =
                (0..64).map(|i| ((s * 13 + i * 5) % 89) as f32 / 89.0 - 0.5).collect();
            let t: Vec<f32> = (0..8).map(|i| ((s * 7 + i * 3) % 23) as f32 / 23.0).collect();
            (x, s % 4, t, 0.5 + (s % 5) as f32 * 0.3)
        })
        .collect();
    let batch: Vec<PolicySample<'_>> = owned
        .iter()
        .map(|(x, br, t, w)| PolicySample { input: x, branch: *br, target: t, weight: *w })
        .collect();
    c.bench_function("vnn/policy_train_round_b64", |b| {
        let mut scratch = TrainScratch::new();
        b.iter_batched(
            || (policy.clone(), Sgd::new(5e-3, 0.9, 1e-5)),
            |(mut pol, mut opt)| {
                if reference {
                    vnn::reference::policy_train_step(&mut pol, &mut opt, &batch)
                } else {
                    let n = batch.len();
                    let shards = scratch.shards_mut(n);
                    for (s, shard) in shards.iter_mut().enumerate() {
                        pol.train_shard(&batch[..], s * SHARD, shard);
                    }
                    let out = pol.reduce_shards(&mut scratch, n);
                    let inv = 1.0 / out.weight_sum;
                    opt.step_scaled(pol.params_mut().as_mut_slice(), scratch.grad(), inv);
                    out.loss_sum * inv
                }
            },
            BatchSize::SmallInput,
        );
    });
}

/// Two vehicles on converging straight routes, 60 s at 10 fps — enough
/// frames that encounter scans and contact estimation do real work.
fn crossing_trace() -> MobilityTrace {
    let frames = 600;
    let a: Vec<Vec2> = (0..frames)
        .map(|f| Vec2::new(f as f32 * 1.2, 0.0))
        .collect();
    let b: Vec<Vec2> = (0..frames)
        .map(|f| Vec2::new(700.0 - f as f32 * 1.2, 30.0))
        .collect();
    MobilityTrace::new(10.0, vec![a, b])
}

fn bench_simnet(c: &mut Criterion, opts: &SuiteOpts) {
    let reference = opts.reference;
    let ch = Channel::new(RadioConfig::default(), LossModel::distance_default());
    c.bench_function("simnet/channel_transfer_0.6MB", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        b.iter(|| ch.transfer(614_400, 100.0, |_| 150.0, &mut rng));
    });
    c.bench_function("simnet/trace_build_and_scan", |b| {
        b.iter(|| {
            let trace = crossing_trace();
            let active = [0usize, 1];
            let mut hits = 0usize;
            let mut t = 0.0;
            while t < trace.duration() {
                hits += trace.encounters_at(t, 150.0, &active).len();
                t += 1.0;
            }
            hits
        });
    });
    let trace = crossing_trace();
    let predictor =
        ContactPredictor::new(150.0, 3, LossModel::distance_default(), 10.0);
    // Sample the futures just before the crossing point so the predictor
    // walks a real in-range window instead of early-exiting.
    let route_a = trace.future(0, 25.0, 0.5, 60);
    let route_b = trace.future(1, 25.0, 0.5, 60);
    // `--reference` times the retained two-pass estimate the fused
    // single-pass version is proptested bit-identical against.
    c.bench_function("simnet/contact_estimate_60pt", |b| {
        if reference {
            b.iter(|| predictor.estimate_reference(&route_a, &route_b, 0.5));
        } else {
            b.iter(|| predictor.estimate(&route_a, &route_b, 0.5));
        }
    });
    // Encounter discovery at fleet scale: the spatial-hash grid against
    // the retained all-pairs sweep (`--reference`), over parked lattice
    // fleets where every node has a handful of radio neighbors. The two
    // arms return byte-identical encounter lists (pinned by proptest);
    // the diff is pure discovery cost — O(local density) vs O(n²).
    {
        let mut g = c.benchmark_group("simnet");
        g.sample_size(10);
        g.measurement_time(if opts.smoke {
            Duration::from_millis(80)
        } else {
            Duration::from_secs(4)
        });
        for (label, n) in [("encounters_1k", 1_000usize), ("encounters_10k", 10_000)] {
            let trace = grid_trace(n, 1.0);
            let active: Vec<usize> = (0..n).collect();
            g.bench_function(label, |b| {
                if reference {
                    b.iter(|| trace.encounters_at(0.25, 150.0, &active).len());
                } else {
                    let mut grid = EncounterGrid::new();
                    let mut out = Vec::new();
                    b.iter(|| {
                        grid.encounters_into(&trace, 0.25, 150.0, &active, &mut out);
                        out.len()
                    });
                }
            });
        }
        g.finish();
    }
    // The per-window bookkeeping of the shared medium under saturating
    // load: 64 contenders across 8 cells, 40 windows of share / collision
    // queries plus registration and booking — the serial portion of every
    // contention-mode transfer batch.
    c.bench_function("simnet/contention_step", |b| {
        let cfg = MediumConfig::default();
        b.iter(|| {
            let mut medium = Medium::new(cfg.clone());
            let mut acc = 0.0f64;
            for w in 0..40 {
                medium.advance_to(w as f64 * cfg.window_s);
                for k in 0..64 {
                    let cell = medium.cell_of(Vec2::new((k % 8) as f32 * cfg.cell_m, 0.0));
                    acc += medium.fair_share(cell) + medium.collision_per(cell) as f64;
                    medium.register(cell);
                    medium.book(cell, 0.003);
                }
            }
            acc
        });
    });
}

/// A minimal session protocol for runtime benches: one small exchange per
/// session plus a declining tail, so the timings isolate the scheduler
/// (matching, queue churn, session lifecycle) from learning costs.
struct ProbeAlgo {
    n: usize,
    params: ParamVec,
    /// Streaming payload bytes; sessions re-request while delivered.
    bytes: usize,
    greedy: bool,
    /// Opt out of every pairing (priority −∞): no session ever opens, so a
    /// run times frame matching — discovery, route sampling, estimation —
    /// in isolation.
    decline: bool,
}

impl CollabAlgorithm for ProbeAlgo {
    type Sample = ();
    type Session = u32;

    fn n_nodes(&self) -> usize {
        self.n
    }

    fn model(&self, _node: usize) -> &ParamVec {
        &self.params
    }

    fn local_training(
        &mut self,
        _node: usize,
        _iters: usize,
        _rng: &mut rand::rngs::StdRng,
    ) -> TrainStats {
        TrainStats::default()
    }

    fn session_open(&mut self, _ctx: &mut SessionCtx<'_>) -> Option<(u32, SessionStep)> {
        Some((0, SessionStep::Transfer(TransferSpec::link(self.bytes, 1e9))))
    }

    fn session_step(
        &mut self,
        sent: &mut u32,
        out: TransferOutcome,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        *sent += 1;
        ctx.metrics.record_coreset_send(out.is_delivered(), self.bytes, out.elapsed());
        if out.is_delivered() && (self.greedy || *sent < 2) {
            return SessionStep::Transfer(TransferSpec::link(self.bytes, 1e9));
        }
        SessionStep::Done
    }

    fn session_close(&mut self, _sent: u32, ctx: &mut SessionCtx<'_>) -> f64 {
        ctx.elapsed()
    }

    fn pair_priority(&self, _i: usize, _j: usize, _est: &simnet::contact::ContactEstimate) -> f64 {
        if self.decline {
            f64::NEG_INFINITY
        } else {
            0.0
        }
    }

    fn mean_eval_loss(&self, _eval: &[()]) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "probe"
    }
}

/// A parked grid fleet, 140 m spacing: every node has several radio
/// neighbors, so the matcher and the session lifecycle stay busy.
fn grid_trace(n: usize, seconds: f64) -> MobilityTrace {
    let fps = 2.0;
    let frames = (seconds * fps) as usize + 1;
    let cols = (n as f64).sqrt().ceil() as usize;
    let positions = (0..n)
        .map(|k| {
            let p = Vec2::new((k % cols) as f32 * 140.0, (k / cols) as f32 * 140.0);
            vec![p; frames]
        })
        .collect();
    MobilityTrace::new(fps, positions)
}

fn bench_runtime(c: &mut Criterion, opts: &SuiteOpts) {
    let reference = opts.reference;
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);
    g.measurement_time(if opts.smoke {
        Duration::from_millis(60)
    } else {
        Duration::from_secs(4)
    });
    // Event scheduler vs the retained frame loop over identical fleets:
    // under `--reference` these cells time `run_reference`, so the
    // baseline-vs-current diff is exactly the scheduler's overhead.
    for n in [32usize, 256] {
        let seconds = if n == 32 { 60.0 } else { 20.0 };
        let trace = grid_trace(n, seconds);
        let cfg = RuntimeConfig {
            duration: seconds,
            eval_every: seconds,
            pair_cooldown: 10.0,
            seed: 9,
            ..RuntimeConfig::default()
        };
        let rt = Runtime::new(cfg);
        g.bench_function(format!("event_loop_{n}nodes"), |b| {
            b.iter(|| {
                let mut algo =
                    ProbeAlgo { n, params: ParamVec::zeros(1), bytes: 20_000, greedy: false, decline: false };
                let run = if reference {
                    rt.run_reference(&mut algo, &trace, &[])
                } else {
                    rt.run(&mut algo, &trace, &[])
                };
                run.map_or(0, |m| m.sessions)
            });
        });
    }
    // Frame matching in isolation: a declining probe never opens a
    // session, and a zero pair cooldown means every frame re-runs full
    // encounter discovery, route sampling, and contact estimation over
    // the 256-node fleet. Both engines share the grid + route-cache
    // discovery path, so the `--reference` diff (frame loop vs event
    // scheduler) stays within noise like the other runtime/ cells.
    {
        let n = 256usize;
        let seconds = 20.0;
        let trace = grid_trace(n, seconds);
        let cfg = RuntimeConfig {
            duration: seconds,
            eval_every: seconds,
            pair_cooldown: 0.0,
            seed: 9,
            ..RuntimeConfig::default()
        };
        let rt = Runtime::new(cfg);
        g.bench_function("frame_match_256", |b| {
            b.iter(|| {
                let mut algo = ProbeAlgo {
                    n,
                    params: ParamVec::zeros(1),
                    bytes: 20_000,
                    greedy: false,
                    decline: true,
                };
                let run = if reference {
                    rt.run_reference(&mut algo, &trace, &[])
                } else {
                    rt.run(&mut algo, &trace, &[])
                };
                run.map_or(0, |m| m.train_iterations)
            });
        });
    }
    // Saturating contention: 16 isolated pairs stream unbounded payloads
    // through one shared medium cell — the windowed streaming hot path.
    // (Identical under `--reference`; the frame loop has no medium.)
    {
        let fps = 2.0;
        let seconds = 15.0;
        let frames = (seconds * fps) as usize + 1;
        let positions = (0..32)
            .map(|k| {
                let x = (k / 2) as f32 * 1500.0 + (k % 2) as f32 * 100.0;
                vec![Vec2::new(x, 0.0); frames]
            })
            .collect();
        let trace = MobilityTrace::new(fps, positions);
        let cfg = RuntimeConfig {
            duration: seconds,
            eval_every: seconds,
            pair_cooldown: 0.0,
            seed: 9,
            contention: Some(MediumConfig { cell_m: 100_000.0, ..MediumConfig::default() }),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::new(cfg);
        g.bench_function("contended_16pairs", |b| {
            b.iter(|| {
                let mut algo =
                    ProbeAlgo { n: 32, params: ParamVec::zeros(1), bytes: 2_000_000, greedy: true, decline: false };
                rt.run(&mut algo, &trace, &[]).map_or(0, |m| m.bytes_delivered)
            });
        });
    }
    g.finish();
}

/// A scenario small enough to re-run inside a bench iteration; the smoke
/// variant is smaller still so CI stays fast.
fn e2e_scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            n_vehicles: 2,
            n_background: 4,
            n_pedestrians: 10,
            data_seconds: 30.0,
            train_seconds: 60.0,
            eval_every: 60.0,
            eval_per_vehicle: 4,
            trials: 1,
            ..Scale::quick()
        }
    } else {
        Scale {
            n_vehicles: 3,
            n_background: 6,
            n_pedestrians: 20,
            data_seconds: 60.0,
            train_seconds: 180.0,
            eval_every: 90.0,
            eval_per_vehicle: 10,
            trials: 2,
            ..Scale::quick()
        }
    }
}

fn bench_e2e(c: &mut Criterion, opts: &SuiteOpts) {
    let s = Scenario::build(e2e_scale(opts.smoke));
    let mut g = c.benchmark_group("e2e");
    g.sample_size(3);
    g.measurement_time(if opts.smoke {
        Duration::from_millis(50)
    } else {
        Duration::from_secs(8)
    });
    g.bench_function("lbchat_quick_no_loss", |b| {
        b.iter(|| run_method(Method::LbChat, &s, Condition::NoLoss).map_or(0, |o| o.metrics.sessions));
    });
    g.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_narrows_to_matching_ids() {
        let opts = SuiteOpts {
            smoke: true,
            reference: false,
            filter: Some("solver".into()),
        };
        let results = run(&opts);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, "solver/eq7_solve");
    }

    #[test]
    fn reference_and_optimized_emit_identical_ids() {
        let base = SuiteOpts {
            smoke: true,
            reference: false,
            filter: Some("coreset".into()),
        };
        let reference = SuiteOpts { reference: true, ..base.clone() };
        let a: Vec<String> = run(&base).into_iter().map(|r| r.id).collect();
        let b: Vec<String> = run(&reference).into_iter().map(|r| r.id).collect();
        assert_eq!(a, b);
        assert!(a.contains(&"coreset/construct_10k_to_150".to_string()));
    }

    #[test]
    fn mode_and_implementation_strings() {
        let opts = SuiteOpts { smoke: true, reference: true, filter: None };
        assert_eq!(opts.mode(), "smoke");
        assert_eq!(opts.implementation(), "reference");
        let opts = SuiteOpts::default();
        assert_eq!(opts.mode(), "full");
        assert_eq!(opts.implementation(), "optimized");
    }
}
