//! Diffing two benchmark result files and flagging regressions.
//!
//! Rows are matched by benchmark id. The speedup of a row is
//! `old_mean / new_mean` (> 1 means the new run is faster). A row
//! *regresses* only when both the mean and the minimum slow down beyond
//! the noise threshold — wall-clock means are noisy under load, but the
//! minimum per-iteration time is a robust lower bound, so requiring both
//! (`new_mean > old_mean·(1+τ)` **and** `new_min > old_min·(1+τ/2)`)
//! suppresses scheduler-noise false positives while still catching real
//! slowdowns. The default threshold τ is [`DEFAULT_THRESHOLD`]; the policy
//! is documented in `docs/BENCHMARKS.md`.

use crate::results::{BenchRun, Entry};

/// Default noise threshold τ (fractional slowdown tolerated before a row
/// counts as a regression).
pub const DEFAULT_THRESHOLD: f64 = 0.20;

/// Verdict for one matched row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Faster than the old run beyond the threshold.
    Improved,
    /// Within the noise band.
    Unchanged,
    /// Slower beyond the threshold on both mean and min.
    Regressed,
}

/// One row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark id.
    pub id: String,
    /// Mean from the old run, nanoseconds.
    pub old_mean_ns: u64,
    /// Mean from the new run, nanoseconds.
    pub new_mean_ns: u64,
    /// `old_mean / new_mean`; > 1 is a speedup.
    pub speedup: f64,
    /// The verdict under the threshold policy.
    pub verdict: Verdict,
}

/// A full comparison of two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Matched rows, in the new run's order.
    pub rows: Vec<Row>,
    /// Ids present only in the old run (removed benchmarks).
    pub only_old: Vec<String>,
    /// Ids present only in the new run (new benchmarks).
    pub only_new: Vec<String>,
    /// The threshold the verdicts used.
    pub threshold: f64,
}

impl Report {
    /// Number of regressed rows.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regressed).count()
    }

    /// Whether the new run is acceptable (no regressions).
    pub fn clean(&self) -> bool {
        self.regressions() == 0
    }
}

/// Compares `new` against `old` under threshold `tau`.
pub fn compare(old: &BenchRun, new: &BenchRun, tau: f64) -> Report {
    let verdict = |o: &Entry, n: &Entry| -> Verdict {
        let mean_regressed = n.mean_ns as f64 > o.mean_ns as f64 * (1.0 + tau);
        let min_regressed = n.min_ns as f64 > o.min_ns as f64 * (1.0 + tau / 2.0);
        if mean_regressed && min_regressed {
            Verdict::Regressed
        } else if (n.mean_ns as f64) < o.mean_ns as f64 / (1.0 + tau) {
            Verdict::Improved
        } else {
            Verdict::Unchanged
        }
    };
    let rows = new
        .entries
        .iter()
        .filter_map(|n| {
            old.entry(&n.id).map(|o| Row {
                id: n.id.clone(),
                old_mean_ns: o.mean_ns,
                new_mean_ns: n.mean_ns,
                speedup: o.mean_ns as f64 / (n.mean_ns as f64).max(1.0),
                verdict: verdict(o, n),
            })
        })
        .collect();
    let only_old = old
        .entries
        .iter()
        .filter(|o| new.entry(&o.id).is_none())
        .map(|o| o.id.clone())
        .collect();
    let only_new = new
        .entries
        .iter()
        .filter(|n| old.entry(&n.id).is_none())
        .map(|n| n.id.clone())
        .collect();
    Report { rows, only_old, only_new, threshold: tau }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Renders the comparison as an aligned text table.
pub fn render(old: &BenchRun, new: &BenchRun, report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "comparing {} ({} / {}) -> {} ({} / {}), threshold {:.0}%\n\n",
        old.name,
        old.mode,
        old.implementation,
        new.name,
        new.mode,
        new.implementation,
        report.threshold * 100.0,
    ));
    out.push_str(&format!(
        "{:<44} {:>12} {:>12} {:>9}  {}\n",
        "benchmark", "old mean", "new mean", "speedup", "verdict"
    ));
    for row in &report.rows {
        let verdict = match row.verdict {
            Verdict::Improved => "improved",
            Verdict::Unchanged => "ok",
            Verdict::Regressed => "REGRESSED",
        };
        out.push_str(&format!(
            "{:<44} {:>12} {:>12} {:>8.2}x  {}\n",
            row.id,
            fmt_ns(row.old_mean_ns),
            fmt_ns(row.new_mean_ns),
            row.speedup,
            verdict
        ));
    }
    for id in &report.only_old {
        out.push_str(&format!("{id:<44} (only in old run)\n"));
    }
    for id in &report.only_new {
        out.push_str(&format!("{id:<44} (only in new run)\n"));
    }
    out.push_str(&format!(
        "\n{} rows compared, {} regressions\n",
        report.rows.len(),
        report.regressions()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::BenchRun;

    fn run(entries: &[(&str, u64, u64)]) -> BenchRun {
        BenchRun {
            name: "t".into(),
            mode: "smoke".into(),
            implementation: "optimized".into(),
            entries: entries
                .iter()
                .map(|&(id, mean, min)| Entry {
                    id: id.into(),
                    mean_ns: mean,
                    min_ns: min,
                    max_ns: mean * 2,
                    iters: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn self_diff_is_clean() {
        let a = run(&[("x", 1000, 900), ("y", 5000, 4500)]);
        let report = compare(&a, &a, DEFAULT_THRESHOLD);
        assert!(report.clean());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Unchanged));
        assert!(report.only_old.is_empty() && report.only_new.is_empty());
    }

    #[test]
    fn slowdown_on_mean_and_min_regresses() {
        let old = run(&[("x", 1000, 900)]);
        let new = run(&[("x", 1500, 1400)]);
        let report = compare(&old, &new, 0.20);
        assert_eq!(report.rows[0].verdict, Verdict::Regressed);
        assert_eq!(report.regressions(), 1);
        assert!(!report.clean());
    }

    #[test]
    fn noisy_mean_with_stable_min_does_not_regress() {
        // Mean blew past the threshold but the minimum held: load noise.
        let old = run(&[("x", 1000, 900)]);
        let new = run(&[("x", 1500, 905)]);
        let report = compare(&old, &new, 0.20);
        assert_eq!(report.rows[0].verdict, Verdict::Unchanged);
        assert!(report.clean());
    }

    #[test]
    fn speedup_is_reported_as_improved() {
        let old = run(&[("x", 3000, 2800)]);
        let new = run(&[("x", 1000, 950)]);
        let report = compare(&old, &new, 0.20);
        assert_eq!(report.rows[0].verdict, Verdict::Improved);
        assert!((report.rows[0].speedup - 3.0).abs() < 1e-9);
    }

    #[test]
    fn unmatched_ids_are_listed_not_compared() {
        let old = run(&[("gone", 1000, 900), ("kept", 1000, 900)]);
        let new = run(&[("kept", 1000, 900), ("added", 1000, 900)]);
        let report = compare(&old, &new, 0.20);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.only_old, vec!["gone".to_string()]);
        assert_eq!(report.only_new, vec!["added".to_string()]);
        let text = render(&old, &new, &report);
        assert!(text.contains("only in old run") && text.contains("only in new run"));
    }
}
