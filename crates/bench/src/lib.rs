//! The LbChat benchmark subsystem: deterministic micro/meso benchmarks
//! over every hot path the paper's pipeline executes, with machine-readable
//! results and regression diffing.
//!
//! * [`suite`] — the benchmark cells (coreset construct/reduce, peer
//!   valuation, compression + the Eq. (7) solver, BEV rasterization, MLP
//!   forward/backward/Adam, simnet channel + contact traces, and one
//!   end-to-end quick harness cell), runnable against the optimized hot
//!   paths or their pinned `reference` implementations.
//! * [`results`] — the `BENCH_<name>.json` result format (schema
//!   `lbchat-bench/v1`), written and parsed with the workspace's own JSON
//!   module, no third-party dependencies.
//! * [`report`] — diffs two result files and flags regressions beyond a
//!   noise threshold; the `bench_report` binary fronts it.
//!
//! Binaries: `cargo run --release -p lbchat-bench` runs the suite and
//! writes `results/bench/BENCH_<name>.json`; `bench_report OLD NEW`
//! compares two such files. `benches/micro.rs` and
//! `benches/paper_experiments.rs` remain the `cargo bench` entry points.
//! See `docs/BENCHMARKS.md` for the workflow and the threshold policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod results;
pub mod suite;
