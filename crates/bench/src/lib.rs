//! Bench-only crate; see `benches/`.
//!
//! * `benches/micro.rs` — component microbenches: Algorithm 1 coreset
//!   construction, merge-and-reduce, top-k sparsification, Akima fitting,
//!   the Eq. (7) solver, BEV rasterization, packetized channel transfers,
//!   and both Eq. (8) aggregation forms (the printed-vs-intended ablation).
//! * `benches/paper_experiments.rs` — one bench per paper table/figure:
//!   a reduced-scale slice of the exact pipeline the corresponding
//!   `experiments` binary runs at full length.

#![forbid(unsafe_code)]
