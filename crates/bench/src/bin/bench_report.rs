//! `bench_report`: diffs two `BENCH_<name>.json` files and flags
//! regressions beyond a noise threshold.
//!
//! ```text
//! cargo run -p lbchat-bench --bin bench_report -- OLD.json NEW.json
//!     [--threshold FRACTION] [--filter SUBSTR]
//! ```
//!
//! `--filter` restricts the comparison to ids containing the substring, so
//! CI can gate one subsystem (e.g. `--filter vnn/`) against a tighter
//! baseline without the noise of unrelated cells; it is an error if the
//! filter matches nothing in the new run. Exits 0 when no compared row
//! regresses, 1 otherwise (or on malformed input), so CI can gate on it
//! directly. The regression policy is documented in `lbchat_bench::report`
//! and `docs/BENCHMARKS.md`.

use lbchat_bench::report::{compare, render, DEFAULT_THRESHOLD};
use lbchat_bench::results::BenchRun;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: bench_report OLD.json NEW.json [--threshold FRACTION] [--filter SUBSTR]"
}

fn parse_args(argv: &[String]) -> Result<(PathBuf, PathBuf, f64, Option<String>), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut filter = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let raw = it.next().ok_or("--threshold needs a value")?;
                threshold = raw
                    .parse::<f64>()
                    .map_err(|_| format!("bad threshold `{raw}`"))?;
                if !(threshold.is_finite() && threshold >= 0.0) {
                    return Err(format!("threshold must be a non-negative number, got `{raw}`"));
                }
            }
            "--filter" => {
                filter = Some(it.next().ok_or("--filter needs a value")?.clone());
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    match <[PathBuf; 2]>::try_from(paths) {
        Ok([old, new]) => Ok((old, new, threshold, filter)),
        Err(_) => Err(usage().to_string()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path, threshold, filter) = match parse_args(&argv) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (mut old, mut new) =
        match (BenchRun::read_from(&old_path), BenchRun::read_from(&new_path)) {
            (Ok(old), Ok(new)) => (old, new),
            (old, new) => {
                for err in [old.err(), new.err()].into_iter().flatten() {
                    eprintln!("{err}");
                }
                return ExitCode::FAILURE;
            }
        };
    if let Some(f) = &filter {
        old.entries.retain(|e| e.id.contains(f.as_str()));
        new.entries.retain(|e| e.id.contains(f.as_str()));
        if new.entries.is_empty() {
            eprintln!("filter `{f}` matched no rows in {}", new_path.display());
            return ExitCode::FAILURE;
        }
    }
    if old.mode != new.mode {
        eprintln!(
            "warning: comparing a `{}` run against a `{}` run — absolute times are not comparable across modes",
            old.mode, new.mode
        );
    }
    let report = compare(&old, &new, threshold);
    print!("{}", render(&old, &new, &report));
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
