//! Component microbenches: the primitives every chat executes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lbchat::aggregate::{aggregate, AggregationRule};
use lbchat::compress::{compress_dense, top_k};
use lbchat::coreset::{construct, reduce, CoresetConfig};
use lbchat::optimize::CompressionProblem;
use lbchat::penalty::PenaltyConfig;
use lbchat::phi::{Akima, PhiCurve};
use lbchat::{Learner, WeightedDataset};
use rand::SeedableRng;
use simnet::channel::{Channel, RadioConfig};
use simnet::geom::Vec2;
use simnet::loss::LossModel;
use simworld::bev::{rasterize, BevConfig, Pose};
use simworld::world::{RoadRaster, World, WorldConfig};
use vnn::ParamVec;

/// A line-fitting learner: cheap per-sample losses isolate the machinery
/// under test from network-forward costs.
#[derive(Debug, Clone)]
struct Line(ParamVec);

#[derive(Debug, Clone, Copy)]
struct Pt(f32, f32);

impl Learner for Line {
    type Sample = Pt;
    fn params(&self) -> &ParamVec {
        &self.0
    }
    fn set_params(&mut self, p: ParamVec) {
        self.0 = p;
    }
    fn loss(&self, s: &Pt) -> f32 {
        self.loss_with(&self.0, s)
    }
    fn loss_with(&self, p: &ParamVec, s: &Pt) -> f32 {
        let w = p.as_slice();
        let r = w[0] * s.0 + w[1] - s.1;
        r * r
    }
    fn train_step(&mut self, _b: &[(&Pt, f32)]) -> f32 {
        0.0
    }
    fn group_of(&self, _s: &Pt) -> usize {
        0
    }
    fn n_groups(&self) -> usize {
        1
    }
}

fn dataset(n: usize) -> WeightedDataset<Pt> {
    WeightedDataset::uniform(
        (0..n)
            .map(|i| Pt(i as f32 / n as f32, (i % 17) as f32 / 17.0))
            .collect(),
    )
}

fn bench_coreset(c: &mut Criterion) {
    let learner = Line(ParamVec::from_vec(vec![1.0, 0.0]));
    let data = dataset(10_000);
    c.bench_function("micro_coreset_construct_10k_to_150", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| construct(&learner, &data, &CoresetConfig { size: 150 }, &mut rng));
    });
    let big = construct(
        &learner,
        &data,
        &CoresetConfig { size: 300 },
        &mut rand::rngs::StdRng::seed_from_u64(2),
    );
    c.bench_function("micro_coreset_merge_reduce", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter_batched(
            || (big.clone(), big.clone()),
            |(a, bb)| reduce(a.merge(bb), 150, &mut rng),
            BatchSize::SmallInput,
        );
    });
}

fn bench_compress(c: &mut Criterion) {
    // A parameter vector sized like our driving policy.
    let params = ParamVec::from_vec(
        (0..25_000).map(|i| ((i * 37) % 101) as f32 / 50.0 - 1.0).collect(),
    );
    c.bench_function("micro_topk_25k_params_psi_0.1", |b| {
        b.iter(|| top_k(&params, 0.1));
    });
    c.bench_function("micro_topk_densify_25k", |b| {
        b.iter(|| compress_dense(&params, 0.3));
    });
}

fn bench_phi_and_solver(c: &mut Criterion) {
    let xs: Vec<f64> = vec![0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];
    let ys: Vec<f64> = xs.iter().map(|x| 2.0 - x * 1.5).collect();
    c.bench_function("micro_akima_fit_eval", |b| {
        b.iter(|| {
            let a = Akima::fit(&xs, &ys);
            let mut acc = 0.0;
            for k in 0..100 {
                acc += a.eval(k as f64 / 100.0);
            }
            acc
        });
    });
    let phi = PhiCurve::from_points(
        vec![0.02, 0.1, 0.3, 0.6, 1.0],
        vec![2.0, 1.6, 1.1, 0.7, 0.5],
    );
    let problem = CompressionProblem {
        phi_i: &phi,
        phi_j: &phi,
        loss_j_on_ci: 3.0,
        loss_i_on_cj: 2.0,
        model_bytes: 52 * 1024 * 1024,
        bandwidth_bps: 31e6,
        time_budget: 15.0,
        contact: 40.0,
        lambda_c: 0.01,
    };
    c.bench_function("micro_eq7_solver", |b| b.iter(|| problem.solve()));
}

fn bench_phi_sampling(c: &mut Criterion) {
    let learner = Line(ParamVec::from_vec(vec![1.0, 0.0]));
    let data = dataset(5_000);
    let coreset = construct(
        &learner,
        &data,
        &CoresetConfig { size: 150 },
        &mut rand::rngs::StdRng::seed_from_u64(4),
    );
    c.bench_function("micro_phi_sampling_150_coreset", |b| {
        b.iter(|| {
            PhiCurve::sample(
                &learner,
                &coreset,
                lbchat::phi::DEFAULT_PSI_GRID,
                &PenaltyConfig::none(),
            )
        });
    });
}

fn bench_aggregate(c: &mut Criterion) {
    let a = ParamVec::from_vec((0..25_000).map(|i| i as f32 / 25_000.0).collect());
    let b_ = ParamVec::from_vec((0..25_000).map(|i| 1.0 - i as f32 / 25_000.0).collect());
    // The Eq. (8) printed-vs-intended ablation, side by side.
    c.bench_function("ablation_eq8_inverse_loss", |bch| {
        bch.iter(|| aggregate(&a, 1.0, &b_, 2.0, AggregationRule::InverseLoss));
    });
    c.bench_function("ablation_eq8_as_printed", |bch| {
        bch.iter(|| aggregate(&a, 1.0, &b_, 2.0, AggregationRule::AsPrinted));
    });
}

fn bench_bev(c: &mut Criterion) {
    let world = World::new(WorldConfig::small(1));
    let raster: &RoadRaster = world.raster();
    let cfg = BevConfig::default();
    let cars: Vec<Vec2> = world.car_positions();
    let peds: Vec<Vec2> = world.pedestrian_positions();
    let pose = Pose { pos: Vec2::new(300.0, 300.0), heading: 0.5 };
    c.bench_function("micro_bev_rasterize", |b| {
        b.iter(|| rasterize(&cfg, pose, 8.0, raster, &cars, &peds, &[]));
    });
}

fn bench_channel(c: &mut Criterion) {
    let ch = Channel::new(RadioConfig::default(), LossModel::distance_default());
    c.bench_function("micro_channel_transfer_coreset_0.6MB", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        b.iter(|| ch.transfer(614_400, 100.0, |_| 150.0, &mut rng));
    });
    c.bench_function("micro_channel_transfer_model_5.2MB", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        b.iter(|| ch.transfer(5 * 1024 * 1024, 100.0, |_| 150.0, &mut rng));
    });
}

criterion_group!(
    micro,
    bench_coreset,
    bench_compress,
    bench_phi_and_solver,
    bench_phi_sampling,
    bench_aggregate,
    bench_bev,
    bench_channel
);
criterion_main!(micro);
