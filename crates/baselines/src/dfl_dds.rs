//! DFL-DDS (Su, Zhou, Cui — "Boost decentralized federated learning in
//! vehicular networks by diversifying data sources", ICNP 2022), adapted as
//! in §IV-B.
//!
//! A synchronous, fully decentralized method: training proceeds in rounds
//! (length set to LbChat's `T_B` "for a fair comparison"); at most one
//! exchange per vehicle per round. Each vehicle tracks a *data-source
//! vector* — how much of each peer's data shaped its current model — and
//! weights incoming models to diversify those sources (a peer whose model
//! carries sources I lack gets more weight). Per §IV-B, vehicles "compute a
//! model compression ratio for each encounter to ensure the vehicle pair
//! can finish the model exchange within the contact duration".

use crate::node::{mean_eval_loss, BaseNode};
use lbchat::optimize::equal_compression_choice;
use lbchat::prelude::{
    CollabAlgorithm, FrameCtx, Learner, SessionCtx, SessionStep, TransferOutcome, TransferSpec,
};
use lbchat::WeightedDataset;
use vnn::ParamVec;

/// DFL-DDS configuration.
#[derive(Debug, Clone)]
pub struct DflDdsConfig {
    /// Round length in seconds (the paper sets it to `T_B` = 15 s).
    pub round_seconds: f64,
    /// Dense model wire size.
    pub model_bytes: usize,
    /// Base aggregation weight for an incoming model before the diversity
    /// boost.
    pub base_weight: f32,
    /// Batch size for local training.
    pub batch_size: usize,
}

impl Default for DflDdsConfig {
    fn default() -> Self {
        Self {
            round_seconds: 15.0,
            model_bytes: 52 * 1024 * 1024,
            base_weight: 0.35,
            batch_size: 64,
        }
    }
}

/// Blends `peer` into `local` with weight `w` only on the peer's
/// transmitted support (non-zero components of the densified top-k model) —
/// the standard way sparsified models are applied.
fn merge_on_support(local: &ParamVec, peer: &ParamVec, w: f32) -> ParamVec {
    let data = local
        .as_slice()
        .iter()
        .zip(peer.as_slice())
        .map(|(l, p)| if *p == 0.0 { *l } else { (1.0 - w) * l + w * p })
        .collect();
    ParamVec::from_vec(data)
}

/// Which directed model transfer a DFL-DDS session is waiting on.
enum DdsPhase {
    /// `i → j` model in flight.
    ModelIJ,
    /// `j → i` model in flight.
    ModelJI,
}

/// In-flight state of one DFL-DDS round exchange.
pub struct DdsSession {
    phase: DdsPhase,
    /// Compressed wire size used for both directions.
    bytes: usize,
    /// Contact-fitted compression ratios.
    psi_i: f32,
    psi_j: f32,
    /// Model received by `j` (i.e. `i`'s compressed model), if delivered.
    model_i: Option<ParamVec>,
    /// Model received by `i` (i.e. `j`'s compressed model), if delivered.
    model_j: Option<ParamVec>,
}

/// The synchronous decentralized baseline with data-source diversification.
pub struct DflDds<L: Learner> {
    nodes: Vec<BaseNode<L>>,
    /// `sources[i]` — normalized contribution of each vehicle's data to
    /// node `i`'s model.
    sources: Vec<Vec<f32>>,
    /// Round id of each node's last exchange (one exchange per round).
    last_round: Vec<u64>,
    config: DflDdsConfig,
    current_round: u64,
}

impl<L: Learner> DflDds<L> {
    /// Builds the fleet.
    ///
    /// # Panics
    /// Panics if `learners` and `datasets` lengths differ or are empty.
    pub fn new(
        learners: Vec<L>,
        datasets: Vec<WeightedDataset<L::Sample>>,
        config: DflDdsConfig,
    ) -> Self {
        assert_eq!(learners.len(), datasets.len(), "one dataset per learner");
        assert!(!learners.is_empty(), "need at least one vehicle");
        let n = learners.len();
        // Initially each model is built purely from its own data source.
        let sources = (0..n)
            .map(|i| {
                let mut v = vec![0.0f32; n];
                v[i] = 1.0;
                v
            })
            .collect();
        let nodes = learners
            .into_iter()
            .zip(datasets)
            .map(|(l, d)| BaseNode::new(l, d, config.batch_size))
            .collect();
        Self { nodes, sources, last_round: vec![u64::MAX; n], config, current_round: 0 }
    }

    /// The data-source mix of node `i` (tests / inspection).
    pub fn sources(&self, i: usize) -> &[f32] {
        &self.sources[i]
    }

    /// Diversity gain of absorbing `peer`'s mix into `own`: total variation
    /// distance between the mixes — high when the peer's model is built
    /// from sources I lack.
    fn diversity_gain(own: &[f32], peer: &[f32]) -> f32 {
        own.iter().zip(peer).map(|(a, b)| (a - b).abs()).sum::<f32>() * 0.5
    }
}

impl<L: Learner> CollabAlgorithm for DflDds<L> {
    type Sample = L::Sample;
    type Session = DdsSession;

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn model(&self, node: usize) -> &ParamVec {
        self.nodes[node].learner.params()
    }

    fn local_training(
        &mut self,
        node: usize,
        iters: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> lbchat::TrainStats {
        for _ in 0..iters {
            self.nodes[node].local_iteration(rng);
        }
        self.nodes[node].learner.take_train_stats()
    }

    fn on_frame(&mut self, ctx: &mut FrameCtx<'_>) {
        // Advance the global round counter (synchronous rounds).
        self.current_round = (ctx.time / self.config.round_seconds) as u64;
    }

    fn session_open(&mut self, ctx: &mut SessionCtx<'_>) -> Option<(DdsSession, SessionStep)> {
        let (i, j) = (ctx.i, ctx.j);
        // Synchronous gating: one exchange per node per round.
        let round = self.current_round;
        if self.last_round[i] == round || self.last_round[j] == round {
            return None;
        }
        self.last_round[i] = round;
        self.last_round[j] = round;

        // Contact-fitted equal compression (per §IV-B's adaptation).
        let contact = ctx.contact().duration;
        let choice = equal_compression_choice(
            self.config.model_bytes,
            31e6,
            self.config.round_seconds,
            contact,
        );
        if choice.psi_i <= 0.0 {
            return None;
        }
        let bytes = ctx.codec().wire_bytes(self.config.model_bytes, choice.psi_i);
        let limit = self.config.round_seconds.min(contact);

        // i → j.
        // Sized to fit min(T_B, contact) at nominal bandwidth, but the pair
        // keeps transmitting while still in range — failures come from the
        // contact actually ending (or retransmission storms), not from an
        // artificial cutoff.
        let deadline =
            (contact - ctx.elapsed()).max(limit - ctx.elapsed()).max(0.0);
        let state = DdsSession {
            phase: DdsPhase::ModelIJ,
            bytes,
            psi_i: choice.psi_i,
            psi_j: choice.psi_j,
            model_i: None,
            model_j: None,
        };
        Some((state, SessionStep::Transfer(TransferSpec::link(bytes, deadline))))
    }

    fn session_step(
        &mut self,
        state: &mut DdsSession,
        out: TransferOutcome,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        let (i, j) = (ctx.i, ctx.j);
        match state.phase {
            DdsPhase::ModelIJ => {
                ctx.metrics.record_model_send(out.is_delivered(), state.bytes, out.elapsed());
                state.model_i = out.is_delivered().then(|| {
                    let codec = ctx.codec();
                    codec.apply(self.nodes[i].learner.params(), state.psi_i, ctx.rng())
                });
                // j → i.
                state.phase = DdsPhase::ModelJI;
                let deadline = (ctx.contact().duration - ctx.elapsed()).max(0.0);
                SessionStep::Transfer(TransferSpec::link(state.bytes, deadline))
            }
            DdsPhase::ModelJI => {
                ctx.metrics.record_model_send(out.is_delivered(), state.bytes, out.elapsed());
                state.model_j = out.is_delivered().then(|| {
                    let codec = ctx.codec();
                    codec.apply(self.nodes[j].learner.params(), state.psi_j, ctx.rng())
                });
                SessionStep::Done
            }
        }
    }

    fn session_close(&mut self, state: DdsSession, ctx: &mut SessionCtx<'_>) -> f64 {
        let (i, j) = (ctx.i, ctx.j);
        let DdsSession { model_i, model_j, .. } = state;
        // Aggregate with diversity-boosted weights and update source mixes.
        if let Some(m) = model_j {
            let gain = Self::diversity_gain(&self.sources[i], &self.sources[j]);
            let w = (self.config.base_weight * (0.5 + gain)).clamp(0.05, 0.8);
            let merged = merge_on_support(self.nodes[i].learner.params(), &m, w);
            self.nodes[i].learner.set_params(merged);
            self.nodes[i].learner.on_params_replaced();
            let (si, sj) = if i < j {
                let (a, b) = self.sources.split_at_mut(j);
                (&mut a[i], &b[0])
            } else {
                let (a, b) = self.sources.split_at_mut(i);
                (&mut b[0], &a[j])
            };
            for (a, b) in si.iter_mut().zip(sj) {
                *a = (1.0 - w) * *a + w * b;
            }
        }
        if let Some(m) = model_i {
            let gain = Self::diversity_gain(&self.sources[j], &self.sources[i]);
            let w = (self.config.base_weight * (0.5 + gain)).clamp(0.05, 0.8);
            let merged = merge_on_support(self.nodes[j].learner.params(), &m, w);
            self.nodes[j].learner.set_params(merged);
            self.nodes[j].learner.on_params_replaced();
            let (sj, si) = if j < i {
                let (a, b) = self.sources.split_at_mut(i);
                (&mut a[j], &b[0])
            } else {
                let (a, b) = self.sources.split_at_mut(j);
                (&mut b[0], &a[i])
            };
            for (a, b) in sj.iter_mut().zip(si) {
                *a = (1.0 - w) * *a + w * b;
            }
        }
        ctx.elapsed()
    }

    fn mean_eval_loss(&self, eval: &[L::Sample]) -> f64 {
        mean_eval_loss(&self.nodes, eval)
    }

    fn name(&self) -> &'static str {
        "DFL-DDS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::testutil::{line_data, LineLearner};
    use lbchat::prelude::{Runtime, RuntimeConfig};
    use simnet::geom::Vec2;
    use simnet::trace::MobilityTrace;

    fn fleet(n: usize) -> DflDds<LineLearner> {
        let learners = vec![LineLearner::new(); n];
        let datasets: Vec<_> = (0..n)
            .map(|i| WeightedDataset::uniform(line_data(i as f32 - 0.5, 0.0, 200)))
            .collect();
        DflDds::new(learners, datasets, DflDdsConfig {
            model_bytes: 4 * 1024 * 1024,
            ..DflDdsConfig::default()
        })
    }

    fn parked_pair(seconds: f64) -> MobilityTrace {
        let frames = (seconds * 2.0) as usize + 1;
        MobilityTrace::new(
            2.0,
            vec![vec![Vec2::ZERO; frames], vec![Vec2::new(60.0, 0.0); frames]],
        )
    }

    #[test]
    fn exchanges_mix_sources() {
        let mut algo = fleet(2);
        let trace = parked_pair(300.0);
        let eval = line_data(0.0, 0.0, 20);
        let runtime =
            Runtime::new(RuntimeConfig { duration: 300.0, ..RuntimeConfig::default() });
        let m = runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        assert!(m.model_receives > 0, "parked pair must exchange");
        // Node 0's source mix should now include node 1.
        assert!(algo.sources(0)[1] > 0.05, "{:?}", algo.sources(0));
        let sum: f32 = algo.sources(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "mix stays normalized: {sum}");
    }

    #[test]
    fn diversity_gain_math() {
        assert_eq!(DflDds::<LineLearner>::diversity_gain(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(DflDds::<LineLearner>::diversity_gain(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn one_exchange_per_round() {
        let mut algo = fleet(2);
        let trace = parked_pair(16.0);
        let eval = line_data(0.0, 0.0, 5);
        // Run exactly one round with zero cooldown: the round gate (not the
        // runtime cooldown) must limit exchanges.
        let runtime = Runtime::new(RuntimeConfig {
            duration: 14.0,
            pair_cooldown: 0.0,
            ..RuntimeConfig::default()
        });
        let m = runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        assert!(
            m.model_sends <= 2,
            "a single round allows one bidirectional exchange: {}",
            m.model_sends
        );
    }
}
