//! Shared plain-SGD vehicle node for the model-sharing-only baselines.

use lbchat::prelude::Learner;
use lbchat::WeightedDataset;
use rand::Rng;
use vnn::Minibatcher;

/// One vehicle in a baseline method: a learner and its fixed local dataset
/// (baselines never absorb peer data — they exchange models only).
pub struct BaseNode<L: Learner> {
    /// The local learner.
    pub learner: L,
    dataset: WeightedDataset<L::Sample>,
    batcher: Minibatcher,
    /// Held-out tail of the local data used as a validation set by methods
    /// that weight by validation loss (DP).
    validation_from: usize,
}

impl<L: Learner> BaseNode<L> {
    /// Creates a node; the last `validation_frac` of the dataset is held
    /// out as the local validation set.
    pub fn new(learner: L, dataset: WeightedDataset<L::Sample>, batch_size: usize) -> Self {
        let n = dataset.len();
        let validation_from = n - (n / 10).min(200); // last 10 %, capped
        let batcher = Minibatcher::new(validation_from, batch_size);
        Self { learner, dataset, batcher, validation_from }
    }

    /// The local dataset (training + validation).
    pub fn dataset(&self) -> &WeightedDataset<L::Sample> {
        &self.dataset
    }

    /// One minibatch SGD iteration on the training split.
    pub fn local_iteration<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f32 {
        let idx = self.batcher.next_batch(rng);
        if idx.is_empty() {
            return 0.0;
        }
        let batch: Vec<(&L::Sample, f32)> = idx
            .iter()
            .map(|&i| (self.dataset.sample(i), self.dataset.weight(i)))
            .collect();
        self.learner.train_step(&batch)
    }

    /// Mean loss of an arbitrary parameter vector on the validation split.
    pub fn validation_loss(&self, params: &vnn::ParamVec) -> f32 {
        let n = self.dataset.len();
        if self.validation_from >= n {
            return 0.0;
        }
        let mut acc = 0.0f64;
        for i in self.validation_from..n {
            acc += self.learner.loss_with(params, self.dataset.sample(i)) as f64;
        }
        (acc / (n - self.validation_from) as f64) as f32
    }
}

/// Mean eval loss across nodes — every baseline reports the same statistic
/// as LbChat.
pub fn mean_eval_loss<L: Learner>(nodes: &[BaseNode<L>], eval: &[L::Sample]) -> f64 {
    if eval.is_empty() || nodes.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for node in nodes {
        let mut acc = 0.0f64;
        for s in eval {
            acc += node.learner.loss(s) as f64;
        }
        total += acc / eval.len() as f64;
    }
    total / nodes.len() as f64
}

#[cfg(test)]
pub(crate) mod testutil {
    //! The same analytic line-fitting learner the core crate tests with.

    use lbchat::Learner;
    use vnn::ParamVec;

    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Pt {
        pub x: f32,
        pub y: f32,
    }

    #[derive(Debug, Clone)]
    pub struct LineLearner {
        pub params: ParamVec,
        pub lr: f32,
    }

    impl LineLearner {
        pub fn new() -> Self {
            Self { params: ParamVec::from_vec(vec![0.0, 0.0]), lr: 0.05 }
        }
    }

    impl Learner for LineLearner {
        type Sample = Pt;
        fn params(&self) -> &ParamVec {
            &self.params
        }
        fn set_params(&mut self, params: ParamVec) {
            assert_eq!(params.len(), 2);
            self.params = params;
        }
        fn loss(&self, s: &Pt) -> f32 {
            self.loss_with(&self.params, s)
        }
        fn loss_with(&self, p: &ParamVec, s: &Pt) -> f32 {
            let w = p.as_slice();
            let r = w[0] * s.x + w[1] - s.y;
            r * r
        }
        fn train_step(&mut self, batch: &[(&Pt, f32)]) -> f32 {
            if batch.is_empty() {
                return 0.0;
            }
            let w = self.params.as_slice();
            let (mut ga, mut gb, mut loss, mut wsum) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (s, wt) in batch {
                let r = w[0] * s.x + w[1] - s.y;
                ga += wt * 2.0 * r * s.x;
                gb += wt * 2.0 * r;
                loss += wt * r * r;
                wsum += wt;
            }
            let inv = 1.0 / wsum;
            let p = self.params.as_mut_slice();
            p[0] -= self.lr * ga * inv;
            p[1] -= self.lr * gb * inv;
            loss * inv
        }
        fn group_of(&self, _s: &Pt) -> usize {
            0
        }
        fn n_groups(&self) -> usize {
            1
        }
    }

    pub fn line_data(a: f32, b: f32, n: usize) -> Vec<Pt> {
        (0..n)
            .map(|i| {
                let x = (i as f32 / n as f32) * 4.0 - 2.0;
                Pt { x, y: a * x + b }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn node_trains() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let data = WeightedDataset::uniform(line_data(2.0, 1.0, 300));
        let mut node = BaseNode::new(LineLearner::new(), data, 32);
        let first = node.local_iteration(&mut rng);
        for _ in 0..300 {
            node.local_iteration(&mut rng);
        }
        let last = node.local_iteration(&mut rng);
        assert!(last < first * 0.1, "{first} -> {last}");
    }

    #[test]
    fn validation_loss_uses_holdout() {
        let data = WeightedDataset::uniform(line_data(1.0, 0.0, 100));
        let node = BaseNode::new(LineLearner::new(), data, 32);
        // Zero model on y = x: squared error averaged over held-out xs.
        let v = node.validation_loss(&vnn::ParamVec::from_vec(vec![0.0, 0.0]));
        assert!(v > 0.0);
        // The true model has zero loss.
        let v2 = node.validation_loss(&vnn::ParamVec::from_vec(vec![1.0, 0.0]));
        assert!(v2 < 1e-9);
    }

    #[test]
    fn mean_eval_loss_averages() {
        let data = WeightedDataset::uniform(line_data(1.0, 0.0, 50));
        let nodes = vec![
            BaseNode::new(LineLearner::new(), data.clone(), 16),
            BaseNode::new(LineLearner::new(), data, 16),
        ];
        let eval = line_data(1.0, 0.0, 10);
        let m = mean_eval_loss(&nodes, &eval);
        assert!(m > 0.0);
    }
}
