//! # baselines — the benchmark methods of §IV-B
//!
//! Re-implementations of the four methods the paper compares LbChat
//! against, adapted exactly as §IV-B describes and run on the same
//! [`lbchat::runtime`] (same trace, radio, clock, and evaluation):
//!
//! * [`ProxSkip`] — central-server federated learning with probabilistic
//!   communication skipping and control variates (Mishchenko et al., ICML
//!   2022). Backend bandwidth unconstrained; under wireless loss each
//!   message draws a loss uniformly from the lookup table.
//! * [`RsuL`] — road-side-unit opportunistic learning (Xu et al., TMC
//!   2023): RSUs at road crossings hold models, aggregate uploads, and send
//!   the result back. Backend unconstrained, same message-loss model.
//! * [`DflDds`] — synchronous fully decentralized learning that diversifies
//!   data sources (Su et al., ICNP 2022): vehicles track where their model
//!   mass came from and weight peers that bring underrepresented sources.
//!   Rounds are `T_B`-long; per-encounter compression is fitted to the
//!   contact so exchanges can complete ("for a fair comparison").
//! * [`Dp`] — Decentralized Powerloss gossip learning (Dinani et al., TMC
//!   2023): merge weights from a normalized logarithmic function of
//!   validation loss; fitted compression, like DFL-DDS.
//!
//! All methods share [`node::BaseNode`] for plain local SGD training —
//! none of them exchanges training data, which is precisely the paper's
//! point of comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfl_dds;
pub mod dp;
pub mod node;
pub mod proxskip;
pub mod rsul;

pub use dfl_dds::DflDds;
pub use dp::Dp;
pub use proxskip::ProxSkip;
pub use rsul::RsuL;
