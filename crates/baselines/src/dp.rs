//! Decentralized Powerloss (DP) gossip learning (Dinani, Holzer, Nguyen,
//! Marsan, Rizzo — "A gossip learning approach to urban trajectory
//! nowcasting for anticipatory RAN management", IEEE TMC 2023), adapted as
//! in §IV-B.
//!
//! Pure gossip: on every encounter vehicles exchange (contact-fitted
//! compressed) models and merge, deriving the aggregation weight "from a
//! normalized logarithmic function of the loss" evaluated on the local
//! validation dataset — a lower-loss peer model earns a larger share.

use crate::node::{mean_eval_loss, BaseNode};
use lbchat::optimize::equal_compression_choice;
use lbchat::prelude::{
    CollabAlgorithm, Learner, SessionCtx, SessionStep, TransferOutcome, TransferSpec,
};
use lbchat::WeightedDataset;
use vnn::ParamVec;

/// DP configuration.
#[derive(Debug, Clone)]
pub struct DpConfig {
    /// Dense model wire size.
    pub model_bytes: usize,
    /// Exchange time budget per encounter (seconds).
    pub time_budget: f64,
    /// Batch size for local training.
    pub batch_size: usize,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self { model_bytes: 52 * 1024 * 1024, time_budget: 15.0, batch_size: 64 }
    }
}

/// Blends `peer` into `local` with weight `w` only on the peer's
/// transmitted support (non-zero components of the densified top-k model).
fn merge_on_support(local: &ParamVec, peer: &ParamVec, w: f32) -> ParamVec {
    let data = local
        .as_slice()
        .iter()
        .zip(peer.as_slice())
        .map(|(l, p)| if *p == 0.0 { *l } else { (1.0 - w) * l + w * p })
        .collect();
    ParamVec::from_vec(data)
}

/// The gossip-learning baseline.
pub struct Dp<L: Learner> {
    nodes: Vec<BaseNode<L>>,
    config: DpConfig,
}

/// Which directed model transfer a DP session is waiting on.
enum DpPhase {
    /// `i → j` model in flight.
    ModelIJ,
    /// `j → i` model in flight.
    ModelJI,
}

/// In-flight state of one DP gossip session.
pub struct DpSession {
    phase: DpPhase,
    /// Compressed wire size used for both directions.
    bytes: usize,
    /// Contact-fitted compression ratios.
    psi_i: f32,
    psi_j: f32,
    /// Model received by `j` (i.e. `i`'s compressed model), if delivered.
    model_i: Option<ParamVec>,
    /// Model received by `i` (i.e. `j`'s compressed model), if delivered.
    model_j: Option<ParamVec>,
}

impl<L: Learner> Dp<L> {
    /// Builds the fleet.
    ///
    /// # Panics
    /// Panics if `learners` and `datasets` lengths differ or are empty.
    pub fn new(
        learners: Vec<L>,
        datasets: Vec<WeightedDataset<L::Sample>>,
        config: DpConfig,
    ) -> Self {
        assert_eq!(learners.len(), datasets.len(), "one dataset per learner");
        assert!(!learners.is_empty(), "need at least one vehicle");
        let nodes = learners
            .into_iter()
            .zip(datasets)
            .map(|(l, d)| BaseNode::new(l, d, config.batch_size))
            .collect();
        Self { nodes, config }
    }

    /// The DP merge weight for a received model: normalized logarithmic
    /// loss, giving the *lower-loss* model the larger share:
    /// `w_peer = log(1 + L_own) / (log(1 + L_own) + log(1 + L_peer))`.
    pub fn merge_weight(own_loss: f32, peer_loss: f32) -> f32 {
        let a = (1.0 + own_loss.max(0.0)).ln();
        let b = (1.0 + peer_loss.max(0.0)).ln();
        if a + b <= 0.0 {
            0.5
        } else {
            a / (a + b)
        }
    }
}

impl<L: Learner> CollabAlgorithm for Dp<L> {
    type Sample = L::Sample;
    type Session = DpSession;

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn model(&self, node: usize) -> &ParamVec {
        self.nodes[node].learner.params()
    }

    fn local_training(
        &mut self,
        node: usize,
        iters: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> lbchat::TrainStats {
        for _ in 0..iters {
            self.nodes[node].local_iteration(rng);
        }
        self.nodes[node].learner.take_train_stats()
    }

    fn session_open(&mut self, ctx: &mut SessionCtx<'_>) -> Option<(DpSession, SessionStep)> {
        let contact = ctx.contact().duration;
        let choice = equal_compression_choice(
            self.config.model_bytes,
            31e6,
            self.config.time_budget,
            contact,
        );
        if choice.psi_i <= 0.0 {
            return None;
        }
        let bytes = ctx.codec().wire_bytes(self.config.model_bytes, choice.psi_i);
        let limit = self.config.time_budget.min(contact);

        // Sized to fit min(T_B, contact) at nominal bandwidth, but the pair
        // keeps transmitting while still in range — failures come from the
        // contact actually ending (or retransmission storms), not from an
        // artificial cutoff.
        let deadline =
            (contact - ctx.elapsed()).max(limit - ctx.elapsed()).max(0.0);
        let state = DpSession {
            phase: DpPhase::ModelIJ,
            bytes,
            psi_i: choice.psi_i,
            psi_j: choice.psi_j,
            model_i: None,
            model_j: None,
        };
        Some((state, SessionStep::Transfer(TransferSpec::link(bytes, deadline))))
    }

    fn session_step(
        &mut self,
        state: &mut DpSession,
        out: TransferOutcome,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        let (i, j) = (ctx.i, ctx.j);
        match state.phase {
            DpPhase::ModelIJ => {
                ctx.metrics.record_model_send(out.is_delivered(), state.bytes, out.elapsed());
                state.model_i = out.is_delivered().then(|| {
                    let codec = ctx.codec();
                    codec.apply(self.nodes[i].learner.params(), state.psi_i, ctx.rng())
                });
                state.phase = DpPhase::ModelJI;
                let deadline = (ctx.contact().duration - ctx.elapsed()).max(0.0);
                SessionStep::Transfer(TransferSpec::link(state.bytes, deadline))
            }
            DpPhase::ModelJI => {
                ctx.metrics.record_model_send(out.is_delivered(), state.bytes, out.elapsed());
                state.model_j = out.is_delivered().then(|| {
                    let codec = ctx.codec();
                    codec.apply(self.nodes[j].learner.params(), state.psi_j, ctx.rng())
                });
                SessionStep::Done
            }
        }
    }

    fn session_close(&mut self, state: DpSession, ctx: &mut SessionCtx<'_>) -> f64 {
        let (i, j) = (ctx.i, ctx.j);
        if let Some(m) = state.model_j {
            let own = self.nodes[i].validation_loss(self.nodes[i].learner.params());
            let peer = self.nodes[i].validation_loss(&m);
            let w_peer = Self::merge_weight(own, peer);
            let merged = merge_on_support(self.nodes[i].learner.params(), &m, w_peer);
            self.nodes[i].learner.set_params(merged);
            self.nodes[i].learner.on_params_replaced();
        }
        if let Some(m) = state.model_i {
            let own = self.nodes[j].validation_loss(self.nodes[j].learner.params());
            let peer = self.nodes[j].validation_loss(&m);
            let w_peer = Self::merge_weight(own, peer);
            let merged = merge_on_support(self.nodes[j].learner.params(), &m, w_peer);
            self.nodes[j].learner.set_params(merged);
            self.nodes[j].learner.on_params_replaced();
        }
        ctx.elapsed()
    }

    fn mean_eval_loss(&self, eval: &[L::Sample]) -> f64 {
        mean_eval_loss(&self.nodes, eval)
    }

    fn name(&self) -> &'static str {
        "DP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::testutil::{line_data, LineLearner};
    use lbchat::prelude::{Runtime, RuntimeConfig};
    use simnet::geom::Vec2;
    use simnet::trace::MobilityTrace;

    #[test]
    fn merge_weight_prefers_lower_loss_peer() {
        // Peer has much lower loss: peer weight = 1 - merge_weight... the
        // formula returns w_peer from the caller's perspective where
        // `merge_weight(own, peer)` is the share of the *peer* model.
        let w = Dp::<LineLearner>::merge_weight(4.0, 0.1);
        assert!(w > 0.8, "a much better peer should dominate: {w}");
        let w2 = Dp::<LineLearner>::merge_weight(0.1, 4.0);
        assert!(w2 < 0.2, "a much worse peer should be damped: {w2}");
        assert!((Dp::<LineLearner>::merge_weight(1.0, 1.0) - 0.5).abs() < 1e-6);
        assert_eq!(Dp::<LineLearner>::merge_weight(0.0, 0.0), 0.5);
    }

    #[test]
    fn gossip_exchanges_and_merges() {
        let learners = vec![LineLearner::new(), LineLearner::new()];
        let datasets = vec![
            WeightedDataset::uniform(line_data(2.0, 0.0, 200)),
            WeightedDataset::uniform(line_data(-2.0, 0.0, 200)),
        ];
        let mut algo = Dp::new(learners, datasets, DpConfig {
            model_bytes: 4 * 1024 * 1024,
            ..DpConfig::default()
        });
        let frames = 601;
        let trace = MobilityTrace::new(
            2.0,
            vec![vec![Vec2::ZERO; frames], vec![Vec2::new(70.0, 0.0); frames]],
        );
        let eval = line_data(0.0, 0.0, 20);
        let runtime =
            Runtime::new(RuntimeConfig { duration: 300.0, ..RuntimeConfig::default() });
        let m = runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        assert!(m.model_receives >= 2, "gossip must exchange models");
        // Merged models should sit between the two pure slopes.
        let slope0 = algo.model(0).as_slice()[0];
        assert!(slope0.abs() < 2.0, "merging pulls slopes together: {slope0}");
    }
}
