//! RSU-L — road-side-unit opportunistic learning (Xu et al., "Mobile
//! collaborative learning over opportunistic internet of vehicles", IEEE
//! TMC 2023), adapted as in §IV-B.
//!
//! RSUs sit at road crossings, each maintaining an RSU model. When a
//! vehicle passes within RSU range it uploads its model; the RSU aggregates
//! it into its own and sends the aggregate back. Backend bandwidth is
//! unconstrained ("we assume no backend bandwidth constraint at RSUs");
//! message losses follow the same uniform table draw as ProxSkip.

use crate::node::{mean_eval_loss, BaseNode};
use lbchat::prelude::{CollabAlgorithm, FrameCtx, Learner, SessionCtx, SessionStep};
use lbchat::WeightedDataset;
use simnet::geom::Vec2;
use vnn::ParamVec;

/// RSU-L configuration.
#[derive(Debug, Clone)]
pub struct RsuLConfig {
    /// RSU radio range in meters (same class of radio as V2V).
    pub rsu_range_m: f32,
    /// Minimum seconds between two exchanges of the same vehicle with the
    /// same RSU.
    pub revisit_cooldown: f64,
    /// Model wire size (metrics accounting).
    pub model_bytes: usize,
    /// Aggregation weight of the incoming vehicle model at the RSU (the
    /// RSU keeps `1 - alpha` of its own model).
    pub alpha: f32,
    /// Batch size for local training.
    pub batch_size: usize,
}

impl Default for RsuLConfig {
    fn default() -> Self {
        Self {
            rsu_range_m: 300.0,
            revisit_cooldown: 60.0,
            model_bytes: 52 * 1024 * 1024,
            alpha: 0.5,
            batch_size: 64,
        }
    }
}

/// The RSU-based opportunistic baseline.
pub struct RsuL<L: Learner> {
    nodes: Vec<BaseNode<L>>,
    rsu_positions: Vec<Vec2>,
    rsu_models: Vec<ParamVec>,
    rsu_initialized: Vec<bool>,
    /// `cooldown[v * n_rsus + r]` — earliest next exchange time.
    cooldown: Vec<f64>,
    config: RsuLConfig,
}

impl<L: Learner> RsuL<L> {
    /// Builds the fleet; `rsu_positions` are the road-cross deployment
    /// sites (the paper simulates "the behavior of RSUs at road crosses").
    ///
    /// # Panics
    /// Panics on empty fleets or an empty RSU set.
    pub fn new(
        learners: Vec<L>,
        datasets: Vec<WeightedDataset<L::Sample>>,
        rsu_positions: Vec<Vec2>,
        config: RsuLConfig,
    ) -> Self {
        assert_eq!(learners.len(), datasets.len(), "one dataset per learner");
        assert!(!learners.is_empty(), "need at least one vehicle");
        assert!(!rsu_positions.is_empty(), "need at least one RSU");
        let dim = learners[0].params().len();
        let rsu_models = vec![ParamVec::zeros(dim); rsu_positions.len()];
        let rsu_initialized = vec![false; rsu_positions.len()];
        let cooldown = vec![0.0; learners.len() * rsu_positions.len()];
        let nodes = learners
            .into_iter()
            .zip(datasets)
            .map(|(l, d)| BaseNode::new(l, d, config.batch_size))
            .collect();
        Self { nodes, rsu_positions, rsu_models, rsu_initialized, cooldown, config }
    }

    /// The RSU models (tests / inspection).
    pub fn rsu_models(&self) -> &[ParamVec] {
        &self.rsu_models
    }
}

impl<L: Learner> CollabAlgorithm for RsuL<L> {
    type Sample = L::Sample;
    type Session = ();

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn model(&self, node: usize) -> &ParamVec {
        self.nodes[node].learner.params()
    }

    fn local_training(
        &mut self,
        node: usize,
        iters: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> lbchat::TrainStats {
        for _ in 0..iters {
            self.nodes[node].local_iteration(rng);
        }
        self.nodes[node].learner.take_train_stats()
    }

    /// No V2V exchanges in RSU-L: sessions never open
    /// (and `pair_priority` already opts out of matching).
    fn session_open(&mut self, _ctx: &mut SessionCtx<'_>) -> Option<((), SessionStep)> {
        None
    }

    fn session_step(
        &mut self,
        _state: &mut (),
        _out: lbchat::prelude::TransferOutcome,
        _ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        SessionStep::Done
    }

    fn session_close(&mut self, _state: (), ctx: &mut SessionCtx<'_>) -> f64 {
        ctx.elapsed()
    }

    fn pair_priority(&self, _i: usize, _j: usize, _est: &simnet::contact::ContactEstimate) -> f64 {
        f64::NEG_INFINITY
    }

    fn on_frame(&mut self, ctx: &mut FrameCtx<'_>) {
        let n_rsus = self.rsu_positions.len();
        // Infrastructure messages carry the full model (ψ = 1) through the
        // session codec so the wire accounting follows the --codec axis.
        let model_bytes = ctx.codec().wire_bytes(self.config.model_bytes, 1.0);
        for v in 0..self.nodes.len() {
            if ctx.busy_until[v] > ctx.time {
                continue;
            }
            let pos = ctx.trace.position(v, ctx.time);
            for r in 0..n_rsus {
                if pos.distance(self.rsu_positions[r]) > self.config.rsu_range_m {
                    continue;
                }
                if self.cooldown[v * n_rsus + r] > ctx.time {
                    continue;
                }
                self.cooldown[v * n_rsus + r] = ctx.time + self.config.revisit_cooldown;
                // Upload. The first delivered model seeds the RSU
                // wholesale; later uploads are aggregated in.
                let uploaded = ctx.backend_message(model_bytes);
                if uploaded {
                    if self.rsu_initialized[r] {
                        let merged = ParamVec::weighted_average(
                            &self.rsu_models[r],
                            1.0 - self.config.alpha,
                            self.nodes[v].learner.params(),
                            self.config.alpha,
                        );
                        self.rsu_models[r] = merged;
                    } else {
                        self.rsu_models[r] = self.nodes[v].learner.params().clone();
                        self.rsu_initialized[r] = true;
                    }
                }
                // Download the (possibly just-updated) RSU model.
                if ctx.backend_message(model_bytes) && self.rsu_initialized[r] {
                    let adopted = ParamVec::weighted_average(
                        self.nodes[v].learner.params(),
                        0.5,
                        &self.rsu_models[r],
                        0.5,
                    );
                    self.nodes[v].learner.set_params(adopted);
                    self.nodes[v].learner.on_params_replaced();
                }
                break; // one RSU per frame per vehicle
            }
        }
    }

    fn mean_eval_loss(&self, eval: &[L::Sample]) -> f64 {
        mean_eval_loss(&self.nodes, eval)
    }

    fn name(&self) -> &'static str {
        "RSU-L"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::testutil::{line_data, LineLearner};
    use lbchat::prelude::{Runtime, RuntimeConfig};
    use simnet::trace::MobilityTrace;

    fn fleet(n: usize, rsus: Vec<Vec2>) -> RsuL<LineLearner> {
        let learners = vec![LineLearner::new(); n];
        let datasets: Vec<_> = (0..n)
            .map(|i| WeightedDataset::uniform(line_data(i as f32 + 1.0, 0.0, 150)))
            .collect();
        RsuL::new(learners, datasets, rsus, RsuLConfig::default())
    }

    #[test]
    fn vehicles_near_rsu_exchange() {
        // Vehicle 0 parked at the RSU; vehicle 1 far away.
        let frames = 401;
        let trace = MobilityTrace::new(
            2.0,
            vec![
                vec![Vec2::new(10.0, 0.0); frames],
                vec![Vec2::new(5000.0, 0.0); frames],
            ],
        );
        let mut algo = fleet(2, vec![Vec2::ZERO]);
        let eval = line_data(0.5, 0.0, 10);
        let runtime =
            Runtime::new(RuntimeConfig { duration: 200.0, ..RuntimeConfig::default() });
        let m = runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        assert!(m.model_sends > 0, "the near vehicle must talk to the RSU");
        assert!(algo.rsu_models()[0].l2_norm() >= 0.0);
        // Vehicle far away should keep its own model (trained on a=1 data):
        // cooldown-based accounting means only vehicle 0 exchanged.
        // 200 s / 60 s cooldown = ~4 visits, 2 messages each.
        assert!(m.model_sends <= 10);
    }

    #[test]
    fn rsu_model_absorbs_vehicle_knowledge() {
        let frames = 801;
        let trace =
            MobilityTrace::new(2.0, vec![vec![Vec2::new(5.0, 0.0); frames]]);
        let mut algo = fleet(1, vec![Vec2::ZERO]);
        let eval = line_data(0.0, 0.0, 10);
        let runtime =
            Runtime::new(RuntimeConfig { duration: 400.0, ..RuntimeConfig::default() });
        runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        // The RSU should have absorbed a trained (non-zero) model.
        assert!(algo.rsu_models()[0].l2_norm() > 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one RSU")]
    fn empty_rsu_set_panics() {
        let _ = fleet(1, vec![]);
    }
}
