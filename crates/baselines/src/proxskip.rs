//! ProxSkip (Mishchenko, Malinovsky, Stich, Richtárik — ICML 2022),
//! adapted to the vehicular setting as in §IV-B.
//!
//! A central server coordinates rounds of length `T_B`. Every round each
//! vehicle has performed its local (control-variate-corrected) SGD steps;
//! with probability `p` the round is a *communication round*: vehicles
//! upload their models, the server averages what arrived, broadcasts the
//! average, and each vehicle that receives it updates its control variate
//! `h_i ← h_i + (p/γ)(x̄ − x̂_i)` — the ProxSkip correction expressed at
//! the parameter level (our [`lbchat::Learner`] abstraction exposes
//! parameters, not gradients).
//!
//! Per the paper: "we assume no communication bandwidth constraint to the
//! backend in ProxSkip, which is idealistic and non-practical" — uploads
//! and downloads are instant; under wireless loss each message draws a loss
//! uniformly from the distance-loss table.

use crate::node::{mean_eval_loss, BaseNode};
use lbchat::prelude::{CollabAlgorithm, FrameCtx, Learner, SessionCtx, SessionStep};
use lbchat::WeightedDataset;
use rand::RngExt;
use vnn::ParamVec;

/// ProxSkip configuration.
#[derive(Debug, Clone)]
pub struct ProxSkipConfig {
    /// Round length in seconds (set to the paper's `T_B`).
    pub round_seconds: f64,
    /// Probability a round communicates (the "skip" probability is `1-p`).
    pub comm_prob: f64,
    /// Control-variate step scale γ̂: the correction applied per adopted
    /// average. Zero disables control variates (plain skipped FedAvg).
    pub cv_gamma: f32,
    /// Model wire size in bytes (for metrics accounting only — the backend
    /// is unconstrained).
    pub model_bytes: usize,
    /// Batch size for local training.
    pub batch_size: usize,
}

impl Default for ProxSkipConfig {
    fn default() -> Self {
        Self {
            round_seconds: 15.0,
            comm_prob: 0.5,
            cv_gamma: 0.1,
            model_bytes: 52 * 1024 * 1024,
            batch_size: 64,
        }
    }
}

/// The central-server federated baseline.
pub struct ProxSkip<L: Learner> {
    nodes: Vec<BaseNode<L>>,
    /// Per-node control variate `h_i`.
    variates: Vec<ParamVec>,
    config: ProxSkipConfig,
    next_round: f64,
}

impl<L: Learner> ProxSkip<L> {
    /// Builds the fleet.
    ///
    /// # Panics
    /// Panics if `learners` and `datasets` lengths differ or are empty.
    pub fn new(
        learners: Vec<L>,
        datasets: Vec<WeightedDataset<L::Sample>>,
        config: ProxSkipConfig,
    ) -> Self {
        assert_eq!(learners.len(), datasets.len(), "one dataset per learner");
        assert!(!learners.is_empty(), "need at least one vehicle");
        let dim = learners[0].params().len();
        let variates = vec![ParamVec::zeros(dim); learners.len()];
        let nodes = learners
            .into_iter()
            .zip(datasets)
            .map(|(l, d)| BaseNode::new(l, d, config.batch_size))
            .collect();
        Self { nodes, variates, config, next_round: 0.0 }
    }

    /// Immutable node access.
    pub fn node(&self, i: usize) -> &BaseNode<L> {
        &self.nodes[i]
    }
}

impl<L: Learner> CollabAlgorithm for ProxSkip<L> {
    type Sample = L::Sample;
    type Session = ();

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn model(&self, node: usize) -> &ParamVec {
        self.nodes[node].learner.params()
    }

    fn local_training(
        &mut self,
        node: usize,
        iters: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> lbchat::TrainStats {
        for _ in 0..iters {
            self.nodes[node].local_iteration(rng);
            // Control-variate drift: x ← x + γ̂ h (the −γ(−h_i) term of the
            // ProxSkip local step).
            if self.config.cv_gamma != 0.0 {
                let mut p = self.nodes[node].learner.params().clone();
                p.axpy(self.config.cv_gamma * 0.01, &self.variates[node]);
                self.nodes[node].learner.set_params(p);
            }
        }
        self.nodes[node].learner.take_train_stats()
    }

    /// Vehicles never talk to each other in ProxSkip: sessions never open
    /// (and `pair_priority` already opts out of matching).
    fn session_open(&mut self, _ctx: &mut SessionCtx<'_>) -> Option<((), SessionStep)> {
        None
    }

    fn session_step(
        &mut self,
        _state: &mut (),
        _out: lbchat::prelude::TransferOutcome,
        _ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        SessionStep::Done
    }

    fn session_close(&mut self, _state: (), ctx: &mut SessionCtx<'_>) -> f64 {
        ctx.elapsed()
    }

    fn pair_priority(&self, _i: usize, _j: usize, _est: &simnet::contact::ContactEstimate) -> f64 {
        f64::NEG_INFINITY // never matched
    }

    fn on_frame(&mut self, ctx: &mut FrameCtx<'_>) {
        if ctx.time < self.next_round {
            return;
        }
        self.next_round = ctx.time + self.config.round_seconds;
        if !ctx.rng().random_bool(self.config.comm_prob) {
            return; // skipped round: local steps only
        }
        // Upload phase: which models reach the server. Backend messages
        // carry the full model (ψ = 1) through the session codec so the
        // wire accounting follows the --codec axis.
        let model_bytes = ctx.codec().wire_bytes(self.config.model_bytes, 1.0);
        let mut arrived: Vec<usize> = Vec::new();
        for i in 0..self.nodes.len() {
            if ctx.backend_message(model_bytes) {
                arrived.push(i);
            }
        }
        if arrived.is_empty() {
            return;
        }
        // Server average of delivered models.
        let dim = self.nodes[0].learner.params().len();
        let mut avg = ParamVec::zeros(dim);
        for &i in &arrived {
            avg.axpy(1.0 / arrived.len() as f32, self.nodes[i].learner.params());
        }
        // Download phase: vehicles that receive the broadcast adopt it and
        // update their control variate.
        let p = self.config.comm_prob as f32;
        for i in 0..self.nodes.len() {
            if !ctx.backend_message(model_bytes) {
                continue;
            }
            if self.config.cv_gamma != 0.0 {
                let mut delta = avg.clone();
                delta.axpy(-1.0, self.nodes[i].learner.params());
                self.variates[i].axpy(p / self.config.cv_gamma, &delta);
            }
            self.nodes[i].learner.set_params(avg.clone());
            self.nodes[i].learner.on_params_replaced();
        }
    }

    fn mean_eval_loss(&self, eval: &[L::Sample]) -> f64 {
        mean_eval_loss(&self.nodes, eval)
    }

    fn name(&self) -> &'static str {
        "ProxSkip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::testutil::{line_data, LineLearner};
    use lbchat::prelude::{Runtime, RuntimeConfig};
    use simnet::geom::Vec2;
    use simnet::trace::MobilityTrace;

    fn fleet(n: usize) -> ProxSkip<LineLearner> {
        let learners = vec![LineLearner::new(); n];
        let datasets: Vec<_> = (0..n)
            .map(|i| {
                WeightedDataset::uniform(line_data(i as f32 - 1.0, 0.5 * i as f32, 200))
            })
            .collect();
        ProxSkip::new(learners, datasets, ProxSkipConfig {
            cv_gamma: 0.0,
            ..ProxSkipConfig::default()
        })
    }

    fn parked_trace(n: usize, seconds: f64) -> MobilityTrace {
        let frames = (seconds * 2.0) as usize + 1;
        MobilityTrace::new(
            2.0,
            (0..n)
                .map(|i| vec![Vec2::new(i as f32 * 2000.0, 0.0); frames])
                .collect(),
        )
    }

    #[test]
    fn averaging_beats_isolation_on_the_joint_distribution() {
        // Slopes -1, 0, 1: the consensus model (slope ~0) fits the middle
        // distribution; an isolated outer node cannot.
        let trace = parked_trace(3, 400.0);
        let eval = line_data(0.0, 0.5, 30);
        let runtime =
            Runtime::new(RuntimeConfig { duration: 400.0, ..RuntimeConfig::default() });
        let mut federated = fleet(3);
        runtime.run(&mut federated, &trace, &eval).expect("trace fits");
        let mut isolated = fleet(3);
        isolated.config.comm_prob = 0.0; // never communicate
        runtime.run(&mut isolated, &trace, &eval).expect("trace fits");
        let fed_loss = federated.mean_eval_loss(&eval);
        let iso_loss = isolated.mean_eval_loss(&eval);
        assert!(
            fed_loss < iso_loss * 0.9,
            "federated averaging must beat isolation: {fed_loss} vs {iso_loss}"
        );
    }

    #[test]
    fn vehicles_never_chat() {
        let mut algo = fleet(2);
        // Park them within range: still no P2P sessions, because priority
        // is -inf.
        let frames = 201;
        let trace = MobilityTrace::new(
            2.0,
            vec![vec![Vec2::ZERO; frames], vec![Vec2::new(50.0, 0.0); frames]],
        );
        let eval = line_data(0.0, 0.0, 10);
        let runtime = Runtime::new(RuntimeConfig { duration: 100.0, ..RuntimeConfig::default() });
        let m = runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        assert_eq!(m.sessions, 0);
        assert!(m.model_sends > 0, "backend messages still flow");
    }

    #[test]
    fn wireless_loss_reduces_receiving_rate() {
        let mut algo = fleet(3);
        let trace = parked_trace(3, 300.0);
        let eval = line_data(0.0, 0.5, 10);
        let runtime = Runtime::new(RuntimeConfig {
            duration: 300.0,
            loss_model: simnet::loss::LossModel::distance_default(),
            ..RuntimeConfig::default()
        });
        let m = runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        assert!(m.model_sends > 0);
        let rate = m.model_receiving_rate();
        assert!(rate < 0.95, "uniform table loss must cost messages: {rate}");
        assert!(rate > 0.3, "but most messages still arrive: {rate}");
    }
}
