//! Radio profiles beyond the default 802.11bd-class setup.
//!
//! The paper's §V ("Other radios suitable for vehicles") points at NR-V2X
//! and other emerging radios. These profiles bundle a [`RadioConfig`] with a
//! matching distance→PER table so experiments can swap the whole physical
//! layer with one call; the values follow the comparative evaluation of
//! Anwar et al. (VTC 2019), which measured 802.11p, 802.11bd, LTE-V2X, and
//! 5G NR-V2X side by side (NR-V2X holds lower loss at range; legacy 802.11p
//! degrades earliest).

use crate::channel::RadioConfig;
use crate::loss::LossModel;

/// A named physical-layer profile: radio parameters + loss behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Radio parameters.
    pub config: RadioConfig,
    /// Distance-based loss model.
    pub loss: LossModel,
}

impl RadioProfile {
    /// The paper's default: 802.11bd-class, 31 Mbps, 500 m.
    pub fn ieee80211bd() -> Self {
        Self {
            name: "IEEE 802.11bd",
            config: RadioConfig::default(),
            loss: LossModel::distance_default(),
        }
    }

    /// Legacy 802.11p DSRC: lower rate, loss rising much earlier.
    pub fn ieee80211p() -> Self {
        Self {
            name: "IEEE 802.11p",
            config: RadioConfig {
                bandwidth_bps: 6e6,
                range_m: 400.0,
                ..RadioConfig::default()
            },
            loss: LossModel::Distance(vec![
                (0.0, 0.01),
                (50.0, 0.03),
                (100.0, 0.08),
                (150.0, 0.15),
                (200.0, 0.28),
                (250.0, 0.45),
                (300.0, 0.65),
                (350.0, 0.85),
                (400.0, 0.97),
            ]),
        }
    }

    /// 5G NR-V2X sidelink: higher rate and flatter loss within range.
    pub fn nr_v2x() -> Self {
        Self {
            name: "5G NR-V2X",
            config: RadioConfig {
                bandwidth_bps: 50e6,
                range_m: 600.0,
                ..RadioConfig::default()
            },
            loss: LossModel::Distance(vec![
                (0.0, 0.002),
                (100.0, 0.01),
                (200.0, 0.03),
                (300.0, 0.08),
                (400.0, 0.18),
                (500.0, 0.40),
                (600.0, 0.85),
            ]),
        }
    }

    /// All built-in profiles, strongest-first.
    pub fn all() -> Vec<RadioProfile> {
        vec![Self::nr_v2x(), Self::ieee80211bd(), Self::ieee80211p()]
    }

    /// Loss-free transfer time of a payload under this profile, seconds.
    pub fn ideal_transfer_time(&self, bytes: usize) -> f64 {
        self.config.ideal_transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_capability() {
        let nr = RadioProfile::nr_v2x();
        let bd = RadioProfile::ieee80211bd();
        let p = RadioProfile::ieee80211p();
        assert!(nr.config.bandwidth_bps > bd.config.bandwidth_bps);
        assert!(bd.config.bandwidth_bps > p.config.bandwidth_bps);
        assert!(nr.config.range_m > bd.config.range_m);
        // At 300 m, loss ordering: NR < bd < p.
        assert!(nr.loss.per(300.0) < bd.loss.per(300.0));
        assert!(bd.loss.per(300.0) < p.loss.per(300.0));
    }

    #[test]
    fn model_transfer_times_scale_with_bandwidth() {
        let bytes = 52 * 1024 * 1024;
        let t_nr = RadioProfile::nr_v2x().ideal_transfer_time(bytes);
        let t_bd = RadioProfile::ieee80211bd().ideal_transfer_time(bytes);
        let t_p = RadioProfile::ieee80211p().ideal_transfer_time(bytes);
        assert!(t_nr < t_bd && t_bd < t_p);
        // 802.11p cannot move a 52 MB model inside a typical contact.
        assert!(t_p > 60.0);
    }

    #[test]
    fn all_lists_every_profile() {
        let names: Vec<&str> = RadioProfile::all().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"5G NR-V2X"));
    }

    #[test]
    fn per_tables_are_monotone() {
        for profile in RadioProfile::all() {
            let mut last = -1.0f32;
            for d in (0..=700).step_by(25) {
                let per = profile.loss.per(d as f32);
                assert!(per >= last, "{}: PER must not decrease", profile.name);
                last = per;
            }
        }
    }
}
