//! Minimal 2-D geometry shared by the networking and world simulators.

use std::ops::{Add, Mul, Neg, Sub};

/// A 2-D point / vector in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// East coordinate in meters.
    pub x: f32,
    /// North coordinate in meters.
    pub y: f32,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Euclidean length.
    pub fn norm(self) -> f32 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared length (avoids the square root in hot loops).
    pub fn norm_sq(self) -> f32 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Vec2) -> f32 {
        (self - other).norm()
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f32 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component), positive when `other` is
    /// counter-clockwise of `self`.
    pub fn cross(self, other: Vec2) -> f32 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction; returns the zero vector when the
    /// length is (near) zero.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n < 1e-9 {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / n, self.y / n)
        }
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f32) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Heading angle in radians, `atan2(y, x)`.
    pub fn angle(self) -> f32 {
        self.y.atan2(self.x)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(self, other: Vec2, t: f32) -> Vec2 {
        self + (other - self) * t
    }

    /// Perpendicular vector (rotated +90°).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f32) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// Total length of a polyline in meters.
pub fn polyline_length(points: &[Vec2]) -> f32 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// Point at arc-length `s` along a polyline, clamped to its ends.
///
/// Returns the last point when `s` exceeds the total length and the first
/// point when `s <= 0` or the polyline has a single point.
///
/// # Panics
/// Panics if `points` is empty.
pub fn point_at_arclength(points: &[Vec2], s: f32) -> Vec2 {
    assert!(!points.is_empty(), "polyline must have at least one point");
    let mut reached = points[0];
    if s <= 0.0 {
        return reached;
    }
    let mut remaining = s;
    for w in points.windows(2) {
        let seg = w[0].distance(w[1]);
        if remaining <= seg {
            if seg < 1e-9 {
                return w[1];
            }
            return w[0].lerp(w[1], remaining / seg);
        }
        remaining -= seg;
        reached = w[1];
    }
    reached // s ran past the end: clamp to the final point
}

/// Tangent (unit direction) at arc-length `s` along a polyline, clamped
/// to the last segment's direction when `s` runs past the end.
///
/// # Panics
/// Panics if `points` has fewer than two points.
pub fn tangent_at_arclength(points: &[Vec2], s: f32) -> Vec2 {
    assert!(points.len() >= 2, "polyline needs two points for a tangent");
    let mut remaining = s.max(0.0);
    let mut dir = points[1] - points[0];
    for w in points.windows(2) {
        dir = w[1] - w[0];
        let seg = w[0].distance(w[1]);
        if remaining <= seg {
            break;
        }
        remaining -= seg;
    }
    dir.normalized()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert!((a.distance(Vec2::ZERO) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let u = Vec2::new(0.0, 2.0).normalized();
        assert!((u.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rotation_quarter_turn() {
        let r = Vec2::new(1.0, 0.0).rotated(std::f32::consts::FRAC_PI_2);
        assert!(r.x.abs() < 1e-6 && (r.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn polyline_length_sums_segments() {
        let pts = [Vec2::ZERO, Vec2::new(3.0, 0.0), Vec2::new(3.0, 4.0)];
        assert!((polyline_length(&pts) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn arclength_interpolates() {
        let pts = [Vec2::ZERO, Vec2::new(10.0, 0.0)];
        let p = point_at_arclength(&pts, 4.0);
        assert!((p.x - 4.0).abs() < 1e-6);
        // clamping
        assert_eq!(point_at_arclength(&pts, 20.0), pts[1]);
        assert_eq!(point_at_arclength(&pts, -5.0), pts[0]);
    }

    #[test]
    fn tangent_follows_segments() {
        let pts = [Vec2::ZERO, Vec2::new(5.0, 0.0), Vec2::new(5.0, 5.0)];
        let t0 = tangent_at_arclength(&pts, 1.0);
        assert!((t0.x - 1.0).abs() < 1e-6);
        let t1 = tangent_at_arclength(&pts, 7.0);
        assert!((t1.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lerp_midpoint() {
        let m = Vec2::ZERO.lerp(Vec2::new(2.0, 4.0), 0.5);
        assert_eq!(m, Vec2::new(1.0, 2.0));
    }
}
