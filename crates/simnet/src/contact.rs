//! Contact-duration prediction and Eq. (5) priority inputs.
//!
//! By exchanging assist messages (location, speed, route for the next few
//! minutes, available bandwidth — 184 bytes in the paper), two vehicles can
//! predict how long they will stay in radio range and how lossy the link
//! will be. Following RoadTrain (the paper's reference \[7\]), the
//! communication priority `z` is a truncated ratio of predicted contact
//! duration to required exchange time, and the delivery probability `p`
//! comes from the distance-based loss model along the predicted routes.

use crate::geom::Vec2;
use crate::loss::LossModel;

/// Estimated properties of an upcoming pairwise contact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactEstimate {
    /// Predicted remaining contact duration in seconds.
    pub duration: f64,
    /// Truncated duration ratio `z` in `[0, 1]` (RoadTrain's priority).
    pub z: f64,
    /// Predicted probability `p` that a packetized exchange completes.
    pub p: f64,
}

/// Predicts contact durations and exchange-completion probabilities from two
/// shared future routes.
#[derive(Debug, Clone)]
pub struct ContactPredictor {
    range_m: f32,
    max_retx: u32,
    loss: LossModel,
    /// Reference exchange time for the truncated ratio `z` (seconds) —
    /// roughly the time to exchange coresets plus a nominal model payload.
    reference_time: f64,
}

impl ContactPredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    /// Panics if `range_m <= 0` or `reference_time <= 0`.
    pub fn new(range_m: f32, max_retx: u32, loss: LossModel, reference_time: f64) -> Self {
        assert!(range_m > 0.0, "range must be positive");
        assert!(reference_time > 0.0, "reference time must be positive");
        Self { range_m, max_retx, loss, reference_time }
    }

    /// Predicted contact duration given two future routes sampled every `dt`
    /// seconds (same length). Returns the time until the first sample at
    /// which the pair exceeds radio range, or the full horizon if they never
    /// separate.
    ///
    /// # Panics
    /// Panics if the routes have different lengths.
    pub fn contact_duration(&self, route_a: &[Vec2], route_b: &[Vec2], dt: f64) -> f64 {
        assert_eq!(route_a.len(), route_b.len(), "route sample counts must match");
        for (k, (pa, pb)) in route_a.iter().zip(route_b).enumerate() {
            if pa.distance(*pb) > self.range_m {
                return k as f64 * dt;
            }
        }
        route_a.len().saturating_sub(1) as f64 * dt
    }

    /// Full contact estimate for a pair with shared routes.
    ///
    /// `z = min(duration / reference_time, 1)` — longer-than-needed contacts
    /// saturate at 1. `p` is the mean per-packet delivery probability (with
    /// retransmissions) along the in-range portion of the predicted routes.
    ///
    /// Single-pass: each pair distance is computed once, feeding both the
    /// separation check ([`ContactPredictor::contact_duration`]'s job) and
    /// the delivery-probability accumulator, with the `f32`/`f64` op order
    /// of [`ContactPredictor::estimate_reference`] preserved exactly — the
    /// proptests in `tests/properties.rs` pin the two bit-identical.
    ///
    /// # Panics
    /// Panics if the routes have different lengths.
    pub fn estimate(&self, route_a: &[Vec2], route_b: &[Vec2], dt: f64) -> ContactEstimate {
        assert_eq!(route_a.len(), route_b.len(), "route sample counts must match");
        let len = route_a.len();
        // One sweep accumulates the in-range delivery probabilities in the
        // reference's exact f64 addition order while scanning for the first
        // separation. `prev_*` snapshots the accumulators *before* each
        // sample so the never-separate case can retroactively honor the
        // reference's `take(in_range_frames)` window, which may stop one
        // sample short of the full route.
        let mut p_sum = 0.0f64;
        let mut n = 0usize;
        let mut prev_p_sum = 0.0f64;
        let mut prev_n = 0usize;
        let mut sep: Option<usize> = None;
        for (k, (pa, pb)) in route_a.iter().zip(route_b).enumerate() {
            let d = pa.distance(*pb);
            if d > self.range_m {
                sep = Some(k);
                break;
            }
            prev_p_sum = p_sum;
            prev_n = n;
            p_sum += self.loss.delivery_prob(d, self.max_retx) as f64;
            n += 1;
        }
        let (duration, window) = match sep {
            Some(k) => (k as f64 * dt, k),
            None => (len.saturating_sub(1) as f64 * dt, len),
        };
        let z = (duration / self.reference_time).min(1.0);
        // The reference derives its averaging window from `duration / dt`,
        // whose f64 floor can land on `window - 1` (rounding) or, after
        // separation, re-admit any in-range sample inside the window. Select
        // the matching accumulator snapshot; on any window this sweep did
        // not materialize (degenerate `dt`, re-entrant routes), defer to the
        // reference itself rather than approximate it.
        let in_range_frames = ((duration / dt).floor() as usize + 1).min(len);
        let (p_sum, n) = if in_range_frames >= window.min(len) {
            if sep.is_some() && in_range_frames > window + 1 {
                return self.estimate_reference(route_a, route_b, dt);
            }
            (p_sum, n)
        } else if in_range_frames + 1 == window.min(len) {
            (prev_p_sum, prev_n)
        } else {
            return self.estimate_reference(route_a, route_b, dt);
        };
        let p = if n == 0 { 0.0 } else { p_sum / n as f64 };
        ContactEstimate { duration, z, p }
    }

    /// The retained two-pass reference arm for [`ContactPredictor::estimate`]:
    /// a [`ContactPredictor::contact_duration`] sweep followed by a second
    /// delivery-probability sweep over the in-range window. Kept verbatim as
    /// the spec the fused single-pass version is proptested against.
    pub fn estimate_reference(&self, route_a: &[Vec2], route_b: &[Vec2], dt: f64) -> ContactEstimate {
        let duration = self.contact_duration(route_a, route_b, dt);
        let z = (duration / self.reference_time).min(1.0);
        let in_range_frames = ((duration / dt).floor() as usize + 1).min(route_a.len());
        let mut p_sum = 0.0f64;
        let mut n = 0usize;
        for (pa, pb) in route_a.iter().zip(route_b).take(in_range_frames) {
            let d = pa.distance(*pb);
            if d <= self.range_m {
                p_sum += self.loss.delivery_prob(d, self.max_retx) as f64;
                n += 1;
            }
        }
        let p = if n == 0 { 0.0 } else { p_sum / n as f64 };
        ContactEstimate { duration, z, p }
    }

    /// The paper's Eq. (5) priority score
    /// `c = z * p * min(B_i, B_j)` with bandwidths in bits per second.
    pub fn priority_score(
        &self,
        route_a: &[Vec2],
        route_b: &[Vec2],
        dt: f64,
        bandwidth_a: f64,
        bandwidth_b: f64,
    ) -> f64 {
        let est = self.estimate(route_a, route_b, dt);
        est.z * est.p * bandwidth_a.min(bandwidth_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> ContactPredictor {
        ContactPredictor::new(500.0, 3, LossModel::distance_default(), 30.0)
    }

    fn straight_route(start: Vec2, vel: Vec2, n: usize, dt: f64) -> Vec<Vec2> {
        (0..n).map(|k| start + vel * (k as f64 * dt) as f32).collect()
    }

    #[test]
    fn parallel_vehicles_never_separate() {
        let p = predictor();
        let a = straight_route(Vec2::ZERO, Vec2::new(10.0, 0.0), 121, 0.5);
        let b = straight_route(Vec2::new(50.0, 0.0), Vec2::new(10.0, 0.0), 121, 0.5);
        let d = p.contact_duration(&a, &b, 0.5);
        assert!((d - 60.0).abs() < 1e-9, "full horizon expected, got {d}");
        let est = p.estimate(&a, &b, 0.5);
        assert_eq!(est.z, 1.0);
        assert!(est.p > 0.95, "50 m apart should deliver nearly surely");
    }

    #[test]
    fn opposite_vehicles_separate_quickly() {
        let p = predictor();
        // Closing from opposite directions then separating: start 400 m
        // apart moving toward each other at 15 m/s each.
        let a = straight_route(Vec2::ZERO, Vec2::new(15.0, 0.0), 241, 0.5);
        let b = straight_route(Vec2::new(400.0, 0.0), Vec2::new(-15.0, 0.0), 241, 0.5);
        let d = p.contact_duration(&a, &b, 0.5);
        // They meet at ~13.3 s and are 500 m apart again at ~30 s.
        assert!(d > 25.0 && d < 35.0, "got {d}");
        let est = p.estimate(&a, &b, 0.5);
        assert!(est.z < 1.001 && est.z > 0.8);
    }

    #[test]
    fn immediate_out_of_range_gives_zero() {
        let p = predictor();
        let a = straight_route(Vec2::ZERO, Vec2::ZERO, 11, 0.5);
        let b = straight_route(Vec2::new(1000.0, 0.0), Vec2::ZERO, 11, 0.5);
        let est = p.estimate(&a, &b, 0.5);
        assert_eq!(est.duration, 0.0);
        assert_eq!(est.z, 0.0);
    }

    #[test]
    fn closer_pairs_get_higher_p() {
        let p = predictor();
        let a = straight_route(Vec2::ZERO, Vec2::ZERO, 61, 0.5);
        let near = straight_route(Vec2::new(50.0, 0.0), Vec2::ZERO, 61, 0.5);
        let far = straight_route(Vec2::new(450.0, 0.0), Vec2::ZERO, 61, 0.5);
        let e_near = p.estimate(&a, &near, 0.5);
        let e_far = p.estimate(&a, &far, 0.5);
        assert!(e_near.p > e_far.p);
    }

    #[test]
    fn priority_uses_min_bandwidth() {
        let p = predictor();
        let a = straight_route(Vec2::ZERO, Vec2::ZERO, 61, 0.5);
        let b = straight_route(Vec2::new(50.0, 0.0), Vec2::ZERO, 61, 0.5);
        let hi = p.priority_score(&a, &b, 0.5, 31e6, 31e6);
        let lo = p.priority_score(&a, &b, 0.5, 31e6, 10e6);
        assert!((hi / lo - 3.1).abs() < 1e-6);
    }

    #[test]
    fn lossless_model_gives_full_p() {
        let p = ContactPredictor::new(500.0, 3, LossModel::None, 30.0);
        let a = straight_route(Vec2::ZERO, Vec2::ZERO, 11, 0.5);
        let b = straight_route(Vec2::new(499.0, 0.0), Vec2::ZERO, 11, 0.5);
        assert_eq!(p.estimate(&a, &b, 0.5).p, 1.0);
    }
}
