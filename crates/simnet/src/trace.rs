//! Mobility traces and encounter detection.
//!
//! The paper records vehicle locations at 2 fps for 120 hours and replays
//! them to simulate inter-vehicle communications. A [`MobilityTrace`] is that
//! recording: one position series per agent at a fixed frame rate, with
//! helpers to query interpolated positions and detect radio-range encounters.

use crate::geom::Vec2;

/// Identifier of an agent (vehicle) inside a trace, dense from zero.
pub type AgentId = usize;

/// Positions of every agent sampled at a fixed frame rate.
#[derive(Debug, Clone)]
pub struct MobilityTrace {
    fps: f64,
    /// `positions[agent][frame]`.
    positions: Vec<Vec<Vec2>>,
}

/// A pair of agents within radio range at some time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Encounter {
    /// First agent (lower id).
    pub a: AgentId,
    /// Second agent (higher id).
    pub b: AgentId,
    /// Distance between them in meters at detection time.
    pub distance: f32,
}

impl MobilityTrace {
    /// Creates a trace from per-agent position series recorded at `fps`
    /// frames per second. All agents must have the same number of frames.
    ///
    /// # Panics
    /// Panics if `fps <= 0`, there are no agents, or series lengths differ.
    pub fn new(fps: f64, positions: Vec<Vec<Vec2>>) -> Self {
        assert!(fps > 0.0, "fps must be positive");
        assert!(!positions.is_empty(), "trace needs at least one agent");
        let n = positions[0].len();
        assert!(
            positions.iter().all(|p| p.len() == n),
            "all agents must have the same number of frames"
        );
        Self { fps, positions }
    }

    /// Number of agents.
    pub fn n_agents(&self) -> usize {
        self.positions.len()
    }

    /// Number of frames per agent.
    pub fn n_frames(&self) -> usize {
        self.positions[0].len()
    }

    /// Frame rate the trace was recorded at.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Total duration covered, in seconds.
    pub fn duration(&self) -> f64 {
        if self.n_frames() == 0 {
            0.0
        } else {
            (self.n_frames() - 1) as f64 / self.fps
        }
    }

    /// Position of `agent` at time `t` (seconds), linearly interpolated
    /// between frames and clamped to the trace ends.
    ///
    /// # Panics
    /// Panics if `agent` is out of range or the trace has zero frames.
    pub fn position(&self, agent: AgentId, t: f64) -> Vec2 {
        let series = &self.positions[agent];
        assert!(!series.is_empty(), "trace has no frames");
        let ft = (t * self.fps).max(0.0);
        let i = ft.floor() as usize;
        if let (Some(a), Some(b)) = (series.get(i), series.get(i + 1)) {
            let frac = (ft - i as f64) as f32;
            return a.lerp(*b, frac);
        }
        // Past the last frame (or at it exactly): clamp to the end.
        *series.last().unwrap_or(&Vec2::ZERO)
    }

    /// Distance between two agents at time `t`.
    pub fn distance(&self, a: AgentId, b: AgentId, t: f64) -> f32 {
        self.position(a, t).distance(self.position(b, t))
    }

    /// All agent pairs within `range_m` of each other at time `t`,
    /// restricted to the agents in `active` (e.g. the learning vehicles, not
    /// background traffic).
    pub fn encounters_at(&self, t: f64, range_m: f32, active: &[AgentId]) -> Vec<Encounter> {
        let pos: Vec<(AgentId, Vec2)> =
            active.iter().map(|&a| (a, self.position(a, t))).collect();
        let mut out = Vec::new();
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let d = pos[i].1.distance(pos[j].1);
                if d <= range_m {
                    out.push(Encounter { a: pos[i].0, b: pos[j].0, distance: d });
                }
            }
        }
        out
    }

    /// Future trajectory of `agent` starting at time `t`: `n` samples spaced
    /// `dt` seconds — what a vehicle shares as its "route in the next few
    /// minutes".
    pub fn future(&self, agent: AgentId, t: f64, dt: f64, n: usize) -> Vec<Vec2> {
        (0..n).map(|k| self.position(agent, t + k as f64 * dt)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_agent_trace() -> MobilityTrace {
        // Agent 0 parked at origin; agent 1 drives east at 10 m/s, sampled
        // at 2 fps.
        let a0 = vec![Vec2::ZERO; 21];
        let a1: Vec<Vec2> = (0..21).map(|f| Vec2::new(f as f32 * 5.0, 0.0)).collect();
        MobilityTrace::new(2.0, vec![a0, a1])
    }

    #[test]
    fn interpolates_between_frames() {
        let tr = two_agent_trace();
        let p = tr.position(1, 0.25); // halfway between frames 0 and 1
        assert!((p.x - 2.5).abs() < 1e-6);
    }

    #[test]
    fn clamps_past_the_end() {
        let tr = two_agent_trace();
        let p = tr.position(1, 100.0);
        assert!((p.x - 100.0).abs() < 1e-6);
    }

    #[test]
    fn duration_accounts_for_fps() {
        let tr = two_agent_trace();
        assert!((tr.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn encounters_within_range() {
        let tr = two_agent_trace();
        let e = tr.encounters_at(0.0, 500.0, &[0, 1]);
        assert_eq!(e.len(), 1);
        assert_eq!((e[0].a, e[0].b), (0, 1));
        // At t = 10 s agent 1 is 100 m away: still in range at 500 m...
        assert_eq!(tr.encounters_at(10.0, 500.0, &[0, 1]).len(), 1);
        // ...but not at 50 m range.
        assert_eq!(tr.encounters_at(10.0, 50.0, &[0, 1]).len(), 0);
    }

    #[test]
    fn active_filter_restricts_pairs() {
        let tr = two_agent_trace();
        assert!(tr.encounters_at(0.0, 500.0, &[0]).is_empty());
    }

    #[test]
    fn future_samples_the_route() {
        let tr = two_agent_trace();
        let f = tr.future(1, 0.0, 1.0, 5);
        assert_eq!(f.len(), 5);
        assert!((f[4].x - 40.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "same number of frames")]
    fn ragged_series_panics() {
        let _ = MobilityTrace::new(2.0, vec![vec![Vec2::ZERO; 3], vec![Vec2::ZERO; 4]]);
    }
}
