//! Mobility traces and encounter detection.
//!
//! The paper records vehicle locations at 2 fps for 120 hours and replays
//! them to simulate inter-vehicle communications. A [`MobilityTrace`] is that
//! recording: one position series per agent at a fixed frame rate, with
//! helpers to query interpolated positions and detect radio-range encounters.

use crate::geom::Vec2;

/// Identifier of an agent (vehicle) inside a trace, dense from zero.
pub type AgentId = usize;

/// Positions of every agent sampled at a fixed frame rate.
#[derive(Debug, Clone)]
pub struct MobilityTrace {
    fps: f64,
    /// `positions[agent][frame]`.
    positions: Vec<Vec<Vec2>>,
}

/// A pair of agents within radio range at some time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Encounter {
    /// First agent (lower id).
    pub a: AgentId,
    /// Second agent (higher id).
    pub b: AgentId,
    /// Distance between them in meters at detection time.
    pub distance: f32,
}

impl MobilityTrace {
    /// Creates a trace from per-agent position series recorded at `fps`
    /// frames per second. All agents must have the same number of frames.
    ///
    /// # Panics
    /// Panics if `fps <= 0`, there are no agents, or series lengths differ.
    pub fn new(fps: f64, positions: Vec<Vec<Vec2>>) -> Self {
        assert!(fps > 0.0, "fps must be positive");
        assert!(!positions.is_empty(), "trace needs at least one agent");
        let n = positions[0].len();
        assert!(
            positions.iter().all(|p| p.len() == n),
            "all agents must have the same number of frames"
        );
        Self { fps, positions }
    }

    /// Number of agents.
    pub fn n_agents(&self) -> usize {
        self.positions.len()
    }

    /// Number of frames per agent.
    pub fn n_frames(&self) -> usize {
        self.positions[0].len()
    }

    /// Frame rate the trace was recorded at.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Total duration covered, in seconds.
    pub fn duration(&self) -> f64 {
        if self.n_frames() == 0 {
            0.0
        } else {
            (self.n_frames() - 1) as f64 / self.fps
        }
    }

    /// Position of `agent` at time `t` (seconds), linearly interpolated
    /// between frames and clamped to the trace ends.
    ///
    /// # Panics
    /// Panics if `agent` is out of range or the trace has zero frames.
    pub fn position(&self, agent: AgentId, t: f64) -> Vec2 {
        let series = &self.positions[agent];
        assert!(!series.is_empty(), "trace has no frames");
        let ft = (t * self.fps).max(0.0);
        let i = ft.floor() as usize;
        if let (Some(a), Some(b)) = (series.get(i), series.get(i + 1)) {
            let frac = (ft - i as f64) as f32;
            return a.lerp(*b, frac);
        }
        // Past the last frame (or at it exactly): clamp to the end.
        *series.last().unwrap_or(&Vec2::ZERO)
    }

    /// Distance between two agents at time `t`.
    pub fn distance(&self, a: AgentId, b: AgentId, t: f64) -> f32 {
        self.position(a, t).distance(self.position(b, t))
    }

    /// All agent pairs within `range_m` of each other at time `t`,
    /// restricted to the agents in `active` (e.g. the learning vehicles, not
    /// background traffic).
    pub fn encounters_at(&self, t: f64, range_m: f32, active: &[AgentId]) -> Vec<Encounter> {
        let pos: Vec<(AgentId, Vec2)> =
            active.iter().map(|&a| (a, self.position(a, t))).collect();
        let mut out = Vec::new();
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let d = pos[i].1.distance(pos[j].1);
                if d <= range_m {
                    out.push(Encounter { a: pos[i].0, b: pos[j].0, distance: d });
                }
            }
        }
        out
    }

    /// Future trajectory of `agent` starting at time `t`: `n` samples spaced
    /// `dt` seconds — what a vehicle shares as its "route in the next few
    /// minutes".
    pub fn future(&self, agent: AgentId, t: f64, dt: f64, n: usize) -> Vec<Vec2> {
        (0..n).map(|k| self.position(agent, t + k as f64 * dt)).collect()
    }

    /// Buffer-reusing [`MobilityTrace::future`]: refills `out` with the same
    /// `n` samples. Returns whether `out` had to reallocate — a caller
    /// holding a warm buffer sized for its `route_share_samples` expects
    /// `false` on every frame after the first (the zero-steady-state
    /// allocation regression tests count exactly this signal).
    pub fn future_into(&self, agent: AgentId, t: f64, dt: f64, n: usize, out: &mut Vec<Vec2>) -> bool {
        let cap = out.capacity();
        out.clear();
        out.extend((0..n).map(|k| self.position(agent, t + k as f64 * dt)));
        out.capacity() > cap
    }

    /// Buffer-reusing [`MobilityTrace::encounters_at`]: refills `out` with
    /// the byte-identical encounter list via the same all-pairs sweep.
    /// Returns whether `out` had to reallocate. For the spatial-hash
    /// discovery path both runtime engines use, see
    /// [`crate::grid::EncounterGrid`]; this method keeps the buffer-reuse
    /// API available on the reference sweep itself.
    pub fn encounters_into(
        &self,
        t: f64,
        range_m: f32,
        active: &[AgentId],
        out: &mut Vec<Encounter>,
    ) -> bool {
        let cap = out.capacity();
        out.clear();
        let pos: Vec<(AgentId, Vec2)> =
            active.iter().map(|&a| (a, self.position(a, t))).collect();
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let d = pos[i].1.distance(pos[j].1);
                if d <= range_m {
                    out.push(Encounter { a: pos[i].0, b: pos[j].0, distance: d });
                }
            }
        }
        out.capacity() > cap
    }
}

/// Per-frame cache of shared future routes.
///
/// The runtime engines evaluate [`crate::contact::ContactPredictor`] on
/// every candidate encounter pair, and an agent in a dense cell appears in
/// many pairs per frame. Without a cache its route is resampled (one
/// [`MobilityTrace::position`] interpolation per sample) for every pair;
/// with one it is sampled **at most once per frame** into a flat reusable
/// arena, and later pairs borrow the filled slice.
///
/// Frames are delimited by [`RouteCache::begin_frame`], which bumps an
/// epoch instead of clearing anything — a slot is valid only if its
/// per-agent epoch mark matches the current epoch, so invalidation is O(1)
/// and the arena bytes are reused as-is.
#[derive(Debug, Clone)]
pub struct RouteCache {
    /// Samples per cached route (`route_share_samples`), the arena stride.
    samples: usize,
    /// Current frame epoch; starts at 1 so a zeroed `seen` never matches.
    epoch: u64,
    /// `seen[agent]` = epoch the agent's route was cached in.
    seen: Vec<u64>,
    /// `slot[agent]` = arena slot index holding that route.
    slot: Vec<u32>,
    /// Flat arena: slot `s` owns `buf[s * samples .. (s + 1) * samples]`.
    buf: Vec<Vec2>,
    /// Slots handed out this frame (arena high-water within the epoch).
    used: usize,
    /// Whether the last `begin_frame`…`pair` span reallocated the arena.
    grew: bool,
}

impl RouteCache {
    /// A cache for `n_agents` agents sharing `samples`-point routes. The
    /// arena starts empty and grows to the per-frame working set, then
    /// stays warm.
    pub fn new(n_agents: usize, samples: usize) -> Self {
        Self {
            samples,
            epoch: 1,
            seen: vec![0; n_agents],
            slot: vec![0; n_agents],
            buf: Vec::new(),
            used: 0,
            grew: false,
        }
    }

    /// Starts a new frame: every cached route becomes stale in O(1).
    pub fn begin_frame(&mut self) {
        self.epoch += 1;
        self.used = 0;
        self.grew = false;
    }

    /// Whether the arena reallocated since the last [`RouteCache::begin_frame`]
    /// (a warm cache at steady fleet density never does).
    pub fn grew(&self) -> bool {
        self.grew
    }

    /// The shared future routes of agents `a` and `b` at time `t`, each
    /// sampled at most once this frame (bit-identical to
    /// [`MobilityTrace::future`] with `n = samples`).
    ///
    /// # Panics
    /// Panics (debug) if `a == b`; the two slices must be disjoint.
    pub fn pair(
        &mut self,
        trace: &MobilityTrace,
        a: AgentId,
        b: AgentId,
        t: f64,
        dt: f64,
    ) -> (&[Vec2], &[Vec2]) {
        debug_assert!(a != b, "route pair needs two distinct agents");
        let sa = self.fill(trace, a, t, dt);
        let sb = self.fill(trace, b, t, dt);
        let stride = self.samples;
        let (lo, hi) = if sa < sb { (sa, sb) } else { (sb, sa) };
        let lo_off = lo * stride;
        let hi_off = hi * stride;
        let (head, tail) = self.buf.split_at(hi_off);
        let lo_end = lo_off + stride;
        let lo_slice = &head[lo_off..lo_end];
        let hi_slice = &tail[..stride];
        if sa < sb { (lo_slice, hi_slice) } else { (hi_slice, lo_slice) }
    }

    /// Ensures `agent`'s route is cached this frame; returns its slot.
    fn fill(&mut self, trace: &MobilityTrace, agent: AgentId, t: f64, dt: f64) -> usize {
        if self.seen[agent] == self.epoch {
            return self.slot[agent] as usize;
        }
        let s = self.used;
        self.used += 1;
        let need = self.used * self.samples;
        if need > self.buf.len() {
            if need > self.buf.capacity() {
                self.grew = true;
            }
            self.buf.resize(need, Vec2::ZERO);
        }
        let off = s * self.samples;
        let end = off + self.samples;
        for (k, cell) in self.buf[off..end].iter_mut().enumerate() {
            *cell = trace.position(agent, t + k as f64 * dt);
        }
        self.seen[agent] = self.epoch;
        self.slot[agent] = s as u32;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_agent_trace() -> MobilityTrace {
        // Agent 0 parked at origin; agent 1 drives east at 10 m/s, sampled
        // at 2 fps.
        let a0 = vec![Vec2::ZERO; 21];
        let a1: Vec<Vec2> = (0..21).map(|f| Vec2::new(f as f32 * 5.0, 0.0)).collect();
        MobilityTrace::new(2.0, vec![a0, a1])
    }

    #[test]
    fn interpolates_between_frames() {
        let tr = two_agent_trace();
        let p = tr.position(1, 0.25); // halfway between frames 0 and 1
        assert!((p.x - 2.5).abs() < 1e-6);
    }

    #[test]
    fn clamps_past_the_end() {
        let tr = two_agent_trace();
        let p = tr.position(1, 100.0);
        assert!((p.x - 100.0).abs() < 1e-6);
    }

    #[test]
    fn duration_accounts_for_fps() {
        let tr = two_agent_trace();
        assert!((tr.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn encounters_within_range() {
        let tr = two_agent_trace();
        let e = tr.encounters_at(0.0, 500.0, &[0, 1]);
        assert_eq!(e.len(), 1);
        assert_eq!((e[0].a, e[0].b), (0, 1));
        // At t = 10 s agent 1 is 100 m away: still in range at 500 m...
        assert_eq!(tr.encounters_at(10.0, 500.0, &[0, 1]).len(), 1);
        // ...but not at 50 m range.
        assert_eq!(tr.encounters_at(10.0, 50.0, &[0, 1]).len(), 0);
    }

    #[test]
    fn active_filter_restricts_pairs() {
        let tr = two_agent_trace();
        assert!(tr.encounters_at(0.0, 500.0, &[0]).is_empty());
    }

    #[test]
    fn future_samples_the_route() {
        let tr = two_agent_trace();
        let f = tr.future(1, 0.0, 1.0, 5);
        assert_eq!(f.len(), 5);
        assert!((f[4].x - 40.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "same number of frames")]
    fn ragged_series_panics() {
        let _ = MobilityTrace::new(2.0, vec![vec![Vec2::ZERO; 3], vec![Vec2::ZERO; 4]]);
    }

    #[test]
    fn future_into_matches_future_and_reuses_the_buffer() {
        let tr = two_agent_trace();
        let mut buf = Vec::with_capacity(5);
        for t in [0.0, 0.3, 7.0] {
            let grew = tr.future_into(1, t, 1.0, 5, &mut buf);
            assert!(!grew, "pre-sized buffer must not grow at t={t}");
            let fresh = tr.future(1, t, 1.0, 5);
            assert_eq!(buf.len(), fresh.len());
            for (a, b) in buf.iter().zip(&fresh) {
                assert_eq!((a.x.to_bits(), a.y.to_bits()), (b.x.to_bits(), b.y.to_bits()));
            }
        }
    }

    #[test]
    fn encounters_into_matches_encounters_at() {
        let tr = two_agent_trace();
        let mut buf = Vec::new();
        for (t, range) in [(0.0, 500.0), (10.0, 500.0), (10.0, 50.0)] {
            let first = tr.encounters_into(t, range, &[0, 1], &mut buf);
            assert_eq!(buf, tr.encounters_at(t, range, &[0, 1]));
            // Same query again into the warm buffer: identical and no growth.
            assert!(!tr.encounters_into(t, range, &[0, 1], &mut buf) || first);
        }
    }

    #[test]
    fn route_cache_matches_future_bit_for_bit() {
        let tr = two_agent_trace();
        let mut cache = RouteCache::new(tr.n_agents(), 5);
        cache.begin_frame();
        let (ra, rb) = cache.pair(&tr, 0, 1, 0.25, 1.0);
        let (ra, rb) = (ra.to_vec(), rb.to_vec());
        let fa = tr.future(0, 0.25, 1.0, 5);
        let fb = tr.future(1, 0.25, 1.0, 5);
        for (got, want) in ra.iter().zip(&fa).chain(rb.iter().zip(&fb)) {
            assert_eq!((got.x.to_bits(), got.y.to_bits()), (want.x.to_bits(), want.y.to_bits()));
        }
        // Order of the pair must not matter for contents.
        let (rb2, ra2) = cache.pair(&tr, 1, 0, 0.25, 1.0);
        assert_eq!(ra, ra2);
        assert_eq!(rb, rb2);
    }

    #[test]
    fn route_cache_warm_frames_do_not_reallocate() {
        let tr = two_agent_trace();
        let mut cache = RouteCache::new(tr.n_agents(), 8);
        cache.begin_frame();
        let _ = cache.pair(&tr, 0, 1, 0.0, 0.5);
        assert!(cache.grew(), "cold frame fills the arena");
        for f in 1..5 {
            cache.begin_frame();
            let _ = cache.pair(&tr, 0, 1, f as f64 * 0.5, 0.5);
            let _ = cache.pair(&tr, 1, 0, f as f64 * 0.5, 0.5);
            assert!(!cache.grew(), "warm frame {f} reallocated the route arena");
        }
    }

    #[test]
    fn route_cache_invalidates_on_new_frame() {
        let tr = two_agent_trace();
        let mut cache = RouteCache::new(tr.n_agents(), 3);
        cache.begin_frame();
        let first = cache.pair(&tr, 0, 1, 0.0, 1.0).1.to_vec();
        cache.begin_frame();
        let second = cache.pair(&tr, 0, 1, 2.0, 1.0).1.to_vec();
        assert_ne!(first[0].x.to_bits(), second[0].x.to_bits(), "stale route survived the epoch bump");
        assert_eq!(second, tr.future(1, 2.0, 1.0, 3));
    }
}
