//! Spatial-hash encounter discovery, bit-identical to the all-pairs sweep.
//!
//! [`MobilityTrace::encounters_at`] — the retained reference arm — is an
//! O(n²) distance sweep over every active pair. At city-scale fleets the
//! sweep dominates frame matching, so both runtime engines discover
//! encounters through an [`EncounterGrid`] instead: a uniform spatial hash
//! rebuilt each frame from a per-frame position snapshot (each agent's
//! interpolated position computed once per frame, not once per pair), with
//! candidate pairs drawn from the 3×3 neighborhood of each agent's cell.
//!
//! The grid is not "close enough" — its output is **byte-for-byte equal**
//! to the all-pairs loop, which stays in `trace.rs` verbatim as the spec
//! (the `coreset::reference` / `simworld::reference` pattern):
//!
//! * The snapshot interpolates every active agent once, in `active` order,
//!   with the same [`MobilityTrace::position`] call the sweep makes, so
//!   both arms test identical `f32` coordinates.
//! * Pairs are emitted in the sweep's `(i, j)` order: for each snapshot
//!   index `i` ascending, the candidate `j > i` set from the neighbor
//!   cells is sorted ascending before testing, so the surviving
//!   subsequence is the sweep's exactly.
//! * The in-range test is the identical `f32` expression —
//!   `pos[i].distance(pos[j]) <= range_m` — including the `d == range_m`
//!   boundary.
//! * Cell width is `range_m · (1 + 2⁻¹⁰)`, not `range_m`: the sweep's
//!   computed distance `d` carries a few ulps of rounding, so a pair with
//!   `d <= range_m` can sit up to `range_m · (1 + 4·2⁻²⁴)` apart per axis.
//!   The widened cell keeps every such pair within one cell of each other,
//!   so the 3×3 gather provably covers the sweep's accept set (the
//!   equivalence proptests in `tests/grid_equivalence.rs` pin this,
//!   straddle cases and exact boundary included).
//!
//! All buffers are reused across frames; [`EncounterGrid::grew`] reports
//! whether the last scan had to reallocate (the zero-steady-state
//! allocation regression test counts exactly this signal).

use crate::geom::Vec2;
use crate::trace::{AgentId, Encounter, MobilityTrace};

/// Per-scan statistics, surfaced as the `net.encounter.*` observability
/// counters by the runtime engines (docs/OBSERVABILITY.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridStats {
    /// Candidate pairs the 3×3 gather produced — each cost one exact
    /// distance test (the all-pairs sweep would have tested
    /// `n·(n-1)/2`).
    pub candidates: u64,
    /// Occupied grid cells this frame.
    pub cells: u64,
}

/// A uniform spatial hash over the active agents' current positions,
/// rebuilt from scratch each scan into reused buffers.
#[derive(Debug, Clone, Default)]
pub struct EncounterGrid {
    /// Interpolated position per active index (the per-frame snapshot).
    pos: Vec<Vec2>,
    /// Cell coordinates per active index.
    coords: Vec<(i32, i32)>,
    /// `(cell key, active index)`, sorted — the bucket storage.
    entries: Vec<(u64, u32)>,
    /// Distinct cell keys, sorted (parallel to `starts`).
    keys: Vec<u64>,
    /// CSR offsets into `entries`: cell `c` owns `entries[starts[c]..starts[c+1]]`.
    starts: Vec<u32>,
    /// Per-agent candidate scratch (indices `j > i` from neighbor cells).
    cand: Vec<u32>,
    /// Whether the last scan reallocated any internal buffer.
    grew: bool,
}

/// Packs signed cell coordinates into one orderable key. Only equality
/// lookups matter (neighbor keys are searched exactly), so the packing
/// needs no sign bias.
fn cell_key(cx: i32, cy: i32) -> u64 {
    ((cx as u32 as u64) << 32) | (cy as u32 as u64)
}

/// Cell width for a radio range: slightly wider than the range so that
/// any pair the all-pairs sweep accepts (`f32`-computed `d <= range_m`,
/// which tolerates a few ulps past the true distance) lands within one
/// cell per axis of each other. Degenerate ranges (`<= 0`, where only
/// coincident-to-rounding pairs can pass) fall back to a unit cell.
fn cell_width(range_m: f32) -> f64 {
    let w = f64::from(range_m) * (1.0 + 0.000_976_562_5); // 1 + 2⁻¹⁰
    if w > 0.0 && w.is_finite() {
        w
    } else {
        1.0
    }
}

impl EncounterGrid {
    /// An empty grid; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the most recent [`EncounterGrid::encounters_into`] call
    /// reallocated any internal buffer (a warm grid at steady fleet size
    /// never does).
    pub fn grew(&self) -> bool {
        self.grew
    }

    /// Refills `out` with every active pair within `range_m` at time `t` —
    /// byte-for-byte the vector [`MobilityTrace::encounters_at`] returns —
    /// and reports the scan's work counters. `out` is cleared first; its
    /// reallocation is covered by the returned grid's [`EncounterGrid::grew`].
    // audit:entry(hot)
    pub fn encounters_into(
        &mut self,
        trace: &MobilityTrace,
        t: f64,
        range_m: f32,
        active: &[AgentId],
        out: &mut Vec<Encounter>,
    ) -> GridStats {
        let cap = (
            self.pos.capacity(),
            self.coords.capacity(),
            self.entries.capacity(),
            self.keys.capacity(),
            self.starts.capacity(),
            self.cand.capacity(),
            out.capacity(),
        );
        out.clear();
        let stats = self.scan(trace, t, range_m, active, out);
        self.grew = self.pos.capacity() > cap.0
            || self.coords.capacity() > cap.1
            || self.entries.capacity() > cap.2
            || self.keys.capacity() > cap.3
            || self.starts.capacity() > cap.4
            || self.cand.capacity() > cap.5
            || out.capacity() > cap.6;
        stats
    }

    /// The scan body: snapshot, bucket, gather, test.
    fn scan(
        &mut self,
        trace: &MobilityTrace,
        t: f64,
        range_m: f32,
        active: &[AgentId],
        out: &mut Vec<Encounter>,
    ) -> GridStats {
        let n = active.len();
        let w = cell_width(range_m);

        // Per-frame position snapshot: one interpolation per agent, in
        // `active` order — the same values (and the same `position` call)
        // the all-pairs sweep snapshots.
        self.pos.clear();
        self.pos.extend(active.iter().map(|&a| trace.position(a, t)));
        self.coords.clear();
        self.coords.extend(self.pos.iter().map(|p| {
            // f64 floor keeps the cell boundary exact for any finite
            // coordinate; the saturating `as i32` cast is monotone, so
            // extreme coordinates can only merge cells (a candidate
            // superset), never split neighbors apart.
            let cx = (f64::from(p.x) / w).floor() as i32;
            let cy = (f64::from(p.y) / w).floor() as i32;
            (cx, cy)
        }));

        // Bucket via sort: `(key, index)` entries sorted once gives
        // cells whose member indices are ascending — no hash map
        // (iteration order must be deterministic), no per-cell Vec.
        self.entries.clear();
        self.entries.extend(
            self.coords.iter().enumerate().map(|(i, &(cx, cy))| (cell_key(cx, cy), i as u32)),
        );
        self.entries.sort_unstable();
        self.keys.clear();
        self.starts.clear();
        for (e, &(key, _)) in self.entries.iter().enumerate() {
            if self.keys.last() != Some(&key) {
                self.keys.push(key);
                self.starts.push(e as u32);
            }
        }
        self.starts.push(n as u32);

        // Gather-and-test, in the sweep's (i, j) order.
        let mut stats =
            GridStats { candidates: 0, cells: self.keys.len() as u64 };
        for i in 0..n {
            let (cx, cy) = self.coords[i];
            self.cand.clear();
            for dx in -1i32..=1 {
                for dy in -1i32..=1 {
                    let key = cell_key(cx.saturating_add(dx), cy.saturating_add(dy));
                    let Ok(c) = self.keys.binary_search(&key) else { continue };
                    let next = c + 1;
                    let lo = self.starts[c] as usize;
                    let hi = self.starts[next] as usize;
                    for &(_, j) in &self.entries[lo..hi] {
                        if (j as usize) > i {
                            self.cand.push(j);
                        }
                    }
                }
            }
            // Saturated extreme cells can alias a neighbor offset onto the
            // same key; sorting ascending restores the sweep's j order and
            // dedup removes any such alias.
            self.cand.sort_unstable();
            self.cand.dedup();
            stats.candidates += self.cand.len() as u64;
            let pi = self.pos[i];
            for &j in &self.cand {
                let j = j as usize;
                // The identical f32 test the all-pairs sweep runs, on the
                // identical snapshot values.
                let d = pi.distance(self.pos[j]);
                if d <= range_m {
                    out.push(Encounter { a: active[i], b: active[j], distance: d });
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parked(n: usize, spacing: f32) -> MobilityTrace {
        let cols = (n as f64).sqrt().ceil() as usize;
        let positions = (0..n)
            .map(|k| vec![Vec2::new((k % cols) as f32 * spacing, (k / cols) as f32 * spacing); 3])
            .collect();
        MobilityTrace::new(2.0, positions)
    }

    fn assert_bit_identical(trace: &MobilityTrace, t: f64, range: f32, active: &[AgentId]) {
        let sweep = trace.encounters_at(t, range, active);
        let mut grid = EncounterGrid::new();
        let mut fast = Vec::new();
        grid.encounters_into(trace, t, range, active, &mut fast);
        assert_eq!(sweep.len(), fast.len(), "encounter count diverged");
        for (a, b) in sweep.iter().zip(&fast) {
            assert_eq!((a.a, a.b), (b.a, b.b), "pair order diverged");
            assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "distance bits diverged");
        }
    }

    #[test]
    fn matches_all_pairs_on_a_parked_lattice() {
        let trace = parked(100, 140.0);
        let active: Vec<AgentId> = (0..100).collect();
        for range in [1.0f32, 139.0, 140.0, 150.0, 199.0, 500.0, 5000.0] {
            assert_bit_identical(&trace, 0.25, range, &active);
        }
    }

    #[test]
    fn grid_finds_all_lattice_neighbors() {
        // 140 m spacing, 150 m range: interior nodes see exactly their
        // 4-neighborhood (the diagonal is ~198 m).
        let trace = parked(25, 140.0);
        let active: Vec<AgentId> = (0..25).collect();
        let mut grid = EncounterGrid::new();
        let mut out = Vec::new();
        let stats = grid.encounters_into(&trace, 0.0, 150.0, &active, &mut out);
        assert_eq!(out.len(), 2 * 5 * 4, "4-connected 5x5 lattice has 40 edges");
        // 140 m spacing in ~150 m cells: adjacent lattice columns can share
        // a cell, but the occupancy stays spread out.
        assert!(stats.cells >= 9 && stats.cells <= 25, "got {} cells", stats.cells);
        assert!(stats.candidates < 25 * 24 / 2, "must test fewer pairs than the sweep");
    }

    #[test]
    fn exact_range_boundary_is_included() {
        // Pin the boundary by making the range *equal* to the computed
        // f32 distance — `d <= range_m` must accept, in both arms.
        let p0 = Vec2::new(3.0, 4.0);
        let p1 = Vec2::new(153.7, 81.3);
        let d = p0.distance(p1);
        let trace = MobilityTrace::new(2.0, vec![vec![p0; 2], vec![p1; 2]]);
        assert_eq!(trace.encounters_at(0.0, d, &[0, 1]).len(), 1);
        assert_bit_identical(&trace, 0.0, d, &[0, 1]);
        // One ulp below the computed distance must exclude, in both arms.
        let below = f32::from_bits(d.to_bits() - 1);
        assert_eq!(trace.encounters_at(0.0, below, &[0, 1]).len(), 0);
        assert_bit_identical(&trace, 0.0, below, &[0, 1]);
    }

    #[test]
    fn cell_straddling_pairs_are_found() {
        // Two agents a hair under the range apart, positioned to straddle
        // a cell boundary wherever it falls.
        let r = 250.0f32;
        for offset in [-0.5f32, 0.0, 0.5, 100.0, 249.9] {
            let p0 = Vec2::new(offset, 0.0);
            let p1 = Vec2::new(offset + r - 0.01, 0.0);
            let trace = MobilityTrace::new(2.0, vec![vec![p0; 2], vec![p1; 2]]);
            assert_bit_identical(&trace, 0.0, r, &[0, 1]);
        }
    }

    #[test]
    fn degenerate_range_zero() {
        let trace =
            MobilityTrace::new(2.0, vec![vec![Vec2::ZERO; 2], vec![Vec2::ZERO; 2], vec![Vec2::new(1.0, 0.0); 2]]);
        // Coincident agents are in range at range 0; all arms agree.
        assert_bit_identical(&trace, 0.0, 0.0, &[0, 1, 2]);
        assert_eq!(trace.encounters_at(0.0, 0.0, &[0, 1, 2]).len(), 1);
    }

    #[test]
    fn active_subset_is_respected() {
        let trace = parked(16, 100.0);
        let active: Vec<AgentId> = vec![3, 7, 8, 15];
        assert_bit_identical(&trace, 0.25, 150.0, &active);
    }

    #[test]
    fn empty_active_set() {
        let trace = parked(4, 100.0);
        let mut grid = EncounterGrid::new();
        let mut out = vec![Encounter { a: 0, b: 1, distance: 0.0 }];
        let stats = grid.encounters_into(&trace, 0.0, 100.0, &[], &mut out);
        assert!(out.is_empty(), "out must be cleared");
        assert_eq!(stats, GridStats { candidates: 0, cells: 0 });
    }

    #[test]
    fn warm_grid_does_not_reallocate() {
        let trace = parked(64, 140.0);
        let active: Vec<AgentId> = (0..64).collect();
        let mut grid = EncounterGrid::new();
        let mut out = Vec::new();
        grid.encounters_into(&trace, 0.0, 150.0, &active, &mut out);
        for f in 1..4 {
            grid.encounters_into(&trace, f as f64 * 0.5, 150.0, &active, &mut out);
            assert!(!grid.grew(), "warm scan reallocated at frame {f}");
        }
    }
}
