//! Packetized transfer simulation.
//!
//! Transfers are chopped into 1500-byte packets sent at the channel
//! bandwidth; each packet is retransmitted up to three times on loss, and a
//! transfer aborts when its deadline (end of radio contact) passes — the
//! exact communication model of §IV-A.

use crate::geom::Vec2;
use crate::loss::LossModel;
use rand::{Rng, RngExt};
use std::collections::BTreeMap;

/// A packet that fails this many consecutive attempts marks the link dead
/// and aborts the transfer (sustained PER ≈ 1 — effectively out of range).
/// Below this, packets are retried persistently: the MAC's `max_retx` cap
/// bounds one retransmission *window*, and the reliable transport above it
/// keeps re-queueing the packet, each attempt costing airtime.
pub const DEAD_LINK_ATTEMPTS: u32 = 40;

/// Radio parameters (defaults are the paper's §IV-A values).
#[derive(Debug, Clone, PartialEq)]
pub struct RadioConfig {
    /// Payload bytes per packet.
    pub packet_bytes: usize,
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Maximum communication range in meters.
    pub range_m: f32,
    /// Maximum retransmissions per packet after the first attempt.
    pub max_retx: u32,
    /// Size of the assist message (route + bandwidth info) in bytes.
    pub assist_bytes: usize,
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self {
            packet_bytes: 1500,
            bandwidth_bps: 31e6,
            range_m: 500.0,
            max_retx: 3,
            assist_bytes: 184,
        }
    }
}

impl RadioConfig {
    /// Airtime of a single packet attempt in seconds.
    pub fn packet_time(&self) -> f64 {
        (self.packet_bytes * 8) as f64 / self.bandwidth_bps
    }

    /// Number of packets needed for `bytes` of payload.
    pub fn packets_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.packet_bytes)
    }

    /// Loss-free transfer time for `bytes` at full bandwidth.
    pub fn ideal_transfer_time(&self, bytes: usize) -> f64 {
        self.packets_for(bytes) as f64 * self.packet_time()
    }
}

/// Loss source applied to one transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferLoss {
    /// Distance-based link loss: the channel's [`LossModel`] evaluated at
    /// the live endpoint distance (packets beyond range always fail).
    Link,
    /// A fixed per-packet error rate, independent of distance — the paper's
    /// model for backend links ("a wireless loss uniformly sampled from the
    /// distance-loss lookup table").
    FixedPer(f32),
}

/// One requested payload movement: how many bytes, how much airtime may be
/// spent (measured from the transfer's first packet), and which loss source
/// applies. The single entry point behind [`Channel::run`]; both legacy
/// helpers ([`Channel::transfer`], [`Channel::transfer_fixed_per`]) build one
/// of these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferSpec {
    /// Payload size in bytes.
    pub bytes: usize,
    /// Airtime budget in seconds, measured from the transfer start.
    pub deadline: f64,
    /// Loss source for every packet of this transfer.
    pub loss: TransferLoss,
}

impl TransferSpec {
    /// A distance-based (link-loss) transfer.
    pub fn link(bytes: usize, deadline: f64) -> Self {
        Self { bytes, deadline, loss: TransferLoss::Link }
    }

    /// A fixed-PER transfer (backend links).
    pub fn fixed_per(bytes: usize, deadline: f64, per: f32) -> Self {
        Self { bytes, deadline, loss: TransferLoss::FixedPer(per) }
    }
}

/// Result of a simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferOutcome {
    /// All packets delivered; field is the elapsed time in seconds.
    Delivered {
        /// Total time from first packet to last delivery.
        elapsed: f64,
    },
    /// Transfer aborted: a packet exhausted retransmissions, or the deadline
    /// passed. Fields give elapsed time at abort and delivered payload bytes.
    Failed {
        /// Time spent before the abort.
        elapsed: f64,
        /// Payload bytes that made it across before the abort.
        delivered_bytes: usize,
    },
}

impl TransferOutcome {
    /// Whether the transfer fully completed.
    pub fn is_delivered(&self) -> bool {
        matches!(self, TransferOutcome::Delivered { .. })
    }

    /// Elapsed time in seconds regardless of outcome.
    pub fn elapsed(&self) -> f64 {
        match *self {
            TransferOutcome::Delivered { elapsed } => elapsed,
            TransferOutcome::Failed { elapsed, .. } => elapsed,
        }
    }
}

/// A point-to-point radio link between two (possibly moving) agents.
///
/// The distance between the endpoints over the course of a transfer is
/// supplied by a caller-provided sampler, so the channel composes with any
/// mobility source (live world or recorded trace).
#[derive(Debug, Clone)]
pub struct Channel {
    config: RadioConfig,
    loss: LossModel,
}

impl Channel {
    /// Creates a channel with the given radio parameters and loss model.
    pub fn new(config: RadioConfig, loss: LossModel) -> Self {
        Self { config, loss }
    }

    /// Radio parameters in use.
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// Loss model in use.
    pub fn loss_model(&self) -> &LossModel {
        &self.loss
    }

    /// Simulates transferring `bytes` of payload starting at time 0.
    ///
    /// `distance_at(t)` returns the endpoint distance `t` seconds into the
    /// transfer; packets sent beyond `self.config.range_m` always fail.
    /// Packets are retried persistently (each attempt costs airtime, so a
    /// lossy link has proportionally lower goodput); the transfer aborts
    /// when `deadline` passes or a packet fails [`DEAD_LINK_ATTEMPTS`]
    /// straight times (sustained dead link).
    ///
    /// Zero-byte transfers complete instantly.
    pub fn transfer<R, F>(
        &self,
        bytes: usize,
        deadline: f64,
        distance_at: F,
        rng: &mut R,
    ) -> TransferOutcome
    where
        R: Rng + ?Sized,
        F: FnMut(f64) -> f32,
    {
        self.run(&TransferSpec::link(bytes, deadline), distance_at, rng)
    }

    /// Simulates a transfer over a link whose loss is a fixed PER rather than
    /// distance-based — the paper's model for ProxSkip / RSU-L backend links
    /// under wireless loss ("a wireless loss uniformly sampled from the
    /// distance-loss lookup table").
    pub fn transfer_fixed_per<R: Rng + ?Sized>(
        &self,
        bytes: usize,
        deadline: f64,
        per: f32,
        rng: &mut R,
    ) -> TransferOutcome {
        self.run(&TransferSpec::fixed_per(bytes, deadline, per), |_| 0.0, rng)
    }

    /// Per-packet error rate under `loss` at endpoint distance `distance_m`.
    /// Distance-based transfers beyond `range_m` always lose the packet;
    /// fixed-PER transfers ignore the distance entirely. The event-driven
    /// runtime uses this to price packets of streaming transfers one medium
    /// window at a time.
    pub fn per_for(&self, loss: TransferLoss, distance_m: f32) -> f32 {
        match loss {
            TransferLoss::Link => {
                if distance_m > self.config.range_m {
                    1.0
                } else {
                    self.loss.per(distance_m)
                }
            }
            TransferLoss::FixedPer(per) => per,
        }
    }

    /// Per-packet error rate `t` seconds into a transfer described by
    /// `spec`, with the endpoint distance supplied by `distance_at`.
    fn packet_per<F: FnMut(f64) -> f32>(
        &self,
        loss: TransferLoss,
        t: f64,
        distance_at: &mut F,
    ) -> f32 {
        match loss {
            TransferLoss::FixedPer(per) => per,
            TransferLoss::Link => self.per_for(loss, distance_at(t)),
        }
    }

    /// The unified transfer entry point: simulates moving `spec.bytes`
    /// starting at time 0 under `spec.loss`, aborting when `spec.deadline`
    /// passes or a packet fails [`DEAD_LINK_ATTEMPTS`] straight times.
    ///
    /// `distance_at(t)` is only consulted for [`TransferLoss::Link`]
    /// transfers. Zero-byte transfers complete instantly.
    pub fn run<R, F>(&self, spec: &TransferSpec, mut distance_at: F, rng: &mut R) -> TransferOutcome
    where
        R: Rng + ?Sized,
        F: FnMut(f64) -> f32,
    {
        if spec.bytes == 0 {
            return TransferOutcome::Delivered { elapsed: 0.0 };
        }
        let n_packets = self.config.packets_for(spec.bytes);
        let pt = self.config.packet_time();
        let mut t = 0.0f64;
        for pkt in 0..n_packets {
            let mut delivered = false;
            for _attempt in 0..DEAD_LINK_ATTEMPTS {
                if t + pt > spec.deadline {
                    return TransferOutcome::Failed {
                        elapsed: t,
                        delivered_bytes: pkt * self.config.packet_bytes,
                    };
                }
                let per = self.packet_per(spec.loss, t, &mut distance_at);
                t += pt;
                if per <= 0.0 || rng.random::<f32>() >= per {
                    delivered = true;
                    break;
                }
            }
            if !delivered {
                return TransferOutcome::Failed {
                    elapsed: t,
                    delivered_bytes: pkt * self.config.packet_bytes,
                };
            }
        }
        TransferOutcome::Delivered { elapsed: t }
    }
}

/// Shared-medium contention parameters for the event-driven runtime's
/// streaming transfers.
///
/// Space is divided into square cells roughly one radio range on a side;
/// time into fixed airtime windows. All transfers whose endpoints' midpoint
/// falls in the same cell during the same window contend for that cell's
/// airtime: each gets a fair share of the window, and concurrent contenders
/// add a collision loss term on top of the link's own PER.
#[derive(Debug, Clone, PartialEq)]
pub struct MediumConfig {
    /// Cell edge length in meters (default: one radio range, 500 m).
    pub cell_m: f32,
    /// Airtime accounting window in seconds.
    pub window_s: f64,
    /// Maximum extra per-packet loss from collisions; the applied extra is
    /// `collision_loss * (1 - 1/contenders)`, zero for a lone transmitter.
    pub collision_loss: f32,
}

impl Default for MediumConfig {
    fn default() -> Self {
        Self { cell_m: 500.0, window_s: 0.25, collision_loss: 0.25 }
    }
}

/// Per-cell load observed during one accounting window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellLoad {
    /// Transfers that attempted airtime in the cell this window.
    pub contenders: u32,
    /// Total airtime booked in the cell this window, seconds.
    pub airtime: f64,
}

/// The shared wireless medium: per-cell airtime accounting over
/// double-buffered windows.
///
/// The *previous* window's load steers the current one — every transfer
/// stepping in window `w` reads the contender count cell-wise from window
/// `w - 1` (a fixed point of the usual listen-before-talk feedback), so the
/// order in which concurrent transfers step within a window cannot change
/// their outcomes. That property is what lets the runtime shard transfer
/// steps across worker threads without losing bit-for-bit determinism.
#[derive(Debug, Clone)]
pub struct Medium {
    cfg: MediumConfig,
    window: i64,
    current: BTreeMap<(i64, i64), CellLoad>,
    previous: BTreeMap<(i64, i64), CellLoad>,
}

impl Medium {
    /// Creates an idle medium.
    ///
    /// # Panics
    /// Panics if the cell size or window length is not positive.
    pub fn new(cfg: MediumConfig) -> Self {
        assert!(cfg.cell_m > 0.0, "medium cell size must be positive");
        assert!(cfg.window_s > 0.0, "medium window must be positive");
        Self { cfg, window: 0, current: BTreeMap::new(), previous: BTreeMap::new() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MediumConfig {
        &self.cfg
    }

    /// Index of the accounting window containing time `t`.
    pub fn window_index(&self, t: f64) -> i64 {
        (t / self.cfg.window_s).floor() as i64
    }

    /// The grid cell containing position `p`.
    pub fn cell_of(&self, p: Vec2) -> (i64, i64) {
        ((p.x / self.cfg.cell_m).floor() as i64, (p.y / self.cfg.cell_m).floor() as i64)
    }

    /// Rolls the double buffer forward so the current window contains `t`.
    /// Skipping more than one window clears both buffers (the medium was
    /// idle in between).
    pub fn advance_to(&mut self, t: f64) {
        let w = self.window_index(t);
        if w == self.window {
            return;
        }
        if w == self.window + 1 {
            self.previous = std::mem::take(&mut self.current);
        } else {
            self.previous.clear();
            self.current.clear();
        }
        self.window = w;
    }

    /// Contender count of `cell` in the previous window.
    pub fn contenders(&self, cell: (i64, i64)) -> u32 {
        self.previous.get(&cell).map_or(0, |l| l.contenders)
    }

    /// Airtime booked in `cell` during the previous window, seconds.
    pub fn booked_airtime(&self, cell: (i64, i64)) -> f64 {
        self.previous.get(&cell).map_or(0.0, |l| l.airtime)
    }

    /// Fair airtime share for one transfer in `cell` this window, based on
    /// the previous window's contender count. A lone transmitter gets the
    /// whole window.
    pub fn fair_share(&self, cell: (i64, i64)) -> f64 {
        self.cfg.window_s / self.contenders(cell).max(1) as f64
    }

    /// Extra per-packet loss from collisions in `cell`, based on the
    /// previous window's contender count.
    pub fn collision_per(&self, cell: (i64, i64)) -> f32 {
        let c = self.contenders(cell);
        if c <= 1 {
            0.0
        } else {
            self.cfg.collision_loss * (1.0 - 1.0 / c as f32)
        }
    }

    /// Registers one transfer as contending in `cell` this window.
    pub fn register(&mut self, cell: (i64, i64)) {
        self.current.entry(cell).or_default().contenders += 1;
    }

    /// Books `airtime` seconds of channel occupancy in `cell` this window.
    pub fn book(&mut self, cell: (i64, i64), airtime: f64) {
        self.current.entry(cell).or_default().airtime += airtime;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn default_config_matches_paper() {
        let c = RadioConfig::default();
        assert_eq!(c.packet_bytes, 1500);
        assert_eq!(c.bandwidth_bps, 31e6);
        assert_eq!(c.range_m, 500.0);
        assert_eq!(c.max_retx, 3);
        assert_eq!(c.assist_bytes, 184);
    }

    #[test]
    fn coreset_transfer_under_half_second() {
        // §IV-A: "the time to transmit a coreset is less than 0.5 seconds".
        let c = RadioConfig::default();
        let coreset_bytes = 600_000; // 0.6 MB
        assert!(c.ideal_transfer_time(coreset_bytes) < 0.5);
    }

    #[test]
    fn model_transfer_takes_tens_of_seconds() {
        // §III-B: exchanging a 52 MB model "can take tens of seconds".
        let c = RadioConfig::default();
        let t = c.ideal_transfer_time(52 * 1024 * 1024);
        assert!(t > 10.0 && t < 60.0, "52 MB at 31 Mbps should be ~14s, got {t}");
    }

    #[test]
    fn lossless_transfer_delivers_at_ideal_time() {
        let ch = Channel::new(RadioConfig::default(), LossModel::None);
        let out = ch.transfer(150_000, 100.0, |_| 10.0, &mut rng());
        match out {
            TransferOutcome::Delivered { elapsed } => {
                let ideal = ch.config().ideal_transfer_time(150_000);
                assert!((elapsed - ideal).abs() < 1e-9);
            }
            _ => panic!("lossless transfer must deliver"),
        }
    }

    #[test]
    fn deadline_aborts_transfer() {
        let ch = Channel::new(RadioConfig::default(), LossModel::None);
        let out = ch.transfer(52 * 1024 * 1024, 1.0, |_| 10.0, &mut rng());
        match out {
            TransferOutcome::Failed { elapsed, delivered_bytes } => {
                assert!(elapsed <= 1.0);
                assert!(delivered_bytes > 0);
                assert!(delivered_bytes < 52 * 1024 * 1024);
            }
            _ => panic!("deadline must abort"),
        }
    }

    #[test]
    fn out_of_range_fails_fast() {
        let ch = Channel::new(RadioConfig::default(), LossModel::None);
        let out = ch.transfer(3000, 100.0, |_| 600.0, &mut rng());
        assert!(!out.is_delivered(), "beyond range nothing can be delivered");
    }

    #[test]
    fn losses_slow_transfers_down() {
        let cfg = RadioConfig::default();
        let lossy = Channel::new(cfg.clone(), LossModel::distance_default());
        let clean = Channel::new(cfg, LossModel::None);
        let bytes = 1_500_000;
        // At 350 m PER is 0.40: expect noticeably more airtime than clean.
        let mut r = rng();
        let t_lossy = match lossy.transfer(bytes, 1000.0, |_| 350.0, &mut r) {
            TransferOutcome::Delivered { elapsed } => elapsed,
            TransferOutcome::Failed { .. } => return, // rare: retx exhausted is acceptable
        };
        let t_clean = clean.transfer(bytes, 1000.0, |_| 350.0, &mut r).elapsed();
        assert!(t_lossy > t_clean * 1.2, "lossy {t_lossy} vs clean {t_clean}");
    }

    #[test]
    fn zero_bytes_deliver_instantly() {
        let ch = Channel::new(RadioConfig::default(), LossModel::distance_default());
        let out = ch.transfer(0, 0.0, |_| 100.0, &mut rng());
        assert_eq!(out, TransferOutcome::Delivered { elapsed: 0.0 });
    }

    #[test]
    fn spec_entry_point_matches_legacy_helpers() {
        // The unified `run` must consume the RNG identically to the legacy
        // helpers — same seed, same outcome, bit for bit.
        let ch = Channel::new(RadioConfig::default(), LossModel::distance_default());
        let a = ch.transfer(600_000, 50.0, |_| 320.0, &mut rng());
        let b = ch.run(&TransferSpec::link(600_000, 50.0), |_| 320.0, &mut rng());
        assert_eq!(a, b);
        let a = ch.transfer_fixed_per(600_000, 50.0, 0.3, &mut rng());
        let b = ch.run(&TransferSpec::fixed_per(600_000, 50.0, 0.3), |_| 0.0, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn medium_cells_and_windows() {
        let m = Medium::new(MediumConfig::default());
        assert_eq!(m.cell_of(Vec2::new(10.0, 10.0)), (0, 0));
        assert_eq!(m.cell_of(Vec2::new(-10.0, 510.0)), (-1, 1));
        assert_eq!(m.window_index(0.0), 0);
        assert_eq!(m.window_index(0.26), 1);
    }

    #[test]
    fn medium_double_buffer_feeds_next_window() {
        let mut m = Medium::new(MediumConfig::default());
        let cell = (0, 0);
        m.register(cell);
        m.register(cell);
        m.book(cell, 0.2);
        // Current-window load is invisible until the buffer rolls.
        assert_eq!(m.contenders(cell), 0);
        assert_eq!(m.fair_share(cell), m.config().window_s);
        m.advance_to(0.3);
        assert_eq!(m.contenders(cell), 2);
        assert!((m.booked_airtime(cell) - 0.2).abs() < 1e-12);
        assert!((m.fair_share(cell) - m.config().window_s / 2.0).abs() < 1e-12);
        assert!(m.collision_per(cell) > 0.0);
        // Skipping windows entirely clears both buffers.
        m.advance_to(10.0);
        assert_eq!(m.contenders(cell), 0);
    }

    #[test]
    fn lone_transmitter_sees_no_collision_loss() {
        let mut m = Medium::new(MediumConfig::default());
        m.register((0, 0));
        m.advance_to(0.3);
        assert_eq!(m.collision_per((0, 0)), 0.0);
        assert_eq!(m.fair_share((0, 0)), m.config().window_s);
    }

    #[test]
    fn fair_share_splits_evenly_under_contention() {
        let mut m = Medium::new(MediumConfig::default());
        for _ in 0..8 {
            m.register((2, -1));
        }
        m.advance_to(0.3);
        assert!((m.fair_share((2, -1)) - m.config().window_s / 8.0).abs() < 1e-12);
        // Collision loss saturates below the configured maximum.
        assert!(m.collision_per((2, -1)) < m.config().collision_loss);
    }

    #[test]
    fn moving_apart_kills_transfer() {
        let ch = Channel::new(RadioConfig::default(), LossModel::distance_default());
        // Start at 480 m, recede at 20 m/s: leaves range in one second.
        let out = ch.transfer(
            10 * 1024 * 1024,
            1000.0,
            |t| 480.0 + 20.0 * t as f32,
            &mut rng(),
        );
        assert!(!out.is_delivered());
    }
}
