//! Packetized transfer simulation.
//!
//! Transfers are chopped into 1500-byte packets sent at the channel
//! bandwidth; each packet is retransmitted up to three times on loss, and a
//! transfer aborts when its deadline (end of radio contact) passes — the
//! exact communication model of §IV-A.

use crate::loss::LossModel;
use rand::{Rng, RngExt};

/// A packet that fails this many consecutive attempts marks the link dead
/// and aborts the transfer (sustained PER ≈ 1 — effectively out of range).
/// Below this, packets are retried persistently: the MAC's `max_retx` cap
/// bounds one retransmission *window*, and the reliable transport above it
/// keeps re-queueing the packet, each attempt costing airtime.
pub const DEAD_LINK_ATTEMPTS: u32 = 40;

/// Radio parameters (defaults are the paper's §IV-A values).
#[derive(Debug, Clone, PartialEq)]
pub struct RadioConfig {
    /// Payload bytes per packet.
    pub packet_bytes: usize,
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Maximum communication range in meters.
    pub range_m: f32,
    /// Maximum retransmissions per packet after the first attempt.
    pub max_retx: u32,
    /// Size of the assist message (route + bandwidth info) in bytes.
    pub assist_bytes: usize,
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self {
            packet_bytes: 1500,
            bandwidth_bps: 31e6,
            range_m: 500.0,
            max_retx: 3,
            assist_bytes: 184,
        }
    }
}

impl RadioConfig {
    /// Airtime of a single packet attempt in seconds.
    pub fn packet_time(&self) -> f64 {
        (self.packet_bytes * 8) as f64 / self.bandwidth_bps
    }

    /// Number of packets needed for `bytes` of payload.
    pub fn packets_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.packet_bytes)
    }

    /// Loss-free transfer time for `bytes` at full bandwidth.
    pub fn ideal_transfer_time(&self, bytes: usize) -> f64 {
        self.packets_for(bytes) as f64 * self.packet_time()
    }
}

/// Result of a simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferOutcome {
    /// All packets delivered; field is the elapsed time in seconds.
    Delivered {
        /// Total time from first packet to last delivery.
        elapsed: f64,
    },
    /// Transfer aborted: a packet exhausted retransmissions, or the deadline
    /// passed. Fields give elapsed time at abort and delivered payload bytes.
    Failed {
        /// Time spent before the abort.
        elapsed: f64,
        /// Payload bytes that made it across before the abort.
        delivered_bytes: usize,
    },
}

impl TransferOutcome {
    /// Whether the transfer fully completed.
    pub fn is_delivered(&self) -> bool {
        matches!(self, TransferOutcome::Delivered { .. })
    }

    /// Elapsed time in seconds regardless of outcome.
    pub fn elapsed(&self) -> f64 {
        match *self {
            TransferOutcome::Delivered { elapsed } => elapsed,
            TransferOutcome::Failed { elapsed, .. } => elapsed,
        }
    }
}

/// A point-to-point radio link between two (possibly moving) agents.
///
/// The distance between the endpoints over the course of a transfer is
/// supplied by a caller-provided sampler, so the channel composes with any
/// mobility source (live world or recorded trace).
#[derive(Debug, Clone)]
pub struct Channel {
    config: RadioConfig,
    loss: LossModel,
}

impl Channel {
    /// Creates a channel with the given radio parameters and loss model.
    pub fn new(config: RadioConfig, loss: LossModel) -> Self {
        Self { config, loss }
    }

    /// Radio parameters in use.
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// Loss model in use.
    pub fn loss_model(&self) -> &LossModel {
        &self.loss
    }

    /// Simulates transferring `bytes` of payload starting at time 0.
    ///
    /// `distance_at(t)` returns the endpoint distance `t` seconds into the
    /// transfer; packets sent beyond `self.config.range_m` always fail.
    /// Packets are retried persistently (each attempt costs airtime, so a
    /// lossy link has proportionally lower goodput); the transfer aborts
    /// when `deadline` passes or a packet fails [`DEAD_LINK_ATTEMPTS`]
    /// straight times (sustained dead link).
    ///
    /// Zero-byte transfers complete instantly.
    pub fn transfer<R, F>(
        &self,
        bytes: usize,
        deadline: f64,
        mut distance_at: F,
        rng: &mut R,
    ) -> TransferOutcome
    where
        R: Rng + ?Sized,
        F: FnMut(f64) -> f32,
    {
        if bytes == 0 {
            return TransferOutcome::Delivered { elapsed: 0.0 };
        }
        let n_packets = self.config.packets_for(bytes);
        let pt = self.config.packet_time();
        let mut t = 0.0f64;
        for pkt in 0..n_packets {
            let mut delivered = false;
            for _attempt in 0..DEAD_LINK_ATTEMPTS {
                if t + pt > deadline {
                    return TransferOutcome::Failed {
                        elapsed: t,
                        delivered_bytes: pkt * self.config.packet_bytes,
                    };
                }
                let d = distance_at(t);
                t += pt;
                let per = if d > self.config.range_m { 1.0 } else { self.loss.per(d) };
                if per <= 0.0 || rng.random::<f32>() >= per {
                    delivered = true;
                    break;
                }
            }
            if !delivered {
                return TransferOutcome::Failed {
                    elapsed: t,
                    delivered_bytes: pkt * self.config.packet_bytes,
                };
            }
        }
        TransferOutcome::Delivered { elapsed: t }
    }

    /// Simulates a transfer over a link whose loss is a fixed PER rather than
    /// distance-based — the paper's model for ProxSkip / RSU-L backend links
    /// under wireless loss ("a wireless loss uniformly sampled from the
    /// distance-loss lookup table").
    pub fn transfer_fixed_per<R: Rng + ?Sized>(
        &self,
        bytes: usize,
        deadline: f64,
        per: f32,
        rng: &mut R,
    ) -> TransferOutcome {
        if bytes == 0 {
            return TransferOutcome::Delivered { elapsed: 0.0 };
        }
        let n_packets = self.config.packets_for(bytes);
        let pt = self.config.packet_time();
        let mut t = 0.0f64;
        for pkt in 0..n_packets {
            let mut delivered = false;
            for _attempt in 0..DEAD_LINK_ATTEMPTS {
                if t + pt > deadline {
                    return TransferOutcome::Failed {
                        elapsed: t,
                        delivered_bytes: pkt * self.config.packet_bytes,
                    };
                }
                t += pt;
                if per <= 0.0 || rng.random::<f32>() >= per {
                    delivered = true;
                    break;
                }
            }
            if !delivered {
                return TransferOutcome::Failed {
                    elapsed: t,
                    delivered_bytes: pkt * self.config.packet_bytes,
                };
            }
        }
        TransferOutcome::Delivered { elapsed: t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn default_config_matches_paper() {
        let c = RadioConfig::default();
        assert_eq!(c.packet_bytes, 1500);
        assert_eq!(c.bandwidth_bps, 31e6);
        assert_eq!(c.range_m, 500.0);
        assert_eq!(c.max_retx, 3);
        assert_eq!(c.assist_bytes, 184);
    }

    #[test]
    fn coreset_transfer_under_half_second() {
        // §IV-A: "the time to transmit a coreset is less than 0.5 seconds".
        let c = RadioConfig::default();
        let coreset_bytes = 600_000; // 0.6 MB
        assert!(c.ideal_transfer_time(coreset_bytes) < 0.5);
    }

    #[test]
    fn model_transfer_takes_tens_of_seconds() {
        // §III-B: exchanging a 52 MB model "can take tens of seconds".
        let c = RadioConfig::default();
        let t = c.ideal_transfer_time(52 * 1024 * 1024);
        assert!(t > 10.0 && t < 60.0, "52 MB at 31 Mbps should be ~14s, got {t}");
    }

    #[test]
    fn lossless_transfer_delivers_at_ideal_time() {
        let ch = Channel::new(RadioConfig::default(), LossModel::None);
        let out = ch.transfer(150_000, 100.0, |_| 10.0, &mut rng());
        match out {
            TransferOutcome::Delivered { elapsed } => {
                let ideal = ch.config().ideal_transfer_time(150_000);
                assert!((elapsed - ideal).abs() < 1e-9);
            }
            _ => panic!("lossless transfer must deliver"),
        }
    }

    #[test]
    fn deadline_aborts_transfer() {
        let ch = Channel::new(RadioConfig::default(), LossModel::None);
        let out = ch.transfer(52 * 1024 * 1024, 1.0, |_| 10.0, &mut rng());
        match out {
            TransferOutcome::Failed { elapsed, delivered_bytes } => {
                assert!(elapsed <= 1.0);
                assert!(delivered_bytes > 0);
                assert!(delivered_bytes < 52 * 1024 * 1024);
            }
            _ => panic!("deadline must abort"),
        }
    }

    #[test]
    fn out_of_range_fails_fast() {
        let ch = Channel::new(RadioConfig::default(), LossModel::None);
        let out = ch.transfer(3000, 100.0, |_| 600.0, &mut rng());
        assert!(!out.is_delivered(), "beyond range nothing can be delivered");
    }

    #[test]
    fn losses_slow_transfers_down() {
        let cfg = RadioConfig::default();
        let lossy = Channel::new(cfg.clone(), LossModel::distance_default());
        let clean = Channel::new(cfg, LossModel::None);
        let bytes = 1_500_000;
        // At 350 m PER is 0.40: expect noticeably more airtime than clean.
        let mut r = rng();
        let t_lossy = match lossy.transfer(bytes, 1000.0, |_| 350.0, &mut r) {
            TransferOutcome::Delivered { elapsed } => elapsed,
            TransferOutcome::Failed { .. } => return, // rare: retx exhausted is acceptable
        };
        let t_clean = clean.transfer(bytes, 1000.0, |_| 350.0, &mut r).elapsed();
        assert!(t_lossy > t_clean * 1.2, "lossy {t_lossy} vs clean {t_clean}");
    }

    #[test]
    fn zero_bytes_deliver_instantly() {
        let ch = Channel::new(RadioConfig::default(), LossModel::distance_default());
        let out = ch.transfer(0, 0.0, |_| 100.0, &mut rng());
        assert_eq!(out, TransferOutcome::Delivered { elapsed: 0.0 });
    }

    #[test]
    fn moving_apart_kills_transfer() {
        let ch = Channel::new(RadioConfig::default(), LossModel::distance_default());
        // Start at 480 m, recede at 20 m/s: leaves range in one second.
        let out = ch.transfer(
            10 * 1024 * 1024,
            1000.0,
            |t| 480.0 + 20.0 * t as f32,
            &mut rng(),
        );
        assert!(!out.is_delivered());
    }
}
