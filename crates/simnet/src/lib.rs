//! # simnet — simulated V2V wireless networking
//!
//! The LbChat paper evaluates over an 802.11bd-class vehicle-to-vehicle radio
//! simulated with: 1500-byte packets, 31 Mbps bandwidth, 500 m maximum range,
//! up to three retransmissions per packet, and a distance→loss lookup table
//! (Anwar et al., VTC 2019). This crate implements that radio plus the
//! route-based estimators the paper's Eq. (5) priority score needs:
//!
//! * [`geom`] — 2-D geometry primitives shared across the workspace.
//! * [`loss`] — the distance→packet-error-rate lookup table.
//! * [`channel`] — packetized transfer simulation with retransmissions and
//!   deadline (contact end) handling.
//! * [`trace`] — mobility traces: agent positions sampled at a fixed frame
//!   rate, encounter detection within radio range.
//! * [`contact`] — contact-duration prediction and delivery-probability
//!   estimation from shared future routes (the 184-byte assist messages).
//! * [`grid`] — spatial-hash encounter discovery, bit-identical to the
//!   all-pairs sweep it replaces on the runtime hot path.
//!
//! All randomness is caller-seeded; the crate never touches a global RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod contact;
pub mod geom;
pub mod grid;
pub mod loss;
pub mod profiles;
pub mod trace;

pub use channel::{Channel, RadioConfig, TransferOutcome};
pub use contact::{ContactEstimate, ContactPredictor};
pub use geom::Vec2;
pub use grid::{EncounterGrid, GridStats};
pub use loss::LossModel;
pub use trace::{AgentId, Encounter, MobilityTrace, RouteCache};
