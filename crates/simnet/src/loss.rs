//! Distance-based wireless loss.
//!
//! The paper estimates wireless loss with "a distance-based wireless loss
//! model \[RoadTrain\], which utilizes a distance-loss lookup table based on
//! \[Anwar et al.\]". We reproduce that shape: negligible packet error rate
//! (PER) at close range, rising steeply toward the 500 m maximum
//! communication range.

/// The default distance→PER lookup table, `(distance_m, per)` pairs in
/// increasing distance order. Values follow the 802.11bd highway evaluation
/// shape of Anwar et al. (VTC 2019).
pub const DEFAULT_LOOKUP: &[(f32, f32)] = &[
    (0.0, 0.005),
    (50.0, 0.01),
    (100.0, 0.03),
    (150.0, 0.06),
    (200.0, 0.10),
    (250.0, 0.16),
    (300.0, 0.26),
    (350.0, 0.40),
    (400.0, 0.58),
    (450.0, 0.78),
    (500.0, 0.95),
];

/// A wireless loss model mapping transmitter–receiver distance to per-packet
/// error probability.
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// The idealistic, loss-free channel of Fig. 2(a) / Table II.
    None,
    /// Distance-based lookup with linear interpolation (Fig. 2(b) /
    /// Table III). Distances beyond the last entry get PER 1.0.
    Distance(Vec<(f32, f32)>),
}

impl LossModel {
    /// The paper's default distance-based model.
    pub fn distance_default() -> Self {
        LossModel::Distance(DEFAULT_LOOKUP.to_vec())
    }

    /// Packet error rate at `distance_m` meters.
    ///
    /// Lookup tables interpolate linearly between entries; distances past the
    /// last entry lose every packet (out of range).
    pub fn per(&self, distance_m: f32) -> f32 {
        match self {
            LossModel::None => 0.0,
            LossModel::Distance(table) => {
                if table.is_empty() {
                    return 0.0;
                }
                if distance_m <= table[0].0 {
                    return table[0].1;
                }
                for w in table.windows(2) {
                    let (d0, p0) = w[0];
                    let (d1, p1) = w[1];
                    if distance_m <= d1 {
                        let t = (distance_m - d0) / (d1 - d0);
                        return p0 + t * (p1 - p0);
                    }
                }
                1.0
            }
        }
    }

    /// Probability a packet is delivered within `1 + retx` attempts at
    /// `distance_m`: `1 - per^(1 + retx)`.
    pub fn delivery_prob(&self, distance_m: f32, retx: u32) -> f32 {
        let per = self.per(distance_m);
        1.0 - per.powi(retx as i32 + 1)
    }

    /// Samples one PER uniformly from the table entries — how the paper
    /// models the backend links of ProxSkip and RSU-L under wireless loss
    /// ("communications suffer from a wireless loss uniformly sampled from
    /// the distance-loss lookup table").
    ///
    /// Returns 0 for [`LossModel::None`].
    pub fn sample_uniform_per<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        match self {
            LossModel::None => 0.0,
            LossModel::Distance(table) => {
                if table.is_empty() {
                    0.0
                } else {
                    use rand::RngExt;
                    table[rng.random_range(0..table.len())].1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_is_lossless() {
        assert_eq!(LossModel::None.per(100.0), 0.0);
        assert_eq!(LossModel::None.delivery_prob(499.0, 0), 1.0);
    }

    #[test]
    fn lookup_monotone_in_distance() {
        let m = LossModel::distance_default();
        let mut last = -1.0;
        for d in (0..=550).step_by(10) {
            let p = m.per(d as f32);
            assert!(p >= last, "PER must not decrease with distance");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn interpolation_between_entries() {
        let m = LossModel::Distance(vec![(0.0, 0.0), (100.0, 0.2)]);
        assert!((m.per(50.0) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_loses_everything() {
        let m = LossModel::distance_default();
        assert_eq!(m.per(501.0), 1.0);
        assert_eq!(m.per(10_000.0), 1.0);
    }

    #[test]
    fn retransmissions_boost_delivery() {
        let m = LossModel::distance_default();
        let p0 = m.delivery_prob(400.0, 0);
        let p3 = m.delivery_prob(400.0, 3);
        assert!(p3 > p0);
        // PER 0.58 at 400 m: delivery within 4 attempts = 1 - 0.58^4
        assert!((p3 - (1.0 - 0.58f32.powi(4))).abs() < 1e-5);
    }

    #[test]
    fn uniform_sample_comes_from_table() {
        let m = LossModel::distance_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let p = m.sample_uniform_per(&mut rng);
            assert!(DEFAULT_LOOKUP.iter().any(|&(_, v)| (v - p).abs() < 1e-9));
        }
    }
}
