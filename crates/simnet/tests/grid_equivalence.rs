//! Equivalence proofs for the optimized contact-discovery arms.
//!
//! The spatial-hash grid and the fused contact estimate each retain a
//! verbatim reference arm ([`MobilityTrace::encounters_at`] and
//! [`ContactPredictor::estimate_reference`]); these proptests pin the
//! optimized versions **bit-identical** to them over random fleets,
//! ranges, cell-straddling geometry, and the exact `d == range_m`
//! boundary.

use proptest::prelude::*;
use simnet::contact::ContactPredictor;
use simnet::geom::Vec2;
use simnet::grid::EncounterGrid;
use simnet::loss::LossModel;
use simnet::trace::{AgentId, Encounter, MobilityTrace, RouteCache};

/// Asserts the grid's encounter list is byte-for-byte the sweep's.
fn assert_arms_agree(trace: &MobilityTrace, t: f64, range: f32, active: &[AgentId]) -> Result<(), TestCaseError> {
    let sweep = trace.encounters_at(t, range, active);
    let mut grid = EncounterGrid::new();
    let mut fast: Vec<Encounter> = Vec::new();
    grid.encounters_into(trace, t, range, active, &mut fast);
    prop_assert_eq!(sweep.len(), fast.len(), "encounter counts diverged");
    for (s, f) in sweep.iter().zip(&fast) {
        prop_assert_eq!((s.a, s.b), (f.a, f.b), "pair order diverged");
        prop_assert_eq!(s.distance.to_bits(), f.distance.to_bits(), "distance bits diverged");
    }
    Ok(())
}

/// A two-frame trace from flat `(x, y)` pairs (agents parked).
fn parked_trace(points: &[(f32, f32)]) -> MobilityTrace {
    let positions =
        points.iter().map(|&(x, y)| vec![Vec2::new(x, y); 2]).collect();
    MobilityTrace::new(2.0, positions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_matches_all_pairs_on_random_fleets(
        points in prop::collection::vec((-2000.0f32..2000.0, -2000.0f32..2000.0), 2..80),
        range in 1.0f32..800.0,
        t in 0.0f64..0.5,
    ) {
        let trace = parked_trace(&points);
        let active: Vec<AgentId> = (0..points.len()).collect();
        assert_arms_agree(&trace, t, range, &active)?;
    }

    #[test]
    fn grid_matches_all_pairs_when_pairs_straddle_cells(
        // Pairs placed range·(1 ± ε) apart around an arbitrary origin:
        // every pair sits near the accept boundary and near a cell wall.
        origin in -5000.0f32..5000.0,
        range in 10.0f32..600.0,
        eps in -0.02f32..0.02,
        angle in 0.0f32..core::f32::consts::TAU,
    ) {
        let d = range * (1.0 + eps);
        let p0 = (origin, origin * 0.5);
        let p1 = (origin + d * angle.cos(), origin * 0.5 + d * angle.sin());
        let trace = parked_trace(&[p0, p1, (origin + range, origin * 0.5 - range)]);
        assert_arms_agree(&trace, 0.0, range, &[0, 1, 2])?;
    }

    #[test]
    fn grid_includes_the_exact_range_boundary(
        x0 in -1000.0f32..1000.0,
        y0 in -1000.0f32..1000.0,
        x1 in -1000.0f32..1000.0,
        y1 in -1000.0f32..1000.0,
    ) {
        let p0 = Vec2::new(x0, y0);
        let p1 = Vec2::new(x1, y1);
        let d = p0.distance(p1);
        prop_assume!(d > 0.0 && d.is_finite());
        let trace = parked_trace(&[(x0, y0), (x1, y1)]);
        // Range equal to the computed f32 distance: `d <= range_m` accepts
        // in the sweep, so the grid must emit the identical encounter…
        prop_assert_eq!(trace.encounters_at(0.0, d, &[0, 1]).len(), 1);
        assert_arms_agree(&trace, 0.0, d, &[0, 1])?;
        // …and one ulp below must reject in both arms.
        let below = f32::from_bits(d.to_bits() - 1);
        prop_assert_eq!(trace.encounters_at(0.0, below, &[0, 1]).len(), 0);
        assert_arms_agree(&trace, 0.0, below, &[0, 1])?;
    }

    #[test]
    fn encounters_into_matches_encounters_at(
        points in prop::collection::vec((-500.0f32..500.0, -500.0f32..500.0), 2..40),
        range in 1.0f32..700.0,
    ) {
        let trace = parked_trace(&points);
        let active: Vec<AgentId> = (0..points.len()).collect();
        let mut buf = Vec::new();
        trace.encounters_into(0.0, range, &active, &mut buf);
        prop_assert_eq!(buf, trace.encounters_at(0.0, range, &active));
    }

    #[test]
    fn fused_estimate_is_bit_identical_to_two_pass(
        dist in 0.0f32..900.0,
        speed_x in -25.0f32..25.0,
        speed_y in -10.0f32..10.0,
        range in 50.0f32..600.0,
        dt in 0.1f64..2.0,
        len in 1usize..200,
    ) {
        // Straight-line routes cover never-separate, immediate-separate,
        // and mid-route separation depending on the draw.
        let route_a: Vec<Vec2> = (0..len).map(|_| Vec2::ZERO).collect();
        let route_b: Vec<Vec2> = (0..len)
            .map(|k| Vec2::new(dist + speed_x * (k as f64 * dt) as f32, speed_y * (k as f64 * dt) as f32))
            .collect();
        let p = ContactPredictor::new(range, 3, LossModel::distance_default(), 30.0);
        let fused = p.estimate(&route_a, &route_b, dt);
        let two_pass = p.estimate_reference(&route_a, &route_b, dt);
        prop_assert_eq!(fused.duration.to_bits(), two_pass.duration.to_bits());
        prop_assert_eq!(fused.z.to_bits(), two_pass.z.to_bits());
        prop_assert_eq!(fused.p.to_bits(), two_pass.p.to_bits());
    }

    #[test]
    fn fused_estimate_matches_on_reentrant_routes(
        amplitude in 100.0f32..900.0,
        period in 4.0f32..60.0,
        range in 100.0f32..500.0,
    ) {
        // Oscillating separation drifts in and out of range repeatedly —
        // the shape that exercises the fused sweep's fallback window logic.
        let route_a: Vec<Vec2> = (0..121).map(|_| Vec2::ZERO).collect();
        let route_b: Vec<Vec2> = (0..121)
            .map(|k| Vec2::new(amplitude * (k as f32 * core::f32::consts::TAU / period).sin().abs(), 0.0))
            .collect();
        let p = ContactPredictor::new(range, 3, LossModel::distance_default(), 30.0);
        let fused = p.estimate(&route_a, &route_b, 0.5);
        let two_pass = p.estimate_reference(&route_a, &route_b, 0.5);
        prop_assert_eq!(fused.duration.to_bits(), two_pass.duration.to_bits());
        prop_assert_eq!(fused.z.to_bits(), two_pass.z.to_bits());
        prop_assert_eq!(fused.p.to_bits(), two_pass.p.to_bits());
    }

    #[test]
    fn route_cache_pair_is_bit_identical_to_future(
        n_agents in 2usize..12,
        samples in 1usize..40,
        t in 0.0f64..10.0,
        dt in 0.1f64..1.0,
    ) {
        let positions: Vec<Vec<Vec2>> = (0..n_agents)
            .map(|a| (0..41).map(|k| Vec2::new((a * 13 + k) as f32, (a * 7) as f32 * 0.5)).collect())
            .collect();
        let trace = MobilityTrace::new(2.0, positions);
        let mut cache = RouteCache::new(n_agents, samples);
        cache.begin_frame();
        for a in 0..n_agents {
            for b in (a + 1)..n_agents {
                let (ra, rb) = cache.pair(&trace, a, b, t, dt);
                let (fa, fb) = (trace.future(a, t, dt, samples), trace.future(b, t, dt, samples));
                for (got, want) in ra.iter().zip(&fa).chain(rb.iter().zip(&fb)) {
                    prop_assert_eq!(got.x.to_bits(), want.x.to_bits());
                    prop_assert_eq!(got.y.to_bits(), want.y.to_bits());
                }
            }
        }
    }
}

/// The grid's steady-state contract: after a cold first scan, repeated
/// scans over the same fleet (moving through time) allocate nothing —
/// the mirror of PR 8's `route_grows()` regression test.
#[test]
fn grid_and_route_cache_reach_zero_steady_state_allocation() {
    let n = 200;
    let cols = 15usize;
    let positions: Vec<Vec<Vec2>> = (0..n)
        .map(|k| {
            (0..21)
                .map(|f| {
                    Vec2::new(
                        (k % cols) as f32 * 120.0 + f as f32 * 2.5,
                        (k / cols) as f32 * 120.0,
                    )
                })
                .collect()
        })
        .collect();
    let trace = MobilityTrace::new(2.0, positions);
    let active: Vec<AgentId> = (0..n).collect();
    let mut grid = EncounterGrid::new();
    let mut encounters = Vec::new();
    let mut routes = RouteCache::new(n, 24);

    // Cold frame: everything grows.
    routes.begin_frame();
    grid.encounters_into(&trace, 0.0, 150.0, &active, &mut encounters);
    for &e in &encounters {
        let _ = routes.pair(&trace, e.a, e.b, 0.0, 0.5);
    }

    // Warm frames: the fleet keeps moving, buffers must not.
    for f in 1..8 {
        let t = f as f64 * 0.5;
        routes.begin_frame();
        grid.encounters_into(&trace, t, 150.0, &active, &mut encounters);
        assert!(!grid.grew(), "grid reallocated on warm frame {f}");
        for &e in &encounters {
            let _ = routes.pair(&trace, e.a, e.b, t, 0.5);
        }
        assert!(!routes.grew(), "route cache reallocated on warm frame {f}");
    }
}
