//! Property-based tests over the radio simulator's invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use simnet::channel::{Channel, RadioConfig};
use simnet::contact::ContactPredictor;
use simnet::geom::Vec2;
use simnet::loss::LossModel;
use simnet::trace::MobilityTrace;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn per_is_a_probability_everywhere(d in 0.0f32..2000.0) {
        let m = LossModel::distance_default();
        let p = m.per(d);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&m.delivery_prob(d, 3)));
    }

    #[test]
    fn transfer_never_beats_ideal_time(bytes in 1usize..2_000_000, d in 0.0f32..400.0) {
        let cfg = RadioConfig::default();
        let ideal = cfg.ideal_transfer_time(bytes);
        let ch = Channel::new(cfg, LossModel::distance_default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let out = ch.transfer(bytes, f64::INFINITY, |_| d, &mut rng);
        prop_assert!(out.elapsed() >= ideal - 1e-9,
            "elapsed {} < ideal {}", out.elapsed(), ideal);
    }

    #[test]
    fn lossless_transfer_always_delivers_exactly_at_ideal(bytes in 1usize..1_000_000) {
        let cfg = RadioConfig::default();
        let ideal = cfg.ideal_transfer_time(bytes);
        let ch = Channel::new(cfg, LossModel::None);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let out = ch.transfer(bytes, f64::INFINITY, |_| 100.0, &mut rng);
        prop_assert!(out.is_delivered());
        prop_assert!((out.elapsed() - ideal).abs() < 1e-9);
    }

    #[test]
    fn deadline_is_respected(bytes in 1usize..10_000_000, deadline in 0.0f64..5.0) {
        let ch = Channel::new(RadioConfig::default(), LossModel::distance_default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let out = ch.transfer(bytes, deadline, |_| 200.0, &mut rng);
        prop_assert!(out.elapsed() <= deadline + 1e-9);
    }

    #[test]
    fn fixed_per_transfer_matches_distance_free_behavior(bytes in 1usize..200_000) {
        let ch = Channel::new(RadioConfig::default(), LossModel::None);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let out = ch.transfer_fixed_per(bytes, f64::INFINITY, 0.0, &mut rng);
        prop_assert!(out.is_delivered());
    }

    #[test]
    fn trace_interpolation_is_bounded(
        x0 in 0.0f32..1000.0,
        x1 in 0.0f32..1000.0,
        t in 0.0f64..20.0,
    ) {
        let frames = 41; // 20 s at 2 fps
        let series: Vec<Vec2> = (0..frames)
            .map(|k| Vec2::new(x0 + (x1 - x0) * k as f32 / (frames - 1) as f32, 0.0))
            .collect();
        let trace = MobilityTrace::new(2.0, vec![series]);
        let p = trace.position(0, t);
        let (lo, hi) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        prop_assert!(p.x >= lo - 1e-3 && p.x <= hi + 1e-3);
    }

    #[test]
    fn contact_duration_monotone_in_range(
        speed in 1.0f32..30.0,
        start in 0.0f32..400.0,
    ) {
        // A receding vehicle: larger radio range always means a contact at
        // least as long.
        let route_a: Vec<Vec2> = (0..241).map(|_| Vec2::ZERO).collect();
        let route_b: Vec<Vec2> =
            (0..241).map(|k| Vec2::new(start + speed * k as f32 * 0.5, 0.0)).collect();
        let short = ContactPredictor::new(300.0, 3, LossModel::None, 30.0)
            .contact_duration(&route_a, &route_b, 0.5);
        let long = ContactPredictor::new(500.0, 3, LossModel::None, 30.0)
            .contact_duration(&route_a, &route_b, 0.5);
        prop_assert!(long >= short);
    }

    #[test]
    fn estimate_fields_are_sane(
        dist in 0.0f32..700.0,
        speed in -20.0f32..20.0,
    ) {
        let route_a: Vec<Vec2> = (0..121).map(|_| Vec2::ZERO).collect();
        let route_b: Vec<Vec2> =
            (0..121).map(|k| Vec2::new(dist + speed * k as f32 * 0.5, 0.0)).collect();
        let p = ContactPredictor::new(500.0, 3, LossModel::distance_default(), 30.0);
        let est = p.estimate(&route_a, &route_b, 0.5);
        prop_assert!(est.duration >= 0.0);
        prop_assert!((0.0..=1.0).contains(&est.z));
        prop_assert!((0.0..=1.0).contains(&est.p));
    }
}

#[test]
fn lossy_links_have_lower_goodput_proportional_to_per() {
    // Statistical check: airtime inflation ≈ 1 / (1 - PER).
    let cfg = RadioConfig::default();
    let ideal = cfg.ideal_transfer_time(1_500_000);
    let ch = Channel::new(cfg, LossModel::distance_default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    // 300 m -> PER 0.26.
    let out = ch.transfer(1_500_000, f64::INFINITY, |_| 300.0, &mut rng);
    assert!(out.is_delivered());
    let inflation = out.elapsed() / ideal;
    let expected = 1.0 / (1.0 - 0.26);
    assert!(
        (inflation - expected).abs() < 0.08,
        "inflation {inflation:.3} vs expected {expected:.3}"
    );
}
