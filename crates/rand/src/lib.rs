//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the exact API subset it uses: the [`Rng`]/[`RngExt`]
//! traits, [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! splitmix64 — deterministic, platform-independent, and comfortably good
//! enough for simulation randomness (this workspace never needs
//! cryptographic strength).
//!
//! Semantics match what the workspace relies on, not bit-streams of the
//! real crate: all results in this repository are produced and compared
//! under this generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words. The only method generators implement.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker trait mirroring `rand::Rng`; blanket-implemented for every
/// [`RngCore`] so generic bounds like `R: Rng + ?Sized` work unchanged.
pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift keeps low-bit artifacts out of small spans;
                // the residual bias over a u64 draw is negligible here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (s as i128 + hi) as $t
            }
        }
    )+};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )+};
}
float_range!(f32, f64);

/// Ergonomic sampling methods, blanket-implemented for every generator
/// (mirrors the `rand` 0.9+ `Rng` method surface under the name this
/// workspace imports).
pub trait RngExt: RngCore {
    /// A value from the type's standard distribution (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.random::<f64>() < p
    }
}
impl<R: RngCore + ?Sized> RngExt for R {}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64: seeds the xoshiro state and decorrelates nearby seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the real crate's ChaCha12 — see the crate docs; every recorded
    /// result in this repository uses this generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            // xoshiro requires a not-all-zero state; splitmix64 cannot
            // produce four zero words from any seed, but stay defensive.
            if s == [0; 4] {
                return Self { s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3] };
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling for slices (the `shuffle` subset of the real trait).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-2.5f32..4.5);
            assert!((-2.5..4.5).contains(&f));
            let n = rng.random_range(-8i64..-2);
            assert!((-8..-2).contains(&n));
        }
    }

    #[test]
    fn range_mean_is_roughly_central() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 =
            (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let imean: f64 =
            (0..n).map(|_| rng.random_range(0..10usize) as f64).sum::<f64>() / n as f64;
        assert!((imean - 4.5).abs() < 0.1, "integer mean {imean}");
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn works_through_unsized_refs() {
        // The workspace uses `R: Rng + ?Sized` bounds; make sure dyn works.
        fn draw(rng: &mut dyn RngCore) -> usize {
            rng.random_range(0..5)
        }
        let mut rng = StdRng::seed_from_u64(6);
        assert!(draw(&mut rng) < 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rng.random_range(5..5usize);
    }
}
