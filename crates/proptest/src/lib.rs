//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, range and [`collection`] strategies,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], and
//! [`ProptestConfig::with_cases`]. Inputs are drawn uniformly at random
//! from each strategy with a deterministic per-test seed.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking** — a failing case reports the exact inputs that
//!   failed (they are `Debug`-printed) but is not minimized.
//! * **No persistence** — `proptest-regressions` files are ignored.
//! * Case generation is uniform rather than edge-case-biased.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies and generated test closures (re-exported so
/// the [`proptest!`] expansion can name it via `$crate::`).
pub use rand::rngs::StdRng;

/// Runner configuration (the `with_cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert*` failed with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject,
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value: std::fmt::Debug;

    /// Draws one input.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Tuples of strategies generate tuples of values, mirroring the real
/// crate's composite inputs (`(0..10, 0.0f32..1.0)`).
macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )+};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy producing one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use std::collections::BTreeMap;

    /// Sizes accepted by [`vec()`]/[`btree_map`]: an exact `usize` or a range.
    pub trait IntoSizeRange {
        /// Lower and upper bound (exclusive) of the collection length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty collection size range");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::RngExt;
            let n = rng.random_range(self.lo..self.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with sizes drawn from `size` (distinct keys
    /// permitting; duplicate key draws shrink the map like the real crate).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl IntoSizeRange,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty collection size range");
        BTreeMapStrategy { key, value, lo, hi }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        lo: usize,
        hi: usize,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
            use rand::RngExt;
            let n = rng.random_range(self.lo..self.hi);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.sample(rng), self.value.sample(rng));
            }
            out
        }
    }
}

/// Runs `cases` random executions of `case`, seeding input generation
/// deterministically from the test name. Called by [`proptest!`]-generated
/// tests, not directly.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    // FNV-1a over the test name: each test gets its own input stream, and
    // reruns are identical.
    let mut seed = 0xCBF2_9CE4_8422_2325u64;
    for &b in name.as_bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut executed = 0u32;
    let mut attempts = 0u32;
    // Cap rejects like the real runner, so a bad prop_assume can't loop
    // forever.
    let max_attempts = config.cases.saturating_mul(64).max(1024);
    while executed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: too many prop_assume! rejections ({attempts} attempts for {executed} cases)"
        );
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case {executed}: {msg}")
            }
        }
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Map,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// `prop::collection::vec(...)` paths resolve through this alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current case unless `cond` holds (with an optional message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}; {}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips the current case (drawing fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(input in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random strategy draws.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                $crate::run_cases(
                    stringify!($name),
                    &config,
                    |__proptest_rng: &mut $crate::StdRng| -> $crate::TestCaseResult {
                        $(let $arg = $crate::Strategy::sample(&($strategy), __proptest_rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    // Default config.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 0.0f32..5.0, n in 3usize..9) {
            prop_assert!((0.0..5.0).contains(&x));
            prop_assert!((3..9).contains(&n), "n was {}", n);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(-1.0f64..1.0, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(0u32..10, 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn btree_map_strategy(m in prop::collection::btree_map(0u32..1000, -1.0f32..1.0, 0..64)) {
            prop_assert!(m.len() < 64);
        }

        #[test]
        fn assume_skips(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn mut_bindings_work(mut v in prop::collection::vec(0i32..100, 1..20)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn tuple_strategies_compose((a, b) in (0usize..10, -1.0f32..1.0)) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn prop_map_transforms(s in (1usize..6, 1usize..6).prop_map(|(w, h)| w * h)) {
            prop_assert!((1..36).contains(&s));
        }

        #[test]
        fn mapped_vec_of_tuples(
            pairs in prop::collection::vec((0u32..100, 0.5f32..2.0), 1..30)
                .prop_map(|v| v.into_iter().map(|(k, w)| (k, w * 2.0)).collect::<Vec<_>>()),
        ) {
            prop_assert!(!pairs.is_empty());
            prop_assert!(pairs.iter().all(|&(k, w)| k < 100 && (1.0..4.0).contains(&w)));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_inputs() {
        crate::run_cases("doomed", &ProptestConfig::with_cases(8), |rng| {
            let x = crate::Strategy::sample(&(0usize..10), rng);
            crate::prop_assert!(x > 100, "x was {}", x);
            Ok(())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_cases("det", &ProptestConfig::with_cases(16), |rng| {
            first.push(crate::Strategy::sample(&(0u64..1_000_000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("det", &ProptestConfig::with_cases(16), |rng| {
            second.push(crate::Strategy::sample(&(0u64..1_000_000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
