//! Adaptive coreset sizing — the paper's stated future work.
//!
//! Table IV shows both a 10× and a 1/10× coreset hurt driving success:
//! "a larger coreset can be representative but may consume limited contact
//! duration and impede model exchange. In contrast, a smaller coreset can
//! save communication resources but may fail to adequately represent the
//! diverse characteristics of the dataset. Adaptive tuning the size of
//! coreset will be our future work."
//!
//! [`AdaptiveSizer`] implements that tuning as a bounded multiplicative
//! controller driven by the two observable error signals:
//!
//! * **Representation error** — the empirical ε of the current coreset
//!   (measurable locally after every refresh). Persistently high ε pushes
//!   the size *up*.
//! * **Communication pressure** — the fraction of recent encounters whose
//!   coreset exchange consumed more than a target share of the contact
//!   budget (or failed outright). High pressure pushes the size *down*.
//!
//! The controller moves the size by at most `step_ratio` per adjustment and
//! clamps to `[min_size, max_size]`, so a burst of unlucky contacts cannot
//! collapse the coreset.

/// Bounded multiplicative controller for the coreset size.
#[derive(Debug, Clone)]
pub struct AdaptiveSizer {
    size: usize,
    min_size: usize,
    max_size: usize,
    /// Target empirical ε; above this the coreset grows.
    pub target_epsilon: f32,
    /// Target share of the contact budget a coreset exchange may use;
    /// above this the coreset shrinks.
    pub target_budget_share: f64,
    /// Maximum relative size change per adjustment (e.g. 0.25 = ±25 %).
    pub step_ratio: f64,
    // Exponentially weighted observations.
    ewma_epsilon: f32,
    ewma_share: f64,
    observations: u64,
    // Realized model-compression ratio ψ of recent exchanges (codec
    // signal); tracked separately so the controller is a strict no-op for
    // callers that never report it.
    ewma_psi: f64,
    psi_observations: u64,
}

impl AdaptiveSizer {
    /// Creates a sizer starting at `initial` samples, bounded to
    /// `[min_size, max_size]`.
    ///
    /// # Panics
    /// Panics unless `0 < min_size <= initial <= max_size`.
    pub fn new(initial: usize, min_size: usize, max_size: usize) -> Self {
        assert!(min_size > 0 && min_size <= initial && initial <= max_size);
        Self {
            size: initial,
            min_size,
            max_size,
            target_epsilon: 0.10,
            target_budget_share: 0.15,
            step_ratio: 0.25,
            ewma_epsilon: 0.0,
            ewma_share: 0.0,
            observations: 0,
            ewma_psi: 0.0,
            psi_observations: 0,
        }
    }

    /// The current recommended coreset size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Records the empirical ε measured after a coreset refresh.
    pub fn observe_epsilon(&mut self, epsilon: f32) {
        const ALPHA: f32 = 0.3;
        self.ewma_epsilon = if self.observations == 0 {
            epsilon
        } else {
            ALPHA * epsilon + (1.0 - ALPHA) * self.ewma_epsilon
        };
        self.observations += 1;
    }

    /// Records one coreset exchange: the share of the contact budget it
    /// consumed (`elapsed / budget`, ≥ 1 when it blew the budget or
    /// failed).
    pub fn observe_exchange(&mut self, budget_share: f64) {
        const ALPHA: f64 = 0.3;
        self.ewma_share = if self.observations == 0 {
            budget_share
        } else {
            ALPHA * budget_share + (1.0 - ALPHA) * self.ewma_share
        };
        self.observations += 1;
    }

    /// Records the realized model-compression ratio ψ of one model
    /// exchange this vehicle sent (the codec signal from the Eq. (7)
    /// optimizer's choice).
    ///
    /// A small realized ψ means model exchanges are cheap on the wire, so
    /// the coreset may claim a proportionally larger share of the contact
    /// budget before the controller shrinks it — [`AdaptiveSizer::adjust`]
    /// relaxes `target_budget_share` by up to 2× as `ewma_psi → 0`. Never
    /// calling this leaves the controller exactly as before (strict no-op).
    pub fn observe_compression(&mut self, psi: f64) {
        const ALPHA: f64 = 0.3;
        let psi = psi.clamp(0.0, 1.0);
        self.ewma_psi = if self.psi_observations == 0 {
            psi
        } else {
            ALPHA * psi + (1.0 - ALPHA) * self.ewma_psi
        };
        self.psi_observations += 1;
    }

    /// Applies one adjustment and returns the new size.
    ///
    /// Communication pressure wins ties: a coreset that cannot be exchanged
    /// has no value regardless of how representative it is (exactly the
    /// Table IV asymmetry — the oversized coreset hurts more with wireless
    /// loss than the undersized one).
    pub fn adjust(&mut self) -> usize {
        if self.observations < 3 {
            return self.size; // not enough evidence yet
        }
        // ψ-relaxed pressure target: fully-compressed model exchanges
        // (ψ → 0) double the budget share the coreset may consume.
        let share_target = if self.psi_observations > 0 {
            self.target_budget_share * (2.0 - self.ewma_psi)
        } else {
            self.target_budget_share
        };
        let grow = self.ewma_epsilon > self.target_epsilon;
        let shrink = self.ewma_share > share_target;
        let factor = if shrink {
            1.0 - self.step_ratio
        } else if grow {
            1.0 + self.step_ratio
        } else {
            1.0
        };
        let next = ((self.size as f64) * factor).round() as usize;
        self.size = next.clamp(self.min_size, self.max_size);
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_adjustment_without_evidence() {
        let mut s = AdaptiveSizer::new(150, 15, 1500);
        assert_eq!(s.adjust(), 150);
        s.observe_epsilon(0.9);
        assert_eq!(s.adjust(), 150, "needs several observations");
    }

    #[test]
    fn high_epsilon_grows_the_coreset() {
        let mut s = AdaptiveSizer::new(150, 15, 1500);
        for _ in 0..5 {
            s.observe_epsilon(0.5);
            s.observe_exchange(0.05);
        }
        let n = s.adjust();
        assert!(n > 150, "poor representation must grow the coreset: {n}");
    }

    #[test]
    fn communication_pressure_shrinks_the_coreset() {
        let mut s = AdaptiveSizer::new(150, 15, 1500);
        for _ in 0..5 {
            s.observe_epsilon(0.01);
            s.observe_exchange(0.8); // exchanges eating most of the budget
        }
        let n = s.adjust();
        assert!(n < 150, "communication pressure must shrink: {n}");
    }

    #[test]
    fn pressure_beats_representation() {
        let mut s = AdaptiveSizer::new(150, 15, 1500);
        for _ in 0..5 {
            s.observe_epsilon(0.9); // wants to grow
            s.observe_exchange(0.9); // wants to shrink
        }
        assert!(s.adjust() < 150, "an unexchangeable coreset is worthless");
    }

    #[test]
    fn size_stays_bounded() {
        let mut s = AdaptiveSizer::new(150, 15, 300);
        for _ in 0..50 {
            s.observe_epsilon(0.9);
            s.observe_exchange(0.0);
            s.adjust();
        }
        assert_eq!(s.size(), 300, "growth clamps at max");
        let mut s = AdaptiveSizer::new(150, 15, 300);
        for _ in 0..50 {
            s.observe_epsilon(0.0);
            s.observe_exchange(5.0);
            s.adjust();
        }
        assert_eq!(s.size(), 15, "shrink clamps at min");
    }

    #[test]
    fn happy_region_is_stable() {
        let mut s = AdaptiveSizer::new(150, 15, 1500);
        for _ in 0..10 {
            s.observe_epsilon(0.05);
            s.observe_exchange(0.08);
            s.adjust();
        }
        assert_eq!(s.size(), 150, "both signals in-target: no drift");
    }

    #[test]
    fn step_is_bounded_per_adjustment() {
        let mut s = AdaptiveSizer::new(100, 10, 10_000);
        for _ in 0..5 {
            s.observe_epsilon(0.99);
            s.observe_exchange(0.0);
        }
        let n = s.adjust();
        assert!(n <= 125, "one step is at most +25%: {n}");
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_panic() {
        let _ = AdaptiveSizer::new(10, 20, 30);
    }

    #[test]
    fn cheap_codecs_relax_the_pressure_target() {
        // A share of 0.2 exceeds the plain 0.15 target…
        let mut s = AdaptiveSizer::new(150, 15, 1500);
        for _ in 0..5 {
            s.observe_epsilon(0.01);
            s.observe_exchange(0.2);
        }
        assert!(s.adjust() < 150, "0.2 share shrinks without a codec signal");
        // …but not the ψ-relaxed one when model exchanges ride a cheap
        // codec (ψ ≈ 0 ⇒ target doubles to 0.30).
        let mut s = AdaptiveSizer::new(150, 15, 1500);
        for _ in 0..5 {
            s.observe_epsilon(0.01);
            s.observe_exchange(0.2);
            s.observe_compression(0.02);
        }
        assert_eq!(s.adjust(), 150, "cheap model wire relaxes coreset pressure");
    }

    #[test]
    fn uncompressed_models_leave_the_target_unchanged() {
        // ψ = 1 (no compression): the relaxed target collapses back to the
        // plain one, so behavior matches the no-signal controller.
        let mut s = AdaptiveSizer::new(150, 15, 1500);
        for _ in 0..5 {
            s.observe_epsilon(0.01);
            s.observe_exchange(0.2);
            s.observe_compression(1.0);
        }
        assert!(s.adjust() < 150, "ψ=1 must not relax the shrink threshold");
    }
}
