//! Exchange-sequence determination (§III-A, Eq. 5).
//!
//! When a vehicle finds several neighbors in range it ranks them by the
//! priority score `c_{i,j} = z_{i,j} · p_{i,j} · min(B_i, B_j)` built from
//! the shared assist information (route, bandwidth): `z` is the truncated
//! contact-duration ratio and `p` the predicted exchange-completion
//! probability (both from [`simnet::contact`]). Vehicles chat pairwise in
//! descending score order; a maximum waiting time breaks the rare deadlocks
//! of asynchronous sequence choices.

use simnet::contact::ContactPredictor;
use simnet::geom::Vec2;

/// A neighbor candidate with its shared assist information.
#[derive(Debug, Clone)]
pub struct Neighbor {
    /// The neighbor's node index.
    pub id: usize,
    /// Its shared future route samples.
    pub route: Vec<Vec2>,
    /// Its available bandwidth in bits per second.
    pub bandwidth_bps: f64,
}

/// A scored neighbor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredNeighbor {
    /// The neighbor's node index.
    pub id: usize,
    /// The Eq. (5) priority score.
    pub score: f64,
    /// Predicted contact duration in seconds.
    pub contact: f64,
}

/// Ranks neighbors by the Eq. (5) score, descending. `own_route` /
/// `own_bandwidth` are the local vehicle's assist data; `dt` is the spacing
/// of route samples in seconds.
pub fn rank_neighbors(
    predictor: &ContactPredictor,
    own_route: &[Vec2],
    own_bandwidth: f64,
    neighbors: &[Neighbor],
    dt: f64,
) -> Vec<ScoredNeighbor> {
    let mut scored: Vec<ScoredNeighbor> = neighbors
        .iter()
        .map(|n| {
            let est = predictor.estimate(own_route, &n.route, dt);
            ScoredNeighbor {
                id: n.id,
                score: est.z * est.p * own_bandwidth.min(n.bandwidth_bps),
                contact: est.duration,
            }
        })
        .collect();
    scored.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    scored
}

/// Deadlock breaker for asynchronous sequence choices (§III-A): a vehicle
/// waiting for a busy partner abandons the attempt after `max_wait`
/// seconds and moves to its next-ranked neighbor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitPolicy {
    /// Maximum seconds a vehicle waits for a chosen partner.
    pub max_wait: f64,
}

impl Default for WaitPolicy {
    fn default() -> Self {
        Self { max_wait: 5.0 }
    }
}

impl WaitPolicy {
    /// Whether a vehicle that started waiting at `since` should abandon the
    /// partner at time `now`.
    pub fn should_abandon(&self, since: f64, now: f64) -> bool {
        now - since > self.max_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::loss::LossModel;

    fn predictor() -> ContactPredictor {
        ContactPredictor::new(500.0, 3, LossModel::distance_default(), 30.0)
    }

    fn parked(at: Vec2, n: usize) -> Vec<Vec2> {
        vec![at; n]
    }

    #[test]
    fn closer_neighbor_ranks_first() {
        let p = predictor();
        let own = parked(Vec2::ZERO, 61);
        let neighbors = vec![
            Neighbor { id: 1, route: parked(Vec2::new(400.0, 0.0), 61), bandwidth_bps: 31e6 },
            Neighbor { id: 2, route: parked(Vec2::new(60.0, 0.0), 61), bandwidth_bps: 31e6 },
        ];
        let ranked = rank_neighbors(&p, &own, 31e6, &neighbors, 0.5);
        assert_eq!(ranked[0].id, 2, "nearer neighbor has higher p, ranks first");
        assert!(ranked[0].score > ranked[1].score);
    }

    #[test]
    fn low_bandwidth_neighbor_ranks_lower() {
        let p = predictor();
        let own = parked(Vec2::ZERO, 61);
        let neighbors = vec![
            Neighbor { id: 1, route: parked(Vec2::new(100.0, 0.0), 61), bandwidth_bps: 31e6 },
            Neighbor { id: 2, route: parked(Vec2::new(100.0, 0.0), 61), bandwidth_bps: 5e6 },
        ];
        let ranked = rank_neighbors(&p, &own, 31e6, &neighbors, 0.5);
        assert_eq!(ranked[0].id, 1);
        assert!((ranked[0].score / ranked[1].score - 31.0 / 5.0).abs() < 1e-6);
    }

    #[test]
    fn departing_neighbor_ranks_below_staying_one() {
        let p = predictor();
        let own = parked(Vec2::ZERO, 121);
        let stays = Neighbor { id: 1, route: parked(Vec2::new(150.0, 0.0), 121), bandwidth_bps: 31e6 };
        let leaves = Neighbor {
            id: 2,
            route: (0..121)
                .map(|k| Vec2::new(150.0 + k as f32 * 0.5 * 25.0, 0.0))
                .collect(),
            bandwidth_bps: 31e6,
        };
        let ranked = rank_neighbors(&p, &own, 31e6, &[stays, leaves], 0.5);
        assert_eq!(ranked[0].id, 1, "the staying neighbor should win");
    }

    #[test]
    fn empty_neighbor_list_is_fine() {
        let p = predictor();
        assert!(rank_neighbors(&p, &parked(Vec2::ZERO, 10), 31e6, &[], 0.5).is_empty());
    }

    #[test]
    fn wait_policy_abandons_after_max_wait() {
        let w = WaitPolicy { max_wait: 5.0 };
        assert!(!w.should_abandon(100.0, 104.0));
        assert!(w.should_abandon(100.0, 105.5));
    }
}
