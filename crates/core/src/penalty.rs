//! The penalized loss of Eq. (6).
//!
//! `f(x; ξ) = Σ w_ξ(d) f(x; d) + λ₁‖x‖ + λ₂ σ(x)`
//!
//! The L2 term controls structural risk and keeps the infimum of the mean
//! loss away from zero, which bounds the coreset size the theory requires
//! (§III-B). `σ(x)` is problem-dependent; for the BEV driving task it
//! measures the *imbalance* of losses across high-level driving commands so
//! the model "can effectively address all driving commands without
//! introducing any bias". We realize that as the KL divergence of the
//! normalized per-command loss distribution from uniform
//! (`log G − H(p)` — zero when all commands hurt equally, growing as loss
//! concentrates on few commands), which is the balance-encouraging reading
//! of the paper's "entropy of the losses observed with data samples of
//! different driving commands".

use crate::learner::Learner;
use vnn::ParamVec;

/// Coefficients of the Eq. (6) penalty terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyConfig {
    /// λ₁ — weight of the L2 structural-risk term.
    pub lambda1: f32,
    /// λ₂ — weight of the problem-dependent imbalance term σ(x).
    pub lambda2: f32,
}

impl Default for PenaltyConfig {
    fn default() -> Self {
        Self { lambda1: 1e-4, lambda2: 1e-2 }
    }
}

impl PenaltyConfig {
    /// No penalties (plain Eq. (2)/(4) losses).
    pub fn none() -> Self {
        Self { lambda1: 0.0, lambda2: 0.0 }
    }
}

/// Per-group mean losses of `pairs` under `params`, for `n_groups` groups.
/// Groups with no samples get loss 0 and are excluded from σ.
pub fn group_losses<L: Learner>(
    learner: &L,
    params: &ParamVec,
    pairs: &[(&L::Sample, f32)],
) -> Vec<f32> {
    let g = learner.n_groups();
    let mut num = vec![0.0f64; g];
    let mut den = vec![0.0f64; g];
    for (s, w) in pairs {
        let gi = learner.group_of(s);
        num[gi] += (*w as f64) * learner.loss_with(params, s) as f64;
        den[gi] += *w as f64;
    }
    (0..g)
        .map(|i| if den[i] > 0.0 { (num[i] / den[i]) as f32 } else { 0.0 })
        .collect()
}

/// σ(x): imbalance of the per-group losses, `log G' − H(p)` where `p` is the
/// normalized loss distribution over the `G'` groups that have samples.
/// Zero when balanced (or fewer than two active groups / zero total loss).
pub fn sigma(group_losses: &[f32]) -> f32 {
    let active: Vec<f32> = group_losses.iter().copied().filter(|&l| l > 0.0).collect();
    if active.len() < 2 {
        return 0.0;
    }
    let total: f32 = active.iter().sum();
    let entropy: f32 = active
        .iter()
        .map(|&l| {
            let p = l / total;
            -p * p.ln()
        })
        .sum();
    (active.len() as f32).ln() - entropy
}

/// The full penalized weighted loss of Eq. (6):
/// `Σ w f(x;d) + λ₁‖x‖ + λ₂ σ(x)`.
///
/// `pairs` may be a dataset (`w = w(d)`) or a coreset (`w = w_C(d)`); the
/// weighted-sum term is normalized by total weight so datasets and coresets
/// of different cardinality are comparable, matching how the paper compares
/// `f(x; C_i)` against `f(x; C_j)`.
pub fn penalized_loss<L: Learner>(
    learner: &L,
    params: &ParamVec,
    pairs: &[(&L::Sample, f32)],
    cfg: &PenaltyConfig,
) -> f32 {
    let base = crate::learner::weighted_mean_loss(learner, params, pairs);
    if cfg.lambda1 == 0.0 && cfg.lambda2 == 0.0 {
        return base;
    }
    let l2 = params.l2_norm();
    let s = if cfg.lambda2 != 0.0 {
        sigma(&group_losses(learner, params, pairs))
    } else {
        0.0
    };
    base + cfg.lambda1 * l2 + cfg.lambda2 * s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::testutil::{LineLearner, Pt};

    #[test]
    fn sigma_zero_when_balanced() {
        assert_eq!(sigma(&[1.0, 1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn sigma_positive_when_imbalanced() {
        let s = sigma(&[10.0, 0.1, 0.1, 0.1]);
        assert!(s > 0.5, "imbalance must be penalized, got {s}");
    }

    #[test]
    fn sigma_ignores_empty_groups() {
        // Two active balanced groups, two empty: still balanced.
        assert_eq!(sigma(&[1.0, 1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn sigma_degenerate_cases() {
        assert_eq!(sigma(&[]), 0.0);
        assert_eq!(sigma(&[5.0]), 0.0);
        assert_eq!(sigma(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn sigma_monotone_in_concentration() {
        let mild = sigma(&[2.0, 1.0, 1.0, 1.0]);
        let strong = sigma(&[8.0, 1.0, 1.0, 1.0]);
        assert!(strong > mild);
    }

    #[test]
    fn group_losses_split_by_group() {
        let l = LineLearner::new(1.0, 0.0);
        let g0 = Pt { x: 1.0, y: 1.0, group: 0 }; // loss 0
        let g1 = Pt { x: 1.0, y: 3.0, group: 1 }; // loss 4
        let gl = group_losses(&l, l.params(), &[(&g0, 1.0), (&g1, 1.0)]);
        assert_eq!(gl.len(), 4);
        assert!((gl[0] - 0.0).abs() < 1e-6);
        assert!((gl[1] - 4.0).abs() < 1e-6);
        assert_eq!(gl[2], 0.0);
    }

    #[test]
    fn penalties_increase_the_loss() {
        let l = LineLearner::new(2.0, -1.0);
        let pts = [
            Pt { x: 0.5, y: 0.3, group: 0 },
            Pt { x: -0.5, y: -1.7, group: 1 },
        ];
        let pairs: Vec<(&Pt, f32)> = pts.iter().map(|p| (p, 1.0)).collect();
        let plain = penalized_loss(&l, l.params(), &pairs, &PenaltyConfig::none());
        let pen = penalized_loss(
            &l,
            l.params(),
            &pairs,
            &PenaltyConfig { lambda1: 0.1, lambda2: 0.1 },
        );
        assert!(pen > plain);
    }

    #[test]
    fn zero_lambdas_reduce_to_mean_loss() {
        let l = LineLearner::new(1.0, 0.0);
        let p = Pt { x: 1.0, y: 2.0, group: 0 };
        let loss = penalized_loss(&l, l.params(), &[(&p, 1.0)], &PenaltyConfig::none());
        assert!((loss - 1.0).abs() < 1e-6); // (1*1+0-2)^2 = 1
    }
}
