//! # lbchat — Learning by Chatting
//!
//! A from-scratch implementation of **LbChat** (Zheng, Liu, Ye, Yang —
//! *Coreset-sharing based Collaborative Model Training among Peer Vehicles*,
//! ICDCS 2024): fully decentralized, asynchronous model training for
//! vehicles that exchange not only models but *coresets* — condensed
//! abstracts of their local training data — with opportunistically
//! encountered peers.
//!
//! The pipeline of one pairwise "chat" (paper §III, Fig. 1):
//!
//! 1. **Sequence determination** ([`priority`]) — neighbors are ranked by
//!    `c = z · p · min(B_i, B_j)` (Eq. 5) from shared routes and bandwidth.
//! 2. **Coreset exchange** ([`coreset`]) — each vehicle maintains a compact
//!    ε-coreset of its local dataset built by layered sampling (Alg. 1).
//! 3. **Valuation** ([`valuation`]) — each vehicle evaluates its model on
//!    the peer's coreset; a large loss gap means the peer's model was
//!    trained on very different data and is therefore valuable.
//! 4. **Compression optimization** ([`phi`], [`optimize`]) — the pair picks
//!    compression ratios `ψ_i, ψ_j` maximizing the joint gain under the
//!    contact-duration and bandwidth constraints (Eq. 7).
//! 5. **Exchange & aggregation** ([`compress`], [`aggregate`]) — top-k
//!    sparsified models are exchanged and merged with loss-derived weights
//!    (Eq. 8).
//! 6. **Dataset expansion** ([`dataset`], [`node`]) — received coresets are
//!    absorbed into the local dataset; the local coreset is refreshed by
//!    re-construction or merge-and-reduce (§III-D).
//!
//! The [`runtime`] module provides the shared asynchronous simulation loop
//! (mobility-trace playback, encounter detection, radio accounting) behind a
//! [`runtime::CollabAlgorithm`] trait that the LbChat [`node`] and every
//! baseline in the `baselines` crate implement, so all methods face exactly
//! the same world, radio, and clock.
//!
//! The crate is generic over the learning task via the [`Learner`] trait;
//! the `driving` crate provides the paper's BEV waypoint-regression task.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod aggregate;
pub mod compress;
pub mod config;
pub mod coreset;
pub mod coreset_alt;
pub mod dataset;
pub mod exec;
pub mod learner;
pub mod metrics;
pub mod node;
pub mod obs;
pub mod optimize;
pub mod penalty;
pub mod phi;
pub mod prelude;
pub mod priority;
pub mod runtime;
pub mod valuation;

pub use aggregate::AggregationRule;
pub use config::{ConfigError, LbChatConfig};
pub use coreset::Coreset;
pub use dataset::WeightedDataset;
pub use learner::{Learner, TrainStats};
pub use node::LbChatNode;
pub use obs::ObsSink;
pub use runtime::{CollabAlgorithm, Runtime, RuntimeConfig, RuntimeError};
