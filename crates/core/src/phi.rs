//! The mapping function φ: predicted coreset loss of a compressed model as
//! a function of the reciprocal compression ratio ψ (§III-C).
//!
//! A vehicle samples a handful of ψ values, actually compresses its model at
//! each, evaluates every compressed copy on its own coreset (cheap — the
//! coreset is small), and fits a smooth curve through the
//! `(ψ_k, f(x̂^{ψ_k}; C))` pairs using Akima's local sub-spline
//! interpolation (Akima, JACM 1970 — the paper's reference \[21\]). The
//! resulting φ is exchanged (as its sample points) and drives the Eq. (7)
//! optimization.

use crate::learner::Learner;
use crate::penalty::{penalized_loss, PenaltyConfig};
use crate::Coreset;

/// Default ψ sampling grid (always includes the endpoints the paper lists).
pub const DEFAULT_PSI_GRID: &[f32] = &[0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];

/// Akima's interpolation through monotonically increasing knots.
///
/// Akima's method fits a piecewise cubic using local slope estimates that
/// avoid the overshoot of global splines — well suited to the small, noisy
/// loss-vs-ψ samples exchanged between vehicles. Inputs outside the knot
/// range are clamped to the boundary values.
#[derive(Debug, Clone, PartialEq)]
pub struct Akima {
    x: Vec<f64>,
    y: Vec<f64>,
    /// Per-knot derivative estimates.
    t: Vec<f64>,
}

impl Akima {
    /// Fits the interpolant.
    ///
    /// # Panics
    /// Panics with fewer than 2 points or non-increasing x.
    pub fn fit(x: &[f64], y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(x.len() >= 2, "Akima needs at least two points");
        assert!(
            x.windows(2).all(|w| w[1] > w[0]),
            "x must be strictly increasing"
        );
        let n = x.len();
        // Segment slopes m_i for i in 0..n-1, padded with Akima's boundary
        // extrapolation: two virtual slopes on each side.
        let mut m = Vec::with_capacity(n + 3);
        for i in 0..n - 1 {
            m.push((y[i + 1] - y[i]) / (x[i + 1] - x[i]));
        }
        // Boundary padding (Akima 1970): m[-1] = 2m[0] - m[1], etc.
        let m0 = m[0];
        let m1 = if m.len() > 1 { m[1] } else { m[0] };
        // audit:allow(P005): m holds n-1 >= 1 slopes — sample() asserts a grid of at least two points before fitting
        let ml = *m.last().expect("non-empty");
        let ml2 = if m.len() > 1 { m[m.len() - 2] } else { ml };
        let mut padded = vec![2.0 * (2.0 * m0 - m1) - m0, 2.0 * m0 - m1];
        padded.extend_from_slice(&m);
        padded.push(2.0 * ml - ml2);
        padded.push(2.0 * (2.0 * ml - ml2) - ml);
        // Derivative at each knot i uses slopes padded[i..i+4].
        let mut t = Vec::with_capacity(n);
        for i in 0..n {
            let (m1, m2, m3, m4) =
                (padded[i], padded[i + 1], padded[i + 2], padded[i + 3]);
            let w1 = (m4 - m3).abs();
            let w2 = (m2 - m1).abs();
            let ti = if w1 + w2 < 1e-12 {
                0.5 * (m2 + m3)
            } else {
                (w1 * m2 + w2 * m3) / (w1 + w2)
            };
            t.push(ti);
        }
        Self { x: x.to_vec(), y: y.to_vec(), t }
    }

    /// Evaluates the interpolant at `xq` (clamped to the knot range).
    pub fn eval(&self, xq: f64) -> f64 {
        let n = self.x.len();
        if xq <= self.x[0] {
            return self.y[0];
        }
        if xq >= self.x[n - 1] {
            return self.y[n - 1];
        }
        // Find the segment by binary search.
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.x[mid] <= xq {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let h = self.x[lo + 1] - self.x[lo];
        let s = (xq - self.x[lo]) / h;
        let (y0, y1) = (self.y[lo], self.y[lo + 1]);
        let (t0, t1) = (self.t[lo] * h, self.t[lo + 1] * h);
        // Cubic Hermite basis.
        let s2 = s * s;
        let s3 = s2 * s;
        y0 * (2.0 * s3 - 3.0 * s2 + 1.0)
            + t0 * (s3 - 2.0 * s2 + s)
            + y1 * (-2.0 * s3 + 3.0 * s2)
            + t1 * (s3 - s2)
    }
}

/// The sampled loss-vs-ψ curve a vehicle computes for its own model and
/// shares with the peer ("a vehicle exchanges the results with the
/// encountered peer").
#[derive(Debug, Clone, PartialEq)]
pub struct PhiCurve {
    /// Sampled ψ values, strictly increasing.
    pub psi: Vec<f32>,
    /// Penalized coreset loss of the model compressed at each ψ.
    pub loss: Vec<f32>,
    fit: Akima,
}

impl PhiCurve {
    /// Builds φ for `learner`'s current model: compresses at every ψ in
    /// `grid`, evaluates each compressed copy on `coreset` with the Eq. (6)
    /// penalties, and Akima-fits the pairs.
    ///
    /// # Panics
    /// Panics if `grid` has fewer than 2 values or is not strictly
    /// increasing within (0, 1].
    pub fn sample<L: Learner>(
        learner: &L,
        coreset: &Coreset<L::Sample>,
        grid: &[f32],
        penalty: &PenaltyConfig,
    ) -> Self {
        assert!(grid.len() >= 2, "phi needs at least two psi samples");
        assert!(
            // audit:allow(P005): grid is non-empty — the assert directly above requires at least two samples
            grid.windows(2).all(|w| w[1] > w[0]) && grid[0] > 0.0 && *grid.last().unwrap() <= 1.0,
            "psi grid must be strictly increasing within (0, 1]"
        );
        let pairs = coreset.pairs();
        let mut psi = Vec::with_capacity(grid.len());
        let mut loss = Vec::with_capacity(grid.len());
        for &p in grid {
            let compressed = crate::compress::compress_dense(learner.params(), p);
            psi.push(p);
            loss.push(penalized_loss(learner, &compressed, &pairs, penalty));
        }
        let fit = Akima::fit(
            &psi.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            &loss.iter().map(|&v| v as f64).collect::<Vec<_>>(),
        );
        Self { psi, loss, fit }
    }

    /// Reconstructs a curve from exchanged sample points (the peer side).
    ///
    /// # Panics
    /// Panics on fewer than 2 points or non-increasing ψ.
    pub fn from_points(psi: Vec<f32>, loss: Vec<f32>) -> Self {
        let fit = Akima::fit(
            &psi.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            &loss.iter().map(|&v| v as f64).collect::<Vec<_>>(),
        );
        Self { psi, loss, fit }
    }

    /// Predicted compressed-model loss at `psi` (clamped to the sampled
    /// range).
    pub fn predict(&self, psi: f32) -> f32 {
        self.fit.eval(psi as f64) as f32
    }

    /// Loss of the uncompressed model (`ψ = 1`).
    pub fn uncompressed_loss(&self) -> f32 {
        *self.loss.last().expect("non-empty")
    }

    /// Wire size of the exchanged sample points (two f32 per point).
    pub fn wire_bytes(&self) -> usize {
        self.psi.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::testutil::{line_data, LineLearner};
    use crate::WeightedDataset;

    #[test]
    fn akima_interpolates_knots_exactly() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 0.5, 0.4, 0.35, 0.34];
        let a = Akima::fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((a.eval(*xi) - yi).abs() < 1e-9);
        }
    }

    #[test]
    fn akima_reproduces_a_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 2.0, 4.0, 6.0];
        let a = Akima::fit(&x, &y);
        for q in [0.5, 1.25, 2.9] {
            assert!((a.eval(q) - 2.0 * q).abs() < 1e-9, "line must be exact");
        }
    }

    #[test]
    fn akima_no_overshoot_on_step_like_data() {
        // Classic Akima selling point: flat-flat-rise data should not dip.
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let a = Akima::fit(&x, &y);
        for i in 0..=50 {
            let q = i as f64 * 0.1;
            let v = a.eval(q);
            assert!(
                (-0.05..=1.05).contains(&v),
                "overshoot at {q}: {v}"
            );
        }
    }

    #[test]
    fn akima_clamps_out_of_range() {
        let a = Akima::fit(&[0.0, 1.0], &[3.0, 5.0]);
        assert_eq!(a.eval(-1.0), 3.0);
        assert_eq!(a.eval(2.0), 5.0);
    }

    #[test]
    fn two_point_fit_is_linear() {
        let a = Akima::fit(&[0.0, 2.0], &[0.0, 4.0]);
        assert!((a.eval(1.0) - 2.0).abs() < 1e-9);
    }

    fn trained_learner_and_coreset() -> (LineLearner, Coreset<crate::learner::testutil::Pt>) {
        let mut l = LineLearner::new(0.0, 0.0);
        let data = line_data(2.0, -1.0, 200);
        for _ in 0..300 {
            let batch: Vec<_> = data.iter().map(|s| (s, 1.0)).collect();
            l.train_step(&batch);
        }
        let ds = WeightedDataset::uniform(data);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let c = crate::coreset::construct(&l, &ds, &crate::coreset::CoresetConfig { size: 50 }, &mut rng);
        (l, c)
    }

    #[test]
    fn phi_decreases_with_psi_for_trained_model() {
        let (l, c) = trained_learner_and_coreset();
        let phi = PhiCurve::sample(&l, &c, DEFAULT_PSI_GRID, &PenaltyConfig::none());
        // More of the model (higher psi) means no worse loss.
        let full = phi.predict(1.0);
        let tiny = phi.predict(0.05);
        assert!(
            full <= tiny + 1e-6,
            "loss at psi=1 ({full}) must be <= loss at psi=0.05 ({tiny})"
        );
        assert!((full - phi.uncompressed_loss()).abs() < 1e-5);
    }

    #[test]
    fn phi_roundtrips_through_exchanged_points() {
        let (l, c) = trained_learner_and_coreset();
        let phi = PhiCurve::sample(&l, &c, DEFAULT_PSI_GRID, &PenaltyConfig::none());
        let remote = PhiCurve::from_points(phi.psi.clone(), phi.loss.clone());
        for q in [0.1f32, 0.33, 0.77] {
            assert!((phi.predict(q) - remote.predict(q)).abs() < 1e-6);
        }
    }

    #[test]
    fn phi_wire_size_is_small() {
        let (l, c) = trained_learner_and_coreset();
        let phi = PhiCurve::sample(&l, &c, DEFAULT_PSI_GRID, &PenaltyConfig::none());
        assert!(phi.wire_bytes() < 100, "phi exchange must be negligible");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_grid_panics() {
        let (l, c) = trained_learner_and_coreset();
        let _ = PhiCurve::sample(&l, &c, &[0.5, 0.2], &PenaltyConfig::none());
    }
}
