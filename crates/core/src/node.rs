//! The LbChat vehicle node and the full Algorithm 2 protocol.
//!
//! [`LbChatNode`] owns one vehicle's learner, weighted local dataset, and
//! cached coreset. [`LbChatAlgorithm`] holds all nodes and implements the
//! shared [`CollabAlgorithm`] runtime interface: local iterations every
//! frame, and on every encounter the full chat — coreset exchange, mutual
//! valuation, Eq. (7) compression optimization, model exchange, Eq. (8)
//! aggregation, and dataset expansion.

use crate::adaptive::AdaptiveSizer;
use crate::aggregate::aggregate_sparse_aware;
use crate::compress::{Codec, ErrorFeedback};
use crate::config::LbChatConfig;
use crate::coreset::{construct_with_scratch, reduce, Coreset, CoresetConfig, CoresetScratch};
use crate::dataset::WeightedDataset;
use crate::learner::Learner;
use crate::optimize::{equal_compression_choice, CompressionChoice, CompressionProblem};
use crate::penalty::penalized_loss;
use crate::phi::PhiCurve;
use crate::runtime::{CollabAlgorithm, SessionCtx, SessionStep};
use crate::valuation::coreset_loss;
use rand::Rng;
use simnet::channel::{TransferOutcome, TransferSpec};
use simnet::contact::ContactEstimate;
use vnn::{Minibatcher, ParamVec};

/// Below this ψ a model transfer is skipped entirely (sending a handful of
/// components is pure overhead).
const PSI_MIN: f32 = 0.01;

/// One vehicle's LbChat state.
pub struct LbChatNode<L: Learner> {
    /// The local learner (model + optimizer).
    pub learner: L,
    dataset: WeightedDataset<L::Sample>,
    coreset: Coreset<L::Sample>,
    batcher: Minibatcher,
    iters_since_refresh: usize,
    coreset_stale: bool,
    config: LbChatConfig,
    sizer: Option<AdaptiveSizer>,
    /// Per-peer error-feedback residuals; only consulted when the config
    /// enables `error_feedback` (empty and inert otherwise).
    feedback: ErrorFeedback,
    /// Reused by every coreset rebuild; results are bit-identical to a
    /// fresh construction (see [`CoresetScratch`]).
    scratch: CoresetScratch,
}

impl<L: Learner> LbChatNode<L> {
    /// Creates a node and builds its initial coreset.
    pub fn new<R: Rng + ?Sized>(
        learner: L,
        dataset: WeightedDataset<L::Sample>,
        config: LbChatConfig,
        rng: &mut R,
    ) -> Self {
        let mut scratch = CoresetScratch::new();
        let coreset = construct_with_scratch(
            &learner,
            &dataset,
            &CoresetConfig { size: config.coreset_size },
            rng,
            &mut scratch,
        );
        let batcher = Minibatcher::new(dataset.len(), config.batch_size);
        let sizer = config.adaptive_coreset.then(|| {
            AdaptiveSizer::new(
                config.coreset_size,
                (config.coreset_size / 10).max(5),
                config.coreset_size * 10,
            )
        });
        Self {
            learner,
            dataset,
            coreset,
            batcher,
            iters_since_refresh: 0,
            coreset_stale: false,
            config,
            sizer,
            feedback: ErrorFeedback::new(),
            scratch,
        }
    }

    /// Encodes this node's current model for `peer` through the session
    /// codec at ψ — every model this node puts on the wire passes through
    /// here. With `error_feedback` enabled, the residual banked toward
    /// `peer` is folded into the encode and the newly dropped mass banked
    /// back (see [`ErrorFeedback`]).
    pub fn encode_model_for(
        &mut self,
        peer: usize,
        codec: Codec,
        psi: f32,
        rng: &mut rand::rngs::StdRng,
    ) -> ParamVec {
        if self.config.error_feedback {
            self.feedback.apply(peer, codec, self.learner.params(), psi, rng)
        } else {
            codec.apply(self.learner.params(), psi, rng)
        }
    }

    /// The error-feedback residual bank (empty unless `error_feedback` is
    /// enabled and models have been exchanged).
    pub fn feedback(&self) -> &ErrorFeedback {
        &self.feedback
    }

    /// Records the realized model-compression ratio ψ of one model send
    /// for adaptive sizing: cheap model exchanges leave contact budget the
    /// coreset may claim (see [`AdaptiveSizer::observe_compression`]).
    pub fn observe_compression(&mut self, psi: f64) {
        if let Some(s) = self.sizer.as_mut() {
            s.observe_compression(psi);
        }
    }

    /// The adaptive sizer, when enabled.
    pub fn sizer(&self) -> Option<&AdaptiveSizer> {
        self.sizer.as_ref()
    }

    /// Records a coreset-exchange observation for adaptive sizing.
    pub fn observe_exchange_share(&mut self, share: f64) {
        if let Some(s) = self.sizer.as_mut() {
            s.observe_exchange(share);
        }
    }

    /// The local dataset.
    pub fn dataset(&self) -> &WeightedDataset<L::Sample> {
        &self.dataset
    }

    /// The current coreset.
    pub fn coreset(&self) -> &Coreset<L::Sample> {
        &self.coreset
    }

    /// Runs one weighted minibatch iteration; refreshes the coreset when it
    /// has gone stale (every `coreset_refresh_iters` iterations, so the
    /// coreset tracks the evolving model).
    pub fn local_iteration<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f32 {
        let idx = self.batcher.next_batch(rng);
        if idx.is_empty() {
            return 0.0;
        }
        let batch: Vec<(&L::Sample, f32)> = idx
            .iter()
            .map(|&i| (self.dataset.sample(i), self.dataset.weight(i)))
            .collect();
        let loss = self.learner.train_step(&batch);
        self.iters_since_refresh += 1;
        if self.iters_since_refresh >= self.config.coreset_refresh_iters {
            self.refresh_coreset(rng);
        }
        loss
    }

    /// Rebuilds the coreset from the (possibly expanded) dataset with the
    /// current model (Algorithm 1). With adaptive sizing enabled, folds the
    /// fresh coreset's empirical ε into the controller and adopts its next
    /// recommended size.
    pub fn refresh_coreset<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let size = match self.sizer.as_mut() {
            Some(s) => s.adjust(),
            None => self.config.coreset_size,
        };
        self.coreset = construct_with_scratch(
            &self.learner,
            &self.dataset,
            &CoresetConfig { size },
            rng,
            &mut self.scratch,
        );
        if let Some(s) = self.sizer.as_mut() {
            let eps =
                crate::coreset::empirical_epsilon(&self.learner, &self.coreset, &self.dataset);
            s.observe_epsilon(eps);
        }
        self.iters_since_refresh = 0;
        self.coreset_stale = false;
    }

    /// Absorbs a received peer coreset: expands the local dataset (§III-D)
    /// and maintains the local coreset — by merge-and-reduce when
    /// configured (cheap, suits frequent encounters), otherwise by marking
    /// it stale for the next scheduled rebuild.
    pub fn absorb<R: Rng + ?Sized>(&mut self, peer_coreset: &Coreset<L::Sample>, rng: &mut R) {
        self.dataset.absorb_coreset(peer_coreset);
        self.batcher.grow(self.dataset.len());
        if self.config.merge_reduce {
            let merged = std::mem::replace(&mut self.coreset, Coreset::empty())
                .merge(peer_coreset.clone());
            self.coreset = reduce(merged, self.config.coreset_size, rng);
        } else {
            self.coreset_stale = true;
        }
    }

    /// Replaces the model with an aggregated one and resets optimizer
    /// momentum.
    pub fn adopt_model(&mut self, params: ParamVec) {
        self.learner.set_params(params);
        self.learner.on_params_replaced();
        self.coreset_stale = true;
    }

    /// Penalized loss of an arbitrary parameter vector on this node's
    /// *joint* view `C_self ∪ C_peer` — the Eq. (8) weighting set,
    /// approximating `D_i ∪ C_j` per §III-D.
    fn joint_loss(&self, params: &ParamVec, peer: &Coreset<L::Sample>) -> f32 {
        let mut pairs = self.coreset.pairs();
        pairs.extend(peer.pairs());
        penalized_loss(&self.learner, params, &pairs, &self.config.penalty)
    }
}

/// All LbChat vehicles plus the protocol implementation.
pub struct LbChatAlgorithm<L: Learner> {
    nodes: Vec<LbChatNode<L>>,
    config: LbChatConfig,
    name: &'static str,
}

impl<L: Learner> LbChatAlgorithm<L> {
    /// Builds the fleet from per-vehicle learners and datasets.
    ///
    /// # Panics
    /// Panics if `learners` and `datasets` lengths differ or are empty.
    pub fn new<R: Rng + ?Sized>(
        learners: Vec<L>,
        datasets: Vec<WeightedDataset<L::Sample>>,
        config: LbChatConfig,
        rng: &mut R,
    ) -> Self {
        assert_eq!(learners.len(), datasets.len(), "one dataset per learner");
        assert!(!learners.is_empty(), "need at least one vehicle");
        let name = if config.share_model { "LbChat" } else { "SCO" };
        let nodes = learners
            .into_iter()
            .zip(datasets)
            .map(|(l, d)| LbChatNode::new(l, d, config.clone(), rng))
            .collect();
        Self { nodes, config, name }
    }

    /// Access to a node (tests, inspection).
    pub fn node(&self, i: usize) -> &LbChatNode<L> {
        &self.nodes[i]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, i: usize) -> &mut LbChatNode<L> {
        &mut self.nodes[i]
    }

    /// The configuration in use.
    pub fn config(&self) -> &LbChatConfig {
        &self.config
    }

    /// Mutably borrows two distinct nodes.
    fn two_nodes(&mut self, i: usize, j: usize) -> (&mut LbChatNode<L>, &mut LbChatNode<L>) {
        assert_ne!(i, j, "a node cannot chat with itself");
        if i < j {
            let (a, b) = self.nodes.split_at_mut(j);
            (&mut a[i], &mut b[0])
        } else {
            let (a, b) = self.nodes.split_at_mut(i);
            (&mut b[0], &mut a[j])
        }
    }
}

/// Protocol position of one in-flight chat — which transfer the session is
/// waiting on.
enum ChatPhase {
    /// Assist messages (route + bandwidth) both ways.
    Assist,
    /// Coreset `i → j`.
    CoresetIJ,
    /// Coreset `j → i`.
    CoresetJI,
    /// φ curve points + valuation losses both ways.
    PhiExchange,
    /// Sparsified model `i → j`.
    ModelIJ,
    /// Sparsified model `j → i`.
    ModelJI,
}

/// One chat (Algorithm 2) in flight: the per-session state carried between
/// [`CollabAlgorithm`] lifecycle calls while the runtime streams the chat's
/// transfers. Created by `session_open`, advanced by `session_step` on each
/// transfer outcome, finalized (aggregation + dataset expansion) by
/// `session_close`.
pub struct ChatSession<S> {
    phase: ChatPhase,
    /// `min(time_budget, contact duration)` — every deadline derives from it.
    time_limit: f64,
    /// Whether the `i → j` coreset arrived (the chat needs both).
    c_ij_ok: bool,
    coreset_i: Option<Coreset<S>>,
    coreset_j: Option<Coreset<S>>,
    loss_i_on_cj: f32,
    loss_j_on_ci: f32,
    phi_i: Option<PhiCurve>,
    phi_j: Option<PhiCurve>,
    choice: CompressionChoice,
    /// Sparsified parameters node `i` received from `j`, if any.
    received_i: Option<ParamVec>,
    /// Sparsified parameters node `j` received from `i`, if any.
    received_j: Option<ParamVec>,
    /// Whether close should absorb the exchanged coresets (§III-D) — true
    /// once both coresets arrived.
    absorb_on_close: bool,
    /// Minimum session duration reported at close (0.1 s after an aborted
    /// assist exchange, else 0).
    duration_floor: f64,
}

impl<L: Learner> LbChatAlgorithm<L> {
    /// Deadline for the next transfer: whatever remains of the session's
    /// time limit.
    fn remaining(limit: f64, ctx: &SessionCtx<'_>) -> f64 {
        (limit - ctx.elapsed()).max(0.0)
    }

    /// Runs the mutual valuation + compression choice once both coresets
    /// are in hand (protocol phases 3–4), and returns the next step: a φ
    /// exchange when the full Eq. (7) optimization needs one, otherwise the
    /// model-exchange decision.
    fn choose_compression(
        &mut self,
        state: &mut ChatSession<L::Sample>,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        let cfg = self.config.clone();
        let (i, j) = (ctx.i, ctx.j);
        let (Some(coreset_i), Some(coreset_j)) = (&state.coreset_i, &state.coreset_j) else {
            return SessionStep::Done;
        };

        // --- 3. Mutual valuation (computation, §IV-A: not charged to the
        // simulated clock). ---
        let pen = cfg.penalty;
        state.loss_i_on_cj = coreset_loss(
            &self.nodes[i].learner,
            self.nodes[i].learner.params(),
            coreset_j,
            &pen,
        );
        state.loss_j_on_ci = coreset_loss(
            &self.nodes[j].learner,
            self.nodes[j].learner.params(),
            coreset_i,
            &pen,
        );

        // --- 4. Compression-ratio optimization (Eq. 7) or ablations. ---
        if !cfg.share_model {
            // SCO: no model exchange at all.
            state.choice =
                CompressionChoice { psi_i: 0.0, psi_j: 0.0, transfer_time: 0.0, objective: 0.0 };
        } else if cfg.equal_compression {
            let remaining = Self::remaining(state.time_limit, ctx);
            state.choice = equal_compression_choice(
                cfg.model_wire_bytes,
                ctx.contact().p.max(0.01) * 31e6, // effective rate under loss
                cfg.time_budget,
                remaining,
            );
        } else {
            state.phi_i =
                Some(PhiCurve::sample(&self.nodes[i].learner, coreset_i, &cfg.psi_grid, &pen));
            state.phi_j =
                Some(PhiCurve::sample(&self.nodes[j].learner, coreset_j, &cfg.psi_grid, &pen));
            let (Some(phi_i), Some(phi_j)) = (&state.phi_i, &state.phi_j) else {
                return SessionStep::Done;
            };
            // Exchange of φ points + losses: negligible but real bytes.
            let bytes = phi_i.wire_bytes() + phi_j.wire_bytes() + 16;
            state.phase = ChatPhase::PhiExchange;
            return SessionStep::Transfer(TransferSpec::link(
                bytes,
                Self::remaining(state.time_limit, ctx),
            ));
        }
        self.emit_chat(state, ctx);
        self.model_exchange_step(state, ctx)
    }

    /// One `chat` event per encounter with the valuation losses and chosen
    /// ψ ratios.
    fn emit_chat(&self, state: &ChatSession<L::Sample>, ctx: &SessionCtx<'_>) {
        if !ctx.obs().enabled() {
            return;
        }
        let (ci_len, cj_len) = (
            state.coreset_i.as_ref().map_or(0, Coreset::len),
            state.coreset_j.as_ref().map_or(0, Coreset::len),
        );
        let obs = ctx.obs();
        obs.add("chats", 1);
        obs.add("coreset_points", (ci_len + cj_len) as u64);
        obs.observe("psi", state.choice.psi_i as f64);
        obs.observe("psi", state.choice.psi_j as f64);
        obs.emit(
            "chat",
            &[
                ("i", ctx.i.into()),
                ("j", ctx.j.into()),
                ("t", ctx.now().into()),
                ("coreset_i", ci_len.into()),
                ("coreset_j", cj_len.into()),
                ("loss_i_on_cj", state.loss_i_on_cj.into()),
                ("loss_j_on_ci", state.loss_j_on_ci.into()),
                ("psi_i", state.choice.psi_i.into()),
                ("psi_j", state.choice.psi_j.into()),
                ("objective", state.choice.objective.into()),
            ],
        );
    }

    /// Records the `compress.*` byte counters for one model send: the
    /// bytes the cost model charged (the paper's `ψ·S` family) next to the
    /// honest `min(2ψ, 1)·S` pair accounting. See docs/OBSERVABILITY.md
    /// and docs/COMPRESSION.md.
    fn record_compress_obs(&self, codec: Codec, psi: f32, ctx: &SessionCtx<'_>) {
        let obs = ctx.obs();
        if obs.enabled() {
            let dense = self.config.model_wire_bytes;
            obs.add("compress.model_bytes", codec.wire_bytes(dense, psi) as u64);
            obs.add("compress.pair_bytes", codec.pair_wire_bytes(dense, psi) as u64);
        }
    }

    /// Phase 5 sequencing: request the `i → j` model transfer if ψ_i
    /// warrants one, else fall through to [`Self::model_ji_step`].
    fn model_exchange_step(
        &mut self,
        state: &mut ChatSession<L::Sample>,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        state.absorb_on_close = true;
        if self.config.share_model && state.choice.psi_i >= PSI_MIN {
            let bytes =
                ctx.codec().wire_bytes(self.config.model_wire_bytes, state.choice.psi_i);
            state.phase = ChatPhase::ModelIJ;
            return SessionStep::Transfer(TransferSpec::link(
                bytes,
                Self::remaining(state.time_limit, ctx),
            ));
        }
        self.model_ji_step(state, ctx)
    }

    /// Request the `j → i` model transfer if ψ_j warrants one, else finish.
    fn model_ji_step(
        &mut self,
        state: &mut ChatSession<L::Sample>,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        if self.config.share_model && state.choice.psi_j >= PSI_MIN {
            let bytes =
                ctx.codec().wire_bytes(self.config.model_wire_bytes, state.choice.psi_j);
            state.phase = ChatPhase::ModelJI;
            return SessionStep::Transfer(TransferSpec::link(
                bytes,
                Self::remaining(state.time_limit, ctx),
            ));
        }
        SessionStep::Done
    }
}

impl<L: Learner> CollabAlgorithm for LbChatAlgorithm<L> {
    type Sample = L::Sample;
    type Session = ChatSession<L::Sample>;

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn model(&self, node: usize) -> &ParamVec {
        self.nodes[node].learner.params()
    }

    fn local_training(
        &mut self,
        node: usize,
        iters: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> crate::learner::TrainStats {
        for _ in 0..iters {
            self.nodes[node].local_iteration(rng);
        }
        self.nodes[node].learner.take_train_stats()
    }

    /// Eq. (5): `c = z · p · min(B_i, B_j)`. Bandwidths are homogeneous in
    /// the paper's setup, so the runtime's min-bandwidth is a constant
    /// factor — we use the radio bandwidth directly.
    fn pair_priority(&self, _i: usize, _j: usize, est: &ContactEstimate) -> f64 {
        est.z * est.p * 31e6
    }

    fn session_open(
        &mut self,
        ctx: &mut SessionCtx<'_>,
    ) -> Option<(ChatSession<L::Sample>, SessionStep)> {
        let time_limit = self.config.time_budget.min(ctx.contact().duration.max(0.0));
        let state = ChatSession {
            phase: ChatPhase::Assist,
            time_limit,
            c_ij_ok: false,
            coreset_i: None,
            coreset_j: None,
            loss_i_on_cj: 0.0,
            loss_j_on_ci: 0.0,
            phi_i: None,
            phi_j: None,
            choice: CompressionChoice {
                psi_i: 0.0,
                psi_j: 0.0,
                transfer_time: 0.0,
                objective: 0.0,
            },
            received_i: None,
            received_j: None,
            absorb_on_close: false,
            duration_floor: 0.0,
        };
        // --- 1. Assist messages (route + bandwidth, 184 B each way). ---
        Some((state, SessionStep::Transfer(TransferSpec::link(2 * 184, time_limit.max(1.0)))))
    }

    fn session_step(
        &mut self,
        state: &mut ChatSession<L::Sample>,
        out: TransferOutcome,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        let cfg = self.config.clone();
        let (i, j) = (ctx.i, ctx.j);
        match state.phase {
            ChatPhase::Assist => {
                if !out.is_delivered() {
                    state.duration_floor = 0.1;
                    return SessionStep::Done;
                }
                // --- 2. Coreset construction & exchange. ---
                {
                    let (a, b) = self.two_nodes(i, j);
                    if a.coreset_stale {
                        a.refresh_coreset(ctx.rng());
                    }
                    if b.coreset_stale {
                        b.refresh_coreset(ctx.rng());
                    }
                }
                state.phase = ChatPhase::CoresetIJ;
                SessionStep::Transfer(TransferSpec::link(
                    cfg.coreset_wire_bytes(),
                    Self::remaining(state.time_limit, ctx),
                ))
            }
            ChatPhase::CoresetIJ => {
                let coreset_bytes = cfg.coreset_wire_bytes();
                ctx.metrics.record_coreset_send(out.is_delivered(), coreset_bytes, out.elapsed());
                state.c_ij_ok = out.is_delivered();
                state.phase = ChatPhase::CoresetJI;
                SessionStep::Transfer(TransferSpec::link(
                    coreset_bytes,
                    Self::remaining(state.time_limit, ctx),
                ))
            }
            ChatPhase::CoresetJI => {
                let coreset_bytes = cfg.coreset_wire_bytes();
                ctx.metrics.record_coreset_send(out.is_delivered(), coreset_bytes, out.elapsed());
                if !state.c_ij_ok || !out.is_delivered() {
                    // Without both coresets there is no valuation; end the
                    // session. A failed coreset exchange is the strongest
                    // oversize signal.
                    if cfg.adaptive_coreset {
                        self.nodes[i].observe_exchange_share(1.5);
                        self.nodes[j].observe_exchange_share(1.5);
                    }
                    return SessionStep::Done;
                }
                if cfg.adaptive_coreset && state.time_limit > 0.0 {
                    let share = ctx.elapsed() / state.time_limit;
                    self.nodes[i].observe_exchange_share(share);
                    self.nodes[j].observe_exchange_share(share);
                }
                state.coreset_i = Some(self.nodes[i].coreset.clone());
                state.coreset_j = Some(self.nodes[j].coreset.clone());
                self.choose_compression(state, ctx)
            }
            ChatPhase::PhiExchange => {
                if !out.is_delivered() {
                    // Can't agree on ψ: absorb coresets and leave.
                    state.absorb_on_close = true;
                    return SessionStep::Done;
                }
                let (Some(phi_i), Some(phi_j)) = (&state.phi_i, &state.phi_j) else {
                    return SessionStep::Done;
                };
                let remaining = Self::remaining(state.time_limit, ctx);
                // Budget against expected *goodput*: retransmissions inflate
                // airtime by ~1/(1-PER), and the contact estimate's delivery
                // probability p is exactly the link-quality signal the assist
                // exchange bought us. Without this, transfers sized to the raw
                // bandwidth overrun their deadline whenever the channel is
                // lossy — the failure mode the paper's 87 % receiving rate
                // shows LbChat avoiding.
                let goodput = 31e6 * ctx.contact().p.clamp(0.05, 1.0);
                state.choice = CompressionProblem {
                    phi_i,
                    phi_j,
                    loss_j_on_ci: state.loss_j_on_ci,
                    loss_i_on_cj: state.loss_i_on_cj,
                    model_bytes: cfg.model_wire_bytes,
                    bandwidth_bps: goodput,
                    time_budget: remaining,
                    contact: (ctx.contact().duration - ctx.elapsed()).max(0.0),
                    lambda_c: cfg.lambda_c,
                }
                .solve();
                self.emit_chat(state, ctx);
                self.model_exchange_step(state, ctx)
            }
            ChatPhase::ModelIJ => {
                // --- 5. Model exchange (codec-compressed both ways). ---
                let codec = ctx.codec();
                let psi = state.choice.psi_i;
                let bytes = codec.wire_bytes(cfg.model_wire_bytes, psi);
                ctx.metrics.record_model_send(out.is_delivered(), bytes, out.elapsed());
                self.record_compress_obs(codec, psi, ctx);
                if out.is_delivered() {
                    if cfg.adaptive_coreset {
                        self.nodes[i].observe_compression(f64::from(psi));
                    }
                    if cfg.error_feedback && ctx.obs().enabled() {
                        ctx.obs().add("compress.feedback_folds", 1);
                    }
                    let rng = ctx.rng();
                    state.received_j = Some(self.nodes[i].encode_model_for(j, codec, psi, rng));
                }
                self.model_ji_step(state, ctx)
            }
            ChatPhase::ModelJI => {
                let codec = ctx.codec();
                let psi = state.choice.psi_j;
                let bytes = codec.wire_bytes(cfg.model_wire_bytes, psi);
                ctx.metrics.record_model_send(out.is_delivered(), bytes, out.elapsed());
                self.record_compress_obs(codec, psi, ctx);
                if out.is_delivered() {
                    if cfg.adaptive_coreset {
                        self.nodes[j].observe_compression(f64::from(psi));
                    }
                    if cfg.error_feedback && ctx.obs().enabled() {
                        ctx.obs().add("compress.feedback_folds", 1);
                    }
                    let rng = ctx.rng();
                    state.received_i = Some(self.nodes[j].encode_model_for(i, codec, psi, rng));
                }
                SessionStep::Done
            }
        }
    }

    fn session_close(
        &mut self,
        state: ChatSession<L::Sample>,
        ctx: &mut SessionCtx<'_>,
    ) -> f64 {
        let cfg = self.config.clone();
        let (i, j) = (ctx.i, ctx.j);
        // --- 6. Aggregation (Eq. 8) on the joint coreset view. ---
        if let (Some(peer_params), Some(coreset_j)) = (&state.received_i, &state.coreset_j) {
            let node = &self.nodes[i];
            let own_loss = node.joint_loss(node.learner.params(), coreset_j);
            let peer_loss = node.joint_loss(peer_params, coreset_j);
            let merged = aggregate_sparse_aware(
                node.learner.params(),
                own_loss,
                peer_params,
                peer_loss,
                cfg.aggregation,
            );
            self.nodes[i].adopt_model(merged);
        }
        if let (Some(peer_params), Some(coreset_i)) = (&state.received_j, &state.coreset_i) {
            let node = &self.nodes[j];
            let own_loss = node.joint_loss(node.learner.params(), coreset_i);
            let peer_loss = node.joint_loss(peer_params, coreset_i);
            let merged = aggregate_sparse_aware(
                node.learner.params(),
                own_loss,
                peer_params,
                peer_loss,
                cfg.aggregation,
            );
            self.nodes[j].adopt_model(merged);
        }

        // --- 7. Dataset expansion with the received coresets (§III-D). ---
        if state.absorb_on_close {
            if let (Some(coreset_i), Some(coreset_j)) = (&state.coreset_i, &state.coreset_j) {
                let (a, b) = self.two_nodes(i, j);
                a.absorb(coreset_j, ctx.rng());
                b.absorb(coreset_i, ctx.rng());
            }
        }

        ctx.elapsed().max(state.duration_floor)
    }

    fn mean_eval_loss(&self, eval: &[L::Sample]) -> f64 {
        if eval.is_empty() || self.nodes.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        for node in &self.nodes {
            let mut acc = 0.0f64;
            for s in eval {
                acc += node.learner.loss(s) as f64;
            }
            total += acc / eval.len() as f64;
        }
        total / self.nodes.len() as f64
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::testutil::{line_data, LineLearner};
    use crate::runtime::{Runtime, RuntimeConfig};
    use rand::SeedableRng;
    use simnet::geom::Vec2;
    use simnet::trace::MobilityTrace;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn small_config() -> LbChatConfig {
        LbChatConfig {
            coreset_size: 30,
            coreset_bytes_per_sample: 256,
            model_wire_bytes: 4 * 1024 * 1024, // small model: fits contacts
            coreset_refresh_iters: 20,
            batch_size: 16,
            ..LbChatConfig::default()
        }
    }

    fn two_node_algo(cfg: LbChatConfig) -> LbChatAlgorithm<LineLearner> {
        let mut r = rng();
        let la = LineLearner::new(0.0, 0.0);
        let lb = LineLearner::new(0.0, 0.0);
        let da = WeightedDataset::uniform(line_data(2.0, -1.0, 300));
        let db = WeightedDataset::uniform(line_data(-1.0, 2.0, 300));
        LbChatAlgorithm::new(vec![la, lb], vec![da, db], cfg, &mut r)
    }

    fn parked_trace(seconds: f64) -> MobilityTrace {
        let frames = (seconds * 2.0) as usize + 1;
        MobilityTrace::new(
            2.0,
            vec![vec![Vec2::ZERO; frames], vec![Vec2::new(80.0, 0.0); frames]],
        )
    }

    #[test]
    fn node_trains_and_refreshes_coreset() {
        let mut r = rng();
        let node_cfg = small_config();
        let mut node = LbChatNode::new(
            LineLearner::new(0.0, 0.0),
            WeightedDataset::uniform(line_data(1.0, 0.0, 200)),
            node_cfg,
            &mut r,
        );
        let initial_coreset = node.coreset().clone();
        let first = node.local_iteration(&mut r);
        for _ in 0..100 {
            node.local_iteration(&mut r);
        }
        let last = node.local_iteration(&mut r);
        assert!(last < first, "training must reduce loss: {first} -> {last}");
        assert_ne!(
            node.coreset(),
            &initial_coreset,
            "coreset must refresh as the model evolves"
        );
    }

    #[test]
    fn absorb_grows_dataset_and_keeps_coreset_size() {
        let mut r = rng();
        let mut node = LbChatNode::new(
            LineLearner::new(0.0, 0.0),
            WeightedDataset::uniform(line_data(1.0, 0.0, 200)),
            small_config(),
            &mut r,
        );
        let before = node.dataset().len();
        let peer = Coreset::new(
            line_data(3.0, 3.0, 40),
            vec![5.0; 40],
        );
        node.absorb(&peer, &mut r);
        assert_eq!(node.dataset().len(), before + 40);
        assert!(node.coreset().len() <= 30, "merge-reduce keeps the size bound");
    }

    #[test]
    fn chat_exchanges_models_and_data() {
        let mut algo = two_node_algo(small_config());
        let trace = parked_trace(600.0);
        // Pre-train both so models differ meaningfully.
        let mut r = rng();
        for node in 0..2 {
            algo.local_training(node, 200, &mut r);
        }
        let eval = line_data(2.0, -1.0, 50);
        let runtime = Runtime::new(RuntimeConfig {
            duration: 600.0,
            eval_every: 100.0,
            ..RuntimeConfig::default()
        });
        let before_a = algo.node(0).dataset().len();
        let metrics = runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        assert!(metrics.sessions > 0, "parked in range: must chat");
        assert!(metrics.coreset_receives > 0);
        assert!(metrics.model_receives > 0, "models must flow on a clean channel");
        assert!(
            algo.node(0).dataset().len() > before_a,
            "dataset must expand by absorbed coresets"
        );
    }

    #[test]
    fn collaboration_beats_isolation_on_foreign_data() {
        // Node 0 trains on line A, node 1 on line B. After chatting, node 0
        // must do better on B-data than an isolated twin.
        let cfg = small_config();
        let mut algo = two_node_algo(cfg.clone());
        let trace = parked_trace(900.0);
        let eval_b = line_data(-1.0, 2.0, 60);
        let runtime = Runtime::new(RuntimeConfig {
            duration: 900.0,
            eval_every: 300.0,
            ..RuntimeConfig::default()
        });
        runtime.run(&mut algo, &trace, &eval_b).expect("trace fits");
        let chatty_loss: f64 = eval_b
            .iter()
            .map(|s| algo.node(0).learner.loss(s) as f64)
            .sum::<f64>()
            / eval_b.len() as f64;

        // Isolated twin: same data, same training budget, no chats.
        let mut r = rng();
        let mut lonely = LbChatNode::new(
            LineLearner::new(0.0, 0.0),
            WeightedDataset::uniform(line_data(2.0, -1.0, 300)),
            cfg,
            &mut r,
        );
        for _ in 0..1800 {
            lonely.local_iteration(&mut r);
        }
        let lonely_loss: f64 = eval_b
            .iter()
            .map(|s| lonely.learner.loss(s) as f64)
            .sum::<f64>()
            / eval_b.len() as f64;
        assert!(
            chatty_loss < lonely_loss * 0.8,
            "chatting must help on foreign data: chatty {chatty_loss} vs lonely {lonely_loss}"
        );
    }

    #[test]
    fn sco_never_sends_models() {
        let mut algo = two_node_algo(small_config().sco());
        let trace = parked_trace(600.0);
        let eval = line_data(2.0, -1.0, 20);
        let runtime = Runtime::new(RuntimeConfig {
            duration: 600.0,
            ..RuntimeConfig::default()
        });
        let metrics = runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        assert!(metrics.sessions > 0);
        assert_eq!(metrics.model_sends, 0, "SCO shares coresets only");
        assert!(metrics.coreset_receives > 0);
        assert_eq!(algo.name(), "SCO");
    }

    #[test]
    fn equal_compression_still_exchanges() {
        let mut algo = two_node_algo(small_config().with_equal_compression());
        let trace = parked_trace(400.0);
        let eval = line_data(2.0, -1.0, 20);
        let runtime = Runtime::new(RuntimeConfig {
            duration: 400.0,
            ..RuntimeConfig::default()
        });
        let metrics = runtime.run(&mut algo, &trace, &eval).expect("trace fits");
        assert!(metrics.model_sends > 0);
    }

    #[test]
    fn two_nodes_split_borrows_correctly() {
        let mut algo = two_node_algo(small_config());
        let (a, b) = algo.two_nodes(1, 0);
        // Verify distinct addresses by mutating one side only.
        a.coreset_stale = true;
        assert!(a.coreset_stale);
        assert!(!b.coreset_stale, "mutating node a must not alias node b");
    }

    #[test]
    #[should_panic(expected = "cannot chat with itself")]
    fn self_chat_panics() {
        let mut algo = two_node_algo(small_config());
        let _ = algo.two_nodes(1, 1);
    }
}
