//! Weighted local datasets (the `D_i` of §II-A) and their expansion with
//! received coresets (§III-D).

use crate::coreset::Coreset;

/// A dataset of weighted samples: `f(x; D) = Σ_d w(d) f(x; d)` (Eq. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedDataset<S> {
    samples: Vec<S>,
    weights: Vec<f32>,
}

impl<S: Clone> WeightedDataset<S> {
    /// Creates a dataset with uniform unit weights.
    pub fn uniform(samples: Vec<S>) -> Self {
        let weights = vec![1.0; samples.len()];
        Self { samples, weights }
    }

    /// Creates a dataset with explicit weights.
    ///
    /// # Panics
    /// Panics if lengths differ or any weight is non-positive / non-finite.
    pub fn new(samples: Vec<S>, weights: Vec<f32>) -> Self {
        assert_eq!(samples.len(), weights.len(), "sample/weight length mismatch");
        assert!(
            weights.iter().all(|w| *w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        Self { samples, weights }
    }

    /// An empty dataset.
    pub fn empty() -> Self {
        Self { samples: Vec::new(), weights: Vec::new() }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples.
    pub fn samples(&self) -> &[S] {
        &self.samples
    }

    /// The original weights `w(d)`.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Sample at `i`.
    pub fn sample(&self, i: usize) -> &S {
        &self.samples[i]
    }

    /// Weight of sample `i`.
    pub fn weight(&self, i: usize) -> f32 {
        self.weights[i]
    }

    /// Total weight `Σ w(d)`.
    pub fn total_weight(&self) -> f32 {
        self.weights.iter().sum()
    }

    /// Borrowed `(sample, weight)` pairs, the shape loss evaluation expects.
    pub fn pairs(&self) -> Vec<(&S, f32)> {
        self.samples.iter().zip(self.weights.iter().copied()).collect()
    }

    /// Appends a sample with weight.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite weight.
    pub fn push(&mut self, sample: S, weight: f32) {
        assert!(weight > 0.0 && weight.is_finite(), "weight must be positive and finite");
        self.samples.push(sample);
        self.weights.push(weight);
    }

    /// Absorbs a received coreset, expanding the local dataset (§III-D).
    ///
    /// The paper keeps "the original weights w(d) of all data samples in the
    /// expanded local dataset to be the same" — absorbed samples join with
    /// the dataset's base weight (the mode of existing weights, i.e. 1.0 for
    /// uniformly weighted datasets), *not* their coreset weights `w_C`.
    pub fn absorb_coreset(&mut self, coreset: &Coreset<S>) {
        let base = 1.0;
        for s in coreset.samples() {
            self.samples.push(s.clone());
            self.weights.push(base);
        }
    }
}

impl<S: Clone> Default for WeightedDataset<S> {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coreset::Coreset;

    #[test]
    fn uniform_weights_are_one() {
        let d = WeightedDataset::uniform(vec![10, 20, 30]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.weights(), &[1.0, 1.0, 1.0]);
        assert_eq!(d.total_weight(), 3.0);
    }

    #[test]
    fn absorb_coreset_keeps_uniform_base_weight() {
        let mut d = WeightedDataset::uniform(vec![1, 2]);
        let c = Coreset::new(vec![7, 8, 9], vec![5.0, 5.0, 5.0]);
        d.absorb_coreset(&c);
        assert_eq!(d.len(), 5);
        // Absorbed samples get base weight 1.0, not their coreset weight.
        assert_eq!(d.weights(), &[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(d.samples()[2..], [7, 8, 9]);
    }

    #[test]
    fn pairs_zip_samples_and_weights() {
        let d = WeightedDataset::new(vec!["a", "b"], vec![2.0, 3.0]);
        let p = d.pairs();
        assert_eq!(p.len(), 2);
        assert_eq!(*p[0].0, "a");
        assert_eq!(p[1].1, 3.0);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let _ = WeightedDataset::new(vec![1], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_rejected() {
        let _ = WeightedDataset::new(vec![1, 2], vec![1.0]);
    }
}
