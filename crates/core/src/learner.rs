//! The task abstraction: what LbChat needs from a trainable model.
//!
//! LbChat is task-agnostic — the paper notes "the coreset-sharing based
//! model training paradigm proposed in this work can also be applied to a
//! spectrum of tasks and models". Everything the algorithm touches goes
//! through this trait: flat parameters for compression/aggregation,
//! per-sample losses for coreset construction and valuation, grouped losses
//! for the Eq. (6) command-entropy penalty, and weighted minibatch training.

use vnn::ParamVec;

pub use vnn::TrainStats;

/// A trainable model over samples of type `Self::Sample`.
///
/// Implementations must keep their entire state in the [`ParamVec`] exposed
/// by [`Learner::params`]: LbChat replaces it wholesale when aggregating
/// peer models (Eq. 8).
pub trait Learner {
    /// One training sample (e.g. a BEV driving frame).
    type Sample: Clone;

    /// Flat parameter vector (the `x` of the paper).
    fn params(&self) -> &ParamVec;

    /// Replaces the parameters (used after aggregation).
    ///
    /// # Panics
    /// Implementations panic if the length differs from [`Learner::params`].
    fn set_params(&mut self, params: ParamVec);

    /// Per-sample loss `f(x; d)` under the current parameters.
    fn loss(&self, sample: &Self::Sample) -> f32;

    /// Per-sample loss under an arbitrary parameter vector of the same
    /// layout — used to evaluate *compressed* copies of a model without
    /// cloning the learner.
    fn loss_with(&self, params: &ParamVec, sample: &Self::Sample) -> f32;

    /// Performs one weighted minibatch SGD step; `batch` pairs samples with
    /// their weights. Returns the weighted mean loss of the batch before the
    /// step. Implementations should no-op on an empty batch and return 0.
    fn train_step(&mut self, batch: &[(&Self::Sample, f32)]) -> f32;

    /// Group of a sample for the problem-dependent penalty `σ(x)` of
    /// Eq. (6) — the high-level driving command in the paper's task.
    fn group_of(&self, sample: &Self::Sample) -> usize;

    /// Number of distinct groups (must be ≥ 1).
    fn n_groups(&self) -> usize;

    /// Notifies the learner that its parameters were replaced externally
    /// (aggregation), so stale optimizer state (momentum) can be reset.
    /// Default: no-op.
    fn on_params_replaced(&mut self) {}

    /// Drains the training-kernel statistics accumulated since the last
    /// call (batches, samples, scratch reuses — see [`TrainStats`]). The
    /// runtime emits them as `train.*` observability counters after each
    /// local-training burst. Default: always zero, for learners that do not
    /// instrument their training path.
    fn take_train_stats(&mut self) -> TrainStats {
        TrainStats::default()
    }
}

/// Convenience: weighted mean loss of a learner over `(sample, weight)`
/// pairs, `Σ w·f(x;d) / Σ w`. Returns 0 for an empty set.
pub fn weighted_mean_loss<L: Learner>(
    learner: &L,
    params: &ParamVec,
    pairs: &[(&L::Sample, f32)],
) -> f32 {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (s, w) in pairs {
        num += (*w as f64) * learner.loss_with(params, s) as f64;
        den += *w as f64;
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den) as f32
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A tiny analytic learner used by the crate's unit tests: scalar
    //! samples, a 2-parameter model predicting `y = a·x + b`, squared loss.
    //! Cheap, deterministic, and convex — ideal for testing the machinery
    //! around it.

    use super::Learner;
    use vnn::ParamVec;

    /// Sample: input, target, group.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Pt {
        pub x: f32,
        pub y: f32,
        pub group: usize,
    }

    /// `y = a·x + b` with squared loss.
    #[derive(Debug, Clone)]
    pub struct LineLearner {
        pub params: ParamVec,
        pub lr: f32,
        pub groups: usize,
    }

    impl LineLearner {
        pub fn new(a: f32, b: f32) -> Self {
            Self { params: ParamVec::from_vec(vec![a, b]), lr: 0.05, groups: 4 }
        }
    }

    impl Learner for LineLearner {
        type Sample = Pt;

        fn params(&self) -> &ParamVec {
            &self.params
        }

        fn set_params(&mut self, params: ParamVec) {
            assert_eq!(params.len(), 2);
            self.params = params;
        }

        fn loss(&self, s: &Pt) -> f32 {
            self.loss_with(&self.params, s)
        }

        fn loss_with(&self, p: &ParamVec, s: &Pt) -> f32 {
            let w = p.as_slice();
            let pred = w[0] * s.x + w[1];
            (pred - s.y) * (pred - s.y)
        }

        fn train_step(&mut self, batch: &[(&Pt, f32)]) -> f32 {
            if batch.is_empty() {
                return 0.0;
            }
            let w = self.params.as_slice();
            let (mut ga, mut gb, mut loss, mut wsum) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (s, wt) in batch {
                let pred = w[0] * s.x + w[1];
                let r = pred - s.y;
                ga += wt * 2.0 * r * s.x;
                gb += wt * 2.0 * r;
                loss += wt * r * r;
                wsum += wt;
            }
            let inv = 1.0 / wsum;
            let p = self.params.as_mut_slice();
            p[0] -= self.lr * ga * inv;
            p[1] -= self.lr * gb * inv;
            loss * inv
        }

        fn group_of(&self, s: &Pt) -> usize {
            s.group
        }

        fn n_groups(&self) -> usize {
            self.groups
        }
    }

    /// Samples from `y = a·x + b` with group = quadrant of x.
    pub fn line_data(a: f32, b: f32, n: usize) -> Vec<Pt> {
        (0..n)
            .map(|i| {
                let x = (i as f32 / n as f32) * 4.0 - 2.0;
                Pt { x, y: a * x + b, group: (i * 4 / n).min(3) }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn line_learner_fits_a_line() {
        let mut l = LineLearner::new(0.0, 0.0);
        let data = line_data(2.0, -1.0, 50);
        for _ in 0..500 {
            let batch: Vec<(&Pt, f32)> = data.iter().map(|s| (s, 1.0)).collect();
            l.train_step(&batch);
        }
        let p = l.params().as_slice();
        assert!((p[0] - 2.0).abs() < 0.05, "slope {}", p[0]);
        assert!((p[1] + 1.0).abs() < 0.05, "intercept {}", p[1]);
    }

    #[test]
    fn weighted_mean_loss_respects_weights() {
        let l = LineLearner::new(1.0, 0.0);
        let good = Pt { x: 1.0, y: 1.0, group: 0 }; // loss 0
        let bad = Pt { x: 1.0, y: 3.0, group: 0 }; // loss 4
        let even = weighted_mean_loss(&l, l.params(), &[(&good, 1.0), (&bad, 1.0)]);
        assert!((even - 2.0).abs() < 1e-6);
        let skewed = weighted_mean_loss(&l, l.params(), &[(&good, 3.0), (&bad, 1.0)]);
        assert!((skewed - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_set_has_zero_loss() {
        let l = LineLearner::new(1.0, 0.0);
        assert_eq!(weighted_mean_loss(&l, l.params(), &[]), 0.0);
    }
}
