//! Alternative coreset constructions (paper §V, "Alternative coreset
//! construction approaches").
//!
//! The paper notes that "other kinds of coreset construction strategies
//! (e.g., random sampling based [Langberg & Schulman] and clustering based
//! algorithms [Lu et al.]) ... can be adapted in LbChat", because the core
//! idea only needs loss differences on shared sample sets. This module
//! provides both families so the claim is testable in code:
//!
//! * [`sensitivity_sampling`] — importance sampling where each sample's
//!   selection probability follows its *sensitivity* (share of the total
//!   loss under the current model), after Langberg & Schulman's universal
//!   ε-approximators. Data-dependent size behavior, unlike Alg. 1.
//! * [`kcenter_coreset`] — clustering-based: a greedy k-center cover in
//!   loss-feature space; each center represents (and carries the weight of)
//!   its cluster, after the robust-coreset construction of Lu et al.
//!   (JSAC 2020).
//!
//! Both produce the same [`Coreset`] type Algorithm 1 does, so every
//! downstream stage (valuation, φ, absorption) works unchanged.

use crate::coreset::Coreset;
use crate::dataset::WeightedDataset;
use crate::learner::Learner;
use rand::{Rng, RngExt};

/// Sensitivity-proportional importance sampling.
///
/// Sample `size` points i.i.d. with probability proportional to
/// `w(d) · (f(x; d) + ε₀)` (the additive floor keeps zero-loss samples
/// selectable), weighting each picked sample by `total / (size · p_d)` so
/// the weighted loss estimator stays unbiased.
///
/// Returns the whole dataset when it is not larger than `size`.
pub fn sensitivity_sampling<L, R>(
    learner: &L,
    dataset: &WeightedDataset<L::Sample>,
    size: usize,
    rng: &mut R,
) -> Coreset<L::Sample>
where
    L: Learner,
    R: Rng + ?Sized,
{
    let n = dataset.len();
    if n == 0 {
        return Coreset::empty();
    }
    if n <= size {
        return Coreset::new(dataset.samples().to_vec(), dataset.weights().to_vec());
    }
    let floor = 1e-6f64;
    let scores: Vec<f64> = dataset
        .samples()
        .iter()
        .zip(dataset.weights())
        .map(|(s, w)| (*w as f64) * (learner.loss(s) as f64 + floor))
        .collect();
    let total: f64 = scores.iter().sum();
    // Cumulative distribution for O(log n) draws.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for s in &scores {
        acc += s;
        cdf.push(acc);
    }
    let total_weight = dataset.total_weight() as f64;
    let mut samples = Vec::with_capacity(size);
    let mut weights = Vec::with_capacity(size);
    for _ in 0..size {
        let u: f64 = rng.random::<f64>() * total;
        let idx = cdf.partition_point(|&c| c < u).min(n - 1);
        let p = scores[idx] / total;
        samples.push(dataset.sample(idx).clone());
        // Unbiased inverse-probability weight, scaled to preserve the total.
        weights.push(((total_weight / size as f64) / (p * n as f64)) as f32 * dataset.weight(idx));
    }
    // Normalize so the coreset's total weight matches the dataset's (the
    // estimator property the rest of the pipeline assumes).
    let sum: f32 = weights.iter().sum();
    if sum > 0.0 {
        let scale = dataset.total_weight() / sum;
        for w in &mut weights {
            *w *= scale;
        }
    }
    Coreset::new(samples, weights)
}

/// Greedy k-center clustering coreset in loss space.
///
/// Greedily picks `size` centers maximizing the minimum loss-distance to
/// the already-picked set (the classic 2-approximation), then assigns every
/// sample to its nearest center and gives each center its cluster's total
/// weight.
///
/// Returns the whole dataset when it is not larger than `size`.
pub fn kcenter_coreset<L, R>(
    learner: &L,
    dataset: &WeightedDataset<L::Sample>,
    size: usize,
    rng: &mut R,
) -> Coreset<L::Sample>
where
    L: Learner,
    R: Rng + ?Sized,
{
    let n = dataset.len();
    if n == 0 {
        return Coreset::empty();
    }
    if n <= size {
        return Coreset::new(dataset.samples().to_vec(), dataset.weights().to_vec());
    }
    // 1-D feature: the per-sample loss (the same signal Alg. 1 layers on);
    // group id breaks ties so different commands cluster separately.
    let feats: Vec<(f32, usize)> = dataset
        .samples()
        .iter()
        .map(|s| (learner.loss(s), learner.group_of(s)))
        .collect();
    let dist = |a: (f32, usize), b: (f32, usize)| -> f32 {
        (a.0 - b.0).abs() + if a.1 == b.1 { 0.0 } else { 10.0 }
    };

    let first = rng.random_range(0..n);
    let mut centers = vec![first];
    let mut min_dist: Vec<f32> = feats.iter().map(|&f| dist(f, feats[first])).collect();
    while centers.len() < size {
        let (far_idx, &far) = min_dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite distances"))
            .expect("non-empty");
        if far <= 0.0 {
            break; // every remaining point coincides with a center
        }
        centers.push(far_idx);
        for (md, &f) in min_dist.iter_mut().zip(&feats) {
            let d = dist(f, feats[far_idx]);
            if d < *md {
                *md = d;
            }
        }
    }
    // Assign cluster weights.
    let mut center_weight = vec![0.0f32; centers.len()];
    for i in 0..n {
        let (best, _) = centers
            .iter()
            .enumerate()
            .map(|(k, &c)| (k, dist(feats[i], feats[c])))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("non-empty centers");
        center_weight[best] += dataset.weight(i);
    }
    let samples = centers.iter().map(|&c| dataset.sample(c).clone()).collect();
    // Guard against empty clusters (possible only for duplicated centers).
    let weights = center_weight
        .into_iter()
        .map(|w| w.max(f32::MIN_POSITIVE))
        .collect();
    Coreset::new(samples, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coreset::empirical_epsilon;
    use crate::learner::testutil::{LineLearner, Pt};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    fn dataset(n: usize) -> WeightedDataset<Pt> {
        let samples: Vec<Pt> = (0..n)
            .map(|i| {
                let x = (i as f32 / n as f32) * 4.0 - 2.0;
                Pt { x, y: x + (i % 23) as f32 / 23.0, group: i % 4 }
            })
            .collect();
        WeightedDataset::uniform(samples)
    }

    #[test]
    fn sensitivity_preserves_total_weight() {
        let l = LineLearner::new(1.0, 0.0);
        let d = dataset(2000);
        let c = sensitivity_sampling(&l, &d, 150, &mut rng());
        assert_eq!(c.len(), 150);
        let rel = (c.total_weight() - d.total_weight()).abs() / d.total_weight();
        assert!(rel < 1e-3, "total weight drift {rel}");
    }

    #[test]
    fn sensitivity_approximates_loss() {
        let l = LineLearner::new(1.0, 0.0);
        let d = dataset(3000);
        let c = sensitivity_sampling(&l, &d, 250, &mut rng());
        let eps = empirical_epsilon(&l, &c, &d);
        assert!(eps < 0.35, "sensitivity epsilon {eps}");
    }

    #[test]
    fn sensitivity_prefers_high_loss_samples() {
        let l = LineLearner::new(1.0, 0.0);
        // One sample has enormous loss: it should almost surely appear.
        let mut samples: Vec<Pt> = (0..500)
            .map(|i| Pt { x: i as f32 / 500.0, y: i as f32 / 500.0, group: 0 })
            .collect();
        samples[123].y += 100.0;
        let d = WeightedDataset::uniform(samples.clone());
        let c = sensitivity_sampling(&l, &d, 20, &mut rng());
        assert!(
            c.samples().iter().any(|s| (s.y - samples[123].y).abs() < 1e-6),
            "the dominant-loss sample must be picked"
        );
    }

    #[test]
    fn kcenter_covers_the_loss_range() {
        let l = LineLearner::new(1.0, 0.0);
        let d = dataset(2000);
        let c = kcenter_coreset(&l, &d, 100, &mut rng());
        assert!(c.len() <= 100);
        let rel = (c.total_weight() - d.total_weight()).abs() / d.total_weight();
        assert!(rel < 1e-3, "cluster weights must sum to the dataset: {rel}");
        // Loss coverage: the max loss in the coreset should be close to the
        // dataset's max (k-center picks extremes first).
        let max_d = d.samples().iter().map(|s| l.loss(s)).fold(0.0f32, f32::max);
        let max_c = c.samples().iter().map(|s| l.loss(s)).fold(0.0f32, f32::max);
        assert!(max_c > max_d * 0.9, "extremes must be covered: {max_c} vs {max_d}");
    }

    #[test]
    fn kcenter_approximates_loss() {
        let l = LineLearner::new(1.0, 0.0);
        let d = dataset(3000);
        let c = kcenter_coreset(&l, &d, 200, &mut rng());
        let eps = empirical_epsilon(&l, &c, &d);
        assert!(eps < 0.25, "k-center epsilon {eps}");
    }

    #[test]
    fn small_datasets_pass_through() {
        let l = LineLearner::new(1.0, 0.0);
        let d = dataset(10);
        assert_eq!(sensitivity_sampling(&l, &d, 50, &mut rng()).len(), 10);
        assert_eq!(kcenter_coreset(&l, &d, 50, &mut rng()).len(), 10);
        let empty: WeightedDataset<Pt> = WeightedDataset::empty();
        assert!(sensitivity_sampling(&l, &empty, 50, &mut rng()).is_empty());
        assert!(kcenter_coreset(&l, &empty, 50, &mut rng()).is_empty());
    }

    #[test]
    fn all_three_constructions_agree_on_the_estimate() {
        // Layered (Alg. 1), sensitivity, and k-center coresets of the same
        // dataset should all estimate f(x; D) within a loose band — the
        // §V claim that LbChat is construction-agnostic.
        let l = LineLearner::new(1.0, 0.0);
        let d = dataset(3000);
        let mut r = rng();
        let layered = crate::coreset::construct(
            &l,
            &d,
            &crate::coreset::CoresetConfig { size: 200 },
            &mut r,
        );
        let sens = sensitivity_sampling(&l, &d, 200, &mut r);
        let kc = kcenter_coreset(&l, &d, 200, &mut r);
        for (name, c) in [("layered", &layered), ("sensitivity", &sens), ("kcenter", &kc)] {
            let eps = empirical_epsilon(&l, c, &d);
            assert!(eps < 0.3, "{name} epsilon {eps}");
        }
    }
}
