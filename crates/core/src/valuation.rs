//! Model value assessment through coresets (§III-B, §III-C).
//!
//! The key insight of LbChat: evaluating *my* model on a *peer's* coreset
//! reveals how different the peer's data is. "A lower performance than that
//! of the peer's model indicates more different peer data, thus more
//! valuable the peer model; and the larger the gap, the higher the value."

use crate::learner::Learner;
use crate::penalty::{penalized_loss, PenaltyConfig};
use crate::Coreset;
use vnn::ParamVec;

/// Rectified linear unit — the truncation `ε(·)` of Eq. (7).
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Penalized weighted loss of a model (given by `params`) on a coreset —
/// the `f(x; C)` the chat protocol exchanges.
pub fn coreset_loss<L: Learner>(
    learner: &L,
    params: &ParamVec,
    coreset: &Coreset<L::Sample>,
    penalty: &PenaltyConfig,
) -> f32 {
    penalized_loss(learner, params, &coreset.pairs(), penalty)
}

/// The value of a peer's model to the local vehicle (§III-B):
/// `relu(f(x_local; C_peer) − f(x_peer; C_peer))`.
///
/// * `local_on_peer` — the local model's loss on the peer's coreset.
/// * `peer_on_own` — the peer model's loss on its own coreset.
///
/// A large positive gap means the peer's model masters data the local model
/// has never seen; zero means the peer has nothing to offer.
pub fn peer_model_value(local_on_peer: f32, peer_on_own: f32) -> f32 {
    relu(local_on_peer - peer_on_own)
}

/// The gain a receiver expects from a peer model compressed at ψ (the
/// Eq. (7) objective terms): `relu(f(x_recv; C_sender) − φ_sender(ψ))`,
/// where `φ_sender(ψ)` predicts the compressed sender model's loss on the
/// sender's coreset. Compression (lower ψ) raises `φ` and shrinks the gain;
/// `ψ = 0` (sending nothing) has gain 0 by definition.
pub fn expected_gain(receiver_loss_on_sender_coreset: f32, phi_at_psi: f32, psi: f32) -> f32 {
    if psi <= 0.0 {
        return 0.0;
    }
    relu(receiver_loss_on_sender_coreset - phi_at_psi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::testutil::{line_data, LineLearner};
    use crate::{coreset, WeightedDataset};
    use rand::SeedableRng;

    #[test]
    fn relu_truncates() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
    }

    #[test]
    fn peer_value_zero_when_peer_is_no_better() {
        assert_eq!(peer_model_value(0.5, 0.9), 0.0);
        assert!(peer_model_value(0.9, 0.5) > 0.0);
    }

    #[test]
    fn expected_gain_zero_at_psi_zero() {
        assert_eq!(expected_gain(10.0, 0.0, 0.0), 0.0);
        assert!(expected_gain(10.0, 1.0, 0.5) > 0.0);
    }

    #[test]
    fn different_data_means_higher_value() {
        // Two learners trained on different lines; each coreset reflects its
        // own data. The cross-valuation must exceed the self-valuation.
        let train = |a: f32, b: f32| -> (LineLearner, Coreset<_>) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let mut l = LineLearner::new(0.0, 0.0);
            let data = line_data(a, b, 300);
            for _ in 0..400 {
                let batch: Vec<_> = data.iter().map(|s| (s, 1.0)).collect();
                l.train_step(&batch);
            }
            let ds = WeightedDataset::uniform(data);
            let c = coreset::construct(
                &l,
                &ds,
                &coreset::CoresetConfig { size: 60 },
                &mut rng,
            );
            (l, c)
        };
        let (la, ca) = train(2.0, -1.0);
        let (lb, cb) = train(-1.5, 2.0);
        let pen = PenaltyConfig::none();

        // A's model on B's coreset vs B's model on its own coreset.
        let a_on_b = coreset_loss(&la, la.params(), &cb, &pen);
        let b_on_b = coreset_loss(&lb, lb.params(), &cb, &pen);
        let value_of_b_to_a = peer_model_value(a_on_b, b_on_b);
        assert!(
            value_of_b_to_a > 0.5,
            "models trained on different data must be valuable: {value_of_b_to_a}"
        );

        // A peer identical to A offers nothing.
        let (la2, ca2) = train(2.0, -1.0);
        let a_on_a2 = coreset_loss(&la, la.params(), &ca2, &pen);
        let a2_on_a2 = coreset_loss(&la2, la2.params(), &ca2, &pen);
        let value_of_clone = peer_model_value(a_on_a2, a2_on_a2);
        assert!(
            value_of_clone < 0.05,
            "an identical peer should be near-worthless: {value_of_clone}"
        );
        let _ = (ca, cb);
    }
}
