//! LbChat configuration with the paper's §IV-A defaults.
//!
//! [`LbChatConfig`] gathers every knob of the algorithm — coreset size and
//! refresh policy, the ψ grid behind the Eq. (7) optimizer, error-feedback
//! compensation, aggregation rule, penalty weights, wire sizes — pre-set to the
//! values §IV-A reports (coreset 150 frames ≈ 0.6 MB, T_B = 15 s,
//! lr 1e-4, batch 64). Variants are derived with the chainable `with_*`
//! methods (e.g. [`LbChatConfig::with_coreset_size`] for the Table IV
//! sweep, [`LbChatConfig::with_equal_compression`] /
//! [`LbChatConfig::with_average_aggregation`] for the Table V/VI
//! ablations, [`LbChatConfig::sco`] for coreset-only sharing). This module
//! also hosts [`ConfigError`], the validation failure type shared by the
//! runtime's and the driving crate's config builders.

use crate::aggregate::AggregationRule;
use crate::penalty::PenaltyConfig;
use crate::phi::DEFAULT_PSI_GRID;

/// A validation failure from a config builder ([`crate::RuntimeConfig`]'s
/// and the driving crate's evaluation config). Carries the offending field
/// name so callers can report which knob was nonsense.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A field that must be strictly positive (and finite) was not.
    NonPositive {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A field that must be non-negative (and finite) was not.
    Negative {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A count field that must be at least one was zero.
    ZeroCount {
        /// The offending field.
        field: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be non-negative and finite, got {value}")
            }
            ConfigError::ZeroCount { field } => {
                write!(f, "{field} must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    /// Checks that `value` is finite and strictly positive.
    pub fn require_positive(field: &'static str, value: f64) -> Result<(), ConfigError> {
        if value.is_finite() && value > 0.0 {
            Ok(())
        } else {
            Err(ConfigError::NonPositive { field, value })
        }
    }

    /// Checks that `value` is finite and non-negative.
    pub fn require_non_negative(field: &'static str, value: f64) -> Result<(), ConfigError> {
        if value.is_finite() && value >= 0.0 {
            Ok(())
        } else {
            Err(ConfigError::Negative { field, value })
        }
    }

    /// Checks that a count is nonzero.
    pub fn require_nonzero(field: &'static str, value: usize) -> Result<(), ConfigError> {
        if value > 0 {
            Ok(())
        } else {
            Err(ConfigError::ZeroCount { field })
        }
    }
}

/// Every knob of the LbChat node, defaulted to the paper's experimental
/// setup.
#[derive(Debug, Clone)]
pub struct LbChatConfig {
    /// Coreset size in samples (paper: 150 frames).
    pub coreset_size: usize,
    /// Serialized bytes per coreset sample. The paper's 150-frame coreset is
    /// ≈ 0.6 MB with lossless compression ⇒ 4096 bytes/frame.
    pub coreset_bytes_per_sample: usize,
    /// Dense wire size of the model (paper: 52 MB).
    pub model_wire_bytes: usize,
    /// Pairwise exchange time budget `T_B` in seconds (paper: 15 s).
    pub time_budget: f64,
    /// Award coefficient `λ_c` of Eq. (7).
    pub lambda_c: f32,
    /// Eq. (6) penalty coefficients.
    pub penalty: PenaltyConfig,
    /// ψ values sampled when fitting φ.
    pub psi_grid: Vec<f32>,
    /// Aggregation rule for Eq. (8).
    pub aggregation: AggregationRule,
    /// Table V ablation: ignore the Eq. (7) optimization and use an equal,
    /// contact-fitted compression ratio in both directions.
    pub equal_compression: bool,
    /// When `false`, vehicles share only coresets, never models — the SCO
    /// variant of §IV-G.
    pub share_model: bool,
    /// Local iterations between coreset rebuilds (the coreset tracks the
    /// evolving model and dataset).
    pub coreset_refresh_iters: usize,
    /// Maintain the coreset by merge-and-reduce on absorption (§III-D)
    /// instead of waiting for the next full rebuild.
    pub merge_reduce: bool,
    /// Minibatch size for local training (paper: 64).
    pub batch_size: usize,
    /// Enable adaptive coreset sizing (the paper's stated future work; see
    /// [`crate::adaptive`]). The configured `coreset_size` becomes the
    /// starting point, bounded to one decade either side.
    pub adaptive_coreset: bool,
    /// Wrap model encodes in [`crate::compress::ErrorFeedback`]: each
    /// round's dropped compression mass is banked per peer and folded into
    /// the next encode toward that peer. Off by default (the paper has no
    /// residual accumulation). The codec itself is a runtime concern —
    /// [`crate::RuntimeConfig`]'s `codec` field / the `--codec` CLI axis.
    pub error_feedback: bool,
}

impl Default for LbChatConfig {
    fn default() -> Self {
        Self {
            coreset_size: 150,
            coreset_bytes_per_sample: 4096,
            model_wire_bytes: 52 * 1024 * 1024,
            time_budget: 15.0,
            lambda_c: 0.01,
            penalty: PenaltyConfig::default(),
            psi_grid: DEFAULT_PSI_GRID.to_vec(),
            aggregation: AggregationRule::InverseLoss,
            equal_compression: false,
            share_model: true,
            coreset_refresh_iters: 50,
            merge_reduce: true,
            batch_size: 64,
            adaptive_coreset: false,
            error_feedback: false,
        }
    }
}

impl LbChatConfig {
    /// Wire size of a coreset with the configured per-sample bytes.
    pub fn coreset_wire_bytes(&self) -> usize {
        self.coreset_size * self.coreset_bytes_per_sample
    }

    /// The SCO variant (§IV-G): coreset sharing only.
    pub fn sco(mut self) -> Self {
        self.share_model = false;
        self
    }

    /// The Table V ablation: equal compression ratios.
    pub fn with_equal_compression(mut self) -> Self {
        self.equal_compression = true;
        self
    }

    /// The Table VI ablation: plain-average aggregation.
    pub fn with_average_aggregation(mut self) -> Self {
        self.aggregation = AggregationRule::Average;
        self
    }

    /// The Table IV sweep: a different coreset size.
    pub fn with_coreset_size(mut self, size: usize) -> Self {
        self.coreset_size = size;
        self
    }

    /// Enables adaptive coreset sizing (extension beyond the paper).
    pub fn with_adaptive_coreset(mut self) -> Self {
        self.adaptive_coreset = true;
        self
    }

    /// Enables error-feedback compensation around the session codec
    /// (extension beyond the paper; see docs/COMPRESSION.md).
    pub fn with_error_feedback(mut self) -> Self {
        self.error_feedback = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LbChatConfig::default();
        assert_eq!(c.coreset_size, 150);
        assert_eq!(c.model_wire_bytes, 52 * 1024 * 1024);
        assert_eq!(c.time_budget, 15.0);
        assert_eq!(c.batch_size, 64);
        // 150 frames at 4096 B ≈ 0.6 MB.
        assert_eq!(c.coreset_wire_bytes(), 614_400);
    }

    #[test]
    fn builders_toggle_the_right_flags() {
        assert!(!LbChatConfig::default().sco().share_model);
        assert!(LbChatConfig::default().with_equal_compression().equal_compression);
        assert_eq!(
            LbChatConfig::default().with_average_aggregation().aggregation,
            AggregationRule::Average
        );
        assert_eq!(LbChatConfig::default().with_coreset_size(15).coreset_size, 15);
        assert!(LbChatConfig::default().with_adaptive_coreset().adaptive_coreset);
        assert!(LbChatConfig::default().with_error_feedback().error_feedback);
        assert!(!LbChatConfig::default().error_feedback);
    }
}
