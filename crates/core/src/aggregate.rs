//! Model aggregation (§III-C, Eq. 8).
//!
//! After receiving the peer's (compressed) model, a vehicle merges it with
//! its local model using weights derived from both models' losses on the
//! joint data `D_i ∪ C_j` (approximated by `C_i ∪ C_j` when encounters are
//! frequent, §III-D).
//!
//! **A note on Eq. (8) as printed.** The printed equation weights each model
//! by *its own* loss, which would give *worse* models *more* influence —
//! contradicting the paper's own reading of it ("the equation assigns
//! larger weights to better-performing models to adaptively aggregate
//! them"). We implement the evidently intended inverse form — each model is
//! weighted by the *other* model's normalized loss, so lower loss ⇒ higher
//! weight — as [`AggregationRule::InverseLoss`], keep the printed form
//! available as [`AggregationRule::AsPrinted`] for study, and compare both
//! in an ablation bench.

use vnn::ParamVec;

/// How to derive aggregation weights from the two models' losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationRule {
    /// Paper intent: weight of a model ∝ the *other* model's loss, so the
    /// better-performing model dominates.
    #[default]
    InverseLoss,
    /// Eq. (8) exactly as printed: weight of a model ∝ its own loss.
    AsPrinted,
    /// Plain averaging — the Table VI ablation.
    Average,
}

/// Merges `local` (loss `loss_local`) with the received `peer` model (loss
/// `loss_peer`), both losses measured on the same joint set.
///
/// # Panics
/// Panics if the parameter lengths differ or a loss is negative/non-finite.
pub fn aggregate(
    local: &ParamVec,
    loss_local: f32,
    peer: &ParamVec,
    loss_peer: f32,
    rule: AggregationRule,
) -> ParamVec {
    assert!(
        loss_local >= 0.0 && loss_local.is_finite() && loss_peer >= 0.0 && loss_peer.is_finite(),
        "losses must be non-negative and finite"
    );
    let (w_local, w_peer) = match rule {
        AggregationRule::Average => (0.5, 0.5),
        AggregationRule::AsPrinted => {
            if loss_local + loss_peer <= 0.0 {
                (0.5, 0.5)
            } else {
                (loss_local, loss_peer)
            }
        }
        AggregationRule::InverseLoss => {
            if loss_local + loss_peer <= 0.0 {
                (0.5, 0.5)
            } else {
                // Weight each model by the other's loss: normalized, the
                // lower-loss model gets the larger share.
                (loss_peer, loss_local)
            }
        }
    };
    ParamVec::weighted_average(local, w_local, peer, w_peer)
}

/// Like [`aggregate`], but *support-aware*: components the (top-k
/// compressed) peer model did not transmit keep their local values instead
/// of being blended toward zero.
///
/// The index–value wire encoding (§III-C) tells the receiver exactly which
/// components arrived; dragging the untransmitted majority of a
/// ψ-compressed model toward zero would corrupt the receiver far beyond
/// what the sender's compression justified. A densified top-k model marks
/// missing components with exact zeros, which is what this function keys
/// on (a transmitted exact-zero component is indistinguishable but also
/// harmless — blending toward zero is then correct).
pub fn aggregate_sparse_aware(
    local: &ParamVec,
    loss_local: f32,
    peer: &ParamVec,
    loss_peer: f32,
    rule: AggregationRule,
) -> ParamVec {
    let blended = aggregate(local, loss_local, peer, loss_peer, rule);
    let data = local
        .as_slice()
        .iter()
        .zip(peer.as_slice())
        .zip(blended.as_slice())
        .map(|((l, p), b)| if *p == 0.0 { *l } else { *b })
        .collect();
    ParamVec::from_vec(data)
}

/// A cache of previously computed losses, keyed by an opaque version
/// counter — "caching these losses can further reduce repeated future
/// computations" (§III-C). The node bumps the version whenever the model or
/// the referenced set changes.
#[derive(Debug, Clone, Default)]
pub struct LossCache {
    version: u64,
    value: Option<f32>,
}

impl LossCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached loss if `version` still matches.
    pub fn get(&self, version: u64) -> Option<f32> {
        if self.version == version {
            self.value
        } else {
            None
        }
    }

    /// Stores a loss for `version`.
    pub fn put(&mut self, version: u64, value: f32) {
        self.version = version;
        self.value = Some(value);
    }

    /// Fetches the loss for `version`, computing and caching it on a miss.
    pub fn get_or_insert_with<F: FnOnce() -> f32>(&mut self, version: u64, f: F) -> f32 {
        if let Some(v) = self.get(version) {
            return v;
        }
        let v = f();
        self.put(version, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (ParamVec, ParamVec) {
        (
            ParamVec::from_vec(vec![0.0, 0.0]),
            ParamVec::from_vec(vec![1.0, 1.0]),
        )
    }

    #[test]
    fn inverse_loss_favors_the_better_model() {
        let (local, peer) = models();
        // Local loss 3 (bad), peer loss 1 (good): result closer to peer.
        let merged = aggregate(&local, 3.0, &peer, 1.0, AggregationRule::InverseLoss);
        assert!((merged.as_slice()[0] - 0.75).abs() < 1e-6, "{:?}", merged.as_slice());
    }

    #[test]
    fn as_printed_favors_the_worse_model() {
        let (local, peer) = models();
        let merged = aggregate(&local, 3.0, &peer, 1.0, AggregationRule::AsPrinted);
        // Printed Eq. 8: local gets weight 3/4 despite being worse.
        assert!((merged.as_slice()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn average_ignores_losses() {
        let (local, peer) = models();
        let merged = aggregate(&local, 100.0, &peer, 0.001, AggregationRule::Average);
        assert!((merged.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn equal_losses_average_under_every_rule() {
        let (local, peer) = models();
        for rule in [
            AggregationRule::InverseLoss,
            AggregationRule::AsPrinted,
            AggregationRule::Average,
        ] {
            let merged = aggregate(&local, 2.0, &peer, 2.0, rule);
            assert!((merged.as_slice()[0] - 0.5).abs() < 1e-6, "{rule:?}");
        }
    }

    #[test]
    fn zero_losses_fall_back_to_average() {
        let (local, peer) = models();
        let merged = aggregate(&local, 0.0, &peer, 0.0, AggregationRule::InverseLoss);
        assert!((merged.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn perfect_local_model_dominates() {
        let (local, peer) = models();
        let merged = aggregate(&local, 0.0, &peer, 5.0, AggregationRule::InverseLoss);
        assert_eq!(merged.as_slice(), local.as_slice());
    }

    #[test]
    fn loss_cache_hits_and_misses() {
        let mut c = LossCache::new();
        assert_eq!(c.get(1), None);
        let v = c.get_or_insert_with(1, || 0.7);
        assert_eq!(v, 0.7);
        assert_eq!(c.get(1), Some(0.7));
        // New version invalidates.
        assert_eq!(c.get(2), None);
        let v2 = c.get_or_insert_with(2, || 0.9);
        assert_eq!(v2, 0.9);
    }

    #[test]
    fn sparse_aware_keeps_untransmitted_components() {
        let local = ParamVec::from_vec(vec![1.0, 2.0, 3.0]);
        // Peer transmitted only component 1 (others zero = not sent).
        let peer = ParamVec::from_vec(vec![0.0, 4.0, 0.0]);
        let m = aggregate_sparse_aware(&local, 1.0, &peer, 1.0, AggregationRule::Average);
        assert_eq!(m.as_slice()[0], 1.0, "untransmitted: keep local");
        assert_eq!(m.as_slice()[2], 3.0, "untransmitted: keep local");
        assert!((m.as_slice()[1] - 3.0).abs() < 1e-6, "transmitted: blended");
    }

    #[test]
    fn sparse_aware_matches_dense_on_full_models() {
        let local = ParamVec::from_vec(vec![1.0, 2.0]);
        let peer = ParamVec::from_vec(vec![3.0, 4.0]);
        let dense = aggregate(&local, 1.0, &peer, 3.0, AggregationRule::InverseLoss);
        let sparse = aggregate_sparse_aware(&local, 1.0, &peer, 3.0, AggregationRule::InverseLoss);
        assert_eq!(dense, sparse);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_loss_panics() {
        let (local, peer) = models();
        let _ = aggregate(&local, -1.0, &peer, 1.0, AggregationRule::InverseLoss);
    }
}
