//! The Eq. (7) compression-ratio optimization.
//!
//! Two encountered vehicles jointly choose `ψ_i, ψ_j ∈ [0, 1]` maximizing
//!
//! ```text
//!   gain_j(ψ_i) + gain_i(ψ_j) + λ_c · (min(T_B, T_contact) − T_c)
//!   s.t.  T_c = S (ψ_i + ψ_j) / min(B_i, B_j) ≤ min(T_B, T_contact)
//! ```
//!
//! where `gain_recv(ψ_send) = relu(f(x_recv; C_send) − φ_send(ψ_send))` is
//! the expected improvement the receiver gets from the sender's compressed
//! model (see [`crate::valuation`]; the paper's Eq. (7) prints the
//! difference with the operands transposed, which would *reward* heavier
//! compression — we use the orientation its §III prose describes, see
//! DESIGN.md). The first two terms make the choice mutually beneficial
//! ("we demand fairness between the two vehicles by simply adding the first
//! two terms"); the award term lets uninterested vehicles conclude quickly
//! and move on to better peers.
//!
//! The feasible set is the triangle `ψ_i + ψ_j ≤ B·T_lim / S`; with φ given
//! by Akima fits the objective is cheap, so a dense grid scan plus local
//! coordinate refinement finds the optimum robustly (the paper: "we can
//! solve the optimization problem ... with existing solvers efficiently").

use crate::phi::PhiCurve;
use crate::valuation::expected_gain;

/// Inputs of one Eq. (7) instance.
#[derive(Debug, Clone)]
pub struct CompressionProblem<'a> {
    /// φ of vehicle i's model on its own coreset `C_i`.
    pub phi_i: &'a PhiCurve,
    /// φ of vehicle j's model on its own coreset `C_j`.
    pub phi_j: &'a PhiCurve,
    /// `f(x_j; C_i)` — j's model evaluated on i's coreset.
    pub loss_j_on_ci: f32,
    /// `f(x_i; C_j)` — i's model evaluated on j's coreset.
    pub loss_i_on_cj: f32,
    /// Dense wire size `S` of the model in bytes.
    pub model_bytes: usize,
    /// `min(B_i, B_j)` in bits per second.
    pub bandwidth_bps: f64,
    /// Time budget `T_B` for the pairwise exchange (paper: 15 s).
    pub time_budget: f64,
    /// Estimated contact duration `T_contact`.
    pub contact: f64,
    /// Award coefficient `λ_c` (per second of saved time).
    pub lambda_c: f32,
}

/// The optimizer's choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionChoice {
    /// ψ for vehicle i's model (what i sends).
    pub psi_i: f32,
    /// ψ for vehicle j's model (what j sends).
    pub psi_j: f32,
    /// Transfer time `T_c` the choice implies, in seconds.
    pub transfer_time: f64,
    /// Objective value achieved.
    pub objective: f32,
}

impl CompressionProblem<'_> {
    /// The effective time limit `min(T_B, T_contact)`.
    pub fn time_limit(&self) -> f64 {
        self.time_budget.min(self.contact)
    }

    /// Transfer time for a `(ψ_i, ψ_j)` pair.
    pub fn transfer_time(&self, psi_i: f32, psi_j: f32) -> f64 {
        (self.model_bytes as f64 * 8.0) * (psi_i as f64 + psi_j as f64) / self.bandwidth_bps
    }

    /// The Eq. (7) objective (without feasibility check).
    pub fn objective(&self, psi_i: f32, psi_j: f32) -> f32 {
        // Gain for j receiving i's model, and for i receiving j's.
        let gain_j = expected_gain(self.loss_j_on_ci, self.phi_i.predict(psi_i), psi_i);
        let gain_i = expected_gain(self.loss_i_on_cj, self.phi_j.predict(psi_j), psi_j);
        let saved = (self.time_limit() - self.transfer_time(psi_i, psi_j)) as f32;
        gain_j + gain_i + self.lambda_c * saved
    }

    /// Whether `(ψ_i, ψ_j)` satisfies the time constraint.
    pub fn feasible(&self, psi_i: f32, psi_j: f32) -> bool {
        self.transfer_time(psi_i, psi_j) <= self.time_limit() + 1e-9
    }

    /// Solves Eq. (7): dense grid scan over the feasible triangle followed
    /// by a local coordinate refinement around the best grid point.
    ///
    /// Always returns a feasible choice; `(0, 0)` (exchange nothing) is
    /// always feasible and is chosen when no transfer is worthwhile.
    pub fn solve(&self) -> CompressionChoice {
        const GRID: usize = 33;
        // Ties in the objective (common when φ is near-linear and the
        // constraint binds) are broken toward *balanced* ψ — the fairness
        // the paper demands between the two vehicles.
        let balance = |pi: f32, pj: f32| -(pi - pj).abs();
        let better = |cand: (f32, f32, f32), inc: (f32, f32, f32)| -> bool {
            cand.2 > inc.2 + 1e-6
                || (cand.2 > inc.2 - 1e-6 && balance(cand.0, cand.1) > balance(inc.0, inc.1))
        };
        let mut best = (0.0f32, 0.0f32, self.objective(0.0, 0.0));
        let step = 1.0 / (GRID - 1) as f32;
        for a in 0..GRID {
            let psi_i = a as f32 * step;
            for b in 0..GRID {
                let psi_j = b as f32 * step;
                if !self.feasible(psi_i, psi_j) {
                    break; // psi_j only grows along this row
                }
                let v = self.objective(psi_i, psi_j);
                if better((psi_i, psi_j, v), best) {
                    best = (psi_i, psi_j, v);
                }
            }
        }
        // Coordinate refinement at finer resolution around the incumbent.
        let mut radius = step;
        for _ in 0..3 {
            let fine = radius / 8.0;
            let (ci, cj) = (best.0, best.1);
            for a in -8i32..=8 {
                for b in -8i32..=8 {
                    let psi_i = (ci + a as f32 * fine).clamp(0.0, 1.0);
                    let psi_j = (cj + b as f32 * fine).clamp(0.0, 1.0);
                    if !self.feasible(psi_i, psi_j) {
                        continue;
                    }
                    let v = self.objective(psi_i, psi_j);
                    if better((psi_i, psi_j, v), best) {
                        best = (psi_i, psi_j, v);
                    }
                }
            }
            radius = fine;
        }
        CompressionChoice {
            psi_i: best.0,
            psi_j: best.1,
            transfer_time: self.transfer_time(best.0, best.1),
            objective: best.2,
        }
    }
}

/// The Table V ablation: both vehicles use the same fixed ψ, set as large
/// as the contact allows ("vehicles use equal compression ratios in model
/// exchange instead"), without coreset-driven adaptation.
pub fn equal_compression_choice(
    model_bytes: usize,
    bandwidth_bps: f64,
    time_budget: f64,
    contact: f64,
) -> CompressionChoice {
    let limit = time_budget.min(contact);
    let bits = model_bytes as f64 * 8.0;
    // S(ψ+ψ)/B = limit  =>  ψ = B·limit / (2S).
    let mut psi = ((bandwidth_bps * limit) / (2.0 * bits)).clamp(0.0, 1.0) as f32;
    // The f64→f32 cast can round ψ up past the budget boundary; nudge down
    // by ULPs until the implied transfer time fits (ψ = 1 is exempt — it
    // only arises when the contact comfortably fits two full models).
    while psi > 0.0 && psi < 1.0 && bits * 2.0 * psi as f64 / bandwidth_bps > limit {
        psi = f32::from_bits(psi.to_bits() - 1);
    }
    CompressionChoice {
        psi_i: psi,
        psi_j: psi,
        transfer_time: bits * 2.0 * psi as f64 / bandwidth_bps,
        objective: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phi::PhiCurve;

    /// φ with the given uncompressed loss, rising as ψ shrinks.
    fn phi(base: f32) -> PhiCurve {
        let psi = vec![0.02f32, 0.1, 0.3, 0.6, 1.0];
        let loss = psi.iter().map(|p| base + (1.0 - p) * 2.0).collect();
        PhiCurve::from_points(psi, loss)
    }

    fn problem<'a>(
        phi_i: &'a PhiCurve,
        phi_j: &'a PhiCurve,
        lj_on_ci: f32,
        li_on_cj: f32,
        contact: f64,
    ) -> CompressionProblem<'a> {
        CompressionProblem {
            phi_i,
            phi_j,
            loss_j_on_ci: lj_on_ci,
            loss_i_on_cj: li_on_cj,
            model_bytes: 52 * 1024 * 1024,
            bandwidth_bps: 31e6,
            time_budget: 15.0,
            contact,
            lambda_c: 0.01,
        }
    }

    #[test]
    fn valuable_peers_get_high_psi() {
        let pi = phi(0.2);
        let pj = phi(0.2);
        // Both peers find each other's model extremely valuable.
        let p = problem(&pi, &pj, 5.0, 5.0, 60.0);
        let c = p.solve();
        assert!(c.psi_i > 0.3, "valuable model should be lightly compressed: {c:?}");
        assert!(c.psi_j > 0.3);
        assert!(p.feasible(c.psi_i, c.psi_j));
    }

    #[test]
    fn worthless_peers_exchange_nothing() {
        let pi = phi(2.0);
        let pj = phi(2.0);
        // Receivers already achieve loss 0.1 — no gain possible at any ψ.
        let p = problem(&pi, &pj, 0.1, 0.1, 60.0);
        let c = p.solve();
        assert!(c.psi_i < 0.05 && c.psi_j < 0.05, "nothing to gain: {c:?}");
        assert!(c.transfer_time < 2.0);
    }

    #[test]
    fn asymmetric_value_gives_asymmetric_psi() {
        let pi = phi(0.2);
        let pj = phi(0.2);
        // i's model is valuable to j; j's model is worthless to i.
        let p = problem(&pi, &pj, 5.0, 0.0, 60.0);
        let c = p.solve();
        assert!(
            c.psi_i > c.psi_j + 0.2,
            "only the valuable direction deserves bandwidth: {c:?}"
        );
    }

    #[test]
    fn constraint_respected_under_short_contact() {
        let pi = phi(0.2);
        let pj = phi(0.2);
        let p = problem(&pi, &pj, 5.0, 5.0, 5.0); // 5 s contact only
        let c = p.solve();
        assert!(c.transfer_time <= 5.0 + 1e-6);
        // 52 MB at 31 Mbps is ~13.4 s per full model: psi must be small.
        assert!(c.psi_i + c.psi_j < 0.45, "{c:?}");
    }

    #[test]
    fn time_budget_caps_even_long_contacts() {
        let pi = phi(0.2);
        let pj = phi(0.2);
        let p = problem(&pi, &pj, 5.0, 5.0, 300.0);
        let c = p.solve();
        assert!(c.transfer_time <= p.time_budget + 1e-6);
    }

    #[test]
    fn zero_feasible_point_always_exists() {
        let pi = phi(0.2);
        let pj = phi(0.2);
        let p = problem(&pi, &pj, 5.0, 5.0, 0.0); // contact already over
        let c = p.solve();
        assert_eq!((c.psi_i, c.psi_j), (0.0, 0.0));
    }

    #[test]
    fn higher_lambda_c_prefers_shorter_exchanges() {
        let pi = phi(0.2);
        let pj = phi(0.2);
        let mut p = problem(&pi, &pj, 1.0, 1.0, 60.0);
        p.lambda_c = 0.0001;
        let lazy = p.solve();
        p.lambda_c = 0.5;
        let eager = p.solve();
        assert!(
            eager.transfer_time <= lazy.transfer_time + 1e-6,
            "bigger award must not lengthen exchanges: {lazy:?} vs {eager:?}"
        );
    }

    #[test]
    fn equal_compression_fits_contact() {
        let c = equal_compression_choice(52 * 1024 * 1024, 31e6, 15.0, 8.0);
        assert!(c.transfer_time <= 8.0 + 1e-6);
        assert_eq!(c.psi_i, c.psi_j);
        assert!(c.psi_i > 0.0);
    }

    #[test]
    fn equal_compression_caps_at_one() {
        // Tiny model, long contact: psi saturates at 1 (no compression).
        let c = equal_compression_choice(1000, 31e6, 15.0, 15.0);
        assert_eq!(c.psi_i, 1.0);
    }
}
