//! Model compression for exchange (§III-C) — the pluggable codec layer.
//!
//! The paper transmits top-k-sparsified models: "the component's k-largest
//! magnitudes in x are transmitted", encoded as index–value pairs when k is
//! small. The *compression ratio* is `φ = S / S_c` and its reciprocal
//! `ψ = 1/φ ∈ [0, 1]`: `ψ = 0` sends nothing, `ψ = 1` sends the dense
//! model. The paper notes "other biased/unbiased model compression methods
//! can also be applied"; this module makes that pluggable behind the
//! [`Compressor`] trait with four deterministic codecs ([`Codec`]), a tagged
//! byte encoding ([`WireModel`]) shared with the vnn/driving wire formats,
//! and an [`ErrorFeedback`] wrapper that folds each round's dropped mass
//! into the next encode.
//!
//! docs/COMPRESSION.md is the normative spec: byte-for-byte wire layouts,
//! the ψ/φ notation mapping, both wire-size accountings, and the
//! error-feedback semantics. Keep the two in sync.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::RngExt;
use vnn::wire::{SparseModel, WireError, WireReader};
use vnn::ParamVec;

/// Top-k sparsification at reciprocal compression ratio `psi`: keeps the
/// `ceil(psi * n)` largest-magnitude components.
///
/// `psi = 0` yields an empty sparse model; `psi = 1` keeps everything.
/// Non-finite parameters order by their IEEE total order (NaN sorts past
/// every finite magnitude), so any input is accepted.
///
/// # Panics
/// Panics if `psi` is outside `[0, 1]`.
pub fn top_k(params: &ParamVec, psi: f32) -> SparseModel {
    assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
    let n = params.len();
    let k = top_k_count(n, psi);
    if k == 0 {
        return SparseModel::new(n, Vec::new(), Vec::new());
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        let (ma, mb) = (
            params.as_slice()[a as usize].abs(),
            params.as_slice()[b as usize].abs(),
        );
        mb.total_cmp(&ma)
    });
    let mut indices: Vec<u32> = order[..k].to_vec();
    indices.sort_unstable();
    let values = indices.iter().map(|&i| params.as_slice()[i as usize]).collect();
    SparseModel::new(n, indices, values)
}

/// Survivor count of top-k at `psi` over `n` components: `ceil(ψ·n)`,
/// except exactly 0 at `ψ = 0`.
fn top_k_count(n: usize, psi: f32) -> usize {
    if psi == 0.0 {
        0
    } else {
        ((f64::from(psi) * n as f64).ceil() as usize).min(n)
    }
}

/// Applies top-k and densifies in one step — the receiver's view `x̂^ψ`.
pub fn compress_dense(params: &ParamVec, psi: f32) -> ParamVec {
    top_k(params, psi).to_dense()
}

/// Bytes on the wire for a model whose *dense* wire size is `wire_bytes`,
/// compressed at `psi` — the **paper's** accounting.
///
/// The paper's time model (Eq. 7) charges `S·ψ` for a model of size `S`;
/// index–value pairs double the per-component cost but are only used when
/// `ψ ≤ 1/2` (below that the dense encoding is smaller and a sender would
/// pick it), so the effective wire size is `min(2ψ, 1) · S`... which the
/// paper simplifies to `ψ·S`. We follow the paper exactly — `ψ·S` — and
/// expose the pair-encoding size as [`pair_wire_bytes`].
pub fn wire_bytes(dense_wire_bytes: usize, psi: f32) -> usize {
    assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
    ((dense_wire_bytes as f64) * f64::from(psi)).ceil() as usize
}

/// Bytes on the wire under the *honest* index–value pair accounting:
/// `min(2ψ, 1) · S`.
///
/// Each retained f32 drags a u32 index, so k pairs cost `2·ψ·S`; past
/// `ψ = 1/2` a sender falls back to the dense encoding at `S`. This is the
/// documented divergence from the paper's simplified `ψ·S` ([`wire_bytes`])
/// — the microbench report prints both so the table does not understate
/// sparse-encoding cost.
pub fn pair_wire_bytes(dense_wire_bytes: usize, psi: f32) -> usize {
    assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
    let factor = (2.0 * f64::from(psi)).min(1.0);
    ((dense_wire_bytes as f64) * factor).ceil() as usize
}

/// An int8-quantized model: per-tensor affine quantization with
/// deterministic round-to-nearest (the biased legacy quantizer behind
/// [`Codec::TopKQuantized`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedModel {
    /// Quantized components.
    pub codes: Vec<i8>,
    /// Dequantization scale.
    pub scale: f32,
}

impl QuantizedModel {
    /// Quantizes a parameter vector to int8 symmetric codes.
    pub fn quantize(params: &ParamVec) -> Self {
        let max = params
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let codes = params
            .as_slice()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self { codes, scale }
    }

    /// Reconstructs the (lossy) dense vector.
    pub fn dequantize(&self) -> ParamVec {
        ParamVec::from_vec(self.codes.iter().map(|&c| f32::from(c) * self.scale).collect())
    }

    /// Wire size: one byte per component plus the scale.
    pub fn wire_bytes(&self) -> usize {
        self.codes.len() + 4
    }
}

/// Relative L2 reconstruction error of compressing `params` at `psi`:
/// `‖x − x̂‖ / ‖x‖`. 0 at `psi = 1`, 1 at `psi = 0` (for non-zero models).
pub fn reconstruction_error(params: &ParamVec, psi: f32) -> f32 {
    let norm = params.l2_norm();
    if norm == 0.0 {
        return 0.0;
    }
    let hat = compress_dense(params, psi);
    params.distance(&hat) / norm
}

// ---------------------------------------------------------------------------
// Chunked quantize/dequantize inner loops
// ---------------------------------------------------------------------------

/// Lanes per quantize/dequantize inner-loop block. The loops below stage
/// one block at a time (noise first, then arithmetic) so the compiler can
/// keep a block in vector registers while the stochastic draws stay in
/// strict element order — the order the determinism tests pin.
const QUANT_BLOCK: usize = 8;

/// Stochastic-rounding quantization of `values / scale` to integer codes in
/// `[-levels, levels]`: each value rounds down, then up with probability
/// equal to its fractional part, one uniform draw per element in element
/// order. Unbiased in expectation, exactly reproducible from the rng seed.
fn quantize_stochastic(values: &[f32], levels: f32, scale: f32, rng: &mut StdRng) -> Vec<i8> {
    let inv = 1.0 / scale;
    let mut codes = Vec::with_capacity(values.len());
    let mut noise = [0.0f32; QUANT_BLOCK];
    for block in values.chunks(QUANT_BLOCK) {
        for slot in noise.iter_mut().take(block.len()) {
            *slot = rng.random::<f32>();
        }
        for (t, &v) in block.iter().enumerate() {
            let x = (v * inv).clamp(-levels, levels);
            let floor = x.floor();
            let up = if noise[t] < x - floor { 1.0 } else { 0.0 };
            codes.push((floor + up).clamp(-levels, levels) as i8);
        }
    }
    codes
}

/// Dequantizes integer codes back to f32 at `scale`, blocked like
/// [`quantize_stochastic`].
fn dequantize_codes(codes: &[i8], scale: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(codes.len());
    for block in codes.chunks(QUANT_BLOCK) {
        for &c in block {
            out.push(f32::from(c) * scale);
        }
    }
    out
}

/// Symmetric quantization scale for `values` at `levels`: `max|v| / levels`,
/// or 1 for an all-zero input.
fn symmetric_scale(values: &[f32], levels: f32) -> f32 {
    let max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max == 0.0 {
        1.0
    } else {
        max / levels
    }
}

// ---------------------------------------------------------------------------
// Sketch codec internals
// ---------------------------------------------------------------------------

/// Chunk width of the sketch codec: parameters are split into chunks of up
/// to this many components and each chunk is projected onto
/// `ceil(ψ · chunk_len)` random-sign rows. 64 so a single hash word
/// supplies every sign of one row.
pub const SKETCH_CHUNK: usize = 64;

/// Sign word for sketch row `row` of chunk `chunk`: a splitmix64-style
/// finalizer over the pair; bit `t` gives the sign of component `t`. Pure
/// function of the coordinates — sender and receiver regenerate the same
/// basis without shipping it.
fn sketch_sign_word(chunk: u64, row: u64) -> u64 {
    let mut z = chunk
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(row.wrapping_mul(0xD1B5_4A32_D192_ED03).wrapping_add(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Latent rows kept for a chunk of `chunk_len` components at `psi`.
fn sketch_rows(chunk_len: usize, psi: f32) -> usize {
    top_k_count(chunk_len, psi)
}

/// Total latent count over a `dense_len`-component model at `psi`.
fn sketch_total_rows(dense_len: usize, psi: f32) -> usize {
    let full = dense_len / SKETCH_CHUNK;
    let tail = dense_len % SKETCH_CHUNK;
    let mut total = full * sketch_rows(SKETCH_CHUNK, psi);
    if tail > 0 {
        total += sketch_rows(tail, psi);
    }
    total
}

/// Projects one chunk onto its sign rows: `y_r = Σ_t a_r[t] · x[t]`,
/// accumulated in fixed component order.
fn sketch_encode_chunk(chunk_idx: usize, values: &[f32], rows: usize, out: &mut Vec<f32>) {
    for r in 0..rows {
        let word = sketch_sign_word(chunk_idx as u64, r as u64);
        let mut acc = 0.0f32;
        for (t, &v) in values.iter().enumerate() {
            acc += if (word >> t) & 1 == 1 { v } else { -v };
        }
        out.push(acc);
    }
}

/// Back-projects one chunk's latents: `x̂[t] = (1/rows) Σ_r y_r · a_r[t]`.
/// With zero rows the chunk reconstructs to zeros.
fn sketch_decode_chunk(chunk_idx: usize, latents: &[f32], chunk_len: usize, out: &mut Vec<f32>) {
    if latents.is_empty() {
        out.resize(out.len() + chunk_len, 0.0);
        return;
    }
    let inv = 1.0 / latents.len() as f32;
    let mut acc = [0.0f32; SKETCH_CHUNK];
    for slot in acc.iter_mut().take(chunk_len) {
        *slot = 0.0;
    }
    for (r, &y) in latents.iter().enumerate() {
        let word = sketch_sign_word(chunk_idx as u64, r as u64);
        for (t, slot) in acc.iter_mut().enumerate().take(chunk_len) {
            *slot += if (word >> t) & 1 == 1 { y } else { -y };
        }
    }
    for &slot in acc.iter().take(chunk_len) {
        out.push(slot * inv);
    }
}

// ---------------------------------------------------------------------------
// The Compressor trait and the Codec enum
// ---------------------------------------------------------------------------

/// A model codec: the single entry point every share path (both engines,
/// all four baselines) routes model exchange through.
///
/// The three views stay consistent by construction: [`Compressor::apply`]
/// is bit-identical to `encode(..).decode()` under the same rng state, and
/// [`Compressor::wire_bytes`] is the simulation's cost-model figure for the
/// same send. Codecs that use randomness (stochastic rounding) draw only
/// from the `rng` argument — the seeded per-session generator — never from
/// ambient entropy; deterministic codecs draw nothing, which is what keeps
/// the default top-k path bit-identical to the historical output.
pub trait Compressor {
    /// Stable lowercase key of this codec (the `--codec` CLI value).
    fn name(&self) -> &'static str;

    /// The receiver's reconstructed dense model for a given ψ.
    fn apply(&self, params: &ParamVec, psi: f32, rng: &mut StdRng) -> ParamVec;

    /// Encodes `params` at ψ into the tagged byte format of
    /// docs/COMPRESSION.md.
    fn encode(&self, params: &ParamVec, psi: f32, rng: &mut StdRng) -> WireModel;

    /// Bytes charged by the simulation cost model for a model whose dense
    /// wire size is `dense_wire_bytes`, sent at ψ (the paper-style `ψ·S`
    /// family; see docs/COMPRESSION.md for the per-codec formulas).
    fn wire_bytes(&self, dense_wire_bytes: usize, psi: f32) -> usize;

    /// Bytes under the honest pair accounting (`min(2ψ, 1)·S` family) —
    /// what the encoding actually costs once indices are counted.
    fn pair_wire_bytes(&self, dense_wire_bytes: usize, psi: f32) -> usize;
}

/// Wire-format magic byte of each codec (first byte of every
/// [`WireModel`]).
mod magic {
    pub const TOPK: u8 = 0x4B; // 'K'
    pub const TOPK_Q8: u8 = 0x51; // 'Q'
    pub const INT8: u8 = 0x38; // '8'
    pub const INT4: u8 = 0x34; // '4'
    pub const SKETCH: u8 = 0x53; // 'S'
}

/// Integer range of the int8 stochastic quantizer.
const INT8_LEVELS: f32 = 127.0;
/// Integer range of the int4 stochastic quantizer (codes in `[-7, 7]`).
const INT4_LEVELS: f32 = 7.0;
/// Bias added to an int4 code to form its wire nibble (`code + 7 ∈ [0, 14]`).
const INT4_BIAS: i16 = 7;
/// Nibble value reserved for padding the final half-byte when k is odd.
const INT4_PAD: u8 = 0xF;

/// The built-in codecs. `TopK` is the default and reproduces the paper's
/// §III-C share path bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Magnitude top-k sparsification only (the paper's main choice).
    /// Deterministic; draws no randomness.
    #[default]
    TopK,
    /// Top-k followed by deterministic round-to-nearest int8 quantization
    /// of the survivors — the legacy "such as quantization" variant of
    /// §III-C. Biased (rounding always pulls toward the grid).
    TopKQuantized,
    /// Top-k followed by int8 quantization with *stochastic rounding*
    /// drawn from the seeded per-session RNG — unbiased in expectation.
    Int8,
    /// Top-k followed by int4 stochastic-rounding quantization: half the
    /// payload of `int8` at four extra quantization-noise bits.
    Int4,
    /// Chunked random-sign sketch (LACO-style latent communication): each
    /// 64-component chunk is projected onto `ceil(ψ·64)` sign rows
    /// regenerated from a hash on both ends. Dense in latent space — no
    /// index overhead — but lossy even at ψ = 1.
    Sketch,
}

impl Codec {
    /// Every codec, in wire-format order (the order docs and sweeps use).
    pub const ALL: [Codec; 5] = [
        Codec::TopK,
        Codec::TopKQuantized,
        Codec::Int8,
        Codec::Int4,
        Codec::Sketch,
    ];

    /// The four-codec accuracy-vs-bytes sweep set (one representative per
    /// compression family; `topk-q8` is subsumed by `int8`).
    pub const SWEEP: [Codec; 4] = [Codec::TopK, Codec::Int8, Codec::Int4, Codec::Sketch];

    /// Parses a `--codec` CLI key.
    pub fn from_key(key: &str) -> Option<Codec> {
        match key {
            "topk" => Some(Codec::TopK),
            "topk-q8" => Some(Codec::TopKQuantized),
            "int8" => Some(Codec::Int8),
            "int4" => Some(Codec::Int4),
            "sketch" => Some(Codec::Sketch),
            _ => None,
        }
    }

    /// Stable lowercase key (inverse of [`Codec::from_key`]).
    pub fn name(self) -> &'static str {
        match self {
            Codec::TopK => "topk",
            Codec::TopKQuantized => "topk-q8",
            Codec::Int8 => "int8",
            Codec::Int4 => "int4",
            Codec::Sketch => "sketch",
        }
    }

    /// Wire-format magic byte (first byte of every encoded model).
    pub fn magic(self) -> u8 {
        match self {
            Codec::TopK => magic::TOPK,
            Codec::TopKQuantized => magic::TOPK_Q8,
            Codec::Int8 => magic::INT8,
            Codec::Int4 => magic::INT4,
            Codec::Sketch => magic::SKETCH,
        }
    }

    /// The codec owning a magic byte.
    fn from_magic(byte: u8) -> Option<Codec> {
        Codec::ALL.into_iter().find(|c| c.magic() == byte)
    }

    /// The receiver's reconstructed dense model for a given ψ — bit-identical
    /// to `self.encode(params, psi, rng).decode()` at the same rng state.
    ///
    /// # Panics
    /// Panics if `psi` is outside `[0, 1]`.
    pub fn apply(self, params: &ParamVec, psi: f32, rng: &mut StdRng) -> ParamVec {
        match self {
            Codec::TopK => compress_dense(params, psi),
            Codec::TopKQuantized => {
                let sparse_dense = compress_dense(params, psi);
                QuantizedModel::quantize(&sparse_dense).dequantize()
            }
            Codec::Int8 | Codec::Int4 => {
                let sparse = top_k(params, psi);
                let levels = if self == Codec::Int8 { INT8_LEVELS } else { INT4_LEVELS };
                let scale = symmetric_scale(&sparse.values, levels);
                let codes = quantize_stochastic(&sparse.values, levels, scale, rng);
                let values = dequantize_codes(&codes, scale);
                let mut out = vec![0.0f32; sparse.dense_len];
                for (&i, &v) in sparse.indices.iter().zip(&values) {
                    out[i as usize] = v;
                }
                ParamVec::from_vec(out)
            }
            Codec::Sketch => {
                assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
                let mut dense = Vec::with_capacity(params.len());
                for (c, chunk) in params.as_slice().chunks(SKETCH_CHUNK).enumerate() {
                    let rows = sketch_rows(chunk.len(), psi);
                    let mut latents = Vec::with_capacity(rows);
                    sketch_encode_chunk(c, chunk, rows, &mut latents);
                    sketch_decode_chunk(c, &latents, chunk.len(), &mut dense);
                }
                ParamVec::from_vec(dense)
            }
        }
    }

    /// Encodes `params` at ψ into the tagged byte layout of
    /// docs/COMPRESSION.md. Exactly [`Codec::encoded_wire_bytes`] long.
    ///
    /// # Panics
    /// Panics if `psi` is outside `[0, 1]` or the model exceeds `u32::MAX`
    /// components.
    pub fn encode(self, params: &ParamVec, psi: f32, rng: &mut StdRng) -> WireModel {
        assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
        let dense_len = u32::try_from(params.len()).expect("model fits u32 components");
        let mut bytes = Vec::with_capacity(self.encoded_wire_bytes(params.len(), psi));
        bytes.push(self.magic());
        bytes.extend_from_slice(&dense_len.to_le_bytes());
        match self {
            Codec::TopK => {
                let sparse = top_k(params, psi);
                for (&i, &v) in sparse.indices.iter().zip(&sparse.values) {
                    bytes.extend_from_slice(&i.to_le_bytes());
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            Codec::TopKQuantized => {
                // Same math as the legacy dense path: scale over the
                // survivors (zeros never win the max), round-to-nearest.
                let sparse = top_k(params, psi);
                let scale = symmetric_scale(&sparse.values, INT8_LEVELS);
                bytes.extend_from_slice(&scale.to_le_bytes());
                for (&i, &v) in sparse.indices.iter().zip(&sparse.values) {
                    let code = (v / scale).round().clamp(-INT8_LEVELS, INT8_LEVELS) as i8;
                    bytes.extend_from_slice(&i.to_le_bytes());
                    bytes.push(code as u8);
                }
            }
            Codec::Int8 => {
                let sparse = top_k(params, psi);
                let scale = symmetric_scale(&sparse.values, INT8_LEVELS);
                let codes = quantize_stochastic(&sparse.values, INT8_LEVELS, scale, rng);
                bytes.extend_from_slice(&scale.to_le_bytes());
                for (&i, &c) in sparse.indices.iter().zip(&codes) {
                    bytes.extend_from_slice(&i.to_le_bytes());
                    bytes.push(c as u8);
                }
            }
            Codec::Int4 => {
                let sparse = top_k(params, psi);
                let scale = symmetric_scale(&sparse.values, INT4_LEVELS);
                let codes = quantize_stochastic(&sparse.values, INT4_LEVELS, scale, rng);
                bytes.extend_from_slice(&(sparse.nnz() as u32).to_le_bytes());
                bytes.extend_from_slice(&scale.to_le_bytes());
                for &i in &sparse.indices {
                    bytes.extend_from_slice(&i.to_le_bytes());
                }
                for pair in codes.chunks(2) {
                    let lo = (i16::from(pair[0]) + INT4_BIAS) as u8;
                    let hi = pair.get(1).map_or(INT4_PAD, |&c| (i16::from(c) + INT4_BIAS) as u8);
                    bytes.push(lo | (hi << 4));
                }
            }
            Codec::Sketch => {
                bytes.extend_from_slice(&(SKETCH_CHUNK as u32).to_le_bytes());
                bytes.extend_from_slice(&psi.to_le_bytes());
                let mut latents = Vec::new();
                for (c, chunk) in params.as_slice().chunks(SKETCH_CHUNK).enumerate() {
                    let rows = sketch_rows(chunk.len(), psi);
                    sketch_encode_chunk(c, chunk, rows, &mut latents);
                }
                for &y in &latents {
                    bytes.extend_from_slice(&y.to_le_bytes());
                }
            }
        }
        WireModel { bytes }
    }

    /// Exact encoded size in bytes of [`Codec::encode`] for a
    /// `dense_len`-component model at ψ (header included).
    ///
    /// # Panics
    /// Panics if `psi` is outside `[0, 1]`.
    pub fn encoded_wire_bytes(self, dense_len: usize, psi: f32) -> usize {
        assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
        let k = top_k_count(dense_len, psi);
        match self {
            Codec::TopK => 5 + 8 * k,
            Codec::TopKQuantized | Codec::Int8 => 9 + 5 * k,
            Codec::Int4 => 13 + 4 * k + k.div_ceil(2),
            Codec::Sketch => 13 + 4 * sketch_total_rows(dense_len, psi),
        }
    }

    /// Simulation cost-model bytes — the paper-style `ψ·S` family. Always 0
    /// at ψ = 0 (nothing is sent). See docs/COMPRESSION.md for the table.
    ///
    /// # Panics
    /// Panics if `psi` is outside `[0, 1]`.
    pub fn wire_bytes(self, dense_wire_bytes: usize, psi: f32) -> usize {
        assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
        if psi == 0.0 {
            return 0;
        }
        match self {
            Codec::TopK => wire_bytes(dense_wire_bytes, psi),
            // Values shrink 4x; indices still cost their share, so the
            // blended factor is ~0.45 of the float encoding.
            Codec::TopKQuantized => {
                (wire_bytes(dense_wire_bytes, psi) as f64 * 0.45).ceil() as usize
            }
            // One byte per survivor instead of four, plus the scale.
            Codec::Int8 => wire_bytes(dense_wire_bytes, psi).div_ceil(4) + 4,
            // Half a byte per survivor, plus the scale.
            Codec::Int4 => wire_bytes(dense_wire_bytes, psi).div_ceil(8) + 4,
            // ψ·S of latent floats plus the 13-byte header; no indices.
            Codec::Sketch => wire_bytes(dense_wire_bytes, psi) + 13,
        }
    }

    /// Honest pair-accounting bytes — the `min(2ψ, 1)·S` family ([`pair_wire_bytes`]
    /// free function for the plain top-k case). Sparse codecs pay a u32
    /// index per survivor until the dense fallback is cheaper; the sketch
    /// carries no indices, so both accountings agree for it.
    ///
    /// # Panics
    /// Panics if `psi` is outside `[0, 1]`.
    pub fn pair_wire_bytes(self, dense_wire_bytes: usize, psi: f32) -> usize {
        assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
        if psi == 0.0 {
            return 0;
        }
        let s = dense_wire_bytes as f64;
        let p = f64::from(psi);
        match self {
            Codec::TopK => pair_wire_bytes(dense_wire_bytes, psi),
            // 5 bytes per pair vs 4 per dense f32 → 5/4·ψ·S, dense-int8
            // fallback at S/4.
            Codec::TopKQuantized | Codec::Int8 => ((1.25 * p).min(0.25) * s).ceil() as usize + 4,
            // 4.5 bytes per pair → 9/8·ψ·S, dense-int4 fallback at S/8.
            Codec::Int4 => ((1.125 * p).min(0.125) * s).ceil() as usize + 4,
            Codec::Sketch => wire_bytes(dense_wire_bytes, psi) + 13,
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Compressor for Codec {
    fn name(&self) -> &'static str {
        Codec::name(*self)
    }

    fn apply(&self, params: &ParamVec, psi: f32, rng: &mut StdRng) -> ParamVec {
        Codec::apply(*self, params, psi, rng)
    }

    fn encode(&self, params: &ParamVec, psi: f32, rng: &mut StdRng) -> WireModel {
        Codec::encode(*self, params, psi, rng)
    }

    fn wire_bytes(&self, dense_wire_bytes: usize, psi: f32) -> usize {
        Codec::wire_bytes(*self, dense_wire_bytes, psi)
    }

    fn pair_wire_bytes(&self, dense_wire_bytes: usize, psi: f32) -> usize {
        Codec::pair_wire_bytes(*self, dense_wire_bytes, psi)
    }
}

// ---------------------------------------------------------------------------
// WireModel: the tagged byte encoding
// ---------------------------------------------------------------------------

/// An encoded model: one magic byte tagging the codec, then the codec's
/// layout (docs/COMPRESSION.md, all integers/floats little-endian).
/// Produced by [`Codec::encode`] / [`Compressor::encode`]; decoded with
/// [`WireModel::decode`], which dispatches on the tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireModel {
    bytes: Vec<u8>,
}

impl WireModel {
    /// Wraps raw received bytes (no validation until [`WireModel::decode`]).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Encoded size in bytes — the figure the honest accounting tracks.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for a zero-length buffer (never produced by [`Codec::encode`]).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The codec that produced this buffer, from the magic byte.
    ///
    /// # Errors
    /// [`WireError::Truncated`] on an empty buffer, [`WireError::BadMagic`]
    /// on an unknown tag.
    pub fn codec(&self) -> Result<Codec, WireError> {
        let &first = self.bytes.first().ok_or(WireError::Truncated)?;
        Codec::from_magic(first).ok_or(WireError::BadMagic { got: first })
    }

    /// Decodes to the receiver's dense model — the same vector the
    /// sender's [`Codec::apply`] produced, bit for bit.
    ///
    /// # Errors
    /// A [`WireError`] naming the structural mismatch: unknown magic,
    /// truncation mid-field, an out-of-range index/code/ψ, or trailing
    /// bytes after the last record.
    pub fn decode(&self) -> Result<ParamVec, WireError> {
        let codec = self.codec()?;
        let mut r = WireReader::new(&self.bytes);
        let _magic = r.u8()?;
        let dense_len = r.u32()? as usize;
        let dense = match codec {
            Codec::TopK => {
                let mut out = vec![0.0f32; dense_len];
                while r.remaining() > 0 {
                    let idx = r.u32()? as usize;
                    let val = r.f32()?;
                    let slot = out.get_mut(idx).ok_or(WireError::BadValue {
                        field: "index",
                        got: idx as u32,
                    })?;
                    *slot = val;
                }
                out
            }
            Codec::TopKQuantized | Codec::Int8 => {
                let scale = r.f32()?;
                let mut out = vec![0.0f32; dense_len];
                while r.remaining() > 0 {
                    let idx = r.u32()? as usize;
                    let code = r.u8()? as i8;
                    let slot = out.get_mut(idx).ok_or(WireError::BadValue {
                        field: "index",
                        got: idx as u32,
                    })?;
                    *slot = f32::from(code) * scale;
                }
                out
            }
            Codec::Int4 => {
                let k = r.u32()? as usize;
                let scale = r.f32()?;
                let mut indices = Vec::with_capacity(k);
                for _ in 0..k {
                    indices.push(r.u32()? as usize);
                }
                let packed = r.take(k.div_ceil(2))?;
                let mut out = vec![0.0f32; dense_len];
                for (slot, &idx) in indices.iter().enumerate() {
                    let byte = packed[slot / 2];
                    let nibble = if slot % 2 == 0 { byte & 0x0F } else { byte >> 4 };
                    if nibble == INT4_PAD {
                        return Err(WireError::BadValue {
                            field: "int4 code",
                            got: u32::from(nibble),
                        });
                    }
                    let code = i16::from(nibble) - INT4_BIAS;
                    let dst = out.get_mut(idx).ok_or(WireError::BadValue {
                        field: "index",
                        got: idx as u32,
                    })?;
                    *dst = f32::from(code) * scale;
                }
                // An odd survivor count must pad its final high nibble.
                if k % 2 == 1 {
                    let last = packed[k / 2] >> 4;
                    if last != INT4_PAD {
                        return Err(WireError::BadValue {
                            field: "int4 padding",
                            got: u32::from(last),
                        });
                    }
                }
                out
            }
            Codec::Sketch => {
                let chunk = r.u32()? as usize;
                if chunk != SKETCH_CHUNK {
                    return Err(WireError::BadValue {
                        field: "sketch chunk",
                        got: chunk as u32,
                    });
                }
                let psi = r.f32()?;
                if !(0.0..=1.0).contains(&psi) {
                    return Err(WireError::BadValue {
                        field: "sketch psi",
                        got: psi.to_bits(),
                    });
                }
                let mut out = Vec::with_capacity(dense_len);
                let mut offset = 0usize;
                let mut chunk_idx = 0usize;
                while offset < dense_len {
                    let chunk_len = SKETCH_CHUNK.min(dense_len - offset);
                    let rows = sketch_rows(chunk_len, psi);
                    let mut latents = Vec::with_capacity(rows);
                    for _ in 0..rows {
                        latents.push(r.f32()?);
                    }
                    sketch_decode_chunk(chunk_idx, &latents, chunk_len, &mut out);
                    offset += chunk_len;
                    chunk_idx += 1;
                }
                out
            }
        };
        r.finish()?;
        Ok(ParamVec::from_vec(dense))
    }
}

// ---------------------------------------------------------------------------
// Error feedback
// ---------------------------------------------------------------------------

/// Error-feedback compensation (EF-SGD style) around any codec: the mass a
/// lossy encode drops is banked in a per-peer residual and folded into the
/// *next* encode toward that peer, so compression error accumulates into a
/// delayed correction instead of being lost.
///
/// Per-peer because each peer sees a different exchange history; residuals
/// live in a `BTreeMap` so iteration order (and thus any downstream float
/// accumulation) is deterministic. A residual whose length no longer
/// matches the model is discarded — the model was resized and the banked
/// correction is meaningless.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorFeedback {
    residuals: BTreeMap<usize, ParamVec>,
}

impl ErrorFeedback {
    /// An empty accumulator (all residuals zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// `params` plus the residual banked for `peer` (or `params` verbatim
    /// when none is banked or the model was resized).
    pub fn compensated(&self, peer: usize, params: &ParamVec) -> ParamVec {
        match self.residuals.get(&peer) {
            Some(res) if res.len() == params.len() => {
                let mut out = params.clone();
                out.axpy(1.0, res);
                out
            }
            _ => params.clone(),
        }
    }

    /// Encodes through `codec` with compensation: feeds
    /// `params + residual[peer]` to the codec, banks the new residual
    /// `input − output`, and returns the receiver's reconstruction.
    pub fn apply(
        &mut self,
        peer: usize,
        codec: Codec,
        params: &ParamVec,
        psi: f32,
        rng: &mut StdRng,
    ) -> ParamVec {
        let input = self.compensated(peer, params);
        let out = codec.apply(&input, psi, rng);
        let mut residual = input;
        residual.axpy(-1.0, &out);
        self.residuals.insert(peer, residual);
        out
    }

    /// The residual currently banked for `peer`, if any.
    pub fn residual(&self, peer: usize) -> Option<&ParamVec> {
        self.residuals.get(&peer)
    }

    /// Number of peers with a banked residual.
    pub fn peers(&self) -> usize {
        self.residuals.len()
    }

    /// Drops every banked residual.
    pub fn clear(&mut self) {
        self.residuals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_params() -> ParamVec {
        ParamVec::from_vec(vec![0.1, -5.0, 0.3, 2.0, -0.05, 1.0, 0.0, -0.2])
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0DEC)
    }

    #[test]
    fn psi_one_keeps_everything() {
        let p = sample_params();
        let s = top_k(&p, 1.0);
        assert_eq!(s.nnz(), p.len());
        assert_eq!(s.to_dense(), p);
    }

    #[test]
    fn psi_zero_sends_nothing() {
        let p = sample_params();
        let s = top_k(&p, 0.0);
        assert_eq!(s.nnz(), 0);
        assert!(s.to_dense().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn top_k_keeps_largest_magnitudes() {
        let p = sample_params();
        let s = top_k(&p, 0.25); // k = 2 of 8
        assert_eq!(s.nnz(), 2);
        let dense = s.to_dense();
        assert_eq!(dense.as_slice()[1], -5.0);
        assert_eq!(dense.as_slice()[3], 2.0);
        assert_eq!(dense.as_slice()[0], 0.0);
    }

    #[test]
    fn top_k_tolerates_non_finite_values() {
        // total_cmp sorts NaN past +inf in magnitude order: NaN, then inf,
        // then the finite values. No panic either way.
        let p = ParamVec::from_vec(vec![1.0, f32::NAN, -3.0, f32::INFINITY]);
        let s = top_k(&p, 0.5);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.indices, vec![1, 3]);
    }

    #[test]
    fn indices_are_sorted() {
        let p = sample_params();
        let s = top_k(&p, 0.5);
        for w in s.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn reconstruction_error_monotone_in_psi() {
        let p = ParamVec::from_vec((0..256).map(|i| ((i * 37) % 101) as f32 / 50.0 - 1.0).collect());
        let mut last = f32::INFINITY;
        for psi in [0.0, 0.1, 0.3, 0.6, 1.0] {
            let e = reconstruction_error(&p, psi);
            assert!(e <= last + 1e-6, "error must shrink as psi grows");
            last = e;
        }
        assert_eq!(reconstruction_error(&p, 1.0), 0.0);
    }

    #[test]
    fn wire_bytes_follow_paper_model() {
        assert_eq!(wire_bytes(52 * 1024 * 1024, 1.0), 52 * 1024 * 1024);
        assert_eq!(wire_bytes(1000, 0.5), 500);
        assert_eq!(wire_bytes(1000, 0.0), 0);
    }

    #[test]
    fn pair_accounting_doubles_until_the_dense_fallback() {
        // Exactly representable ψ so the doubling is bit-exact.
        assert_eq!(pair_wire_bytes(1000, 0.125), 250);
        assert_eq!(pair_wire_bytes(1000, 0.25), 500);
        assert_eq!(pair_wire_bytes(1000, 0.5), 1000);
        assert_eq!(pair_wire_bytes(1000, 0.9), 1000);
        assert_eq!(pair_wire_bytes(1000, 0.0), 0);
        // The honest figure is never below the paper's.
        for psi in [0.0, 0.05, 0.25, 0.5, 0.75, 1.0] {
            assert!(pair_wire_bytes(4096, psi) >= wire_bytes(4096, psi));
        }
    }

    #[test]
    fn quantization_roundtrip_is_close() {
        let p = sample_params();
        let q = QuantizedModel::quantize(&p);
        let back = q.dequantize();
        for (a, b) in p.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= q.scale, "{a} vs {b}");
        }
        assert_eq!(q.wire_bytes(), 8 + 4);
    }

    #[test]
    fn quantizing_zero_vector_is_safe() {
        let p = ParamVec::zeros(4);
        let q = QuantizedModel::quantize(&p);
        assert_eq!(q.dequantize(), p);
    }

    #[test]
    #[should_panic(expected = "psi must be in [0, 1]")]
    fn invalid_psi_panics() {
        let _ = top_k(&sample_params(), 1.5);
    }

    #[test]
    fn codec_keys_roundtrip() {
        for codec in Codec::ALL {
            assert_eq!(Codec::from_key(codec.name()), Some(codec));
            assert_eq!(Codec::from_magic(codec.magic()), Some(codec));
            assert_eq!(format!("{codec}"), codec.name());
        }
        assert_eq!(Codec::from_key("gzip"), None);
        assert_eq!(Codec::default(), Codec::TopK);
    }

    #[test]
    fn default_codec_matches_the_free_functions() {
        // The acceptance bar: the default share path draws no randomness
        // and reproduces the historical top-k output bit for bit.
        let p = ParamVec::from_vec((0..200).map(|i| ((i * 31) % 97) as f32 / 48.0 - 1.0).collect());
        for psi in [0.0, 0.2, 0.7, 1.0] {
            let mut r = rng();
            let before = r.clone();
            assert_eq!(Codec::TopK.apply(&p, psi, &mut r), compress_dense(&p, psi));
            assert_eq!(r, before, "topk must not advance the rng");
            assert_eq!(Codec::TopK.wire_bytes(1 << 20, psi), wire_bytes(1 << 20, psi));
        }
    }

    #[test]
    fn quantized_method_is_cheaper_but_lossier() {
        let p = ParamVec::from_vec((0..512).map(|i| ((i * 31) % 97) as f32 / 48.0 - 1.0).collect());
        let plain = Codec::TopK;
        let quant = Codec::TopKQuantized;
        assert!(quant.wire_bytes(1_000_000, 0.5) < plain.wire_bytes(1_000_000, 0.5));
        let err_plain = p.distance(&plain.apply(&p, 0.5, &mut rng()));
        let err_quant = p.distance(&quant.apply(&p, 0.5, &mut rng()));
        assert!(err_quant >= err_plain, "quantization adds error: {err_quant} vs {err_plain}");
        // But the error stays bounded by the quantization step.
        assert!(err_quant < err_plain + p.l2_norm() * 0.05);
    }

    #[test]
    fn codecs_agree_at_psi_zero() {
        let p = sample_params();
        for codec in Codec::ALL {
            let mut r = rng();
            assert!(codec.apply(&p, 0.0, &mut r).as_slice().iter().all(|&v| v == 0.0));
            assert_eq!(codec.wire_bytes(1000, 0.0), 0);
            assert_eq!(codec.pair_wire_bytes(1000, 0.0), 0);
        }
    }

    #[test]
    fn encode_length_matches_the_declared_size() {
        let p = ParamVec::from_vec((0..150).map(|i| (i as f32 * 0.37).sin()).collect());
        for codec in Codec::ALL {
            for psi in [0.0, 0.13, 0.5, 1.0] {
                let wire = codec.encode(&p, psi, &mut rng());
                assert_eq!(
                    wire.len(),
                    codec.encoded_wire_bytes(p.len(), psi),
                    "{codec} at psi={psi}"
                );
                assert_eq!(wire.codec().expect("tagged"), codec);
            }
        }
    }

    #[test]
    fn decode_matches_apply_for_every_codec() {
        let p = ParamVec::from_vec((0..150).map(|i| (i as f32 * 0.61).cos()).collect());
        for codec in Codec::ALL {
            for psi in [0.0, 0.13, 0.5, 1.0] {
                let wire = codec.encode(&p, psi, &mut rng());
                let decoded = wire.decode().expect("valid encode");
                let applied = codec.apply(&p, psi, &mut rng());
                assert_eq!(decoded, applied, "{codec} at psi={psi}");
            }
        }
    }

    #[test]
    fn decode_rejects_corrupt_buffers() {
        let p = sample_params();
        let wire = Codec::TopK.encode(&p, 0.5, &mut rng());
        let mut bad = wire.as_bytes().to_vec();
        bad[0] = 0x7E;
        assert_eq!(
            WireModel::from_bytes(bad).decode(),
            Err(WireError::BadMagic { got: 0x7E })
        );
        let truncated = wire.as_bytes()[..wire.len() - 2].to_vec();
        assert_eq!(WireModel::from_bytes(truncated).decode(), Err(WireError::Truncated));
        assert_eq!(WireModel::from_bytes(Vec::new()).decode(), Err(WireError::Truncated));
        // Out-of-range index.
        let mut oob = wire.as_bytes().to_vec();
        oob[5..9].copy_from_slice(&100u32.to_le_bytes());
        assert_eq!(
            WireModel::from_bytes(oob).decode(),
            Err(WireError::BadValue { field: "index", got: 100 })
        );
        // Trailing garbage past the last sketch latent.
        let mut long = Codec::Sketch.encode(&p, 0.5, &mut rng()).as_bytes().to_vec();
        long.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(
            WireModel::from_bytes(long).decode(),
            Err(WireError::Trailing { extra: 4 })
        );
    }

    #[test]
    fn stochastic_rounding_is_seed_reproducible() {
        let p = ParamVec::from_vec((0..64).map(|i| (i as f32 * 0.17).sin() * 3.0).collect());
        for codec in [Codec::Int8, Codec::Int4] {
            let a = codec.encode(&p, 0.6, &mut StdRng::seed_from_u64(7));
            let b = codec.encode(&p, 0.6, &mut StdRng::seed_from_u64(7));
            assert_eq!(a, b, "{codec} must be a pure function of (input, seed)");
        }
    }

    #[test]
    fn stochastic_quantizers_stay_within_one_level() {
        let p = ParamVec::from_vec((0..96).map(|i| (i as f32 * 0.23).cos() * 2.0).collect());
        for (codec, levels) in [(Codec::Int8, INT8_LEVELS), (Codec::Int4, INT4_LEVELS)] {
            let sparse = top_k(&p, 0.5);
            let scale = symmetric_scale(&sparse.values, levels);
            let hat = codec.apply(&p, 0.5, &mut rng());
            let reference = compress_dense(&p, 0.5);
            for (a, b) in reference.as_slice().iter().zip(hat.as_slice()) {
                assert!((a - b).abs() <= scale + 1e-6, "{codec}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sketch_is_deterministic_and_lossy() {
        let p = ParamVec::from_vec((0..200).map(|i| (i as f32 * 0.11).sin()).collect());
        let a = Codec::Sketch.apply(&p, 0.5, &mut rng());
        let b = Codec::Sketch.apply(&p, 0.5, &mut rng());
        assert_eq!(a, b);
        // Latent projection loses information even at psi = 1 — documented.
        let full = Codec::Sketch.apply(&p, 1.0, &mut rng());
        assert!(p.distance(&full) > 0.0);
        // But it tracks the signal: closer at psi=1 than at psi=0.1.
        let coarse = Codec::Sketch.apply(&p, 0.1, &mut rng());
        assert!(p.distance(&full) < p.distance(&coarse));
    }

    #[test]
    fn error_feedback_banks_exactly_the_dropped_mass() {
        let p = sample_params();
        let mut ef = ErrorFeedback::new();
        let out = ef.apply(3, Codec::TopK, &p, 0.25, &mut rng());
        let res = ef.residual(3).expect("banked").clone();
        let mut sum = out;
        sum.axpy(1.0, &res);
        // First round: no prior residual, so the codec input was `p` itself
        // and output + residual must reassemble it bit for bit.
        assert_eq!(sum, p, "input = output + residual, bit for bit");
        assert_eq!(ef.peers(), 1);
        assert!(ef.residual(5).is_none());
    }

    #[test]
    fn error_feedback_resets_on_model_resize() {
        let mut ef = ErrorFeedback::new();
        let _ = ef.apply(1, Codec::TopK, &sample_params(), 0.25, &mut rng());
        let grown = ParamVec::from_vec(vec![1.0; 16]);
        // The stale 8-component residual must not contaminate the new model.
        assert_eq!(ef.compensated(1, &grown), grown);
    }

    #[test]
    fn error_feedback_recovers_mass_over_rounds() {
        // With a fixed model, EF top-k alternates coverage so the running
        // average approaches the full model: the second round's encode must
        // touch components the first round dropped.
        let p = ParamVec::from_vec(vec![4.0, 1.0, 1.0, 1.0]);
        let mut ef = ErrorFeedback::new();
        let first = ef.apply(0, Codec::TopK, &p, 0.25, &mut rng());
        assert_eq!(first.as_slice(), &[4.0, 0.0, 0.0, 0.0]);
        let second = ef.apply(0, Codec::TopK, &p, 0.25, &mut rng());
        // Round 2 input is [4, 2, 2, 2]: the top slot is still 4.0 but the
        // residual now carries double the small components.
        assert_eq!(second.as_slice(), &[4.0, 0.0, 0.0, 0.0]);
        let third_res = ef.residual(0).expect("banked");
        assert_eq!(third_res.as_slice(), &[0.0, 2.0, 2.0, 2.0]);
    }
}
