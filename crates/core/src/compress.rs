//! Model compression for exchange (§III-C).
//!
//! The paper transmits top-k-sparsified models: "the component's k-largest
//! magnitudes in x are transmitted", encoded as index–value pairs when k is
//! small. The *compression ratio* is `φ = S / S_c` and its reciprocal
//! `ψ = 1/φ ∈ [0, 1]`: `ψ = 0` sends nothing, `ψ = 1` sends the dense
//! model. An int8 quantization alternative is provided, as the paper notes
//! "other biased/unbiased model compression methods can also be applied".

use vnn::wire::SparseModel;
use vnn::ParamVec;

/// Top-k sparsification at reciprocal compression ratio `psi`: keeps the
/// `ceil(psi * n)` largest-magnitude components.
///
/// `psi = 0` yields an empty sparse model; `psi = 1` keeps everything.
///
/// # Panics
/// Panics if `psi` is outside `[0, 1]`.
pub fn top_k(params: &ParamVec, psi: f32) -> SparseModel {
    assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
    let n = params.len();
    let k = ((psi as f64) * n as f64).ceil() as usize;
    let k = if psi == 0.0 { 0 } else { k.min(n) };
    if k == 0 {
        return SparseModel::new(n, Vec::new(), Vec::new());
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        let (ma, mb) = (
            params.as_slice()[a as usize].abs(),
            params.as_slice()[b as usize].abs(),
        );
        mb.partial_cmp(&ma).expect("finite parameters")
    });
    let mut indices: Vec<u32> = order[..k].to_vec();
    indices.sort_unstable();
    let values = indices.iter().map(|&i| params.as_slice()[i as usize]).collect();
    SparseModel::new(n, indices, values)
}

/// Applies top-k and densifies in one step — the receiver's view `x̂^ψ`.
pub fn compress_dense(params: &ParamVec, psi: f32) -> ParamVec {
    top_k(params, psi).to_dense()
}

/// Bytes on the wire for a model whose *dense* wire size is `wire_bytes`,
/// compressed at `psi`.
///
/// The paper's time model (Eq. 7) charges `S·ψ` for a model of size `S`;
/// index–value pairs double the per-component cost but are only used when
/// `ψ ≤ 1/2` (below that the dense encoding is smaller and a sender would
/// pick it), so the effective wire size is `min(2ψ, 1) · S`... which the
/// paper simplifies to `ψ·S`. We follow the paper exactly — `ψ·S` — and
/// expose the pair-encoding size separately for the microbenches.
pub fn wire_bytes(dense_wire_bytes: usize, psi: f32) -> usize {
    assert!((0.0..=1.0).contains(&psi), "psi must be in [0, 1]");
    ((dense_wire_bytes as f64) * psi as f64).ceil() as usize
}

/// An int8-quantized model: per-tensor affine quantization.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedModel {
    /// Quantized components.
    pub codes: Vec<i8>,
    /// Dequantization scale.
    pub scale: f32,
}

impl QuantizedModel {
    /// Quantizes a parameter vector to int8 symmetric codes.
    pub fn quantize(params: &ParamVec) -> Self {
        let max = params
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let codes = params
            .as_slice()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self { codes, scale }
    }

    /// Reconstructs the (lossy) dense vector.
    pub fn dequantize(&self) -> ParamVec {
        ParamVec::from_vec(self.codes.iter().map(|&c| c as f32 * self.scale).collect())
    }

    /// Wire size: one byte per component plus the scale.
    pub fn wire_bytes(&self) -> usize {
        self.codes.len() + 4
    }
}

/// Which compression pipeline a node applies before sending its model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionMethod {
    /// Top-k sparsification only (the paper's main choice).
    #[default]
    TopK,
    /// Top-k sparsification followed by int8 quantization of the survivors
    /// — the "such as quantization" variant of §III-C. Wire cost per
    /// retained component drops from 4 bytes to ~1, at extra (biased)
    /// reconstruction error.
    TopKQuantized,
}

impl CompressionMethod {
    /// The receiver's reconstructed dense model for a given ψ.
    pub fn apply(self, params: &ParamVec, psi: f32) -> ParamVec {
        match self {
            CompressionMethod::TopK => compress_dense(params, psi),
            CompressionMethod::TopKQuantized => {
                let sparse_dense = compress_dense(params, psi);
                QuantizedModel::quantize(&sparse_dense).dequantize()
            }
        }
    }

    /// Bytes on the wire for a dense wire size of `dense_wire_bytes` at ψ.
    pub fn wire_bytes(self, dense_wire_bytes: usize, psi: f32) -> usize {
        match self {
            CompressionMethod::TopK => wire_bytes(dense_wire_bytes, psi),
            // Values shrink 4x; indices still cost their share, so the
            // blended factor is ~0.45 of the float encoding.
            CompressionMethod::TopKQuantized => {
                (wire_bytes(dense_wire_bytes, psi) as f64 * 0.45).ceil() as usize
            }
        }
    }
}

/// Relative L2 reconstruction error of compressing `params` at `psi`:
/// `‖x − x̂‖ / ‖x‖`. 0 at `psi = 1`, 1 at `psi = 0` (for non-zero models).
pub fn reconstruction_error(params: &ParamVec, psi: f32) -> f32 {
    let norm = params.l2_norm();
    if norm == 0.0 {
        return 0.0;
    }
    let hat = compress_dense(params, psi);
    params.distance(&hat) / norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> ParamVec {
        ParamVec::from_vec(vec![0.1, -5.0, 0.3, 2.0, -0.05, 1.0, 0.0, -0.2])
    }

    #[test]
    fn psi_one_keeps_everything() {
        let p = sample_params();
        let s = top_k(&p, 1.0);
        assert_eq!(s.nnz(), p.len());
        assert_eq!(s.to_dense(), p);
    }

    #[test]
    fn psi_zero_sends_nothing() {
        let p = sample_params();
        let s = top_k(&p, 0.0);
        assert_eq!(s.nnz(), 0);
        assert!(s.to_dense().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn top_k_keeps_largest_magnitudes() {
        let p = sample_params();
        let s = top_k(&p, 0.25); // k = 2 of 8
        assert_eq!(s.nnz(), 2);
        let dense = s.to_dense();
        assert_eq!(dense.as_slice()[1], -5.0);
        assert_eq!(dense.as_slice()[3], 2.0);
        assert_eq!(dense.as_slice()[0], 0.0);
    }

    #[test]
    fn indices_are_sorted() {
        let p = sample_params();
        let s = top_k(&p, 0.5);
        for w in s.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn reconstruction_error_monotone_in_psi() {
        let p = ParamVec::from_vec((0..256).map(|i| ((i * 37) % 101) as f32 / 50.0 - 1.0).collect());
        let mut last = f32::INFINITY;
        for psi in [0.0, 0.1, 0.3, 0.6, 1.0] {
            let e = reconstruction_error(&p, psi);
            assert!(e <= last + 1e-6, "error must shrink as psi grows");
            last = e;
        }
        assert_eq!(reconstruction_error(&p, 1.0), 0.0);
    }

    #[test]
    fn wire_bytes_follow_paper_model() {
        assert_eq!(wire_bytes(52 * 1024 * 1024, 1.0), 52 * 1024 * 1024);
        assert_eq!(wire_bytes(1000, 0.5), 500);
        assert_eq!(wire_bytes(1000, 0.0), 0);
    }

    #[test]
    fn quantization_roundtrip_is_close() {
        let p = sample_params();
        let q = QuantizedModel::quantize(&p);
        let back = q.dequantize();
        for (a, b) in p.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= q.scale, "{a} vs {b}");
        }
        assert_eq!(q.wire_bytes(), 8 + 4);
    }

    #[test]
    fn quantizing_zero_vector_is_safe() {
        let p = ParamVec::zeros(4);
        let q = QuantizedModel::quantize(&p);
        assert_eq!(q.dequantize(), p);
    }

    #[test]
    #[should_panic(expected = "psi must be in [0, 1]")]
    fn invalid_psi_panics() {
        let _ = top_k(&sample_params(), 1.5);
    }

    #[test]
    fn quantized_method_is_cheaper_but_lossier() {
        let p = ParamVec::from_vec((0..512).map(|i| ((i * 31) % 97) as f32 / 48.0 - 1.0).collect());
        let plain = CompressionMethod::TopK;
        let quant = CompressionMethod::TopKQuantized;
        assert!(quant.wire_bytes(1_000_000, 0.5) < plain.wire_bytes(1_000_000, 0.5));
        let err_plain = p.distance(&plain.apply(&p, 0.5));
        let err_quant = p.distance(&quant.apply(&p, 0.5));
        assert!(err_quant >= err_plain, "quantization adds error: {err_quant} vs {err_plain}");
        // But the error stays bounded by the quantization step.
        assert!(err_quant < err_plain + p.l2_norm() * 0.05);
    }

    #[test]
    fn methods_agree_at_psi_zero() {
        let p = sample_params();
        for m in [CompressionMethod::TopK, CompressionMethod::TopKQuantized] {
            assert!(m.apply(&p, 0.0).as_slice().iter().all(|&v| v == 0.0));
            assert_eq!(m.wire_bytes(1000, 0.0), 0);
        }
    }
}
