//! The discrete-event scheduler core: a simulated clock and a deterministic
//! priority queue.
//!
//! Events are ordered by `(time, insertion sequence)` — ties at the same
//! simulated time pop in the order they were pushed, never by pointer,
//! hash, or payload. That guarantee is what lets the event-driven runtime
//! reproduce the retained frame loop bit for bit (the frame loop's phases
//! become same-timestamp events pushed in phase order) and keeps every run
//! independent of allocator or thread scheduling.

use simnet::contact::ContactEstimate;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Event kinds of the runtime's discrete-event loop.
///
/// Same-timestamp events pop in push order, so the frame handler pushing
/// `ContactOpen`s, then `TrainSlice`s, then `Eval` at its own timestamp
/// reproduces the frame loop's phase order exactly.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A mobility-trace frame: infrastructure hook, pair matching, and
    /// scheduling of the frame's sessions, training, and evaluation.
    Frame,
    /// A matched pair opens a session.
    ContactOpen {
        /// First endpoint.
        i: usize,
        /// Second endpoint.
        j: usize,
        /// Contact estimate computed from shared routes at match time.
        est: ContactEstimate,
        /// Matching priority the pair won with.
        priority: f64,
    },
    /// A live session's predicted contact window ends; the runtime
    /// force-closes the session if it is still open.
    ContactClose {
        /// Index into the runtime's session table.
        session: usize,
    },
    /// A streaming transfer takes its airtime share of one medium window.
    TransferStep {
        /// Index into the runtime's session table.
        session: usize,
    },
    /// One node's local-training slice for one frame.
    TrainSlice {
        /// Node id.
        node: usize,
    },
    /// A periodic loss-curve evaluation.
    Eval,
}

/// A simulated timestamp with a total order.
///
/// Wraps `f64` and orders by [`f64::total_cmp`]; the queue rejects NaN at
/// push time so the total order never surprises (NaN sorts above +inf under
/// `total_cmp`, which would silently starve an event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedTime(pub f64);

impl Eq for OrderedTime {}

impl PartialOrd for OrderedTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Monotone insertion sequence number breaking same-time ties.
pub type EventSeq = u64;

/// A scheduled entry: reverse-ordered so the `BinaryHeap` max-heap pops the
/// earliest time first and, within a time, the lowest sequence number.
#[derive(Debug)]
struct Entry<E> {
    time: OrderedTime,
    seq: EventSeq,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on both keys: earliest time wins, then earliest insertion.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue over a simulated clock.
///
/// `pop` returns events in nondecreasing time order; events pushed at the
/// same time come back in push order. The clock never runs backwards:
/// pushing before the last popped time is clamped to the current time (a
/// handler scheduling "now" during its own timestamp is fine and common).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: EventSeq,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0, now: 0.0 }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`. Times in the past are
    /// clamped to the current clock; NaN is rejected.
    ///
    /// # Panics
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let t = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: OrderedTime(t), seq, event });
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time.0;
        Some((entry.time.0, entry.event))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time.0)
    }

    /// The next pending event (timestamp and a borrow) without popping it.
    pub fn peek(&self) -> Option<(f64, &E)> {
        self.heap.peek().map(|e| (e.time.0, &e.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_pops_in_insertion_order() {
        let mut q = EventQueue::new();
        for k in 0..100 {
            q.push(5.0, k);
        }
        for k in 0..100 {
            assert_eq!(q.pop(), Some((5.0, k)));
        }
    }

    #[test]
    fn interleaved_pushes_keep_insertion_order_within_a_time() {
        let mut q = EventQueue::new();
        q.push(2.0, "x1");
        q.push(1.0, "y1");
        q.push(2.0, "x2");
        q.push(1.0, "y2");
        assert_eq!(q.pop(), Some((1.0, "y1")));
        assert_eq!(q.pop(), Some((1.0, "y2")));
        assert_eq!(q.pop(), Some((2.0, "x1")));
        assert_eq!(q.pop(), Some((2.0, "x2")));
    }

    #[test]
    fn clock_advances_and_clamps_past_pushes() {
        let mut q = EventQueue::new();
        q.push(10.0, "late");
        assert_eq!(q.pop(), Some((10.0, "late")));
        assert_eq!(q.now(), 10.0);
        // Scheduling in the past lands "now", after already-queued
        // same-time events.
        q.push(10.0, "now1");
        q.push(3.0, "past");
        assert_eq!(q.pop(), Some((10.0, "now1")));
        assert_eq!(q.pop(), Some((10.0, "past")));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(4.0, ());
        assert_eq!(q.peek_time(), Some(4.0));
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_times_are_rejected()
    {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
